//! Multi-cluster scale-out scheduler and serving stack for the NTX
//! reproduction.
//!
//! The DATE 2019 paper evaluates a single 8-engine cluster; its
//! companion work ("A Scalable Near-Memory Architecture for Training
//! Deep Neural Networks on Large In-Memory Datasets", Schuiki et al.,
//! 2018) scales that cluster across the vaults of a Hybrid Memory
//! Cube. This crate models that scale-out step as a layered serving
//! runtime:
//!
//! * **Jobs** — [`Job`]/[`JobQueue`] accept kernel descriptors from
//!   `ntx-kernels` (GEMM, 2-D convolution, AXPY, 2-D Laplace stencil)
//!   plus raw [`ntx_isa::NtxConfig`] commands, each with [`JobOpts`]
//!   (backend selection, priority, deadline);
//! * **Backends** — the [`Backend`] trait covers plan admission, tile
//!   launch and readback; [`SimulatorBackend`] executes bit-accurately
//!   through the cycle simulator's burst API,
//!   [`AnalyticalBackend`] answers instantly from `ntx-model`'s
//!   roofline estimates, and [`NativeHost`] executes on the host CPU
//!   at wire speed — fast multi-accumulator reduction or a Kulisch
//!   exact mode bit-identical to the simulator — selectable per job;
//! * **Farm** — the [`ClusterFarm`] drives N independent clusters by
//!   burst events with no per-job barrier: each cluster starts its
//!   next shard the cycle its previous one retires, and small jobs
//!   space-share disjoint cluster subsets. Per-job outputs and
//!   [`ntx_sim::PerfSnapshot`]s stay **bit-identical** to the
//!   barriered reference (`pipelined: false`), which is kept as the
//!   differential oracle;
//! * **Memory** — [`ScaleOutConfig::memory`] selects the
//!   external-memory model: ideal private memories, or one shared HMC
//!   ([`MemoryModel::SharedHmc`]) whose vault/LoB bandwidth every
//!   cluster's DMA draws from through a deterministic per-cycle slot
//!   schedule — scale-out then shows the companion paper's
//!   memory-bound saturation, while data outputs stay bit-identical
//!   to the ideal runs;
//! * **Tiling** — the [`Tiler`] shards each job into per-cluster tiles
//!   sized to the TCDM, reusing the engine-level `split_work` rule so
//!   every shard computes exactly what the single-cluster lowering
//!   would, and a [`TilePipeline`] per cluster runs the §II-E
//!   double-buffered DMA schedule;
//! * **Serving** — the [`Server`] runs the farm as a persistent
//!   service: clients hold cloneable [`Session`]s and submit through
//!   the fluent [`JobBuilder`]; with continuous admission (the
//!   default) every job is validated, planned and placed onto the
//!   least-loaded clusters the moment it arrives — sized to graded
//!   cluster subsets by a measured-duration [`DurationTable`] (EWMA of
//!   actual cluster-cycles, seeded by roofline estimates) — and its
//!   completion is delivered the shard event its last shard retires.
//!   Wave batching is kept behind
//!   [`AdmissionMode::Wave`](server::AdmissionMode) as the
//!   differential baseline, and the barriered farm remains the
//!   bit-exact oracle;
//! * **Reports** — [`ScaleOutReport`] aggregates cycles, stalls, DMA
//!   occupancy and — through `ntx-model` — energy and Gflop/s/W;
//!   [`ServingReport`] rolls up a server run (jobs/s, latency,
//!   occupancy).
//!
//! # Example
//!
//! ```
//! use ntx_kernels::blas::GemmKernel;
//! use ntx_sched::{BackendKind, Server, ServerConfig};
//! use std::time::Duration;
//!
//! let server = Server::start(ServerConfig::with_clusters(4));
//! let session = server.session();
//! // Bit-accurate simulation on the farm, with serving options.
//! let gemm = session
//!     .job("gemm 16x16x16")
//!     .gemm(GemmKernel { m: 16, k: 16, n: 16 }, vec![1.0; 256], vec![0.5; 256])
//!     .priority(2)
//!     .deadline(Duration::from_secs(60))
//!     .submit()?;
//! // The same session serves instant analytical estimates.
//! let estimate = session
//!     .job("gemm estimate")
//!     .gemm(
//!         GemmKernel { m: 512, k: 512, n: 512 },
//!         vec![1.0; 512 * 512],
//!         vec![0.5; 512 * 512],
//!     )
//!     .backend(BackendKind::Estimate)
//!     .submit()?;
//! assert_eq!(gemm.wait()?.result.unwrap().output[0], 8.0); // 16 * 1.0 * 0.5
//! assert!(estimate.wait()?.result.unwrap().estimate.unwrap().cycles > 0);
//! let report = server.shutdown();
//! assert_eq!(report.jobs, 2);
//! # Ok::<(), ntx_sched::SchedError>(())
//! ```
//!
//! The same builder enqueues into a [`JobQueue`] for the synchronous
//! [`ScaleOutExecutor`]: `queue.job("axpy").axpy(a, x, y).submit()`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod executor;
pub mod farm;
pub mod job;
pub mod pipeline;
pub mod report;
pub mod server;
pub mod session;
pub mod tiler;

pub use backend::{
    AdmittedJob, AdmittedWork, AnalyticalBackend, Backend, BackendKind, DurationTable, JobEstimate,
    NativeHost, Placement, SimulatorBackend,
};
pub use executor::{run_sharded, BatchResult, JobResult, ScaleOutConfig, ScaleOutExecutor};
pub use farm::{
    resolve_worker_threads, ClusterFarm, FaultStats, JobMeta, PlacedJob, PoolStats, ShardRetire,
};
pub use job::{Job, JobClass, JobKind, JobOpts, JobQueue, RawJob};
pub use ntx_mem::{HmcConfig, HmcMesh, HmcSubsystem, MemoryModel, MeshConfig};
pub use ntx_sim::{ClusterKill, FaultPlan, LinkFault, StallSpec};
pub use pipeline::TilePipeline;
pub use report::{ScaleOutReport, ServingReport};
pub use server::{AdmissionMode, Completion, JobHandle, Server, ServerConfig, ServerHandle};
pub use session::{JobBuilder, JobSink, ReadyJob, Session};
pub use tiler::{ClusterPlan, Readback, ReadbackSource, Tiler};

use ntx_isa::ConfigError;

/// Errors of the scheduling layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// Job data inconsistent with its descriptor.
    Shape(String),
    /// A shard cannot fit the TCDM even at the minimum tile size.
    Capacity(String),
    /// A single non-tileable window — a raw job's TCDM preload or
    /// result window — exceeds what the TCDM can hold, so no sharding
    /// or tiling can help. Carries the sizes and how many passes an
    /// explicit split by the submitter would need.
    PlanTooLarge {
        /// What was being placed (e.g. `"raw job preload"`).
        what: &'static str,
        /// Bytes the window needs.
        requested: u64,
        /// Bytes available at the requested address.
        available: u64,
        /// `ceil(requested / available)`: the minimum number of
        /// windows an explicit split would need.
        suggested_passes: u32,
    },
    /// The kernel lowering rejected a configuration.
    Lowering(ConfigError),
    /// A job in a batch failed; identifies the submission so callers
    /// know which job to fix.
    Job {
        /// Queue-assigned id of the failing job.
        id: u64,
        /// Submission label of the failing job.
        label: String,
        /// The underlying failure.
        source: Box<SchedError>,
    },
    /// The serving front-end has shut down (submission rejected or a
    /// completion channel closed).
    Shutdown,
    /// The server's bounded admission queue is full: the submission
    /// was rejected instead of growing the backlog without bound.
    /// Retry later, or use the blocking
    /// [`submit_wait`](session::ReadyJob::submit_wait) variant.
    Backpressure {
        /// The configured admission-queue capacity that was hit.
        limit: usize,
    },
    /// The job was parked on a dependency edge whose predecessor never
    /// completed before the server shut down — the predecessor id was
    /// never submitted, or was itself parked on an unsatisfied edge.
    /// Carries one of the unfinished predecessor ids so the client can
    /// see which edge was left dangling.
    DependencyDropped {
        /// An unfinished predecessor the job was still waiting for.
        dep: u64,
    },
    /// Deadline-aware shedding rejected the job at admission: the
    /// placement estimate already proves its virtual-cycle deadline
    /// cannot be met, so simulating it would only burn farm time that
    /// meetable jobs need.
    DeadlineUnmeetable {
        /// Estimated completion, cycles from the farm's virtual now.
        estimated_cycles: u64,
        /// The deadline it would miss.
        deadline_cycles: u64,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Shape(m) => write!(f, "shape error: {m}"),
            SchedError::Capacity(m) => write!(f, "capacity error: {m}"),
            SchedError::PlanTooLarge {
                what,
                requested,
                available,
                suggested_passes,
            } => write!(
                f,
                "{what} needs {requested} B but only {available} B are available; \
                 split it into at least {suggested_passes} passes"
            ),
            SchedError::Lowering(e) => write!(f, "lowering error: {e:?}"),
            SchedError::Job { id, label, source } => {
                write!(f, "job {id} ({label}): {source}")
            }
            SchedError::Shutdown => write!(f, "serving front-end has shut down"),
            SchedError::Backpressure { limit } => {
                write!(f, "admission queue full ({limit} submissions pending)")
            }
            SchedError::DependencyDropped { dep } => write!(
                f,
                "dependency edge left dangling: predecessor {dep} never completed \
                 before shutdown"
            ),
            SchedError::DeadlineUnmeetable {
                estimated_cycles,
                deadline_cycles,
            } => write!(
                f,
                "deadline unmeetable: estimated {estimated_cycles} cycles to completion, \
                 deadline in {deadline_cycles}"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<ConfigError> for SchedError {
    fn from(e: ConfigError) -> Self {
        SchedError::Lowering(e)
    }
}
