//! Multi-cluster scale-out scheduler for the NTX reproduction.
//!
//! The DATE 2019 paper evaluates a single 8-engine cluster; its
//! companion work ("A Scalable Near-Memory Architecture for Training
//! Deep Neural Networks on Large In-Memory Datasets", Schuiki et al.,
//! 2018) scales that cluster across the vaults of a Hybrid Memory
//! Cube. This crate models that scale-out step as a job-scheduling
//! runtime:
//!
//! * [`Job`]/[`JobQueue`] accept kernel descriptors from `ntx-kernels`
//!   (GEMM, 2-D convolution, AXPY) plus raw [`ntx_isa::NtxConfig`]
//!   commands;
//! * the [`Tiler`] shards each job into per-cluster tiles sized to the
//!   TCDM, reusing the engine-level `split_work` rule so every shard
//!   computes exactly what the single-cluster lowering would;
//! * a [`TilePipeline`] per cluster runs the §II-E double-buffered DMA
//!   schedule as a resumable state machine, overlapping transfers with
//!   compute;
//! * the [`ScaleOutExecutor`] drains all cluster pipelines — a
//!   deterministic round-robin interleave by default, one OS thread
//!   per cluster behind the `parallel` feature — and assembles outputs
//!   that are **bit-identical** to a single-cluster run (the NTX wide
//!   accumulator rounds the exact sum once, so row/band sharding
//!   cannot change any result bit);
//! * [`ScaleOutReport`] aggregates cycles, stalls, DMA occupancy and —
//!   through `ntx-model` — energy and Gflop/s/W, with strong-scaling
//!   helpers for the `report-scaling` experiment in `ntx-bench`.
//!
//! # Example
//!
//! ```
//! use ntx_kernels::blas::GemmKernel;
//! use ntx_sched::{JobKind, JobQueue, ScaleOutConfig, ScaleOutExecutor};
//!
//! let mut queue = JobQueue::new();
//! queue.push(
//!     "gemm 16x16x16",
//!     JobKind::Gemm {
//!         dims: GemmKernel { m: 16, k: 16, n: 16 },
//!         a: vec![1.0; 256],
//!         b: vec![0.5; 256],
//!     },
//! );
//! let mut exec = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(4));
//! let batch = exec.run_queue(&mut queue)?;
//! assert_eq!(batch.results[0].output[0], 8.0); // 16 * 1.0 * 0.5
//! assert!(batch.report.makespan_cycles > 0);
//! # Ok::<(), ntx_sched::SchedError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod job;
pub mod pipeline;
pub mod report;
pub mod tiler;

pub use executor::{run_sharded, BatchResult, JobResult, ScaleOutConfig, ScaleOutExecutor};
pub use job::{Job, JobKind, JobQueue, RawJob};
pub use pipeline::TilePipeline;
pub use report::ScaleOutReport;
pub use tiler::{ClusterPlan, Readback, ReadbackSource, Tiler};

use ntx_isa::ConfigError;

/// Errors of the scheduling layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// Job data inconsistent with its descriptor.
    Shape(String),
    /// A shard cannot fit the TCDM even at the minimum tile size.
    Capacity(String),
    /// The kernel lowering rejected a configuration.
    Lowering(ConfigError),
    /// A job in a batch failed; identifies the submission so callers
    /// know which job to fix.
    Job {
        /// Queue-assigned id of the failing job.
        id: u64,
        /// Submission label of the failing job.
        label: String,
        /// The underlying failure.
        source: Box<SchedError>,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Shape(m) => write!(f, "shape error: {m}"),
            SchedError::Capacity(m) => write!(f, "capacity error: {m}"),
            SchedError::Lowering(e) => write!(f, "lowering error: {e:?}"),
            SchedError::Job { id, label, source } => {
                write!(f, "job {id} ({label}): {source}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

impl From<ConfigError> for SchedError {
    fn from(e: ConfigError) -> Self {
        SchedError::Lowering(e)
    }
}
