//! Multi-cluster scale-out scheduler and serving stack for the NTX
//! reproduction.
//!
//! The DATE 2019 paper evaluates a single 8-engine cluster; its
//! companion work ("A Scalable Near-Memory Architecture for Training
//! Deep Neural Networks on Large In-Memory Datasets", Schuiki et al.,
//! 2018) scales that cluster across the vaults of a Hybrid Memory
//! Cube. This crate models that scale-out step as a layered serving
//! runtime:
//!
//! * **Jobs** — [`Job`]/[`JobQueue`] accept kernel descriptors from
//!   `ntx-kernels` (GEMM, 2-D convolution, AXPY, 2-D Laplace stencil)
//!   plus raw [`ntx_isa::NtxConfig`] commands, each with [`JobOpts`]
//!   (backend selection, priority, deadline);
//! * **Backends** — the [`Backend`] trait covers plan admission, tile
//!   launch and readback; [`SimulatorBackend`] executes bit-accurately
//!   through the cycle simulator's burst API while
//!   [`AnalyticalBackend`] answers instantly from `ntx-model`'s
//!   roofline estimates, selectable per job;
//! * **Farm** — the [`ClusterFarm`] drives N independent clusters by
//!   burst events with no per-job barrier: each cluster starts its
//!   next shard the cycle its previous one retires, and small jobs
//!   space-share disjoint cluster subsets. Per-job outputs and
//!   [`ntx_sim::PerfSnapshot`]s stay **bit-identical** to the
//!   barriered reference (`pipelined: false`), which is kept as the
//!   differential oracle;
//! * **Tiling** — the [`Tiler`] shards each job into per-cluster tiles
//!   sized to the TCDM, reusing the engine-level `split_work` rule so
//!   every shard computes exactly what the single-cluster lowering
//!   would, and a [`TilePipeline`] per cluster runs the §II-E
//!   double-buffered DMA schedule;
//! * **Serving** — the [`Server`] front-end accepts mpsc submissions
//!   from many client threads, orders waves by priority, tracks
//!   per-job deadlines, delivers completions through handles or
//!   callbacks, and aggregates a [`ServingReport`] (throughput,
//!   latency, occupancy);
//! * **Reports** — [`ScaleOutReport`] aggregates cycles, stalls, DMA
//!   occupancy and — through `ntx-model` — energy and Gflop/s/W.
//!
//! # Example
//!
//! ```
//! use ntx_kernels::blas::GemmKernel;
//! use ntx_sched::{JobKind, JobOpts, JobQueue, ScaleOutConfig, ScaleOutExecutor};
//!
//! let mut queue = JobQueue::new();
//! queue.push(
//!     "gemm 16x16x16",
//!     JobKind::Gemm {
//!         dims: GemmKernel { m: 16, k: 16, n: 16 },
//!         a: vec![1.0; 256],
//!         b: vec![0.5; 256],
//!     },
//! );
//! // The same queue also serves instant analytical estimates.
//! queue.push_with(
//!     "gemm estimate",
//!     JobKind::Gemm {
//!         dims: GemmKernel { m: 512, k: 512, n: 512 },
//!         a: vec![1.0; 512 * 512],
//!         b: vec![0.5; 512 * 512],
//!     },
//!     JobOpts::estimate(),
//! );
//! let mut exec = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(4));
//! let batch = exec.run_queue(&mut queue)?;
//! assert_eq!(batch.results[0].output[0], 8.0); // 16 * 1.0 * 0.5
//! assert!(batch.results[1].estimate.unwrap().cycles > 0);
//! assert!(batch.report.makespan_cycles > 0);
//! # Ok::<(), ntx_sched::SchedError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod executor;
pub mod farm;
pub mod job;
pub mod pipeline;
pub mod report;
pub mod server;
pub mod tiler;

pub use backend::{
    AdmittedJob, AdmittedWork, AnalyticalBackend, Backend, BackendKind, JobEstimate,
    SimulatorBackend,
};
pub use executor::{run_sharded, BatchResult, JobResult, ScaleOutConfig, ScaleOutExecutor};
pub use farm::{ClusterFarm, JobMeta, PlacedJob};
pub use job::{Job, JobKind, JobOpts, JobQueue, RawJob};
pub use pipeline::TilePipeline;
pub use report::ScaleOutReport;
pub use server::{Completion, JobHandle, Server, ServerConfig, ServerHandle, ServingReport};
pub use tiler::{ClusterPlan, Readback, ReadbackSource, Tiler};

use ntx_isa::ConfigError;

/// Errors of the scheduling layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// Job data inconsistent with its descriptor.
    Shape(String),
    /// A shard cannot fit the TCDM even at the minimum tile size.
    Capacity(String),
    /// The kernel lowering rejected a configuration.
    Lowering(ConfigError),
    /// A job in a batch failed; identifies the submission so callers
    /// know which job to fix.
    Job {
        /// Queue-assigned id of the failing job.
        id: u64,
        /// Submission label of the failing job.
        label: String,
        /// The underlying failure.
        source: Box<SchedError>,
    },
    /// The serving front-end has shut down (submission rejected or a
    /// completion channel closed).
    Shutdown,
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Shape(m) => write!(f, "shape error: {m}"),
            SchedError::Capacity(m) => write!(f, "capacity error: {m}"),
            SchedError::Lowering(e) => write!(f, "lowering error: {e:?}"),
            SchedError::Job { id, label, source } => {
                write!(f, "job {id} ({label}): {source}")
            }
            SchedError::Shutdown => write!(f, "serving front-end has shut down"),
        }
    }
}

impl std::error::Error for SchedError {}

impl From<ConfigError> for SchedError {
    fn from(e: ConfigError) -> Self {
        SchedError::Lowering(e)
    }
}
