//! The deterministic multi-cluster executor.
//!
//! Owns N independent [`Cluster`] instances — the paper family's
//! clusters-per-HMC-vault arrangement, where each cluster fronts its
//! own slice of DRAM — and drives one [`TilePipeline`] per cluster.
//! Two drain modes produce bit-identical results:
//!
//! * **round-robin** (default): one step of each busy pipeline per
//!   turn, on the calling thread, fully deterministic;
//! * **thread-parallel** (`parallel` feature): one OS thread per
//!   cluster. Clusters share no state, so per-cluster simulations are
//!   unaffected by the interleaving.

use ntx_sim::{Cluster, ClusterConfig, PerfSnapshot};

use crate::job::{Job, JobQueue};
use crate::pipeline::TilePipeline;
use crate::report::ScaleOutReport;
use crate::tiler::{ClusterPlan, ReadbackSource, Tiler};
use crate::SchedError;

/// Static configuration of the scale-out system.
#[derive(Debug, Clone, Copy)]
pub struct ScaleOutConfig {
    /// Number of clusters (the paper's companion work scales 1..128
    /// per HMC; Table II goes to 512 across cubes).
    pub clusters: usize,
    /// Configuration of every cluster.
    pub cluster: ClusterConfig,
}

impl Default for ScaleOutConfig {
    fn default() -> Self {
        Self {
            clusters: 8,
            cluster: ClusterConfig::default(),
        }
    }
}

impl ScaleOutConfig {
    /// `clusters` default-configured clusters.
    #[must_use]
    pub fn with_clusters(clusters: usize) -> Self {
        Self {
            clusters,
            ..Self::default()
        }
    }
}

/// Result of one job: the assembled output plus the measurement window.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Id the queue assigned at submission.
    pub job_id: u64,
    /// Submission label.
    pub label: String,
    /// The job's output, assembled from all cluster shards exactly as
    /// a single cluster would have produced it.
    pub output: Vec<f32>,
    /// Counters of this job's window.
    pub report: ScaleOutReport,
}

/// Result of draining a whole queue.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-job results in completion (= submission) order.
    pub results: Vec<JobResult>,
    /// All job windows merged.
    pub report: ScaleOutReport,
}

/// The multi-cluster scheduler/executor.
#[derive(Debug)]
pub struct ScaleOutExecutor {
    config: ScaleOutConfig,
    tiler: Tiler,
    clusters: Vec<Cluster>,
}

impl ScaleOutExecutor {
    /// Builds `config.clusters` independent clusters.
    ///
    /// # Panics
    ///
    /// Panics when `config.clusters` is zero.
    #[must_use]
    pub fn new(config: ScaleOutConfig) -> Self {
        assert!(config.clusters > 0, "need at least one cluster");
        Self {
            config,
            tiler: Tiler::new(config.clusters),
            clusters: (0..config.clusters)
                .map(|_| Cluster::new(config.cluster))
                .collect(),
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &ScaleOutConfig {
        &self.config
    }

    /// Read-only access to cluster `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn cluster(&self, index: usize) -> &Cluster {
        &self.clusters[index]
    }

    /// Shards `job` across the clusters, runs it to completion, and
    /// assembles the output.
    ///
    /// # Errors
    ///
    /// Propagates tiler errors; the clusters are left idle (but with
    /// clobbered memories) on failure.
    pub fn run_job(&mut self, job: &Job) -> Result<JobResult, SchedError> {
        let plans = self.tiler.plan(job, &self.clusters[0])?;
        Ok(self.run_planned(job, &plans))
    }

    /// Executes an already-planned job (see [`Tiler::plan`]).
    fn run_planned(&mut self, job: &Job, plans: &[ClusterPlan]) -> JobResult {
        // Stage inputs.
        for (cluster, plan) in self.clusters.iter_mut().zip(plans) {
            for (addr, values) in &plan.ext_writes {
                cluster.ext_mem().write_f32_slice(*addr, values);
            }
            for (addr, values) in &plan.tcdm_writes {
                cluster.write_tcdm_f32(*addr, values);
            }
        }
        // Measure from here: staging is host work, not simulated time.
        let before: Vec<PerfSnapshot> = self.clusters.iter().map(Cluster::perf).collect();
        let cycle0: Vec<u64> = self.clusters.iter().map(Cluster::cycle).collect();

        // Raw commands run on their one assigned cluster.
        for (cluster, plan) in self.clusters.iter_mut().zip(plans) {
            if let Some(raw) = &plan.raw {
                cluster.offload(0, &raw.config);
                cluster.run_to_completion();
            }
        }
        // Tiled shards run as one double-buffered pipeline per cluster.
        let mut pipelines: Vec<Option<TilePipeline>> = self
            .clusters
            .iter_mut()
            .zip(plans)
            .map(|(cluster, plan)| {
                (!plan.tiles.is_empty()).then(|| TilePipeline::new(cluster, plan.tiles.clone()))
            })
            .collect();
        self.drain(&mut pipelines);

        // Assemble the output and the measurement window.
        let mut report = ScaleOutReport::new(self.clusters.len(), self.config.cluster.ntx_freq_hz);
        let mut output = vec![0f32; job.output_len()];
        for (i, (cluster, plan)) in self.clusters.iter_mut().zip(plans).enumerate() {
            report.per_cluster[i] = cluster.perf().since(&before[i]);
            report.makespan_cycles = report.makespan_cycles.max(cluster.cycle() - cycle0[i]);
            for rb in &plan.readbacks {
                let dst = &mut output[rb.dst..rb.dst + rb.len as usize];
                match rb.source {
                    ReadbackSource::Ext(addr) => cluster.ext_mem().read_f32_into(addr, dst),
                    ReadbackSource::Tcdm(addr) => cluster.read_tcdm_into(addr, dst),
                }
            }
        }
        JobResult {
            job_id: job.id,
            label: job.label.clone(),
            output,
            report,
        }
    }

    /// Drains the queue in FIFO order. Every job is planned (and so
    /// shape/capacity-checked) up front, so a bad submission fails the
    /// whole batch before any simulation time is spent and with the
    /// queue intact; errors name the offending job.
    ///
    /// # Errors
    ///
    /// [`SchedError::Job`] wrapping the first planning failure.
    pub fn run_queue(&mut self, queue: &mut JobQueue) -> Result<BatchResult, SchedError> {
        // Plan every job up front: a bad submission fails the whole
        // batch before any simulation time is spent, with the queue
        // intact, and the plans are reused for execution rather than
        // re-materialized per job.
        let mut planned = Vec::with_capacity(queue.len());
        for job in queue.iter() {
            let plans = self
                .tiler
                .plan(job, &self.clusters[0])
                .map_err(|e| SchedError::Job {
                    id: job.id,
                    label: job.label.clone(),
                    source: Box::new(e),
                })?;
            planned.push(plans);
        }
        let mut results = Vec::with_capacity(queue.len());
        let mut report = ScaleOutReport::new(self.clusters.len(), self.config.cluster.ntx_freq_hz);
        for plans in planned {
            let job = queue.pop().expect("one queued job per plan");
            let r = self.run_planned(&job, &plans);
            report.merge(&r.report);
            results.push(r);
        }
        Ok(BatchResult { results, report })
    }

    /// Round-robin drain: one pipeline step per busy cluster per turn.
    #[cfg(not(feature = "parallel"))]
    fn drain(&mut self, pipelines: &mut [Option<TilePipeline>]) {
        let mut guard = 0u64;
        loop {
            let mut busy = false;
            for (cluster, pipe) in self.clusters.iter_mut().zip(pipelines.iter_mut()) {
                if let Some(p) = pipe {
                    if p.step(cluster) {
                        busy = true;
                    } else {
                        *pipe = None;
                    }
                }
            }
            if !busy {
                return;
            }
            guard += 1;
            assert!(guard < 10_000_000_000, "scale-out drain failed to finish");
        }
    }

    /// Thread-parallel drain: each cluster's pipeline on its own OS
    /// thread. Clusters are fully independent, so this is observably
    /// identical to the round-robin drain.
    #[cfg(feature = "parallel")]
    fn drain(&mut self, pipelines: &mut [Option<TilePipeline>]) {
        std::thread::scope(|scope| {
            for (cluster, pipe) in self.clusters.iter_mut().zip(pipelines.iter_mut()) {
                if let Some(p) = pipe {
                    scope.spawn(move || p.run_to_completion(cluster));
                }
            }
        });
        for pipe in pipelines.iter_mut() {
            *pipe = None;
        }
    }
}

/// Convenience entry point: runs one job on an `n`-cluster system and
/// returns its result.
///
/// # Errors
///
/// Propagates [`SchedError`] from planning.
pub fn run_sharded(job: &Job, clusters: usize) -> Result<JobResult, SchedError> {
    ScaleOutExecutor::new(ScaleOutConfig::with_clusters(clusters)).run_job(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use crate::job::RawJob;
    use ntx_isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect};
    use ntx_kernels::blas::GemmKernel;
    use ntx_kernels::conv::Conv2dKernel;
    use ntx_kernels::reference;

    fn data(n: usize, mut seed: u32) -> Vec<f32> {
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 17;
                seed ^= seed << 5;
                ((seed % 64) as f32 - 32.0) / 16.0
            })
            .collect()
    }

    fn job(kind: JobKind) -> Job {
        Job {
            id: 0,
            label: "test".into(),
            kind,
        }
    }

    #[test]
    fn axpy_sharded_matches_reference_and_single() {
        let n = 3000usize;
        let x = data(n, 7);
        let y = data(n, 11);
        let kind = JobKind::Axpy {
            a: 1.5,
            x: x.clone(),
            y: y.clone(),
        };
        let single = run_sharded(&job(kind.clone()), 1).unwrap();
        let wide = run_sharded(&job(kind), 4).unwrap();
        let mut expect = y;
        reference::axpy(1.5, &x, &mut expect);
        assert_eq!(single.output, expect);
        assert_eq!(wide.output, expect);
        assert!(wide.report.makespan_cycles < single.report.makespan_cycles);
    }

    #[test]
    fn gemm_sharded_matches_reference_and_single() {
        let (m, k, n) = (24u32, 12u32, 9u32);
        let a = data((m * k) as usize, 3);
        let b = data((k * n) as usize, 5);
        let kind = JobKind::Gemm {
            dims: GemmKernel { m, k, n },
            a: a.clone(),
            b: b.clone(),
        };
        let single = run_sharded(&job(kind.clone()), 1).unwrap();
        let wide = run_sharded(&job(kind), 3).unwrap();
        let expect = reference::gemm(&a, &b, m as usize, k as usize, n as usize);
        assert_eq!(single.output, expect);
        assert_eq!(wide.output, expect);
    }

    #[test]
    fn conv_sharded_matches_reference_and_single() {
        let kernel = Conv2dKernel {
            height: 34,
            width: 21,
            k: 3,
            filters: 2,
        };
        let image = data((kernel.height * kernel.width) as usize, 13);
        let weights = data((kernel.k * kernel.k * kernel.filters) as usize, 17);
        let kind = JobKind::Conv2d {
            kernel,
            image: image.clone(),
            weights: weights.clone(),
        };
        let single = run_sharded(&job(kind.clone()), 1).unwrap();
        let wide = run_sharded(&job(kind), 4).unwrap();
        let (oh, ow) = (kernel.out_height() as usize, kernel.out_width() as usize);
        for f in 0..kernel.filters as usize {
            let expect = reference::conv2d(
                &image,
                kernel.height as usize,
                kernel.width as usize,
                &weights[f * 9..(f + 1) * 9],
                3,
            );
            assert_eq!(&single.output[f * oh * ow..(f + 1) * oh * ow], &expect[..]);
            assert_eq!(&wide.output[f * oh * ow..(f + 1) * oh * ow], &expect[..]);
        }
        assert!(wide.report.makespan_cycles < single.report.makespan_cycles);
    }

    #[test]
    fn raw_job_runs_on_one_cluster() {
        let cfg = NtxConfig::builder()
            .command(Command::Mac {
                operand: OperandSelect::Memory,
            })
            .loops(LoopNest::vector(4))
            .agu(0, AguConfig::stream(0x000, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let kind = JobKind::Raw(RawJob {
            config: cfg,
            tcdm: vec![
                (0x000, vec![1.0, 2.0, 3.0, 4.0]),
                (0x100, vec![4.0, 3.0, 2.0, 1.0]),
            ],
            result_addr: 0x200,
            result_len: 1,
        });
        let r = run_sharded(&job(kind), 4).unwrap();
        assert_eq!(r.output, vec![20.0]);
        // Exactly one cluster did work.
        let active = r.report.per_cluster.iter().filter(|p| p.flops > 0).count();
        assert_eq!(active, 1);
    }

    #[test]
    fn queue_runs_jobs_in_order_and_merges_reports() {
        let mut exec = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(2));
        let mut q = JobQueue::new();
        let x = data(500, 1);
        let y = data(500, 2);
        q.push(
            "axpy",
            JobKind::Axpy {
                a: 2.0,
                x: x.clone(),
                y: y.clone(),
            },
        );
        q.push(
            "gemm",
            JobKind::Gemm {
                dims: GemmKernel { m: 8, k: 8, n: 8 },
                a: data(64, 3),
                b: data(64, 4),
            },
        );
        let batch = exec.run_queue(&mut q).unwrap();
        assert_eq!(batch.results.len(), 2);
        assert_eq!(batch.results[0].label, "axpy");
        assert_eq!(batch.results[1].label, "gemm");
        assert_eq!(
            batch.report.makespan_cycles,
            batch.results[0].report.makespan_cycles + batch.results[1].report.makespan_cycles
        );
        assert!(batch.report.total_flops() > 0);
        assert!(batch.report.dma_occupancy() > 0.0);
    }

    #[test]
    fn bad_job_fails_batch_upfront_and_names_the_job() {
        let mut exec = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(2));
        let mut q = JobQueue::new();
        q.push(
            "good",
            JobKind::Axpy {
                a: 1.0,
                x: data(64, 1),
                y: data(64, 2),
            },
        );
        let bad_id = q.push(
            "mismatched",
            JobKind::Axpy {
                a: 1.0,
                x: data(64, 3),
                y: data(32, 4),
            },
        );
        let err = exec.run_queue(&mut q).unwrap_err();
        match err {
            SchedError::Job { id, label, source } => {
                assert_eq!(id, bad_id);
                assert_eq!(label, "mismatched");
                assert!(matches!(*source, SchedError::Shape(_)));
            }
            other => panic!("expected SchedError::Job, got {other:?}"),
        }
        // Pre-validation failed before any job ran: the queue is intact.
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn raw_job_window_outside_tcdm_rejected() {
        // TCDM addresses wrap at capacity, so an out-of-range result
        // window must be rejected at planning time, not read aliased.
        let cfg = NtxConfig::builder()
            .command(Command::Mac {
                operand: OperandSelect::Memory,
            })
            .loops(LoopNest::vector(2))
            .agu(0, AguConfig::stream(0x000, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let kind = JobKind::Raw(RawJob {
            config: cfg,
            tcdm: vec![(0x000, vec![1.0, 2.0])],
            result_addr: 0xfff0,
            result_len: 8,
        });
        assert!(matches!(
            run_sharded(&job(kind), 1),
            Err(SchedError::Capacity(_))
        ));
    }

    #[test]
    fn oversized_axpy_shard_rejected_not_corrupted() {
        // A shard whose x operand would overrun the 16 MB region pitch
        // must be a Capacity error, not silent aliasing.
        let n = 5_000_000usize;
        let kind = JobKind::Axpy {
            a: 1.0,
            x: vec![0.0; n],
            y: vec![0.0; n],
        };
        assert!(matches!(
            run_sharded(&job(kind), 1),
            Err(SchedError::Capacity(_))
        ));
    }

    #[test]
    fn capacity_error_for_oversized_gemm_shard() {
        let kind = JobKind::Gemm {
            dims: GemmKernel {
                m: 96,
                k: 96,
                n: 96,
            },
            a: data(96 * 96, 1),
            b: data(96 * 96, 2),
        };
        // 1 cluster: A + padded B + C need ~90 kB, over the 64 kB TCDM.
        assert!(matches!(
            run_sharded(&job(kind), 1),
            Err(SchedError::Capacity(_))
        ));
    }
}
