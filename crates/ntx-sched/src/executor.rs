//! The multi-cluster executor: a thin composition of the layered
//! serving stack.
//!
//! [`ScaleOutExecutor`] wires a [`SimulatorBackend`] (the tiler, the
//! placement heuristic and the [`ClusterFarm`](crate::ClusterFarm)),
//! an [`AnalyticalBackend`] (roofline estimates) and a pair of
//! [`NativeHost`]s (wire-speed host-CPU execution, fast and
//! bit-exact) behind the [`Backend`] trait and dispatches each job to
//! the backend its [`JobOpts`](crate::JobOpts) select. The async,
//! multi-client entry point on top of this is
//! [`Server`](crate::Server); the executor itself is the synchronous
//! core both paths share.

use ntx_mem::{HmcConfig, MemoryModel, MeshConfig};
use ntx_sim::{Cluster, ClusterConfig};

use crate::backend::{
    AdmittedJob, AnalyticalBackend, Backend, BackendKind, JobEstimate, NativeHost, SimulatorBackend,
};
use crate::farm::JobMeta;
use crate::job::{Job, JobQueue};
use crate::report::ScaleOutReport;
use crate::SchedError;

/// Static configuration of the scale-out system.
#[derive(Debug, Clone, Copy)]
pub struct ScaleOutConfig {
    /// Number of clusters (the paper's companion work scales 1..128
    /// per HMC; Table II goes to 512 across cubes).
    pub clusters: usize,
    /// Configuration of every cluster.
    pub cluster: ClusterConfig,
    /// Overlap jobs across clusters (the pipelined farm). With `false`
    /// every job barriers on its predecessor — the differential oracle
    /// for the farm, mirroring the simulator's `fast_path: false`.
    pub pipelined: bool,
    /// Let small jobs occupy disjoint cluster subsets (cluster-level
    /// space sharing) instead of spanning the whole farm.
    pub space_share: bool,
    /// Estimated cycles of work one shard should carry before the
    /// space-sharing heuristic adds another cluster to a job.
    pub target_shard_cycles: u64,
    /// External-memory model: ideal private memories (the default),
    /// one shared HMC whose vault/LoB bandwidth every cluster's DMA
    /// draws from ([`MemoryModel::SharedHmc`]), or a multi-cube mesh
    /// with per-cube subsystems and serial-link hop costs
    /// ([`MemoryModel::HmcMesh`]). Data outputs are bit-identical
    /// either way; only timing changes.
    pub memory: MemoryModel,
    /// On a mesh, prefer clusters attached to a job's home cube over
    /// less-loaded remote ones (data-affine placement, the default).
    /// With `false` placement is purely load-ordered — the control
    /// arm of the affinity experiment. Meaningless without
    /// [`MemoryModel::HmcMesh`].
    pub affinity: bool,
    /// Deterministic chaos schedule injected into continuous-mode
    /// farms: cluster kills, transient stalls, serial-link
    /// degradation. The empty plan (the default) injects nothing;
    /// batch (oracle) runs always ignore it.
    pub faults: ntx_sim::FaultPlan,
    /// Worker threads for the continuous farm's cluster pool. `0`
    /// (the default) resolves via the `NTX_WORKER_THREADS` env
    /// variable, falling back to serial; `1` forces serial; `> 1`
    /// steps clusters speculatively on that many threads while the
    /// merge front keeps retire order — and every output and counter —
    /// bit-identical to the serial farm. Batch (oracle) runs always
    /// execute serially.
    pub worker_threads: usize,
}

impl Default for ScaleOutConfig {
    fn default() -> Self {
        Self {
            clusters: 8,
            cluster: ClusterConfig::default(),
            pipelined: true,
            space_share: true,
            target_shard_cycles: 4096,
            memory: MemoryModel::Ideal,
            affinity: true,
            faults: ntx_sim::FaultPlan::NONE,
            worker_threads: 0,
        }
    }
}

impl ScaleOutConfig {
    /// `clusters` default-configured clusters.
    #[must_use]
    pub fn with_clusters(clusters: usize) -> Self {
        Self {
            clusters,
            ..Self::default()
        }
    }

    /// The barriered reference configuration: same placement, no
    /// inter-job overlap.
    #[must_use]
    pub fn barriered(mut self) -> Self {
        self.pipelined = false;
        self
    }

    /// Runs every cluster against one shared HMC: DMA ext transfers
    /// draw from the cube's vault/LoB bandwidth instead of ideal
    /// private memories.
    #[must_use]
    pub fn with_shared_hmc(mut self, hmc: HmcConfig) -> Self {
        self.memory = MemoryModel::SharedHmc(hmc);
        self
    }

    /// Runs the farm on a multi-cube HMC mesh: clusters are block-
    /// partitioned over the cubes, jobs carry a home cube, and remote
    /// shards pay serial-link bandwidth and hop latency.
    #[must_use]
    pub fn with_hmc_mesh(mut self, mesh: MeshConfig) -> Self {
        self.memory = MemoryModel::HmcMesh(mesh);
        self
    }

    /// Disables data-affine placement (mesh farms only): clusters are
    /// picked purely by load, so shards land remote whenever the home
    /// cube's ports happen to be busier.
    #[must_use]
    pub fn without_affinity(mut self) -> Self {
        self.affinity = false;
        self
    }

    /// Arms a deterministic chaos schedule (continuous-mode farms
    /// only; the batch oracle stays fault-free).
    #[must_use]
    pub fn with_faults(mut self, faults: ntx_sim::FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the worker-pool width for continuous farms (`0` = resolve
    /// from the `NTX_WORKER_THREADS` env variable, `1` = serial).
    #[must_use]
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads;
        self
    }
}

/// Result of one job: the assembled output plus the measurement window.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Id the queue assigned at submission.
    pub job_id: u64,
    /// Submission label.
    pub label: String,
    /// The job's output, assembled from all cluster shards exactly as
    /// a single cluster would have produced it. Empty for analytical
    /// estimates, which produce no data.
    pub output: Vec<f32>,
    /// Counters of this job's window: per-cluster deltas of the
    /// clusters its shards ran on, makespan of the slowest shard.
    pub report: ScaleOutReport,
    /// Virtual farm cycle at which the job's first shard started.
    pub start_cycle: u64,
    /// Virtual farm cycle at which the job's last shard retired
    /// (`finish_cycle - start_cycle` includes any wait for a busy
    /// cluster, unlike `report.makespan_cycles`).
    pub finish_cycle: u64,
    /// The analytical answer, when the job ran on the estimate backend,
    /// or the (calibrated) admission estimate for native jobs.
    pub estimate: Option<JobEstimate>,
    /// Which backend produced this result.
    pub backend: BackendKind,
}

/// Result of draining a whole queue.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-job results in submission order.
    pub results: Vec<JobResult>,
    /// The batch window: all simulated shard deltas, and the makespan
    /// under the configured accounting (overlapped when pipelined,
    /// back-to-back when barriered).
    pub report: ScaleOutReport,
}

/// The multi-cluster scheduler/executor.
#[derive(Debug)]
pub struct ScaleOutExecutor {
    config: ScaleOutConfig,
    sim: SimulatorBackend,
    model: AnalyticalBackend,
    native_fast: NativeHost,
    native_exact: NativeHost,
}

impl ScaleOutExecutor {
    /// Builds `config.clusters` independent clusters plus the
    /// analytical model and the native host backends of the same
    /// system.
    ///
    /// # Panics
    ///
    /// Panics when `config.clusters` is zero.
    #[must_use]
    pub fn new(config: ScaleOutConfig) -> Self {
        assert!(config.clusters > 0, "need at least one cluster");
        Self {
            config,
            sim: SimulatorBackend::new(config),
            model: AnalyticalBackend::new(&config),
            native_fast: NativeHost::fast(&config),
            native_exact: NativeHost::exact(&config),
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.config.clusters
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &ScaleOutConfig {
        &self.config
    }

    /// Read-only access to cluster `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn cluster(&self, index: usize) -> &Cluster {
        self.sim.cluster(index)
    }

    /// The backend serving `kind`.
    fn backend(&mut self, kind: BackendKind) -> &mut dyn Backend {
        match kind {
            BackendKind::Simulate => &mut self.sim,
            BackendKind::Estimate => &mut self.model,
            BackendKind::NativeFast => &mut self.native_fast,
            BackendKind::NativeExact => &mut self.native_exact,
        }
    }

    /// Shards `job` across **all** clusters (the strong-scaling path;
    /// the space-sharing heuristic only applies to queued batches),
    /// runs it to completion, and assembles the output.
    ///
    /// # Errors
    ///
    /// Propagates tiler errors; the clusters are left idle (but with
    /// clobbered memories) on failure.
    pub fn run_job(&mut self, job: &Job) -> Result<JobResult, SchedError> {
        let plans = self.sim.admit_full_width(job)?;
        let meta = JobMeta {
            id: job.id,
            label: job.label.clone(),
            output_len: job.output_len(),
            class: job.kind.class(),
            home_cube: job.opts.home_cube,
        };
        Ok(self.sim.run_single(meta, plans))
    }

    /// Drains the queue. Every job is admitted (and so shape- and
    /// capacity-checked) up front, so a bad submission fails the whole
    /// batch before any simulation time is spent and with the queue
    /// intact; errors name the offending job. Jobs whose options
    /// select the analytical backend are answered from the model; the
    /// rest run on the pipelined farm (or the barriered reference,
    /// per the configuration). Results come back in submission order.
    ///
    /// # Errors
    ///
    /// [`SchedError::Job`] wrapping the first admission failure.
    pub fn run_queue(&mut self, queue: &mut JobQueue) -> Result<BatchResult, SchedError> {
        let mut work = Vec::with_capacity(queue.len());
        for job in queue.iter() {
            let admitted =
                self.backend(job.opts.backend)
                    .admit(job)
                    .map_err(|e| SchedError::Job {
                        id: job.id,
                        label: job.label.clone(),
                        source: Box::new(e),
                    })?;
            work.push(admitted);
        }
        // Split the admitted queue into one lane per backend,
        // remembering each job's submission slot.
        const LANES: [BackendKind; 4] = [
            BackendKind::Simulate,
            BackendKind::Estimate,
            BackendKind::NativeFast,
            BackendKind::NativeExact,
        ];
        let lane = |kind: BackendKind| {
            LANES
                .iter()
                .position(|&k| k == kind)
                .expect("every backend kind has a lane")
        };
        let mut batches: [Vec<AdmittedJob>; 4] = Default::default();
        let mut slots: [Vec<usize>; 4] = Default::default();
        let mut total = 0usize;
        for (slot, admitted) in work.into_iter().enumerate() {
            let job = queue.pop().expect("one queued job per admission");
            let l = lane(job.opts.backend);
            slots[l].push(slot);
            batches[l].push(AdmittedJob {
                job,
                work: admitted,
            });
            total += 1;
        }
        // Run each lane's batch and stitch results back into
        // submission order. The batch window is the simulated one —
        // estimates and native jobs spend no simulator time.
        let mut results: Vec<Option<JobResult>> = (0..total).map(|_| None).collect();
        let mut window = None;
        for (l, &kind) in LANES.iter().enumerate() {
            let batch = std::mem::take(&mut batches[l]);
            let lane_result = self.backend(kind).run_batch(batch);
            for (&slot, r) in slots[l].iter().zip(lane_result.results) {
                results[slot] = Some(r);
            }
            if kind == BackendKind::Simulate {
                window = Some(lane_result.report);
            }
        }
        Ok(BatchResult {
            results: results
                .into_iter()
                .map(|r| r.expect("every slot filled"))
                .collect(),
            report: window.expect("simulator lane always runs"),
        })
    }
}

/// Convenience entry point: runs one job on an `n`-cluster system and
/// returns its result.
///
/// # Errors
///
/// Propagates [`SchedError`] from planning.
pub fn run_sharded(job: &Job, clusters: usize) -> Result<JobResult, SchedError> {
    ScaleOutExecutor::new(ScaleOutConfig::with_clusters(clusters)).run_job(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use crate::job::RawJob;
    use ntx_isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect};
    use ntx_kernels::blas::GemmKernel;
    use ntx_kernels::conv::Conv2dKernel;
    use ntx_kernels::reference;

    fn data(n: usize, mut seed: u32) -> Vec<f32> {
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 17;
                seed ^= seed << 5;
                ((seed % 64) as f32 - 32.0) / 16.0
            })
            .collect()
    }

    fn job(kind: JobKind) -> Job {
        Job::new(0, "test", kind)
    }

    #[test]
    fn axpy_sharded_matches_reference_and_single() {
        let n = 3000usize;
        let x = data(n, 7);
        let y = data(n, 11);
        let kind = JobKind::Axpy {
            a: 1.5,
            x: x.clone(),
            y: y.clone(),
        };
        let single = run_sharded(&job(kind.clone()), 1).unwrap();
        let wide = run_sharded(&job(kind), 4).unwrap();
        let mut expect = y;
        reference::axpy(1.5, &x, &mut expect);
        assert_eq!(single.output, expect);
        assert_eq!(wide.output, expect);
        assert!(wide.report.makespan_cycles < single.report.makespan_cycles);
    }

    #[test]
    fn gemm_sharded_matches_reference_and_single() {
        let (m, k, n) = (24u32, 12u32, 9u32);
        let a = data((m * k) as usize, 3);
        let b = data((k * n) as usize, 5);
        let kind = JobKind::Gemm {
            dims: GemmKernel { m, k, n },
            a: a.clone(),
            b: b.clone(),
        };
        let single = run_sharded(&job(kind.clone()), 1).unwrap();
        let wide = run_sharded(&job(kind), 3).unwrap();
        let expect = reference::gemm(&a, &b, m as usize, k as usize, n as usize);
        assert_eq!(single.output, expect);
        assert_eq!(wide.output, expect);
    }

    #[test]
    fn conv_sharded_matches_reference_and_single() {
        let kernel = Conv2dKernel {
            height: 34,
            width: 21,
            k: 3,
            filters: 2,
        };
        let image = data((kernel.height * kernel.width) as usize, 13);
        let weights = data((kernel.k * kernel.k * kernel.filters) as usize, 17);
        let kind = JobKind::Conv2d {
            kernel,
            image: image.clone(),
            weights: weights.clone(),
        };
        let single = run_sharded(&job(kind.clone()), 1).unwrap();
        let wide = run_sharded(&job(kind), 4).unwrap();
        let (oh, ow) = (kernel.out_height() as usize, kernel.out_width() as usize);
        for f in 0..kernel.filters as usize {
            let expect = reference::conv2d(
                &image,
                kernel.height as usize,
                kernel.width as usize,
                &weights[f * 9..(f + 1) * 9],
                3,
            );
            assert_eq!(&single.output[f * oh * ow..(f + 1) * oh * ow], &expect[..]);
            assert_eq!(&wide.output[f * oh * ow..(f + 1) * oh * ow], &expect[..]);
        }
        assert!(wide.report.makespan_cycles < single.report.makespan_cycles);
    }

    #[test]
    fn stencil_sharded_matches_reference_and_single() {
        let (h, w) = (40u32, 23u32);
        let grid = data((h * w) as usize, 29);
        let kind = JobKind::Stencil2d {
            height: h,
            width: w,
            grid: grid.clone(),
        };
        let single = run_sharded(&job(kind.clone()), 1).unwrap();
        let wide = run_sharded(&job(kind), 4).unwrap();
        let expect = reference::laplace2d(&grid, h as usize, w as usize);
        for (i, (g, e)) in single.output.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() <= 1e-3 * e.abs().max(1.0),
                "element {i}: {g} vs {e}"
            );
        }
        // Sharding must not change a single bit.
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&single.output), bits(&wide.output));
        assert!(wide.report.makespan_cycles < single.report.makespan_cycles);
    }

    #[test]
    fn raw_job_runs_on_one_cluster() {
        let cfg = NtxConfig::builder()
            .command(Command::Mac {
                operand: OperandSelect::Memory,
            })
            .loops(LoopNest::vector(4))
            .agu(0, AguConfig::stream(0x000, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let kind = JobKind::Raw(RawJob {
            config: cfg,
            tcdm: vec![
                (0x000, vec![1.0, 2.0, 3.0, 4.0]),
                (0x100, vec![4.0, 3.0, 2.0, 1.0]),
            ],
            result_addr: 0x200,
            result_len: 1,
        });
        let r = run_sharded(&job(kind), 4).unwrap();
        assert_eq!(r.output, vec![20.0]);
        // Exactly one cluster did work.
        let active = r.report.per_cluster.iter().filter(|p| p.flops > 0).count();
        assert_eq!(active, 1);
    }

    fn two_job_queue() -> JobQueue {
        let mut q = JobQueue::new();
        q.job("axpy").axpy(2.0, data(500, 1), data(500, 2)).submit();
        q.job("gemm")
            .gemm(GemmKernel { m: 8, k: 8, n: 8 }, data(64, 3), data(64, 4))
            .submit();
        q
    }

    #[test]
    fn queue_runs_jobs_in_order_and_pipelining_beats_the_barrier() {
        let mut barriered = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(2).barriered());
        let base = barriered.run_queue(&mut two_job_queue()).unwrap();
        assert_eq!(base.results.len(), 2);
        assert_eq!(base.results[0].label, "axpy");
        assert_eq!(base.results[1].label, "gemm");
        // Barriered accounting: jobs run back to back.
        assert_eq!(
            base.report.makespan_cycles,
            base.results[0].report.makespan_cycles + base.results[1].report.makespan_cycles
        );
        assert!(base.report.total_flops() > 0);
        assert!(base.report.dma_occupancy() > 0.0);

        // The pipelined farm space-shares the two small jobs across the
        // two clusters: same per-job windows, overlapped makespan.
        let mut pipelined = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(2));
        let batch = pipelined.run_queue(&mut two_job_queue()).unwrap();
        for (p, b) in batch.results.iter().zip(&base.results) {
            assert_eq!(p.output, b.output);
            assert_eq!(p.report.makespan_cycles, b.report.makespan_cycles);
            assert_eq!(p.report.per_cluster, b.report.per_cluster);
        }
        assert!(batch.report.makespan_cycles < base.report.makespan_cycles);
        assert_eq!(
            batch.report.makespan_cycles,
            batch
                .results
                .iter()
                .map(|r| r.report.makespan_cycles)
                .max()
                .unwrap()
        );
    }

    #[test]
    fn estimate_backend_answers_without_simulating() {
        let mut exec = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(2));
        let mut q = JobQueue::new();
        q.job("axpy-estimate")
            .axpy(2.0, data(4096, 5), data(4096, 6))
            .estimate()
            .submit();
        q.job("axpy-simulated")
            .axpy(2.0, data(256, 7), data(256, 8))
            .submit();
        let batch = exec.run_queue(&mut q).unwrap();
        let est = &batch.results[0];
        assert!(est.output.is_empty());
        let e = est.estimate.expect("analytical job carries its estimate");
        assert!(e.cycles > 0 && !e.compute_bound);
        assert_eq!(est.report.makespan_cycles, e.cycles);
        // The simulated job produced data; the estimate spent no
        // simulator cycles anywhere (only job 2's shard advanced a
        // cluster, and only one cluster was touched).
        let sim = &batch.results[1];
        assert_eq!(sim.output.len(), 256);
        assert!(sim.estimate.is_none());
        let advanced = (0..exec.num_clusters())
            .filter(|&c| exec.cluster(c).cycle() > 0)
            .count();
        assert_eq!(advanced, 1);
    }

    #[test]
    fn bad_job_fails_batch_upfront_and_names_the_job() {
        let mut exec = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(2));
        let mut q = JobQueue::new();
        q.job("good").axpy(1.0, data(64, 1), data(64, 2)).submit();
        let bad_id = q
            .job("mismatched")
            .axpy(1.0, data(64, 3), data(32, 4))
            .submit();
        let err = exec.run_queue(&mut q).unwrap_err();
        match err {
            SchedError::Job { id, label, source } => {
                assert_eq!(id, bad_id);
                assert_eq!(label, "mismatched");
                assert!(matches!(*source, SchedError::Shape(_)));
            }
            other => panic!("expected SchedError::Job, got {other:?}"),
        }
        // Pre-validation failed before any job ran: the queue is intact.
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn raw_job_window_outside_tcdm_rejected() {
        // TCDM addresses wrap at capacity, so an out-of-range result
        // window must be rejected at planning time, not read aliased.
        let cfg = NtxConfig::builder()
            .command(Command::Mac {
                operand: OperandSelect::Memory,
            })
            .loops(LoopNest::vector(2))
            .agu(0, AguConfig::stream(0x000, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let kind = JobKind::Raw(RawJob {
            config: cfg,
            tcdm: vec![(0x000, vec![1.0, 2.0])],
            result_addr: 0xfff0,
            result_len: 8,
        });
        // 32 B requested at 0xfff0 with 16 B left: a typed error that
        // names the sizes, not a stringly capacity failure.
        match run_sharded(&job(kind), 1) {
            Err(SchedError::PlanTooLarge {
                what,
                requested,
                available,
                suggested_passes,
            }) => {
                assert_eq!(what, "raw job result window");
                assert_eq!(requested, 32);
                assert_eq!(available, 16);
                assert_eq!(suggested_passes, 2);
            }
            other => panic!("expected PlanTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_axpy_shard_rejected_not_corrupted() {
        // A shard whose x operand would overrun the 16 MB region pitch
        // must be a Capacity error, not silent aliasing.
        let n = 5_000_000usize;
        let kind = JobKind::Axpy {
            a: 1.0,
            x: vec![0.0; n],
            y: vec![0.0; n],
        };
        assert!(matches!(
            run_sharded(&job(kind), 1),
            Err(SchedError::Capacity(_))
        ));
    }

    #[test]
    fn oversized_gemm_shard_streams_in_split_tiles() {
        // 1 cluster: A + padded B + C need ~110 kB, over the 64 kB
        // TCDM — the shard streams as M/N output tiles instead of
        // being rejected, and the result still matches exactly (the
        // data is dyadic and small, so both sums are exact).
        let (a, b) = (data(96 * 96, 1), data(96 * 96, 2));
        let kind = JobKind::Gemm {
            dims: GemmKernel {
                m: 96,
                k: 96,
                n: 96,
            },
            a: a.clone(),
            b: b.clone(),
        };
        let r = run_sharded(&job(kind), 1).unwrap();
        let expect = reference::gemm(&a, &b, 96, 96, 96);
        assert_eq!(r.output, expect);
    }

    #[test]
    fn deep_gemm_splits_k_and_matches_sharded_run() {
        // k = 6000 exceeds even a resident 8-row band of A, forcing
        // split-K accumulation passes; sharding across clusters must
        // not change a bit either.
        let (m, k, n) = (8u32, 6000u32, 4u32);
        let (a, b) = (data((m * k) as usize, 3), data((k * n) as usize, 4));
        let kind = JobKind::Gemm {
            dims: GemmKernel { m, k, n },
            a: a.clone(),
            b: b.clone(),
        };
        let single = run_sharded(&job(kind.clone()), 1).unwrap();
        let wide = run_sharded(&job(kind), 2).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&single.output), bits(&wide.output));
        // The wide accumulator rounds once at the very end, so even a
        // 6000-term sum stays close to the f32 reference.
        let expect = reference::gemm(&a, &b, m as usize, k as usize, n as usize);
        for (g, e) in single.output.iter().zip(&expect) {
            assert!((g - e).abs() <= 1e-2 * e.abs().max(1.0), "{g} vs {e}");
        }
    }
}
