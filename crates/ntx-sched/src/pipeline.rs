//! Per-cluster pipeline execution.
//!
//! The double-buffered DMA state machine lives next to the tile
//! builders in [`ntx_kernels::schedule`] so the blocking `run_tiles`
//! wrapper and this crate's multi-cluster executor share one copy of
//! the §II-E schedule (watermark rule, prefetch ordering, ping-pong
//! safety). The executor drives one pipeline per cluster step by step,
//! which lets N independent cluster simulations interleave
//! round-robin on one thread (deterministically) or drain on one OS
//! thread each behind the `parallel` feature, with bit-identical
//! results either way.

pub use ntx_kernels::schedule::TilePipeline;

#[cfg(test)]
mod tests {
    use super::*;
    use ntx_kernels::reference;
    use ntx_kernels::schedule::{axpy_tiles, run_tiles};
    use ntx_sim::{Cluster, ClusterConfig};

    #[test]
    fn empty_pipeline_is_done_immediately() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let mut p = TilePipeline::new(&mut cluster, Vec::new());
        assert!(!p.is_busy());
        assert!(!p.step(&mut cluster));
    }

    #[test]
    fn matches_blocking_run_tiles() {
        let n = 1500u32;
        let a = 2.5f32;
        let x: Vec<f32> = (0..n).map(|i| (i as f32) * 0.01 - 3.0).collect();
        let y: Vec<f32> = (0..n).map(|i| 1.0 - (i as f32) * 0.02).collect();

        // Blocking schedule.
        let mut c1 = Cluster::new(ClusterConfig::default());
        c1.ext_mem().write_f32_slice(0, &x);
        c1.ext_mem().write_f32_slice(0x10_0000, &y);
        let tiles = axpy_tiles(&c1, n, a, 0, 0x10_0000, 256);
        let perf1 = run_tiles(&mut c1, &tiles);
        let out1 = c1.ext_mem().read_f32_slice(0x10_0000, n as usize);

        // Stepped state machine.
        let mut c2 = Cluster::new(ClusterConfig::default());
        c2.ext_mem().write_f32_slice(0, &x);
        c2.ext_mem().write_f32_slice(0x10_0000, &y);
        let before = c2.perf();
        let mut p = TilePipeline::new(&mut c2, tiles);
        p.run_to_completion(&mut c2);
        let perf2 = c2.perf().since(&before);
        let out2 = c2.ext_mem().read_f32_slice(0x10_0000, n as usize);

        let mut expect = y;
        reference::axpy(a, &x, &mut expect);
        assert_eq!(out1, expect);
        assert_eq!(out2, expect);
        assert_eq!(perf1.flops, perf2.flops);
        assert_eq!(perf1.dma_bytes, perf2.dma_bytes);
        assert_eq!(perf1.cycles, perf2.cycles);
    }
}
