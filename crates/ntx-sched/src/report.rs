//! Aggregate measurement records of scale-out runs and serving
//! sessions.

use ntx_model::power::{EnergyModel, ScaleOutEnergy};
use ntx_sim::PerfSnapshot;
use std::time::Duration;

/// Counters of one scale-out window: per-cluster deltas plus the
/// wall-clock (makespan) of the slowest cluster.
#[derive(Debug, Clone)]
pub struct ScaleOutReport {
    /// Clusters in the system (idle ones included).
    pub clusters: usize,
    /// NTX clock, Hz.
    pub freq_hz: f64,
    /// Cycles of the slowest cluster over the window.
    pub makespan_cycles: u64,
    /// Per-cluster counter deltas (index = cluster id).
    pub per_cluster: Vec<PerfSnapshot>,
}

impl ScaleOutReport {
    /// An empty report for `clusters` clusters at `freq_hz`.
    #[must_use]
    pub fn new(clusters: usize, freq_hz: f64) -> Self {
        Self {
            clusters,
            freq_hz,
            makespan_cycles: 0,
            per_cluster: vec![PerfSnapshot::default(); clusters],
        }
    }

    /// Folds another window (e.g. the next job of a barriered batch)
    /// into this one: per-cluster counters add (through
    /// [`PerfSnapshot::accumulate`]), makespans add — the accounting of
    /// an executor that runs jobs back to back. The pipelined farm
    /// computes its own overlapped makespan instead of merging.
    pub fn merge(&mut self, other: &ScaleOutReport) {
        assert_eq!(self.clusters, other.clusters, "cluster count mismatch");
        self.makespan_cycles += other.makespan_cycles;
        for (t, d) in self.per_cluster.iter_mut().zip(&other.per_cluster) {
            t.accumulate(d);
        }
    }

    /// Total flops retired by all clusters.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.per_cluster.iter().map(|p| p.flops).sum()
    }

    /// Aggregate achieved performance over the makespan, flop/s.
    #[must_use]
    pub fn flops_per_second(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.total_flops() as f64 / self.makespan_cycles as f64 * self.freq_hz
        }
    }

    /// Mean DMA occupancy: fraction of cluster-cycles in which a DMA
    /// moved data (the copy/compute-overlap figure of §II-E).
    #[must_use]
    pub fn dma_occupancy(&self) -> f64 {
        let total = self.makespan_cycles.saturating_mul(self.clusters as u64);
        if total == 0 {
            0.0
        } else {
            self.per_cluster
                .iter()
                .map(|p| p.dma_busy_cycles)
                .sum::<u64>() as f64
                / total as f64
        }
    }

    /// Engine-cycle fraction lost to TCDM banking stalls, over all
    /// clusters.
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        let active: u64 = self.per_cluster.iter().map(|p| p.ntx_active_cycles).sum();
        let stall: u64 = self.per_cluster.iter().map(|p| p.ntx_stall_cycles).sum();
        if active + stall == 0 {
            0.0
        } else {
            stall as f64 / (active + stall) as f64
        }
    }

    /// Banking-conflict probability over all clusters.
    #[must_use]
    pub fn conflict_probability(&self) -> f64 {
        let req: u64 = self.per_cluster.iter().map(|p| p.tcdm_requests).sum();
        let conf: u64 = self.per_cluster.iter().map(|p| p.tcdm_conflicts).sum();
        if req == 0 {
            0.0
        } else {
            conf as f64 / req as f64
        }
    }

    /// Energy/power roll-up through the calibrated model.
    #[must_use]
    pub fn energy(&self, model: &EnergyModel) -> ScaleOutEnergy {
        model.scale_out(&self.per_cluster, self.makespan_cycles, self.freq_hz)
    }

    /// Throughput ratio versus a baseline window of the same total
    /// work (strong-scaling speedup).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &ScaleOutReport) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            baseline.makespan_cycles as f64 / self.makespan_cycles as f64
        }
    }

    /// Strong-scaling efficiency versus a baseline: speedup divided by
    /// the cluster-count ratio (1.0 = perfectly linear).
    #[must_use]
    pub fn scaling_efficiency_vs(&self, baseline: &ScaleOutReport) -> f64 {
        let ratio = self.clusters as f64 / baseline.clusters.max(1) as f64;
        self.speedup_vs(baseline) / ratio
    }
}

/// Aggregate serving statistics of one [`Server`](crate::Server) run,
/// returned by [`Server::shutdown`](crate::Server::shutdown).
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Clusters in the farm.
    pub clusters: usize,
    /// Jobs completed (including failures).
    pub jobs: u64,
    /// Jobs executed bit-accurately on the farm.
    pub simulated: u64,
    /// Jobs answered by the analytical backend.
    pub estimated: u64,
    /// Jobs executed natively on the host CPU (fast or exact mode).
    pub native: u64,
    /// Jobs rejected at admission.
    pub failed: u64,
    /// Scheduling rounds executed: waves in wave mode, non-empty
    /// admission groups in continuous mode.
    pub waves: u64,
    /// Jobs whose wall-clock deadline was missed.
    pub deadline_misses: u64,
    /// Wall-clock seconds from server start to shutdown.
    pub wall_seconds: f64,
    /// Sum of per-job wall-clock latencies.
    pub total_latency: Duration,
    /// Largest per-job wall-clock latency.
    pub max_latency: Duration,
    /// Simulated makespan cycles of the run: summed wave windows in
    /// wave mode, the latest cluster clock in continuous mode.
    pub makespan_cycles: u64,
    /// Cluster-cycles actually spent executing shards.
    pub busy_cluster_cycles: u64,
    /// Cycles DMAs sat on pending beats while the shared-memory
    /// arbiter granted zero slots, summed over all simulated shards
    /// (zero under ideal private memories).
    pub ext_wait_cycles: u64,
    /// External-memory bytes that crossed a serial link to a remote
    /// mesh cube (zero off-mesh and under perfect data affinity).
    pub ext_remote_bytes: u64,
    /// Cycles attributable to remote-cube access: hop latencies plus
    /// the zero-grant waits of remote shards.
    pub ext_remote_wait_cycles: u64,
    /// Jobs rejected at admission by deadline-aware shedding (the
    /// placement estimate proved their virtual-cycle deadline
    /// unmeetable). Also counted in `failed`.
    pub shed_jobs: u64,
    /// Submissions rejected client-side because the bounded admission
    /// queue was full ([`SchedError::Backpressure`](crate::SchedError));
    /// these never reached the worker and are *not* counted in `jobs`.
    pub backpressure_rejected: u64,
    /// Fault events the chaos plan injected into the farm (cluster
    /// kills and transient stalls that actually fired).
    pub faults_injected: u64,
    /// Shards re-admitted onto surviving clusters after their cluster
    /// was killed.
    pub shards_retried: u64,
    /// Dead cycles injected by transient cluster stalls, summed over
    /// all clusters.
    pub fault_stall_cycles: u64,
    /// Worker threads the farm's cluster pool ran on (1 = serial
    /// stepping, no pool).
    pub worker_threads: usize,
    /// Speculative shard results merged from pool workers (0 when
    /// serial).
    pub pool_shards_merged: u64,
    /// Speculated shards invalidated and re-placed because their
    /// cluster was killed (0 when serial).
    pub pool_shards_reclaimed: u64,
}

impl ServingReport {
    /// An empty report for a `clusters`-wide farm.
    pub(crate) fn new(clusters: usize) -> Self {
        Self {
            clusters,
            jobs: 0,
            simulated: 0,
            estimated: 0,
            native: 0,
            failed: 0,
            waves: 0,
            deadline_misses: 0,
            wall_seconds: 0.0,
            total_latency: Duration::ZERO,
            max_latency: Duration::ZERO,
            makespan_cycles: 0,
            busy_cluster_cycles: 0,
            ext_wait_cycles: 0,
            ext_remote_bytes: 0,
            ext_remote_wait_cycles: 0,
            shed_jobs: 0,
            backpressure_rejected: 0,
            faults_injected: 0,
            shards_retried: 0,
            fault_stall_cycles: 0,
            worker_threads: 1,
            pool_shards_merged: 0,
            pool_shards_reclaimed: 0,
        }
    }

    /// Completed jobs per wall-clock second. A run too short for the
    /// clock to advance (or one that served nothing) reports 0 rather
    /// than dividing by zero.
    #[must_use]
    pub fn jobs_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 || self.jobs == 0 {
            0.0
        } else {
            self.jobs as f64 / self.wall_seconds
        }
    }

    /// Mean per-job wall-clock latency ([`Duration::ZERO`] when no
    /// jobs were served).
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        if self.jobs == 0 {
            Duration::ZERO
        } else {
            self.total_latency / u32::try_from(self.jobs).unwrap_or(u32::MAX)
        }
    }

    /// Fraction of cluster-cycles inside the serving makespan that
    /// executed shard work (1.0 = every cluster busy the whole time;
    /// 0.0 for a zero-duration run — the guard against an empty or
    /// estimate-only session).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let total = self.makespan_cycles.saturating_mul(self.clusters as u64);
        if total == 0 {
            0.0
        } else {
            self.busy_cluster_cycles as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(flops: u64, dma_busy: u64) -> PerfSnapshot {
        PerfSnapshot {
            flops,
            dma_busy_cycles: dma_busy,
            ..Default::default()
        }
    }

    #[test]
    fn aggregates_across_clusters() {
        let mut r = ScaleOutReport::new(2, 1.25e9);
        r.makespan_cycles = 1000;
        r.per_cluster = vec![snap(8000, 500), snap(8000, 500)];
        assert_eq!(r.total_flops(), 16_000);
        assert!((r.flops_per_second() - 16.0 * 1.25e9).abs() < 1.0);
        assert!((r.dma_occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_efficiency() {
        let mut base = ScaleOutReport::new(1, 1.25e9);
        base.makespan_cycles = 8000;
        let mut wide = ScaleOutReport::new(4, 1.25e9);
        wide.makespan_cycles = 2500;
        assert!((wide.speedup_vs(&base) - 3.2).abs() < 1e-12);
        assert!((wide.scaling_efficiency_vs(&base) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn serving_rates_guard_zero_duration_runs() {
        // A server shut down before the wall clock advanced (or one
        // that only served estimates, which spend no farm cycles) must
        // report clean zeros, not NaN or a divide panic.
        let r = ServingReport::new(4);
        assert_eq!(r.jobs_per_second(), 0.0);
        assert_eq!(r.occupancy(), 0.0);
        assert_eq!(r.mean_latency(), Duration::ZERO);

        // Jobs served but zero wall time (sub-resolution run).
        let mut r = ServingReport::new(4);
        r.jobs = 3;
        r.wall_seconds = 0.0;
        assert_eq!(r.jobs_per_second(), 0.0);
        assert!(r.jobs_per_second().is_finite());

        // Estimate-only session: jobs counted, no makespan cycles.
        r.makespan_cycles = 0;
        r.busy_cluster_cycles = 0;
        assert_eq!(r.occupancy(), 0.0);
        assert!(r.occupancy().is_finite());

        // And a normal run still computes real rates.
        r.wall_seconds = 2.0;
        r.makespan_cycles = 100;
        r.busy_cluster_cycles = 200;
        assert!((r.jobs_per_second() - 1.5).abs() < 1e-12);
        assert!((r.occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_windows() {
        let mut a = ScaleOutReport::new(1, 1.25e9);
        a.makespan_cycles = 10;
        a.per_cluster = vec![snap(100, 1)];
        let mut b = ScaleOutReport::new(1, 1.25e9);
        b.makespan_cycles = 5;
        b.per_cluster = vec![snap(50, 2)];
        a.merge(&b);
        assert_eq!(a.makespan_cycles, 15);
        assert_eq!(a.per_cluster[0].flops, 150);
        assert_eq!(a.per_cluster[0].dma_busy_cycles, 3);
    }
}
