//! Jobs and the job queue.
//!
//! A [`Job`] is one unit of work the scale-out runtime shards across
//! clusters: a kernel descriptor from `ntx-kernels` (GEMM, 2-D
//! convolution, AXPY) bundled with its input data, or a raw
//! [`NtxConfig`] command for workloads the kernel library does not
//! cover. Jobs are submitted through a [`JobQueue`] and executed in
//! FIFO order by the [`ScaleOutExecutor`](crate::ScaleOutExecutor).

use ntx_isa::NtxConfig;
use ntx_kernels::blas::GemmKernel;
use ntx_kernels::conv::Conv2dKernel;
use std::collections::VecDeque;

use crate::SchedError;

/// A raw NTX command job: TCDM preloads, one configuration, one result
/// window. Raw jobs are not tileable — the scheduler places each on one
/// cluster (round-robin by job id) and lets tileable jobs absorb the
/// remaining capacity.
#[derive(Debug, Clone)]
pub struct RawJob {
    /// The command to offload (engine 0 of the chosen cluster).
    pub config: NtxConfig,
    /// `(byte address, values)` pairs preloaded into the TCDM.
    pub tcdm: Vec<(u32, Vec<f32>)>,
    /// TCDM byte address of the result window.
    pub result_addr: u32,
    /// Result length in `f32` elements.
    pub result_len: u32,
}

/// What a job computes.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// `y = a*x + y`, sharded over contiguous element ranges.
    Axpy {
        /// The scalar `a`.
        a: f32,
        /// Input vector `x`.
        x: Vec<f32>,
        /// Input/output vector `y`.
        y: Vec<f32>,
    },
    /// `C = A*B`, sharded over rows of `A`/`C`.
    Gemm {
        /// Matrix dimensions.
        dims: GemmKernel,
        /// Row-major `m x k` matrix.
        a: Vec<f32>,
        /// Row-major `k x n` matrix.
        b: Vec<f32>,
    },
    /// Multi-filter 2-D convolution, sharded over output-row bands
    /// (each cluster re-loads its `k-1` halo rows).
    Conv2d {
        /// Convolution geometry (including the filter count).
        kernel: Conv2dKernel,
        /// Row-major `height x width` image.
        image: Vec<f32>,
        /// Filter-major weights, `filters * k * k` values.
        weights: Vec<f32>,
    },
    /// A raw NTX command (see [`RawJob`]).
    Raw(RawJob),
}

/// One schedulable unit of work.
#[derive(Debug, Clone)]
pub struct Job {
    /// Queue-assigned identifier (stable across runs of the same
    /// submission order).
    pub id: u64,
    /// Human-readable label for reports.
    pub label: String,
    /// The work itself.
    pub kind: JobKind,
}

impl Job {
    /// Number of `f32` elements in this job's output.
    #[must_use]
    pub fn output_len(&self) -> usize {
        match &self.kind {
            JobKind::Axpy { y, .. } => y.len(),
            JobKind::Gemm { dims, .. } => (dims.m * dims.n) as usize,
            JobKind::Conv2d { kernel, .. } => {
                (kernel.out_height() * kernel.out_width() * kernel.filters) as usize
            }
            JobKind::Raw(raw) => raw.result_len as usize,
        }
    }

    /// Validates shape consistency between descriptor and data.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Shape`] on any mismatch or degenerate
    /// geometry.
    pub fn validate(&self) -> Result<(), SchedError> {
        let shape_err = |msg: String| Err(SchedError::Shape(msg));
        match &self.kind {
            JobKind::Axpy { x, y, .. } => {
                if x.len() != y.len() {
                    return shape_err(format!("axpy: |x| = {} but |y| = {}", x.len(), y.len()));
                }
                if x.is_empty() {
                    return shape_err("axpy: empty vectors".into());
                }
            }
            JobKind::Gemm { dims, a, b } => {
                if dims.m == 0 || dims.k == 0 || dims.n == 0 {
                    return shape_err(format!(
                        "gemm: degenerate dims {}x{}x{}",
                        dims.m, dims.k, dims.n
                    ));
                }
                if a.len() as u32 != dims.m * dims.k {
                    return shape_err(format!("gemm: |A| = {} != m*k", a.len()));
                }
                if b.len() as u32 != dims.k * dims.n {
                    return shape_err(format!("gemm: |B| = {} != k*n", b.len()));
                }
            }
            JobKind::Conv2d {
                kernel,
                image,
                weights,
            } => {
                if kernel.k == 0 || kernel.filters == 0 {
                    return shape_err("conv2d: degenerate kernel".into());
                }
                if kernel.height < kernel.k || kernel.width < kernel.k {
                    return shape_err(format!(
                        "conv2d: image {}x{} smaller than {}x{} kernel",
                        kernel.height, kernel.width, kernel.k, kernel.k
                    ));
                }
                if image.len() as u32 != kernel.height * kernel.width {
                    return shape_err(format!("conv2d: |image| = {} != h*w", image.len()));
                }
                if weights.len() as u32 != kernel.k * kernel.k * kernel.filters {
                    return shape_err(format!(
                        "conv2d: |weights| = {} != k*k*filters",
                        weights.len()
                    ));
                }
            }
            JobKind::Raw(raw) => {
                if raw.result_len == 0 {
                    return shape_err("raw: empty result window".into());
                }
            }
        }
        Ok(())
    }
}

/// FIFO queue of jobs with stable id assignment.
#[derive(Debug, Default)]
pub struct JobQueue {
    next_id: u64,
    jobs: VecDeque<Job>,
}

impl JobQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a job; returns its id.
    pub fn push(&mut self, label: impl Into<String>, kind: JobKind) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.push_back(Job {
            id,
            label: label.into(),
            kind,
        });
        id
    }

    /// Dequeues the oldest job.
    pub fn pop(&mut self) -> Option<Job> {
        self.jobs.pop_front()
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Read-only view of the queued jobs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_assigns_sequential_ids() {
        let mut q = JobQueue::new();
        let a = q.push(
            "a",
            JobKind::Axpy {
                a: 1.0,
                x: vec![1.0],
                y: vec![2.0],
            },
        );
        let b = q.push(
            "b",
            JobKind::Axpy {
                a: 2.0,
                x: vec![1.0],
                y: vec![2.0],
            },
        );
        assert_eq!((a, b), (0, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().label, "a");
        assert_eq!(q.pop().unwrap().label, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn validation_catches_mismatches() {
        let bad = Job {
            id: 0,
            label: "bad".into(),
            kind: JobKind::Axpy {
                a: 1.0,
                x: vec![1.0, 2.0],
                y: vec![1.0],
            },
        };
        assert!(bad.validate().is_err());
        let bad = Job {
            id: 0,
            label: "bad".into(),
            kind: JobKind::Gemm {
                dims: GemmKernel { m: 2, k: 2, n: 2 },
                a: vec![0.0; 3],
                b: vec![0.0; 4],
            },
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn output_lengths() {
        let conv = Job {
            id: 0,
            label: "c".into(),
            kind: JobKind::Conv2d {
                kernel: Conv2dKernel {
                    height: 6,
                    width: 5,
                    k: 3,
                    filters: 2,
                },
                image: vec![0.0; 30],
                weights: vec![0.0; 18],
            },
        };
        assert!(conv.validate().is_ok());
        assert_eq!(conv.output_len(), 4 * 3 * 2);
    }
}
