//! Jobs, per-job serving options, and the job queue.
//!
//! A [`Job`] is one unit of work the scale-out runtime shards across
//! clusters: a kernel descriptor from `ntx-kernels` (GEMM, 2-D
//! convolution, AXPY, 2-D Laplace stencil) bundled with its input
//! data, or a raw [`NtxConfig`] command for workloads the kernel
//! library does not cover. Each job carries [`JobOpts`] — which
//! [`Backend`](crate::Backend) executes it, its serving priority and
//! optional deadline — and is submitted through the fluent
//! [`JobBuilder`](crate::JobBuilder): into a [`JobQueue`] (executed
//! FIFO by [`ScaleOutExecutor`](crate::ScaleOutExecutor)) or into a
//! persistent [`Session`](crate::Session) on the always-on
//! [`Server`](crate::Server).

use ntx_isa::NtxConfig;
use ntx_kernels::blas::{AxpyKernel, GemmKernel};
use ntx_kernels::conv::Conv2dKernel;
use ntx_kernels::stencil::Laplace2dKernel;
use ntx_kernels::KernelCost;
use std::collections::VecDeque;
use std::time::Duration;

use crate::backend::BackendKind;
use crate::SchedError;

/// A raw NTX command job: TCDM preloads, one configuration, one result
/// window. Raw jobs are not tileable — the scheduler places each on one
/// cluster and lets tileable jobs absorb the remaining capacity.
#[derive(Debug, Clone)]
pub struct RawJob {
    /// The command to offload (engine 0 of the chosen cluster).
    pub config: NtxConfig,
    /// `(byte address, values)` pairs preloaded into the TCDM.
    pub tcdm: Vec<(u32, Vec<f32>)>,
    /// TCDM byte address of the result window.
    pub result_addr: u32,
    /// Result length in `f32` elements.
    pub result_len: u32,
}

/// What a job computes.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// `y = a*x + y`, sharded over contiguous element ranges.
    Axpy {
        /// The scalar `a`.
        a: f32,
        /// Input vector `x`.
        x: Vec<f32>,
        /// Input/output vector `y`.
        y: Vec<f32>,
    },
    /// `C = A*B`, sharded over rows of `A`/`C`.
    Gemm {
        /// Matrix dimensions.
        dims: GemmKernel,
        /// Row-major `m x k` matrix.
        a: Vec<f32>,
        /// Row-major `k x n` matrix.
        b: Vec<f32>,
    },
    /// Multi-filter 2-D convolution, sharded over output-row bands
    /// (each cluster re-loads its `k-1` halo rows).
    Conv2d {
        /// Convolution geometry (including the filter count).
        kernel: Conv2dKernel,
        /// Row-major `height x width` image.
        image: Vec<f32>,
        /// Filter-major weights, `filters * k * k` values.
        weights: Vec<f32>,
    },
    /// The 2-D discrete Laplace stencil (§III-B3 dimension
    /// decomposition: an x pass plus an accumulating y pass), sharded
    /// over output-row bands with a one-row halo — the conv-style
    /// halo-band decomposition applied to the stencil family.
    Stencil2d {
        /// Grid height (output has `height - 2` rows).
        height: u32,
        /// Grid width (output has `width - 2` columns).
        width: u32,
        /// Row-major `height x width` grid.
        grid: Vec<f32>,
    },
    /// A raw NTX command (see [`RawJob`]).
    Raw(RawJob),
}

/// The coarse family of a job — the key of the measured-duration
/// feedback table ([`DurationTable`](crate::DurationTable)). All jobs
/// of one class share a roofline-correction factor: the analytical
/// estimate under-predicts conv shards and GEMM shards by different
/// (but per-family stable) amounts, so the placement heuristic learns
/// one EWMA per class instead of one global fudge factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// `y = a*x + y` streaming jobs.
    Axpy,
    /// Dense matrix multiplies.
    Gemm,
    /// Multi-filter 2-D convolutions.
    Conv2d,
    /// 2-D Laplace stencils.
    Stencil2d,
    /// Raw NTX commands.
    Raw,
}

impl JobClass {
    /// Number of classes (the size of the duration table).
    pub const COUNT: usize = 5;

    /// Dense index of this class, in `0..COUNT`.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            JobClass::Axpy => 0,
            JobClass::Gemm => 1,
            JobClass::Conv2d => 2,
            JobClass::Stencil2d => 3,
            JobClass::Raw => 4,
        }
    }

    /// Human-readable class name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobClass::Axpy => "axpy",
            JobClass::Gemm => "gemm",
            JobClass::Conv2d => "conv2d",
            JobClass::Stencil2d => "stencil2d",
            JobClass::Raw => "raw",
        }
    }
}

impl JobKind {
    /// The duration-table class of this kind.
    #[must_use]
    pub fn class(&self) -> JobClass {
        match self {
            JobKind::Axpy { .. } => JobClass::Axpy,
            JobKind::Gemm { .. } => JobClass::Gemm,
            JobKind::Conv2d { .. } => JobClass::Conv2d,
            JobKind::Stencil2d { .. } => JobClass::Stencil2d,
            JobKind::Raw(_) => JobClass::Raw,
        }
    }
}

/// Per-job serving options: backend selection, priority, deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobOpts {
    /// Which backend executes the job (bit-accurate simulation by
    /// default; [`BackendKind::Estimate`] answers instantly from the
    /// analytical model).
    pub backend: BackendKind,
    /// Serving priority; higher runs earlier. The [`JobQueue`] itself
    /// stays FIFO — priorities order waves in the
    /// [`Server`](crate::Server) front-end.
    pub priority: u8,
    /// Optional wall-clock completion deadline, measured from
    /// submission; the server reports misses per job and in its
    /// [`ServingReport`](crate::ServingReport).
    pub deadline: Option<Duration>,
    /// The HMC-mesh cube holding this job's data (`None` → assigned
    /// round-robin by job id; out-of-range indices wrap). Ignored
    /// outside [`MemoryModel::HmcMesh`](ntx_mem::MemoryModel::HmcMesh)
    /// farms, where there is only one memory.
    pub home_cube: Option<u32>,
    /// Optional completion deadline in *virtual farm cycles*, measured
    /// from admission. Unlike the wall-clock `deadline` (reporting
    /// only), this one is enforced: continuous admission **sheds** the
    /// job with [`SchedError::DeadlineUnmeetable`](crate::SchedError)
    /// when the placement estimate already proves it unmeetable.
    pub deadline_cycles: Option<u64>,
}

impl JobOpts {
    /// Options selecting the analytical estimate backend.
    #[must_use]
    pub fn estimate() -> Self {
        Self {
            backend: BackendKind::Estimate,
            ..Self::default()
        }
    }

    /// Options selecting fast native host-CPU execution.
    #[must_use]
    pub fn native_fast() -> Self {
        Self {
            backend: BackendKind::NativeFast,
            ..Self::default()
        }
    }

    /// Options selecting bit-exact native host-CPU execution.
    #[must_use]
    pub fn native_exact() -> Self {
        Self {
            backend: BackendKind::NativeExact,
            ..Self::default()
        }
    }

    /// Sets the priority (builder style).
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Pins the job's data to a mesh cube (builder style).
    #[must_use]
    pub fn with_home_cube(mut self, cube: u32) -> Self {
        self.home_cube = Some(cube);
        self
    }

    /// Sets the enforced virtual-cycle deadline (builder style).
    #[must_use]
    pub fn with_deadline_cycles(mut self, cycles: u64) -> Self {
        self.deadline_cycles = Some(cycles);
        self
    }
}

/// One schedulable unit of work.
#[derive(Debug, Clone)]
pub struct Job {
    /// Queue-assigned identifier (stable across runs of the same
    /// submission order).
    pub id: u64,
    /// Human-readable label for reports.
    pub label: String,
    /// The work itself.
    pub kind: JobKind,
    /// Serving options (backend, priority, deadline).
    pub opts: JobOpts,
    /// Submission ids of predecessor jobs. Ordering-only edges: the
    /// continuous server admits this job the event its last
    /// predecessor's completion is delivered (whatever that
    /// completion's outcome), so a training step can be expressed as a
    /// DAG of layer jobs. Unknown ids park the job until the
    /// predecessor is submitted; predecessors that never complete fail
    /// it at shutdown with
    /// [`SchedError::DependencyDropped`](crate::SchedError). A FIFO
    /// [`JobQueue`] honors edges by construction when predecessors are
    /// enqueued first; wave admission ignores them.
    pub deps: Vec<u64>,
}

impl Job {
    /// A job with default options and no predecessors.
    #[must_use]
    pub fn new(id: u64, label: impl Into<String>, kind: JobKind) -> Self {
        Self {
            id,
            label: label.into(),
            kind,
            opts: JobOpts::default(),
            deps: Vec::new(),
        }
    }

    /// Replaces the predecessor set (builder style).
    #[must_use]
    pub fn with_deps(mut self, deps: Vec<u64>) -> Self {
        self.deps = deps;
        self
    }

    /// Number of `f32` elements in this job's output.
    #[must_use]
    pub fn output_len(&self) -> usize {
        match &self.kind {
            JobKind::Axpy { y, .. } => y.len(),
            JobKind::Gemm { dims, .. } => (dims.m * dims.n) as usize,
            JobKind::Conv2d { kernel, .. } => {
                (kernel.out_height() * kernel.out_width() * kernel.filters) as usize
            }
            JobKind::Stencil2d { height, width, .. } => ((height - 2) * (width - 2)) as usize,
            JobKind::Raw(raw) => raw.result_len as usize,
        }
    }

    /// Analytic cost of the whole job (flops plus compulsory external
    /// traffic), from the kernel library's cost models. This is what
    /// the analytical backend serves and what the placement heuristic
    /// sizes shards with; raw commands count their loop iterations as
    /// MACs with no external traffic (they run in the TCDM).
    #[must_use]
    pub fn cost(&self) -> KernelCost {
        match &self.kind {
            JobKind::Axpy { a, x, .. } => AxpyKernel {
                n: x.len() as u32,
                a: *a,
            }
            .cost(),
            JobKind::Gemm { dims, .. } => dims.cost(),
            JobKind::Conv2d { kernel, .. } => kernel.cost(),
            JobKind::Stencil2d { height, width, .. } => Laplace2dKernel {
                height: *height,
                width: *width,
            }
            .cost(),
            JobKind::Raw(raw) => KernelCost {
                flops: 2 * raw.config.loops.total_iterations(),
                min_ext_bytes: 0,
            },
        }
    }

    /// Validates shape consistency between descriptor and data.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Shape`] on any mismatch or degenerate
    /// geometry.
    pub fn validate(&self) -> Result<(), SchedError> {
        let shape_err = |msg: String| Err(SchedError::Shape(msg));
        // A self-edge can never be satisfied — it would park the job
        // forever waiting for its own completion.
        if self.deps.contains(&self.id) {
            return shape_err(format!("job {} depends on itself", self.id));
        }
        match &self.kind {
            JobKind::Axpy { x, y, .. } => {
                if x.len() != y.len() {
                    return shape_err(format!("axpy: |x| = {} but |y| = {}", x.len(), y.len()));
                }
                if x.is_empty() {
                    return shape_err("axpy: empty vectors".into());
                }
            }
            JobKind::Gemm { dims, a, b } => {
                if dims.m == 0 || dims.k == 0 || dims.n == 0 {
                    return shape_err(format!(
                        "gemm: degenerate dims {}x{}x{}",
                        dims.m, dims.k, dims.n
                    ));
                }
                if a.len() as u32 != dims.m * dims.k {
                    return shape_err(format!("gemm: |A| = {} != m*k", a.len()));
                }
                if b.len() as u32 != dims.k * dims.n {
                    return shape_err(format!("gemm: |B| = {} != k*n", b.len()));
                }
            }
            JobKind::Conv2d {
                kernel,
                image,
                weights,
            } => {
                if kernel.k == 0 || kernel.filters == 0 {
                    return shape_err("conv2d: degenerate kernel".into());
                }
                if kernel.height < kernel.k || kernel.width < kernel.k {
                    return shape_err(format!(
                        "conv2d: image {}x{} smaller than {}x{} kernel",
                        kernel.height, kernel.width, kernel.k, kernel.k
                    ));
                }
                if image.len() as u32 != kernel.height * kernel.width {
                    return shape_err(format!("conv2d: |image| = {} != h*w", image.len()));
                }
                if weights.len() as u32 != kernel.k * kernel.k * kernel.filters {
                    return shape_err(format!(
                        "conv2d: |weights| = {} != k*k*filters",
                        weights.len()
                    ));
                }
            }
            JobKind::Stencil2d {
                height,
                width,
                grid,
            } => {
                if *height < 3 || *width < 3 {
                    return shape_err(format!(
                        "stencil2d: {height}x{width} grid smaller than the 3x3 star"
                    ));
                }
                if grid.len() as u32 != height * width {
                    return shape_err(format!("stencil2d: |grid| = {} != h*w", grid.len()));
                }
            }
            JobKind::Raw(raw) => {
                if raw.result_len == 0 {
                    return shape_err("raw: empty result window".into());
                }
            }
        }
        Ok(())
    }
}

/// FIFO queue of jobs with stable id assignment. Backed by a
/// `VecDeque`, so both submission and the executor's pop are
/// allocation-free once the ring has grown to the working set.
#[derive(Debug, Default)]
pub struct JobQueue {
    next_id: u64,
    jobs: VecDeque<Job>,
}

impl JobQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a job with default options; returns its id.
    #[deprecated(
        since = "0.1.0",
        note = "use the fluent builder: `queue.job(label).kind(kind).submit()`"
    )]
    pub fn push(&mut self, label: impl Into<String>, kind: JobKind) -> u64 {
        self.enqueue(label.into(), kind, JobOpts::default(), Vec::new())
    }

    /// Enqueues a job with explicit serving options; returns its id.
    #[deprecated(
        since = "0.1.0",
        note = "use the fluent builder: `queue.job(label).kind(kind).priority(p).submit()`"
    )]
    pub fn push_with(&mut self, label: impl Into<String>, kind: JobKind, opts: JobOpts) -> u64 {
        self.enqueue(label.into(), kind, opts, Vec::new())
    }

    /// The one enqueue primitive behind both the fluent
    /// [`JobQueue::job`] builder and the deprecated `push*` shims.
    pub(crate) fn enqueue(
        &mut self,
        label: String,
        kind: JobKind,
        opts: JobOpts,
        deps: Vec<u64>,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.push_back(Job {
            id,
            label,
            kind,
            opts,
            deps,
        });
        id
    }

    /// Enqueues an already-identified job, keeping its id (the server
    /// front-end routes completions by submission id). Later default
    /// [`JobQueue::push`] calls continue above the highest id seen.
    pub fn push_job(&mut self, job: Job) -> u64 {
        let id = job.id;
        self.next_id = self.next_id.max(id + 1);
        self.jobs.push_back(job);
        id
    }

    /// Dequeues the oldest job.
    pub fn pop(&mut self) -> Option<Job> {
        self.jobs.pop_front()
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Read-only view of the queued jobs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_assigns_sequential_ids() {
        let mut q = JobQueue::new();
        let a = q.job("a").axpy(1.0, vec![1.0], vec![2.0]).submit();
        let b = q.job("b").axpy(2.0, vec![1.0], vec![2.0]).submit();
        assert_eq!((a, b), (0, 1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().label, "a");
        assert_eq!(q.pop().unwrap().label, "b");
        assert!(q.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_push_shims_still_enqueue() {
        let mut q = JobQueue::new();
        let a = q.push(
            "a",
            JobKind::Axpy {
                a: 1.0,
                x: vec![1.0],
                y: vec![2.0],
            },
        );
        let b = q.push_with(
            "b",
            JobKind::Axpy {
                a: 2.0,
                x: vec![1.0],
                y: vec![2.0],
            },
            JobOpts::estimate(),
        );
        assert_eq!((a, b), (0, 1));
        assert_eq!(q.pop().unwrap().label, "a");
        let b = q.pop().unwrap();
        assert_eq!(b.opts.backend, BackendKind::Estimate);
    }

    #[test]
    fn every_kind_has_a_class() {
        let kinds = [
            (
                JobKind::Axpy {
                    a: 1.0,
                    x: vec![1.0],
                    y: vec![1.0],
                },
                JobClass::Axpy,
            ),
            (
                JobKind::Stencil2d {
                    height: 3,
                    width: 3,
                    grid: vec![0.0; 9],
                },
                JobClass::Stencil2d,
            ),
        ];
        for (kind, class) in kinds {
            assert_eq!(kind.class(), class);
            assert!(class.index() < JobClass::COUNT);
            assert!(!class.name().is_empty());
        }
    }

    #[test]
    fn validation_catches_mismatches() {
        let bad = Job::new(
            0,
            "bad",
            JobKind::Axpy {
                a: 1.0,
                x: vec![1.0, 2.0],
                y: vec![1.0],
            },
        );
        assert!(bad.validate().is_err());
        let bad = Job::new(
            0,
            "bad",
            JobKind::Gemm {
                dims: GemmKernel { m: 2, k: 2, n: 2 },
                a: vec![0.0; 3],
                b: vec![0.0; 4],
            },
        );
        assert!(bad.validate().is_err());
        let bad = Job::new(
            0,
            "bad",
            JobKind::Stencil2d {
                height: 4,
                width: 4,
                grid: vec![0.0; 15],
            },
        );
        assert!(bad.validate().is_err());
    }

    #[test]
    fn output_lengths() {
        let conv = Job::new(
            0,
            "c",
            JobKind::Conv2d {
                kernel: Conv2dKernel {
                    height: 6,
                    width: 5,
                    k: 3,
                    filters: 2,
                },
                image: vec![0.0; 30],
                weights: vec![0.0; 18],
            },
        );
        assert!(conv.validate().is_ok());
        assert_eq!(conv.output_len(), 4 * 3 * 2);
        let stencil = Job::new(
            0,
            "s",
            JobKind::Stencil2d {
                height: 6,
                width: 5,
                grid: vec![0.0; 30],
            },
        );
        assert!(stencil.validate().is_ok());
        assert_eq!(stencil.output_len(), 4 * 3);
    }

    #[test]
    fn costs_cover_every_kind() {
        let stencil = Job::new(
            0,
            "s",
            JobKind::Stencil2d {
                height: 10,
                width: 10,
                grid: vec![0.0; 100],
            },
        );
        let c = stencil.cost();
        assert_eq!(c.flops, 2 * 6 * 64);
        assert!(c.min_ext_bytes > 0);
        let axpy = Job::new(
            0,
            "a",
            JobKind::Axpy {
                a: 2.0,
                x: vec![0.0; 32],
                y: vec![0.0; 32],
            },
        );
        assert_eq!(axpy.cost().flops, 64);
    }
}
