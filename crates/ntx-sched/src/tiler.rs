//! The tiler: splits one job into per-cluster shards sized to the TCDM.
//!
//! Sharding follows the same `split_work` rule the kernel lowerings use
//! to split rows across engines, so an N-cluster run computes exactly
//! the same elements from exactly the same inputs as a 1-cluster run —
//! the foundation of the executor's bit-identical guarantee:
//!
//! * **AXPY** shards contiguous element ranges; every shard streams
//!   through the ping-pong tile schedule of `ntx_kernels::schedule`.
//! * **GEMM** shards rows of `A`/`C`; `B` is replicated into every
//!   shard (the B-broadcast of a row-parallel decomposition). A shard
//!   too large to sit resident streams as M/N output tiles whose dot
//!   products run as split-K accumulation passes chained through the
//!   wide-accumulator spill protocol — bit-identical to the resident
//!   lowering, because no pass boundary rounds.
//! * **Conv2d** shards bands of output rows; each cluster re-loads its
//!   `k-1` input halo rows, then streams its band through the
//!   double-buffered `conv_tiles` schedule.
//! * **Stencil2d** shards bands of output rows exactly like conv (one
//!   halo row above and below), each band running the §III-B3
//!   dimension decomposition as an x pass plus an accumulating y pass
//!   through the `laplace2d_tiles` schedule.
//! * **Raw** commands are not tileable and are placed on one cluster.
//!
//! Within each cluster the shard is further tiled to the TCDM by the
//! existing `schedule` builders, preserving the paper's §II-E
//! double-buffering scheme.

use ntx_kernels::conv::Conv2dKernel;
use ntx_kernels::schedule::{
    axpy_tiles, conv_band_fits, conv_tiles, gemm_split_shape, gemm_split_tiles,
    laplace2d_band_fits, laplace2d_tiles, weight_replica_addrs, TileTask,
};
use ntx_kernels::split_work;
use ntx_mem::{DmaDescriptor, DmaDirection};
use ntx_sim::Cluster;

use crate::job::{Job, JobKind, RawJob};
use crate::SchedError;

/// External-memory base address of the first input operand
/// (per-cluster address spaces, so shards never alias).
pub const EXT_IN0: u64 = 0x0;
/// External-memory base address of the second input operand.
pub const EXT_IN1: u64 = 0x0100_0000;
/// External-memory base address of the output region.
pub const EXT_OUT: u64 = 0x0200_0000;

/// Streaming tile size for AXPY shards, in elements (two ping-pong
/// halves of `x`+`y` tiles fit comfortably in the 64 kB TCDM).
const AXPY_TILE_ELEMS: u32 = 2048;

/// Pitch between the external-memory operand regions. A shard operand
/// larger than this would silently run into the next region, so the
/// planners reject it instead.
const EXT_REGION_BYTES: u64 = EXT_IN1 - EXT_IN0;

/// Rejects a shard operand that would overflow its external-memory
/// region into the next one.
fn check_ext_region(what: &str, bytes: u64) -> Result<(), SchedError> {
    if bytes > EXT_REGION_BYTES {
        return Err(SchedError::Capacity(format!(
            "{what} needs {bytes} B of external memory but the operand region \
             is {EXT_REGION_BYTES} B; submit smaller jobs"
        )));
    }
    Ok(())
}

/// Where a cluster-local result lives after the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadbackSource {
    /// External memory (streamed-out result).
    Ext(u64),
    /// TCDM (in-place result of a raw command).
    Tcdm(u32),
}

/// One contiguous slice of a job's output produced by one cluster.
#[derive(Debug, Clone, Copy)]
pub struct Readback {
    /// Where the cluster left the data.
    pub source: ReadbackSource,
    /// Length in `f32` elements.
    pub len: u32,
    /// Element offset in the job's assembled output vector.
    pub dst: usize,
}

/// Everything one cluster must do for its shard of a job.
#[derive(Debug, Clone, Default)]
pub struct ClusterPlan {
    /// `(ext address, values)` preloads into the cluster's external
    /// memory (the HMC vault shard this cluster owns).
    pub ext_writes: Vec<(u64, Vec<f32>)>,
    /// `(tcdm address, values)` preloads (resident weights, raw-job
    /// operands).
    pub tcdm_writes: Vec<(u32, Vec<f32>)>,
    /// The double-buffered tile schedule (empty for raw jobs).
    pub tiles: Vec<TileTask>,
    /// Raw command, if this cluster got one.
    pub raw: Option<RawJob>,
    /// Result slices to gather after the run.
    pub readbacks: Vec<Readback>,
}

impl ClusterPlan {
    /// True when this cluster has nothing to do for the job.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty() && self.raw.is_none()
    }
}

/// Splits jobs into per-cluster plans.
#[derive(Debug, Clone, Copy)]
pub struct Tiler {
    /// Number of clusters to shard across.
    pub clusters: usize,
}

impl Tiler {
    /// A tiler for `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics when `clusters` is zero.
    #[must_use]
    pub fn new(clusters: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        Self { clusters }
    }

    /// Plans `job` across the clusters. `cluster` is any one of the
    /// (identically configured) clusters, consulted for TCDM capacity
    /// and engine count.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shape`] for inconsistent jobs,
    /// [`SchedError::Capacity`] when a shard cannot fit the TCDM or
    /// its external-memory region, and [`SchedError::PlanTooLarge`]
    /// when a raw job's opaque TCDM window exceeds the TCDM.
    pub fn plan(&self, job: &Job, cluster: &Cluster) -> Result<Vec<ClusterPlan>, SchedError> {
        job.validate()?;
        let mut plans = vec![ClusterPlan::default(); self.clusters];
        match &job.kind {
            JobKind::Axpy { a, x, y } => self.plan_axpy(&mut plans, cluster, *a, x, y)?,
            JobKind::Gemm { dims, a, b } => self.plan_gemm(&mut plans, cluster, *dims, a, b)?,
            JobKind::Conv2d {
                kernel,
                image,
                weights,
            } => self.plan_conv(&mut plans, cluster, *kernel, image, weights)?,
            JobKind::Stencil2d {
                height,
                width,
                grid,
            } => self.plan_stencil(&mut plans, cluster, *height, *width, grid)?,
            JobKind::Raw(raw) => {
                // TCDM addresses wrap at capacity in the simulator, so
                // an out-of-range window would silently alias instead
                // of faulting — reject it at planning time.
                let tcdm_bytes = u64::from(cluster.config().tcdm.bytes);
                let check_window = |what: &'static str, addr: u32, bytes: u64| {
                    let available = tcdm_bytes.saturating_sub(u64::from(addr));
                    if bytes > available {
                        // A raw command is opaque to the tiler, so it
                        // cannot split the window itself — report the
                        // sizes and the pass count a manual split
                        // would need.
                        return Err(SchedError::PlanTooLarge {
                            what,
                            requested: bytes,
                            available,
                            suggested_passes: bytes
                                .div_ceil(available.max(1))
                                .min(u64::from(u32::MAX))
                                as u32,
                        });
                    }
                    Ok(())
                };
                for (addr, values) in &raw.tcdm {
                    check_window("raw job preload", *addr, 4 * values.len() as u64)?;
                }
                check_window(
                    "raw job result window",
                    raw.result_addr,
                    4 * u64::from(raw.result_len),
                )?;
                let c = (job.id as usize) % self.clusters;
                let plan = &mut plans[c];
                plan.tcdm_writes = raw.tcdm.clone();
                plan.readbacks.push(Readback {
                    source: ReadbackSource::Tcdm(raw.result_addr),
                    len: raw.result_len,
                    dst: 0,
                });
                plan.raw = Some(raw.clone());
            }
        }
        Ok(plans)
    }

    fn plan_axpy(
        &self,
        plans: &mut [ClusterPlan],
        cluster: &Cluster,
        a: f32,
        x: &[f32],
        y: &[f32],
    ) -> Result<(), SchedError> {
        for (plan, (start, len)) in plans
            .iter_mut()
            .zip(split_work(x.len() as u32, self.clusters as u32))
        {
            check_ext_region("axpy shard", 4 * u64::from(len))?;
            let (s, l) = (start as usize, len as usize);
            plan.ext_writes.push((EXT_IN0, x[s..s + l].to_vec()));
            plan.ext_writes.push((EXT_IN1, y[s..s + l].to_vec()));
            plan.tiles = axpy_tiles(cluster, len, a, EXT_IN0, EXT_IN1, AXPY_TILE_ELEMS.min(len));
            plan.readbacks.push(Readback {
                source: ReadbackSource::Ext(EXT_IN1),
                len,
                dst: s,
            });
        }
        Ok(())
    }

    fn plan_gemm(
        &self,
        plans: &mut [ClusterPlan],
        cluster: &Cluster,
        dims: ntx_kernels::blas::GemmKernel,
        a: &[f32],
        b: &[f32],
    ) -> Result<(), SchedError> {
        let (k, n) = (dims.k, dims.n);
        let engines = cluster.num_engines() as u32;
        let tcdm_bytes = cluster.config().tcdm.bytes;
        // B's leading dimension is padded to an odd element count so
        // the column walk cycles through all TCDM banks (same trick as
        // `GemmKernel::run`).
        let ldb = if n % 2 == 0 { n + 1 } else { n };
        // B is replicated into every shard; its region check is
        // per-job, the A/C checks per shard below.
        check_ext_region("gemm B operand", 4 * u64::from(k) * u64::from(n))?;
        for (plan, (row0, rows)) in plans
            .iter_mut()
            .zip(split_work(dims.m, self.clusters as u32))
        {
            check_ext_region("gemm A shard", 4 * u64::from(rows) * u64::from(k))?;
            check_ext_region("gemm C shard", 4 * u64::from(rows) * u64::from(n))?;
            let band = ntx_kernels::blas::GemmKernel { m: rows, k, n };
            let a_addr = 0u32;
            let b_addr = 4 * rows * k;
            let c_addr = b_addr + 4 * k * (n + 1);
            let end = c_addr + 4 * rows * n;
            plan.ext_writes.push((
                EXT_IN0,
                a[(row0 * k) as usize..((row0 + rows) * k) as usize].to_vec(),
            ));
            plan.ext_writes.push((EXT_IN1, b.to_vec()));
            if end > tcdm_bytes {
                // The shard cannot sit resident: stream it as M/N
                // output tiles with (when even a full-depth row chunk
                // is too long) split-K accumulation passes chained
                // through the wide-accumulator spill protocol — bit-
                // identical to the resident lowering either way.
                let (m_t, n_t, k_c) =
                    gemm_split_shape(&band, engines, tcdm_bytes).ok_or_else(|| {
                        SchedError::Capacity(format!(
                            "gemm shard {rows}x{k}x{n} cannot fit even a 1x1x1 \
                             split tile in a {tcdm_bytes} B TCDM"
                        ))
                    })?;
                plan.tiles =
                    gemm_split_tiles(cluster, &band, EXT_IN0, EXT_IN1, EXT_OUT, m_t, n_t, k_c)
                        .map_err(SchedError::Lowering)?;
            } else {
                let commands = band
                    .lower_with_ldb(a_addr, b_addr, c_addr, ldb, engines)
                    .map_err(SchedError::Lowering)?
                    .into_iter()
                    .enumerate()
                    .collect();
                plan.tiles = vec![TileTask {
                    loads: vec![
                        DmaDescriptor::linear(
                            EXT_IN0,
                            a_addr,
                            4 * rows * k,
                            DmaDirection::ExtToTcdm,
                        ),
                        // B lands in its padded-leading-dimension layout.
                        DmaDescriptor {
                            ext_addr: EXT_IN1,
                            tcdm_addr: b_addr,
                            row_bytes: 4 * n,
                            rows: k,
                            ext_stride: 4 * u64::from(n),
                            tcdm_stride: 4 * ldb,
                            dir: DmaDirection::ExtToTcdm,
                        },
                    ],
                    commands,
                    stores: vec![DmaDescriptor::linear(
                        EXT_OUT,
                        c_addr,
                        4 * rows * n,
                        DmaDirection::TcdmToExt,
                    )],
                }];
            }
            plan.readbacks.push(Readback {
                source: ReadbackSource::Ext(EXT_OUT),
                len: rows * n,
                dst: (row0 * n) as usize,
            });
        }
        Ok(())
    }

    fn plan_stencil(
        &self,
        plans: &mut [ClusterPlan],
        cluster: &Cluster,
        height: u32,
        width: u32,
        grid: &[f32],
    ) -> Result<(), SchedError> {
        let engines = cluster.num_engines() as u32;
        let tcdm_bytes = cluster.config().tcdm.bytes;
        let (oh, ow) = (height - 2, width - 2);
        for (plan, (row0, rows)) in plans.iter_mut().zip(split_work(oh, self.clusters as u32)) {
            // This cluster's input band: its output rows plus one halo
            // row above and one below.
            let in_rows = rows + 2;
            check_ext_region(
                "stencil grid band",
                4 * u64::from(in_rows) * u64::from(width),
            )?;
            check_ext_region("stencil output band", 4 * u64::from(rows) * u64::from(ow))?;
            // Largest streaming band (in output rows) whose two
            // ping-pong buffers fit above the resident coefficient
            // replicas — the capacity rule `laplace2d_tiles` enforces.
            let fits =
                |band_rows: u32| laplace2d_band_fits(width, band_rows, 0, engines, tcdm_bytes);
            let mut band_rows = rows.min(8);
            while band_rows > 1 && !fits(band_rows) {
                band_rows -= 1;
            }
            if !fits(band_rows) {
                return Err(SchedError::Capacity(format!(
                    "stencil band of width {width} cannot fit two single-row \
                     buffers in a {tcdm_bytes} B TCDM"
                )));
            }
            // One [1, -2, 1] replica per engine, in the canonical
            // replica layout.
            for addr in weight_replica_addrs(0, 3, engines) {
                plan.tcdm_writes.push((addr, vec![1.0, -2.0, 1.0]));
            }
            plan.ext_writes.push((
                EXT_IN0,
                grid[(row0 * width) as usize..((row0 + in_rows) * width) as usize].to_vec(),
            ));
            plan.tiles = laplace2d_tiles(cluster, in_rows, width, EXT_IN0, 0, EXT_OUT, band_rows);
            plan.readbacks.push(Readback {
                source: ReadbackSource::Ext(EXT_OUT),
                len: rows * ow,
                dst: (row0 * ow) as usize,
            });
        }
        Ok(())
    }

    fn plan_conv(
        &self,
        plans: &mut [ClusterPlan],
        cluster: &Cluster,
        kernel: Conv2dKernel,
        image: &[f32],
        weights: &[f32],
    ) -> Result<(), SchedError> {
        let (w, k, filters) = (kernel.width, kernel.k, kernel.filters);
        let (oh, ow) = (kernel.out_height(), kernel.out_width());
        let engines = cluster.num_engines() as u32;
        let tcdm_bytes = cluster.config().tcdm.bytes;
        for (plan, (row0, rows)) in plans.iter_mut().zip(split_work(oh, self.clusters as u32)) {
            // This cluster's input band: its output rows plus the k-1
            // halo rows below them.
            let in_rows = rows + k - 1;
            let band = Conv2dKernel {
                height: in_rows,
                width: w,
                k,
                filters,
            };
            check_ext_region("conv image band", 4 * u64::from(in_rows) * u64::from(w))?;
            check_ext_region(
                "conv output band",
                4 * u64::from(rows) * u64::from(ow) * u64::from(filters),
            )?;
            // Largest streaming band (in output rows) whose two
            // ping-pong buffers fit above the resident weight replicas —
            // the same capacity rule `conv_tiles` enforces.
            let fits = |band_rows: u32| conv_band_fits(&band, band_rows, 0, engines, tcdm_bytes);
            let mut band_rows = rows.min(8);
            while band_rows > 1 && !fits(band_rows) {
                band_rows -= 1;
            }
            if !fits(band_rows) {
                return Err(SchedError::Capacity(format!(
                    "conv band of width {w} with {filters} filters cannot fit two \
                     single-row buffers in a {tcdm_bytes} B TCDM"
                )));
            }
            // One weight replica per engine avoids the structural bank
            // conflict of all engines fetching the same word; the
            // addresses come from the canonical layout in ntx-kernels.
            for addr in weight_replica_addrs(0, k * k * filters, engines) {
                plan.tcdm_writes.push((addr, weights.to_vec()));
            }
            plan.ext_writes.push((
                EXT_IN0,
                image[(row0 * w) as usize..((row0 + in_rows) * w) as usize].to_vec(),
            ));
            plan.tiles = conv_tiles(cluster, &band, EXT_IN0, 0, EXT_OUT, band_rows);
            for f in 0..filters {
                plan.readbacks.push(Readback {
                    source: ReadbackSource::Ext(EXT_OUT + 4 * u64::from(f * rows * ow)),
                    len: rows * ow,
                    dst: ((f * oh + row0) * ow) as usize,
                });
            }
        }
        Ok(())
    }
}
