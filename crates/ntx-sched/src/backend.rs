//! Execution backends: one job queue, several ways to answer it.
//!
//! A [`Backend`] owns the three steps of the serving path — **plan
//! admission** (validate a job and shard it, before any resources are
//! committed), **launch** (run an admitted batch), and **readback**
//! (assemble per-job results) — behind one trait, so the same
//! [`JobQueue`](crate::JobQueue) serves both "simulate exactly" and
//! "estimate now" requests, selected per job via
//! [`JobOpts::backend`](crate::JobOpts):
//!
//! * [`SimulatorBackend`] — the bit-accurate path: jobs are tiled by
//!   the [`Tiler`], placed onto cluster subsets, and executed by the
//!   [`ClusterFarm`] through the cycle simulator's burst API.
//! * [`AnalyticalBackend`] — the instant path: jobs are answered from
//!   `ntx-model`'s roofline estimates without spending a single
//!   simulator cycle, useful for admission control and capacity
//!   planning in front of the farm.
//! * [`NativeHost`] — the wire-speed path: jobs execute on the host
//!   CPU through [`ntx_cpu::NativeBackend`], either with the fast
//!   multi-accumulator reduction ([`BackendKind::NativeFast`]) or
//!   bit-identical to the simulator through the wide Kulisch
//!   accumulator ([`BackendKind::NativeExact`]). Admission estimates
//!   come from the same roofline, calibrated by a private
//!   [`DurationTable`] EWMA of measured wall-clock durations.

use ntx_mem::MemoryModel;
use ntx_model::roofline::Roofline;

use crate::executor::{BatchResult, JobResult, ScaleOutConfig};
use crate::farm::{ClusterFarm, JobMeta, PlacedJob, ShardRetire};
use crate::job::{Job, JobClass, JobKind};
use crate::report::ScaleOutReport;
use crate::tiler::{ClusterPlan, Tiler};
use crate::SchedError;

/// Which backend executes a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Bit-accurate execution in the cycle simulator (the default) —
    /// the accuracy oracle: exact outputs *and* exact cycle counts,
    /// orders of magnitude slower than the hardware it models.
    #[default]
    Simulate,
    /// Instant analytical estimate from the roofline model; no
    /// simulator cycles are spent and no output data is produced.
    Estimate,
    /// Native host-CPU execution with multi-accumulator partial-sum
    /// reduction: real outputs at wire speed, ordinary float rounding
    /// error (measurable via `ntx_fpu::rmse`), wall-clock timing in
    /// place of simulated cycles.
    NativeFast,
    /// Native host-CPU execution through the wide Kulisch
    /// accumulator: real outputs **bit-identical to the simulator**,
    /// still far faster than cycle-accurate simulation.
    NativeExact,
}

/// An analytical answer: what the roofline model predicts for a job
/// sharded `shards` ways.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobEstimate {
    /// Total floating-point operations of the job.
    pub flops: u64,
    /// Compulsory external-memory traffic, bytes.
    pub ext_bytes: u64,
    /// Shard count the estimate assumes.
    pub shards: usize,
    /// Estimated makespan in NTX cycles (per shard, shards run
    /// concurrently).
    pub cycles: u64,
    /// Estimated makespan in seconds at the cluster clock.
    pub seconds: f64,
    /// True when the practical compute ceiling binds (vs. bandwidth).
    pub compute_bound: bool,
}

/// A job's work after admission, in backend-specific form.
#[derive(Debug)]
pub enum AdmittedWork {
    /// Sharded tile plans for the simulator farm, plus the analytical
    /// per-shard cycle estimate the placement heuristic packs with.
    Tiled {
        /// One plan per shard (possibly empty for trailing clusters).
        plans: Vec<ClusterPlan>,
        /// Estimated cycles per shard, for least-loaded placement.
        shard_cycles_hint: u64,
    },
    /// An analytical estimate; nothing to execute.
    Estimated(JobEstimate),
    /// Admitted for native host-CPU execution, carrying the
    /// EWMA-corrected roofline estimate used for admission control;
    /// the job itself executes inside
    /// [`run_batch`](Backend::run_batch).
    Native(JobEstimate),
}

/// A job that passed admission, paired with its planned work.
#[derive(Debug)]
pub struct AdmittedJob {
    /// The job (owned; its data has already been captured into the
    /// plans where the backend needs it).
    pub job: Job,
    /// The backend-specific plan.
    pub work: AdmittedWork,
}

/// One execution backend: plan admission, launch, readback.
pub trait Backend {
    /// Validates `job` and plans its execution without committing any
    /// resources — a failed admission leaves the backend untouched.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shape`] for inconsistent jobs,
    /// [`SchedError::Capacity`] when no feasible sharding exists.
    fn admit(&mut self, job: &Job) -> Result<AdmittedWork, SchedError>;

    /// Launches a batch of admitted jobs and reads their results back,
    /// in batch order.
    fn run_batch(&mut self, batch: Vec<AdmittedJob>) -> BatchResult;
}

/// Roofline estimate for `job` sharded `shards` ways.
fn estimate_for(job: &Job, shards: usize, roofline: &Roofline, freq_hz: f64) -> JobEstimate {
    let cost = job.cost();
    let s = shards.max(1) as u64;
    let flops_per = cost.flops.div_ceil(s);
    let bytes_per = cost.min_ext_bytes.div_ceil(s);
    JobEstimate {
        flops: cost.flops,
        ext_bytes: cost.min_ext_bytes,
        shards: shards.max(1),
        cycles: roofline.estimated_cycles(flops_per, bytes_per, freq_hz),
        seconds: roofline.estimated_seconds(flops_per, bytes_per),
        compute_bound: flops_per as f64 / roofline.practical_peak()
            >= bytes_per as f64 / roofline.practical_bandwidth(),
    }
}

/// Roofline instance matching a scale-out configuration: peaks from
/// the cluster hardware parameters, conflict derating from the
/// paper's §III-C measurement, and — under [`MemoryModel::SharedHmc`]
/// — the memory roof capped at this cluster's fair share of the
/// cube's vault/LoB bandwidth, so admission estimates and the
/// analytical backend see the same saturation ceiling the cycle-level
/// arbiter enforces.
fn roofline_for(config: &ScaleOutConfig) -> Roofline {
    let r = Roofline {
        peak_flops: config.cluster.peak_flops(),
        peak_bandwidth: config.cluster.peak_bandwidth(),
        ..Roofline::default()
    };
    match config.memory {
        MemoryModel::Ideal => r,
        MemoryModel::SharedHmc(hmc) => {
            r.with_shared_bandwidth(hmc.shared_bandwidth(), config.clusters)
        }
        MemoryModel::HmcMesh(mesh) => r.with_mesh_bandwidth(
            mesh.cube.shared_bandwidth(),
            config.clusters,
            mesh.cubes as usize,
        ),
    }
}

/// The one space-sharing sizing rule, shared by both backends so the
/// analytical estimates always assume the sharding the simulator
/// actually places: enough shards that each carries roughly
/// `target_shard_cycles` of estimated work, capped at the farm width.
/// With `space_share` disabled every job spans all clusters.
fn heuristic_shards(
    job: &Job,
    config: &ScaleOutConfig,
    roofline: &Roofline,
    freq_hz: f64,
) -> usize {
    if !config.space_share {
        return config.clusters;
    }
    let est1 = estimate_for(job, 1, roofline, freq_hz);
    let shards = est1
        .cycles
        .div_ceil(config.target_shard_cycles.max(1))
        .clamp(1, config.clusters as u64) as usize;
    // Snap to one cluster or the whole farm. Mid-size subsets (3 of 8
    // clusters) look attractive per job but pack badly across a batch
    // — the analytical estimate is only accurate to tens of percent,
    // so coarse multi-cluster shards lump onto a critical cluster and
    // the batch loses to plain full-width sharding. Tiny jobs on one
    // cluster fill the slack of full-width jobs instead.
    if shards > 1 {
        config.clusters
    } else {
        1
    }
}

/// Per-[`JobClass`] EWMA of measured versus estimated shard cycles —
/// the measured-duration feedback that graduates placement from
/// snap-to-{1, farm} to graded cluster subsets. The roofline estimate
/// under-predicts real shard durations by tens of percent (it ignores
/// banking conflicts, DMA ramp-up and tile-boundary overheads), and by
/// different amounts per job family; each retired shard contributes
/// its observed `measured / estimated` ratio, so after a handful of
/// jobs per class the corrected estimates are accurate enough to pack
/// mid-size cluster subsets without lumping onto a critical cluster.
/// Seeded at 1.0 — i.e. pure roofline — so a cold table behaves
/// exactly like the estimate-only heuristic.
#[derive(Debug, Clone)]
pub struct DurationTable {
    ratio: [f64; JobClass::COUNT],
    samples: [u64; JobClass::COUNT],
}

/// EWMA smoothing factor: new observations move the correction a
/// quarter of the way, so one outlier shard cannot wreck placement but
/// a real drift is absorbed within a few jobs.
const EWMA_ALPHA: f64 = 0.25;

impl Default for DurationTable {
    fn default() -> Self {
        Self::new()
    }
}

impl DurationTable {
    /// A cold table: every class at correction 1.0 (trust the
    /// roofline).
    #[must_use]
    pub fn new() -> Self {
        Self {
            ratio: [1.0; JobClass::COUNT],
            samples: [0; JobClass::COUNT],
        }
    }

    /// The current `measured / estimated` correction for `class`.
    #[must_use]
    pub fn correction(&self, class: JobClass) -> f64 {
        self.ratio[class.index()]
    }

    /// Observations folded in for `class`.
    #[must_use]
    pub fn samples(&self, class: JobClass) -> u64 {
        self.samples[class.index()]
    }

    /// `estimated` cycles corrected by the learned class ratio, never
    /// below one cycle.
    #[must_use]
    pub fn corrected_cycles(&self, class: JobClass, estimated: u64) -> u64 {
        let c = (estimated as f64 * self.correction(class)).round() as u64;
        c.max(1)
    }

    /// Folds one retired shard into the EWMA. The first observation of
    /// a class replaces the seed outright — a real measurement beats a
    /// guess — and later ones blend in with [`EWMA_ALPHA`].
    pub fn observe(&mut self, class: JobClass, estimated: u64, measured: u64) {
        if estimated == 0 {
            return;
        }
        let r = measured as f64 / estimated as f64;
        let i = class.index();
        if self.samples[i] == 0 {
            self.ratio[i] = r;
        } else {
            self.ratio[i] = (1.0 - EWMA_ALPHA) * self.ratio[i] + EWMA_ALPHA * r;
        }
        self.samples[i] += 1;
    }
}

/// Where a continuous admission landed: enough to replay the exact
/// same placement into a barriered [`ClusterFarm::run_batch`] (the
/// differential oracle) — the tiler shard count reproduces the plans,
/// the cluster list reproduces the assignment.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Shard count the tiler planned with (≥ the number of non-empty
    /// shards).
    pub planned_shards: usize,
    /// Clusters the non-empty shards were assigned to, ascending;
    /// plan `i` runs on `clusters[i]`.
    pub clusters: Vec<usize>,
    /// Corrected estimated cycles per shard (the placement load unit).
    pub shard_cycles: u64,
}

impl Placement {
    /// Rebuilds the [`PlacedJob`] this placement describes, for a
    /// barriered replay of the continuous run: re-tiles `job` at the
    /// recorded shard count against `reference` (any cluster of the
    /// same configuration) and zips the non-empty plans onto the
    /// recorded cluster list — the single definition of the
    /// same-placement oracle shared by the proptest suite and the
    /// `report-serving` gate.
    ///
    /// # Errors
    ///
    /// Propagates tiler errors (impossible for a job that was already
    /// admitted once against the same configuration).
    ///
    /// # Panics
    ///
    /// Panics when re-tiling yields a different non-empty shard count
    /// than was recorded — the replay would no longer be the same
    /// placement.
    pub fn replay(&self, job: &Job, reference: &ntx_sim::Cluster) -> Result<PlacedJob, SchedError> {
        let plans = Tiler::new(self.planned_shards).plan(job, reference)?;
        let nonempty: Vec<ClusterPlan> = plans.into_iter().filter(|p| !p.is_empty()).collect();
        assert_eq!(
            nonempty.len(),
            self.clusters.len(),
            "replay must reproduce the recorded shard count"
        );
        Ok(PlacedJob {
            meta: JobMeta {
                id: job.id,
                label: job.label.clone(),
                output_len: job.output_len(),
                class: job.kind.class(),
                home_cube: job.opts.home_cube,
            },
            shards: self.clusters.iter().copied().zip(nonempty).collect(),
        })
    }
}

/// A planned-but-uncommitted continuous admission: the tiled shard
/// plans, their target clusters, and the placement estimates. Internal
/// split of plan/commit that lets deadline shedding reject a job
/// before it touches the farm.
#[derive(Debug)]
struct ContinuousPlan {
    nonempty: Vec<ClusterPlan>,
    chosen: Vec<usize>,
    hint: u64,
    per_shard: u64,
    planned_shards: usize,
}

/// The bit-accurate backend: tiler + placement + cluster farm.
#[derive(Debug)]
pub struct SimulatorBackend {
    config: ScaleOutConfig,
    farm: ClusterFarm,
    roofline: Roofline,
}

impl SimulatorBackend {
    /// Builds the farm for `config`.
    #[must_use]
    pub fn new(config: ScaleOutConfig) -> Self {
        let mut farm = ClusterFarm::with_memory(config.clusters, config.cluster, config.memory);
        farm.set_fault_plan(config.faults);
        farm.set_worker_threads(crate::farm::resolve_worker_threads(config.worker_threads));
        Self {
            config,
            farm,
            roofline: roofline_for(&config),
        }
    }

    /// Read-only access to cluster `index` (test/report introspection).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn cluster(&self, index: usize) -> &ntx_sim::Cluster {
        self.farm.cluster(index)
    }

    /// Plans `job` across **all** clusters, ignoring the space-sharing
    /// heuristic — the single-job strong-scaling path
    /// ([`ScaleOutExecutor::run_job`](crate::ScaleOutExecutor::run_job)).
    ///
    /// # Errors
    ///
    /// Propagates tiler errors.
    pub fn admit_full_width(&self, job: &Job) -> Result<Vec<ClusterPlan>, SchedError> {
        Tiler::new(self.config.clusters).plan(job, self.farm.reference_cluster())
    }

    /// Runs one admitted job, sharded plan `i` on cluster `i` (the
    /// full-width identity placement).
    #[must_use]
    pub fn run_single(&mut self, meta: JobMeta, plans: Vec<ClusterPlan>) -> JobResult {
        let shards = plans
            .into_iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .collect();
        let mut batch = self
            .farm
            .run_batch(vec![PlacedJob { meta, shards }], self.config.pipelined);
        batch.results.pop().expect("one result per placed job")
    }

    /// Tiles `job` at `shards` shards, retrying wider on TCDM capacity
    /// failures until the farm width is exhausted; returns the plans
    /// and the shard count that fit.
    fn tile_with_retry(
        &self,
        job: &Job,
        mut shards: usize,
    ) -> Result<(Vec<ClusterPlan>, usize), SchedError> {
        let n = self.config.clusters;
        loop {
            match Tiler::new(shards).plan(job, self.farm.reference_cluster()) {
                Ok(plans) => return Ok((plans, shards)),
                // A shard that cannot fit the TCDM may fit when split
                // finer; retry wider until the farm width is exhausted.
                Err(SchedError::Capacity(_)) if shards < n => shards += 1,
                Err(e) => return Err(e),
            }
        }
    }

    /// Chooses the shard count for `job`: enough shards that each
    /// carries roughly `target_shard_cycles` of estimated work (so
    /// small jobs leave clusters free for space sharing), grown until
    /// the shards fit the TCDM, capped at the cluster count. With
    /// `space_share` disabled every job spans all clusters.
    fn admit_tiled(&self, job: &Job) -> Result<AdmittedWork, SchedError> {
        let freq = self.config.cluster.ntx_freq_hz;
        let want = heuristic_shards(job, &self.config, &self.roofline, freq);
        let (plans, shards) = self.tile_with_retry(job, want)?;
        let est = estimate_for(job, shards, &self.roofline, freq);
        Ok(AdmittedWork::Tiled {
            plans,
            shard_cycles_hint: est.cycles,
        })
    }

    /// Admits `job` into the *running* farm (continuous mode): plans a
    /// **graded** shard count from the measured-duration table —
    /// `corrected cycles / target_shard_cycles`, any value in
    /// `1..=clusters`, not snap-to-{1, farm} — and assigns the shards
    /// to the least-loaded clusters right now. The job starts the
    /// moment those clusters free up; no wave boundary is involved.
    /// Returns the placement so callers can log it or replay it into
    /// the barriered oracle.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shape`] for inconsistent jobs,
    /// [`SchedError::Capacity`] when no feasible sharding exists.
    pub fn admit_continuous(
        &mut self,
        job: &Job,
        table: &DurationTable,
    ) -> Result<Placement, SchedError> {
        let plan = self.plan_continuous(job, table)?;
        Ok(self.commit_continuous(job, plan))
    }

    /// [`admit_continuous`](Self::admit_continuous) with deadline
    /// shedding: the job is **rejected without touching the farm**
    /// when its estimated completion — the load of the busiest chosen
    /// cluster plus the shard estimate, measured from the farm's
    /// [`virtual_now`](ClusterFarm::virtual_now) — already proves a
    /// virtual-cycle deadline unmeetable. `None` admits
    /// unconditionally.
    ///
    /// # Errors
    ///
    /// [`SchedError::DeadlineUnmeetable`] for shed jobs, plus every
    /// [`admit_continuous`](Self::admit_continuous) error.
    pub fn admit_continuous_within(
        &mut self,
        job: &Job,
        table: &DurationTable,
        deadline_cycles: Option<u64>,
    ) -> Result<Placement, SchedError> {
        let plan = self.plan_continuous(job, table)?;
        if let Some(deadline) = deadline_cycles {
            let now = self.farm.virtual_now();
            // Per chosen cluster the job's shards append to the queue:
            // its k-th shard there retires at load + k * hint.
            let mut finish = now;
            let mut backlog: Vec<(usize, u64)> = Vec::new();
            for &c in &plan.chosen {
                let entry = match backlog.iter_mut().find(|(b, _)| *b == c) {
                    Some(e) => {
                        e.1 += plan.hint;
                        e.1
                    }
                    None => {
                        let f = self.farm.load(c) + plan.hint;
                        backlog.push((c, f));
                        f
                    }
                };
                finish = finish.max(entry);
            }
            let estimated_cycles = finish - now;
            if estimated_cycles > deadline {
                return Err(SchedError::DeadlineUnmeetable {
                    estimated_cycles,
                    deadline_cycles: deadline,
                });
            }
        }
        Ok(self.commit_continuous(job, plan))
    }

    /// Plans `job` for continuous admission without committing it:
    /// chooses the graded shard count, tiles, and picks the target
    /// clusters. Read-only on the farm, so a rejected plan (deadline
    /// shedding) leaves no trace.
    fn plan_continuous(
        &self,
        job: &Job,
        table: &DurationTable,
    ) -> Result<ContinuousPlan, SchedError> {
        job.validate()?;
        let freq = self.config.cluster.ntx_freq_hz;
        let class = job.kind.class();
        // Dead clusters take no new work: plan against the survivors.
        let alive: Vec<usize> = (0..self.config.clusters)
            .filter(|&c| self.farm.is_alive(c))
            .collect();
        if alive.is_empty() {
            return Err(SchedError::Capacity(
                "no live clusters remain in the farm".into(),
            ));
        }
        let want = if self.config.space_share {
            let est1 = estimate_for(job, 1, &self.roofline, freq);
            let corrected = table.corrected_cycles(class, est1.cycles);
            corrected
                .div_ceil(self.config.target_shard_cycles.max(1))
                .clamp(1, alive.len() as u64) as usize
        } else {
            alive.len()
        };
        let (plans, planned_shards) = self.tile_with_retry(job, want)?;
        let per_shard = estimate_for(job, planned_shards, &self.roofline, freq).cycles;
        let hint = table.corrected_cycles(class, per_shard);
        let nonempty: Vec<ClusterPlan> = plans.into_iter().filter(|p| !p.is_empty()).collect();
        // Least-loaded clusters take the shards; ascending-index ties
        // keep placement deterministic. On a mesh with affinity enabled
        // the primary key is data locality: clusters attached to the
        // job's home cube win over less-loaded remote ones, so shards
        // cross a serial link only when the home cube has no ports
        // left to give. When a capacity retry produced more shards
        // than live clusters (possible only after a kill), the
        // assignment wraps — several shards of one job then queue on
        // the same surviving cluster.
        let mut order = alive;
        if self.config.affinity {
            order.sort_by_key(|&c| {
                (
                    self.farm.remote_penalty(c, job.id, job.opts.home_cube),
                    self.farm.load(c),
                    c,
                )
            });
        } else {
            order.sort_by_key(|&c| (self.farm.load(c), c));
        }
        let mut chosen: Vec<usize> = (0..nonempty.len())
            .map(|i| order[i % order.len()])
            .collect();
        chosen.sort_unstable();
        Ok(ContinuousPlan {
            nonempty,
            chosen,
            hint,
            per_shard,
            planned_shards,
        })
    }

    /// Commits a [`plan_continuous`](Self::plan_continuous) result
    /// into the running farm.
    fn commit_continuous(&mut self, job: &Job, plan: ContinuousPlan) -> Placement {
        let meta = JobMeta {
            id: job.id,
            label: job.label.clone(),
            output_len: job.output_len(),
            class: job.kind.class(),
            home_cube: job.opts.home_cube,
        };
        self.farm.admit(
            PlacedJob {
                meta,
                shards: plan.chosen.iter().copied().zip(plan.nonempty).collect(),
            },
            plan.hint,
            plan.per_shard,
        );
        Placement {
            planned_shards: plan.planned_shards,
            clusters: plan.chosen,
            shard_cycles: plan.hint,
        }
    }

    /// Retires the next shard of the continuously-admitted farm (see
    /// [`ClusterFarm::step`]); `None` when the farm is idle.
    pub fn step_farm(&mut self) -> Option<ShardRetire> {
        self.farm.step()
    }

    /// True when continuously-admitted shards are still queued.
    #[must_use]
    pub fn has_farm_work(&self) -> bool {
        self.farm.has_pending()
    }

    /// Virtual makespan of the continuous farm (latest cluster clock).
    #[must_use]
    pub fn farm_makespan(&self) -> u64 {
        self.farm.makespan()
    }

    /// Farm-lifetime counter totals over every retired shard (see
    /// [`ClusterFarm::perf_totals`]) — the serving layer reads the
    /// external-memory wait and remote-traffic figures from here.
    #[must_use]
    pub fn perf_totals(&self) -> ntx_sim::PerfSnapshot {
        self.farm.perf_totals()
    }

    /// The farm's virtual "now" (earliest live-cluster clock; see
    /// [`ClusterFarm::virtual_now`]) — the reference point of
    /// virtual-cycle deadlines.
    #[must_use]
    pub fn virtual_now(&self) -> u64 {
        self.farm.virtual_now()
    }

    /// Worker-pool counters of the farm (see [`ClusterFarm::pool_stats`]).
    #[must_use]
    pub fn pool_stats(&self) -> crate::farm::PoolStats {
        self.farm.pool_stats()
    }

    /// Fault-recovery counters of the farm (see
    /// [`ClusterFarm::fault_stats`]).
    #[must_use]
    pub fn fault_stats(&self) -> crate::farm::FaultStats {
        self.farm.fault_stats()
    }

    /// Number of live clusters (see [`ClusterFarm::num_alive`]).
    #[must_use]
    pub fn num_alive(&self) -> usize {
        self.farm.num_alive()
    }
}

impl Backend for SimulatorBackend {
    fn admit(&mut self, job: &Job) -> Result<AdmittedWork, SchedError> {
        self.admit_tiled(job)
    }

    /// Places each job's shards on the least-loaded clusters by the
    /// admission estimate, assigning in LPT order (heaviest shards
    /// first, ties by submission) so the greedy packing stays balanced
    /// — execution and results keep submission order. Placement is a
    /// pure, deterministic function of the batch, so the pipelined run
    /// and the barriered oracle place identically and stay
    /// bit-comparable per job.
    fn run_batch(&mut self, batch: Vec<AdmittedJob>) -> BatchResult {
        let n = self.config.clusters;
        struct Item {
            meta: JobMeta,
            shards: Vec<ClusterPlan>,
            hint: u64,
        }
        let items: Vec<Item> = batch
            .into_iter()
            .filter_map(|AdmittedJob { job, work }| {
                let AdmittedWork::Tiled {
                    plans,
                    shard_cycles_hint,
                } = work
                else {
                    debug_assert!(false, "estimate admitted to the simulator backend");
                    return None;
                };
                Some(Item {
                    meta: JobMeta {
                        id: job.id,
                        label: job.label.clone(),
                        output_len: job.output_len(),
                        class: job.kind.class(),
                        home_cube: job.opts.home_cube,
                    },
                    shards: plans.into_iter().filter(|p| !p.is_empty()).collect(),
                    hint: shard_cycles_hint,
                })
            })
            .collect();
        let mut by_weight: Vec<usize> = (0..items.len()).collect();
        by_weight.sort_by_key(|&i| (std::cmp::Reverse(items[i].hint), i));
        let mut load = vec![0u64; n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut chosen_for: Vec<Vec<usize>> = vec![Vec::new(); items.len()];
        for &i in &by_weight {
            order.clear();
            order.extend(0..n);
            if self.config.affinity {
                let (id, home) = (items[i].meta.id, items[i].meta.home_cube);
                order.sort_by_key(|&c| (self.farm.remote_penalty(c, id, home), load[c], c));
            } else {
                order.sort_by_key(|&c| (load[c], c));
            }
            let mut chosen: Vec<usize> = order[..items[i].shards.len()].to_vec();
            chosen.sort_unstable();
            for &c in &chosen {
                load[c] += items[i].hint;
            }
            chosen_for[i] = chosen;
        }
        let placed = items
            .into_iter()
            .zip(chosen_for)
            .map(|(item, chosen)| PlacedJob {
                meta: item.meta,
                shards: chosen.into_iter().zip(item.shards).collect(),
            })
            .collect();
        self.farm.run_batch(placed, self.config.pipelined)
    }
}

/// The instant backend: answers from the roofline model.
#[derive(Debug)]
pub struct AnalyticalBackend {
    config: ScaleOutConfig,
    clusters: usize,
    freq_hz: f64,
    roofline: Roofline,
}

impl AnalyticalBackend {
    /// A model of the same system `config` describes.
    #[must_use]
    pub fn new(config: &ScaleOutConfig) -> Self {
        Self {
            config: *config,
            clusters: config.clusters,
            freq_hz: config.cluster.ntx_freq_hz,
            roofline: roofline_for(config),
        }
    }

    fn shards_for(&self, job: &Job) -> usize {
        heuristic_shards(job, &self.config, &self.roofline, self.freq_hz)
    }
}

impl Backend for AnalyticalBackend {
    fn admit(&mut self, job: &Job) -> Result<AdmittedWork, SchedError> {
        job.validate()?;
        let shards = self.shards_for(job);
        Ok(AdmittedWork::Estimated(estimate_for(
            job,
            shards,
            &self.roofline,
            self.freq_hz,
        )))
    }

    fn run_batch(&mut self, batch: Vec<AdmittedJob>) -> BatchResult {
        let results: Vec<JobResult> = batch
            .into_iter()
            .map(|AdmittedJob { job, work }| {
                let est = match work {
                    AdmittedWork::Estimated(e) => e,
                    AdmittedWork::Tiled { .. } | AdmittedWork::Native(_) => {
                        debug_assert!(false, "foreign plan admitted to the analytical backend");
                        estimate_for(&job, 1, &self.roofline, self.freq_hz)
                    }
                };
                let mut report = ScaleOutReport::new(self.clusters, self.freq_hz);
                report.makespan_cycles = est.cycles;
                JobResult {
                    job_id: job.id,
                    label: job.label,
                    output: Vec::new(),
                    report,
                    start_cycle: 0,
                    finish_cycle: est.cycles,
                    estimate: Some(est),
                    backend: BackendKind::Estimate,
                }
            })
            .collect();
        // Estimates spend no simulated time: the batch window is empty.
        BatchResult {
            results,
            report: ScaleOutReport::new(self.clusters, self.freq_hz),
        }
    }
}

/// The wire-speed backend: executes jobs directly on the host CPU
/// through [`ntx_cpu::NativeBackend`], sharded over the same worker
/// threads the farm's pool uses
/// ([`ScaleOutConfig::with_worker_threads`] / `NTX_WORKER_THREADS`).
///
/// Admission estimates start from the same roofline as the other
/// backends and are calibrated by a **private** [`DurationTable`]:
/// each executed job folds its measured wall-clock duration
/// (converted to NTX cycles at the cluster clock) into the per-class
/// EWMA, so after a handful of jobs the admission controller predicts
/// native latencies instead of accelerator latencies. The table is
/// deliberately not shared with the simulator's placement feedback —
/// host wall-clock and simulated shard cycles measure different
/// machines.
///
/// Exact mode ([`BackendKind::NativeExact`]) produces outputs
/// bit-identical to [`SimulatorBackend`] on every job kind; raw
/// command-stream jobs have no native lowering and are rejected at
/// admission.
#[derive(Debug)]
pub struct NativeHost {
    engine: ntx_cpu::NativeBackend,
    kind: BackendKind,
    clusters: usize,
    freq_hz: f64,
    roofline: Roofline,
    table: DurationTable,
}

impl NativeHost {
    /// A fast-mode host backend for the system `config` describes.
    #[must_use]
    pub fn fast(config: &ScaleOutConfig) -> Self {
        Self::new(config, ntx_cpu::NativeMode::Fast, BackendKind::NativeFast)
    }

    /// An exact-mode (bit-identical) host backend for `config`.
    #[must_use]
    pub fn exact(config: &ScaleOutConfig) -> Self {
        Self::new(config, ntx_cpu::NativeMode::Exact, BackendKind::NativeExact)
    }

    fn new(config: &ScaleOutConfig, mode: ntx_cpu::NativeMode, kind: BackendKind) -> Self {
        let threads = crate::farm::resolve_worker_threads(config.worker_threads);
        Self {
            engine: ntx_cpu::NativeBackend::new(mode).with_threads(threads),
            kind,
            clusters: config.clusters,
            freq_hz: config.cluster.ntx_freq_hz,
            roofline: roofline_for(config),
            table: DurationTable::new(),
        }
    }

    /// The wall-clock calibration table (introspection).
    #[must_use]
    pub fn table(&self) -> &DurationTable {
        &self.table
    }

    fn execute(&self, job: &Job) -> Vec<f32> {
        match &job.kind {
            JobKind::Axpy { a, x, y } => self.engine.axpy(*a, x, y),
            JobKind::Gemm { dims, a, b } => self.engine.gemm(dims, a, b),
            JobKind::Conv2d {
                kernel,
                image,
                weights,
            } => self.engine.conv2d(kernel, image, weights),
            JobKind::Stencil2d {
                height,
                width,
                grid,
            } => self
                .engine
                .stencil2d(*height as usize, *width as usize, grid),
            JobKind::Raw(_) => {
                debug_assert!(false, "raw job admitted to the native backend");
                Vec::new()
            }
        }
    }
}

impl Backend for NativeHost {
    fn admit(&mut self, job: &Job) -> Result<AdmittedWork, SchedError> {
        job.validate()?;
        if matches!(job.kind, JobKind::Raw(_)) {
            return Err(SchedError::Shape(
                "raw NTX command streams have no native lowering; \
                 submit them with BackendKind::Simulate"
                    .into(),
            ));
        }
        // The native backend runs each job as one unit (threading is
        // internal), so the estimate is the unsharded roofline bent by
        // the learned wall-clock ratio of this job class.
        let raw = estimate_for(job, 1, &self.roofline, self.freq_hz);
        let cycles = self.table.corrected_cycles(job.kind.class(), raw.cycles);
        Ok(AdmittedWork::Native(JobEstimate {
            cycles,
            seconds: cycles as f64 / self.freq_hz,
            ..raw
        }))
    }

    /// Executes each admitted job on the host CPU in batch order. The
    /// measured wall-clock duration becomes the result's makespan (in
    /// NTX cycles at the cluster clock) and is folded into the
    /// calibration EWMA against the **raw** roofline estimate — same
    /// discipline as the farm's placement feedback.
    fn run_batch(&mut self, batch: Vec<AdmittedJob>) -> BatchResult {
        let results: Vec<JobResult> = batch
            .into_iter()
            .map(|AdmittedJob { job, work }| {
                let est = match work {
                    AdmittedWork::Native(e) => e,
                    AdmittedWork::Tiled { .. } | AdmittedWork::Estimated(_) => {
                        debug_assert!(false, "foreign plan admitted to the native backend");
                        estimate_for(&job, 1, &self.roofline, self.freq_hz)
                    }
                };
                let t0 = std::time::Instant::now();
                let output = self.execute(&job);
                let wall = t0.elapsed().as_secs_f64();
                let measured = ((wall * self.freq_hz).round() as u64).max(1);
                let raw = estimate_for(&job, 1, &self.roofline, self.freq_hz);
                self.table.observe(job.kind.class(), raw.cycles, measured);
                let mut report = ScaleOutReport::new(self.clusters, self.freq_hz);
                report.makespan_cycles = measured;
                JobResult {
                    job_id: job.id,
                    label: job.label,
                    output,
                    report,
                    start_cycle: 0,
                    finish_cycle: measured,
                    estimate: Some(est),
                    backend: self.kind,
                }
            })
            .collect();
        // Native jobs spend no simulated farm time: the batch window
        // stays empty, mirroring the analytical backend.
        BatchResult {
            results,
            report: ScaleOutReport::new(self.clusters, self.freq_hz),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn axpy_job(n: usize) -> Job {
        Job::new(
            0,
            "axpy",
            JobKind::Axpy {
                a: 2.0,
                x: vec![1.0; n],
                y: vec![2.0; n],
            },
        )
    }

    #[test]
    fn estimates_are_roofline_consistent() {
        let config = ScaleOutConfig::with_clusters(4);
        let mut model = AnalyticalBackend::new(&config);
        let job = axpy_job(4096);
        let work = model.admit(&job).expect("valid job");
        let AdmittedWork::Estimated(est) = work else {
            panic!("analytical admission must estimate");
        };
        // AXPY is memory bound: 12 B and 2 flops per element.
        assert!(!est.compute_bound);
        assert_eq!(est.flops, 2 * 4096);
        assert_eq!(est.ext_bytes, 12 * 4096);
        assert!(est.cycles > 0);
    }

    #[test]
    fn small_jobs_get_few_shards_large_jobs_get_many() {
        let config = ScaleOutConfig::with_clusters(8);
        let model = AnalyticalBackend::new(&config);
        assert_eq!(model.shards_for(&axpy_job(64)), 1);
        assert_eq!(model.shards_for(&axpy_job(1 << 20)), 8);
    }

    #[test]
    fn continuous_feedback_observes_raw_estimates_not_corrected_hints() {
        // The EWMA's denominator must be the raw roofline estimate:
        // feeding the corrected placement hint back in would converge
        // the learned ratio to sqrt(true ratio) instead of the ratio.
        let mut table = DurationTable::new();
        for _ in 0..50 {
            table.observe(JobClass::Gemm, 1000, 1400);
        }
        assert!(
            (table.correction(JobClass::Gemm) - 1.4).abs() < 1e-9,
            "stable observations must converge to the true ratio, got {}",
            table.correction(JobClass::Gemm)
        );

        // And the farm reports exactly the raw estimate at retire,
        // while the placement hint carries the correction.
        let mut sim = SimulatorBackend::new(ScaleOutConfig::with_clusters(2));
        let mut table = DurationTable::new();
        table.observe(JobClass::Axpy, 1000, 2000); // correction 2.0
        let placement = sim.admit_continuous(&axpy_job(512), &table).expect("admit");
        let retire = sim.step_farm().expect("one shard queued");
        assert_eq!(
            placement.shard_cycles,
            table.corrected_cycles(JobClass::Axpy, retire.est_cycles),
            "hint must be the corrected form of the reported raw estimate"
        );
        assert!(retire.est_cycles < placement.shard_cycles);
        while sim.step_farm().is_some() {}
    }

    #[test]
    fn simulator_admits_oversized_gemm_as_streaming_tiles() {
        // A GEMM whose single-cluster shard overflows the TCDM is no
        // longer widened or rejected: the shard streams through M/N
        // output tiles at the sharding the heuristic asked for.
        let config = ScaleOutConfig {
            target_shard_cycles: u64::MAX, // heuristic says 1 shard
            ..ScaleOutConfig::with_clusters(4)
        };
        let mut sim = SimulatorBackend::new(config);
        let dims = ntx_kernels::blas::GemmKernel {
            m: 96,
            k: 96,
            n: 96,
        };
        let job = Job::new(
            0,
            "gemm",
            JobKind::Gemm {
                dims,
                a: vec![0.5; 96 * 96],
                b: vec![0.25; 96 * 96],
            },
        );
        let work = sim.admit(&job).expect("streams when oversized");
        let AdmittedWork::Tiled { plans, .. } = work else {
            panic!("simulator admission must tile");
        };
        let active: Vec<_> = plans.iter().filter(|p| !p.is_empty()).collect();
        assert_eq!(active.len(), 1, "no widening needed");
        assert!(
            active[0].tiles.len() > 1,
            "the shard streams as multiple output tiles"
        );
    }
}
