//! The client-facing submission API: persistent sessions and the
//! fluent job builder.
//!
//! A [`Session`] is a cheap, cloneable connection to a running
//! [`Server`](crate::Server) — the always-on farm of the companion
//! paper's HMC substrate. All submission surfaces funnel through one
//! fluent [`JobBuilder`]:
//!
//! ```
//! use ntx_kernels::blas::GemmKernel;
//! use ntx_sched::{Server, ServerConfig};
//! use std::time::Duration;
//!
//! let server = Server::start(ServerConfig::with_clusters(2));
//! let session = server.session();
//! let handle = session
//!     .job("gemm 16")
//!     .gemm(GemmKernel { m: 16, k: 16, n: 16 }, vec![1.0; 256], vec![0.5; 256])
//!     .priority(2)
//!     .deadline(Duration::from_secs(60))
//!     .submit()?;
//! let done = handle.wait()?;
//! assert_eq!(done.result.unwrap().output[0], 8.0);
//! let report = server.shutdown();
//! assert_eq!(report.jobs, 1);
//! # Ok::<(), ntx_sched::SchedError>(())
//! ```
//!
//! The same builder submits into a plain [`JobQueue`] for the
//! synchronous executor — the builder is generic over its [`JobSink`],
//! so `queue.job("axpy").axpy(a, x, y).submit()` and
//! `session.job("axpy").axpy(a, x, y).submit()` read identically; only
//! the receipt differs (a queue id vs a waitable
//! [`JobHandle`](crate::JobHandle)). The builder is type-state-safe: a
//! job's payload must be chosen (`gemm` / `conv2d` / `axpy` /
//! `stencil2d` / `raw` / `kind`) before serving options and `submit`
//! become available, so "submitted an empty job" is unrepresentable.

use ntx_kernels::blas::GemmKernel;
use ntx_kernels::conv::Conv2dKernel;
use std::time::Duration;

use crate::backend::BackendKind;
use crate::job::{JobKind, JobOpts, JobQueue, RawJob};
use crate::server::{Completion, JobHandle, ServerHandle};
use crate::SchedError;

/// Where a [`JobBuilder`] delivers its finished job. Implemented by
/// `&Session` (submission to the running farm, receipt =
/// `Result<JobHandle>`) and `&mut JobQueue` (enqueue for the
/// synchronous executor, receipt = the job id).
pub trait JobSink {
    /// What the sink hands back at submission.
    type Receipt;
    /// Accepts one fully-specified job, with its predecessor edges.
    fn accept(self, label: String, kind: JobKind, opts: JobOpts, deps: Vec<u64>) -> Self::Receipt;
}

impl JobSink for &mut JobQueue {
    type Receipt = u64;
    fn accept(self, label: String, kind: JobKind, opts: JobOpts, deps: Vec<u64>) -> u64 {
        self.enqueue(label, kind, opts, deps)
    }
}

impl JobSink for &Session {
    type Receipt = Result<JobHandle, SchedError>;
    fn accept(self, label: String, kind: JobKind, opts: JobOpts, deps: Vec<u64>) -> Self::Receipt {
        self.handle.send_handle(label, kind, opts, deps)
    }
}

/// A persistent client connection to a running [`Server`](crate::Server):
/// the entry point of the fluent submission API. Clone it freely — all
/// clones feed the same continuously-admitting farm, and each
/// [`JobBuilder::submit`](ReadyJob::submit) is admitted the moment a
/// cluster can take it, not at the next batch boundary.
#[derive(Debug, Clone)]
pub struct Session {
    pub(crate) handle: ServerHandle,
}

impl Session {
    /// Starts building a job with the given report label.
    pub fn job(&self, label: impl Into<String>) -> JobBuilder<&Session> {
        JobBuilder {
            sink: self,
            label: label.into(),
        }
    }
}

impl JobQueue {
    /// Starts building a job to enqueue; [`ReadyJob::submit`] returns
    /// the queue-assigned id.
    pub fn job(&mut self, label: impl Into<String>) -> JobBuilder<&mut JobQueue> {
        JobBuilder {
            sink: self,
            label: label.into(),
        }
    }
}

/// A job under construction: has a label and a sink, still needs its
/// payload. Every payload method moves to [`ReadyJob`], where serving
/// options and submission live.
#[derive(Debug)]
pub struct JobBuilder<S: JobSink> {
    sink: S,
    label: String,
}

impl<S: JobSink> JobBuilder<S> {
    /// An explicit, pre-built [`JobKind`] payload.
    pub fn kind(self, kind: JobKind) -> ReadyJob<S> {
        ReadyJob {
            sink: self.sink,
            label: self.label,
            kind,
            opts: JobOpts::default(),
            deps: Vec::new(),
        }
    }

    /// `C = A*B` with row-major `a` (`m x k`) and `b` (`k x n`).
    pub fn gemm(self, dims: GemmKernel, a: Vec<f32>, b: Vec<f32>) -> ReadyJob<S> {
        self.kind(JobKind::Gemm { dims, a, b })
    }

    /// Multi-filter 2-D convolution of `image` with `weights`.
    pub fn conv2d(self, kernel: Conv2dKernel, image: Vec<f32>, weights: Vec<f32>) -> ReadyJob<S> {
        self.kind(JobKind::Conv2d {
            kernel,
            image,
            weights,
        })
    }

    /// `y = a*x + y`.
    pub fn axpy(self, a: f32, x: Vec<f32>, y: Vec<f32>) -> ReadyJob<S> {
        self.kind(JobKind::Axpy { a, x, y })
    }

    /// The 2-D discrete Laplace stencil over a `height x width` grid.
    pub fn stencil2d(self, height: u32, width: u32, grid: Vec<f32>) -> ReadyJob<S> {
        self.kind(JobKind::Stencil2d {
            height,
            width,
            grid,
        })
    }

    /// A raw NTX command (see [`RawJob`]).
    pub fn raw(self, raw: RawJob) -> ReadyJob<S> {
        self.kind(JobKind::Raw(raw))
    }
}

/// A fully-specified job: payload chosen, serving options adjustable,
/// ready to [`submit`](ReadyJob::submit).
#[derive(Debug)]
pub struct ReadyJob<S: JobSink> {
    sink: S,
    label: String,
    kind: JobKind,
    opts: JobOpts,
    deps: Vec<u64>,
}

impl<S: JobSink> ReadyJob<S> {
    /// Sets the serving priority (higher runs earlier when several
    /// submissions are pending at once).
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.opts.priority = priority;
        self
    }

    /// Sets a wall-clock completion deadline, measured from submission.
    /// Reporting only — misses are counted, never enforced; see
    /// [`deadline_cycles`](Self::deadline_cycles) for the enforced
    /// variant.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.opts.deadline = Some(deadline);
        self
    }

    /// Sets an **enforced** completion deadline in virtual farm
    /// cycles, measured from admission: continuous admission sheds the
    /// job with [`SchedError::DeadlineUnmeetable`] when the placement
    /// estimate already proves the deadline unmeetable, instead of
    /// burning farm time on a guaranteed miss.
    #[must_use]
    pub fn deadline_cycles(mut self, cycles: u64) -> Self {
        self.opts.deadline_cycles = Some(cycles);
        self
    }

    /// Selects the executing backend.
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.opts.backend = backend;
        self
    }

    /// Pins the job's data to mesh cube `cube` (farms running on
    /// [`MemoryModel::HmcMesh`](ntx_mem::MemoryModel::HmcMesh) only;
    /// out-of-range indices wrap, non-mesh farms ignore it). Without
    /// this, jobs spread round-robin over the cubes by id.
    #[must_use]
    pub fn home_cube(mut self, cube: u32) -> Self {
        self.opts.home_cube = Some(cube);
        self
    }

    /// Shorthand for [`backend`](Self::backend)`(BackendKind::Estimate)`:
    /// answer instantly from the roofline model, no simulation.
    #[must_use]
    pub fn estimate(self) -> Self {
        self.backend(BackendKind::Estimate)
    }

    /// Shorthand for [`backend`](Self::backend)`(BackendKind::NativeFast)`:
    /// execute on the host CPU at wire speed with the fast
    /// multi-accumulator reduction.
    #[must_use]
    pub fn native_fast(self) -> Self {
        self.backend(BackendKind::NativeFast)
    }

    /// Shorthand for [`backend`](Self::backend)`(BackendKind::NativeExact)`:
    /// execute on the host CPU through the wide Kulisch accumulator,
    /// bit-identical to the simulator.
    #[must_use]
    pub fn native_exact(self) -> Self {
        self.backend(BackendKind::NativeExact)
    }

    /// Replaces all serving options at once (migration aid for callers
    /// that already hold a [`JobOpts`]).
    #[must_use]
    pub fn opts(mut self, opts: JobOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Runs this job only after the job behind `handle` has completed.
    ///
    /// Dependency edges are **ordering-only**: the continuous server
    /// admits this job the event the predecessor's completion is
    /// delivered — whatever its outcome, so a failed predecessor still
    /// releases its dependents (check the predecessor's own
    /// [`Completion`] to react to failures). Chains of `after` calls
    /// accumulate; the job waits for *all* recorded predecessors.
    /// Predecessors that never complete before shutdown fail this job
    /// with [`SchedError::DependencyDropped`]. Edges are honored by
    /// continuous admission and by FIFO [`JobQueue`] execution (when
    /// predecessors are enqueued first); wave admission ignores them.
    #[must_use]
    pub fn after(mut self, handle: &crate::JobHandle) -> Self {
        self.deps.push(handle.id);
        self
    }

    /// Runs this job only after every job in `handles` has completed
    /// (see [`after`](Self::after) for the edge semantics).
    #[must_use]
    pub fn after_all<'a>(
        mut self,
        handles: impl IntoIterator<Item = &'a crate::JobHandle>,
    ) -> Self {
        self.deps.extend(handles.into_iter().map(|h| h.id));
        self
    }

    /// Records a predecessor by raw submission id — for callers that
    /// kept the id of a callback submission instead of a
    /// [`JobHandle`](crate::JobHandle) (see [`after`](Self::after) for
    /// the edge semantics). An id that is never submitted parks the
    /// job until shutdown fails it with
    /// [`SchedError::DependencyDropped`].
    #[must_use]
    pub fn after_id(mut self, id: u64) -> Self {
        self.deps.push(id);
        self
    }

    /// Submits the job to the sink and returns its receipt: a
    /// [`JobHandle`](crate::JobHandle) from a [`Session`], the job id
    /// from a [`JobQueue`].
    pub fn submit(self) -> S::Receipt {
        self.sink
            .accept(self.label, self.kind, self.opts, self.deps)
    }
}

impl ReadyJob<&Session> {
    /// Submits the job with completion delivered to `callback` on the
    /// server's worker thread instead of a handle; returns the
    /// submission id.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server is no longer running,
    /// [`SchedError::Backpressure`] when its bounded admission queue
    /// is full.
    pub fn submit_callback(
        self,
        callback: impl FnOnce(Completion) + Send + 'static,
    ) -> Result<u64, SchedError> {
        self.sink
            .handle
            .send_callback(self.label, self.kind, self.opts, self.deps, callback)
    }

    /// Blocking variant of [`submit`](Self::submit): when the server's
    /// bounded admission queue is full, waits for a slot instead of
    /// returning [`SchedError::Backpressure`] — the closed-loop
    /// client's natural submission call.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server is no longer running.
    pub fn submit_wait(self) -> Result<crate::JobHandle, SchedError> {
        self.sink
            .handle
            .send_handle_wait(self.label, self.kind, self.opts, self.deps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_builder_enqueues_with_options() {
        let mut q = JobQueue::new();
        let id = q
            .job("axpy")
            .axpy(2.0, vec![1.0; 8], vec![0.0; 8])
            .priority(3)
            .deadline(Duration::from_secs(5))
            .home_cube(2)
            .estimate()
            .submit();
        assert_eq!(id, 0);
        let job = q.pop().unwrap();
        assert_eq!(job.label, "axpy");
        assert_eq!(job.opts.priority, 3);
        assert_eq!(job.opts.deadline, Some(Duration::from_secs(5)));
        assert_eq!(job.opts.home_cube, Some(2));
        assert_eq!(job.opts.backend, BackendKind::Estimate);
    }

    #[test]
    fn mesh_homes_round_robin_by_default() {
        use crate::ClusterFarm;
        use ntx_mem::{MemoryModel, MeshConfig};
        use ntx_sim::ClusterConfig;
        let farm = ClusterFarm::with_memory(
            4,
            ClusterConfig::default(),
            MemoryModel::HmcMesh(MeshConfig::default().with_cubes(2)),
        );
        let mut q = JobQueue::new();
        for i in 0..4 {
            q.job(format!("j{i}"))
                .axpy(1.0, vec![1.0; 4], vec![0.0; 4])
                .submit();
        }
        // An explicit out-of-range cube wraps instead of panicking.
        q.job("pinned")
            .axpy(1.0, vec![1.0; 4], vec![0.0; 4])
            .home_cube(5)
            .submit();
        let homes: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|job| {
                farm.home_cube(job.id, job.opts.home_cube)
                    .expect("mesh farm resolves a home for every job")
            })
            .collect();
        // Unpinned jobs round-robin over the cubes by id; the pinned
        // one (id 4, cube 5) wraps to 5 % 2 = 1.
        assert_eq!(homes, vec![0, 1, 0, 1, 1]);
        // Off-mesh farms have no homes at all.
        let flat = ClusterFarm::with_memory(2, ClusterConfig::default(), MemoryModel::Ideal);
        assert_eq!(flat.home_cube(0, Some(1)), None);
    }

    #[test]
    fn builder_covers_every_kind() {
        let mut q = JobQueue::new();
        q.job("gemm")
            .gemm(GemmKernel { m: 2, k: 2, n: 2 }, vec![0.0; 4], vec![0.0; 4])
            .submit();
        q.job("conv")
            .conv2d(
                Conv2dKernel {
                    height: 3,
                    width: 3,
                    k: 3,
                    filters: 1,
                },
                vec![0.0; 9],
                vec![0.0; 9],
            )
            .submit();
        q.job("stencil").stencil2d(3, 3, vec![0.0; 9]).submit();
        assert_eq!(q.len(), 3);
        let classes: Vec<_> = q.iter().map(|j| j.kind.class()).collect();
        use crate::job::JobClass;
        assert_eq!(
            classes,
            vec![JobClass::Gemm, JobClass::Conv2d, JobClass::Stencil2d]
        );
    }
}
