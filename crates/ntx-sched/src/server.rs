//! The async job-serving front-end.
//!
//! [`Server`] owns a worker thread running a
//! [`ScaleOutExecutor`](crate::ScaleOutExecutor); any number of client
//! threads submit jobs through cloned [`ServerHandle`]s over an mpsc
//! channel. The worker gathers pending submissions into *waves*,
//! orders each wave by priority (then submission order), runs it
//! through the pipelined farm — so one wave's jobs overlap across the
//! clusters — and delivers a [`Completion`] per job, either through
//! the [`JobHandle`] returned at submission or through a callback.
//! Per-job wall-clock deadlines are checked at completion and reported
//! both per job and in the final [`ServingReport`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::executor::{JobResult, ScaleOutConfig, ScaleOutExecutor};
use crate::job::{Job, JobKind, JobOpts, JobQueue};
use crate::SchedError;

/// Configuration of the serving front-end.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// The executor the worker runs.
    pub scale_out: ScaleOutConfig,
    /// Maximum submissions gathered into one scheduling wave.
    pub max_wave: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            scale_out: ScaleOutConfig::default(),
            max_wave: 64,
        }
    }
}

impl ServerConfig {
    /// A server over `clusters` default-configured clusters.
    #[must_use]
    pub fn with_clusters(clusters: usize) -> Self {
        Self {
            scale_out: ScaleOutConfig::with_clusters(clusters),
            ..Self::default()
        }
    }
}

/// What a client gets back for one submission.
#[derive(Debug)]
pub struct Completion {
    /// Submission id (matches [`JobHandle::id`]).
    pub id: u64,
    /// The job's result, or why it was rejected.
    pub result: Result<JobResult, SchedError>,
    /// Wall-clock time from submission to completion (includes wave
    /// batching and any simulation ahead of this job).
    pub latency: Duration,
    /// True when the job carried a deadline and `latency` overran it.
    pub deadline_missed: bool,
}

/// How a completion travels back to the client.
enum Reply {
    Handle(Sender<Completion>),
    Callback(Box<dyn FnOnce(Completion) + Send + 'static>),
}

/// One submission in flight.
struct Submission {
    id: u64,
    label: String,
    kind: JobKind,
    opts: JobOpts,
    submitted: Instant,
    reply: Reply,
}

/// Channel protocol between handles and the worker. The explicit
/// shutdown sentinel lets [`Server::shutdown`] stop the worker even
/// while cloned [`ServerHandle`]s keep the channel alive.
enum Msg {
    Submit(Box<Submission>),
    Shutdown,
}

/// Client-side handle to one submitted job.
#[derive(Debug)]
pub struct JobHandle {
    /// Submission id (also the `job_id` of the eventual result).
    pub id: u64,
    rx: Receiver<Completion>,
}

impl JobHandle {
    /// Blocks until the job completes.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server dropped the job (it was
    /// shut down before the wave ran).
    pub fn wait(self) -> Result<Completion, SchedError> {
        self.rx.recv().map_err(|_| SchedError::Shutdown)
    }

    /// Non-blocking poll; `Ok(None)` while the job is still in flight.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server dropped the job — a
    /// poller must stop then, the completion will never arrive.
    pub fn try_wait(&mut self) -> Result<Option<Completion>, SchedError> {
        match self.rx.try_recv() {
            Ok(c) => Ok(Some(c)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(SchedError::Shutdown),
        }
    }
}

/// Cloneable submission endpoint; safe to share across client threads.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    tx: Sender<Msg>,
    seq: Arc<AtomicU64>,
}

impl ServerHandle {
    /// Submits a job with default options; returns its handle.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server is no longer running.
    pub fn submit(&self, label: impl Into<String>, kind: JobKind) -> Result<JobHandle, SchedError> {
        self.submit_with(label, kind, JobOpts::default())
    }

    /// Submits a job with explicit options; returns its handle.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server is no longer running.
    pub fn submit_with(
        &self,
        label: impl Into<String>,
        kind: JobKind,
        opts: JobOpts,
    ) -> Result<JobHandle, SchedError> {
        let (tx, rx) = channel();
        let id = self.send(label.into(), kind, opts, Reply::Handle(tx))?;
        Ok(JobHandle { id, rx })
    }

    /// Submits a job whose completion is delivered to `callback` on the
    /// worker thread instead of a handle; returns the submission id.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server is no longer running.
    pub fn submit_callback(
        &self,
        label: impl Into<String>,
        kind: JobKind,
        opts: JobOpts,
        callback: impl FnOnce(Completion) + Send + 'static,
    ) -> Result<u64, SchedError> {
        self.send(
            label.into(),
            kind,
            opts,
            Reply::Callback(Box::new(callback)),
        )
    }

    fn send(
        &self,
        label: String,
        kind: JobKind,
        opts: JobOpts,
        reply: Reply,
    ) -> Result<u64, SchedError> {
        let id = self.seq.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Msg::Submit(Box::new(Submission {
                id,
                label,
                kind,
                opts,
                submitted: Instant::now(),
                reply,
            })))
            .map(|()| id)
            .map_err(|_| SchedError::Shutdown)
    }
}

/// Aggregate serving statistics, returned by [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Clusters in the farm.
    pub clusters: usize,
    /// Jobs completed (including failures).
    pub jobs: u64,
    /// Jobs executed bit-accurately on the farm.
    pub simulated: u64,
    /// Jobs answered by the analytical backend.
    pub estimated: u64,
    /// Jobs rejected at admission.
    pub failed: u64,
    /// Scheduling waves executed.
    pub waves: u64,
    /// Jobs whose wall-clock deadline was missed.
    pub deadline_misses: u64,
    /// Wall-clock seconds from server start to shutdown.
    pub wall_seconds: f64,
    /// Sum of per-job wall-clock latencies.
    pub total_latency: Duration,
    /// Largest per-job wall-clock latency.
    pub max_latency: Duration,
    /// Simulated makespan cycles over all waves (pipelined accounting).
    pub makespan_cycles: u64,
    /// Cluster-cycles actually spent executing shards.
    pub busy_cluster_cycles: u64,
}

impl ServingReport {
    fn new(clusters: usize) -> Self {
        Self {
            clusters,
            jobs: 0,
            simulated: 0,
            estimated: 0,
            failed: 0,
            waves: 0,
            deadline_misses: 0,
            wall_seconds: 0.0,
            total_latency: Duration::ZERO,
            max_latency: Duration::ZERO,
            makespan_cycles: 0,
            busy_cluster_cycles: 0,
        }
    }

    /// Completed jobs per wall-clock second.
    #[must_use]
    pub fn jobs_per_second(&self) -> f64 {
        if self.wall_seconds == 0.0 {
            0.0
        } else {
            self.jobs as f64 / self.wall_seconds
        }
    }

    /// Mean per-job wall-clock latency.
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        if self.jobs == 0 {
            Duration::ZERO
        } else {
            self.total_latency / u32::try_from(self.jobs).unwrap_or(u32::MAX)
        }
    }

    /// Fraction of cluster-cycles inside the serving makespan that
    /// executed shard work (1.0 = every cluster busy the whole time).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let total = self.makespan_cycles.saturating_mul(self.clusters as u64);
        if total == 0 {
            0.0
        } else {
            self.busy_cluster_cycles as f64 / total as f64
        }
    }
}

/// The serving front-end: an executor on a worker thread behind an
/// mpsc submission channel.
#[derive(Debug)]
pub struct Server {
    handle: ServerHandle,
    worker: Option<JoinHandle<ServingReport>>,
}

impl Server {
    /// Starts the worker thread.
    #[must_use]
    pub fn start(config: ServerConfig) -> Self {
        let (tx, rx) = channel();
        let worker = std::thread::spawn(move || worker_loop(&rx, config));
        Self {
            handle: ServerHandle {
                tx,
                seq: Arc::new(AtomicU64::new(0)),
            },
            worker: Some(worker),
        }
    }

    /// A cloneable submission endpoint for client threads.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Submits from the owning thread (see [`ServerHandle::submit`]).
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the worker has exited.
    pub fn submit(&self, label: impl Into<String>, kind: JobKind) -> Result<JobHandle, SchedError> {
        self.handle.submit(label, kind)
    }

    /// Submits with options (see [`ServerHandle::submit_with`]).
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the worker has exited.
    pub fn submit_with(
        &self,
        label: impl Into<String>,
        kind: JobKind,
        opts: JobOpts,
    ) -> Result<JobHandle, SchedError> {
        self.handle.submit_with(label, kind, opts)
    }

    /// Stops the worker after every submission enqueued before this
    /// call has been served, and returns the aggregate serving
    /// statistics. Cloned handles outliving the server see
    /// [`SchedError::Shutdown`] on their next submission; handles of
    /// jobs the worker never reached disconnect.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread itself panicked.
    #[must_use]
    pub fn shutdown(mut self) -> ServingReport {
        // Ignore the send error: a worker that already exited (it only
        // does so on this sentinel or a panic) needs no nudge.
        drop(self.handle.tx.send(Msg::Shutdown));
        self.worker
            .take()
            .expect("worker joined once")
            .join()
            .expect("serving worker panicked")
    }
}

/// Delivers one completion and folds it into the running statistics.
fn deliver(
    stats: &mut ServingReport,
    submitted: Instant,
    deadline: Option<Duration>,
    reply: Reply,
    id: u64,
    result: Result<JobResult, SchedError>,
) {
    let latency = submitted.elapsed();
    let deadline_missed = deadline.is_some_and(|d| latency > d);
    stats.jobs += 1;
    match &result {
        Ok(r) if r.estimate.is_some() => stats.estimated += 1,
        Ok(_) => stats.simulated += 1,
        Err(_) => stats.failed += 1,
    }
    if deadline_missed {
        stats.deadline_misses += 1;
    }
    stats.total_latency += latency;
    stats.max_latency = stats.max_latency.max(latency);
    let completion = Completion {
        id,
        result,
        latency,
        deadline_missed,
    };
    match reply {
        // A client that dropped its handle just doesn't hear back.
        Reply::Handle(tx) => drop(tx.send(completion)),
        // One misbehaving callback must not take down the worker (and
        // with it every other client's in-flight jobs); the panic is
        // contained to this delivery.
        Reply::Callback(cb) => {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cb(completion)));
        }
    }
}

/// One pending wave entry: everything needed to route the completion.
struct Pending {
    submitted: Instant,
    deadline: Option<Duration>,
    reply: Reply,
}

fn worker_loop(rx: &Receiver<Msg>, config: ServerConfig) -> ServingReport {
    let mut exec = ScaleOutExecutor::new(config.scale_out);
    let mut stats = ServingReport::new(config.scale_out.clusters);
    let t0 = Instant::now();
    let mut done = false;
    while !done {
        let first = match rx.recv() {
            Ok(Msg::Submit(s)) => *s,
            Ok(Msg::Shutdown) | Err(_) => break,
        };
        // Gather a wave: everything already queued, up to the cap.
        let mut wave = vec![first];
        while wave.len() < config.max_wave.max(1) {
            match rx.try_recv() {
                Ok(Msg::Submit(s)) => wave.push(*s),
                Ok(Msg::Shutdown) => {
                    done = true;
                    break;
                }
                Err(_) => break,
            }
        }
        // Priority order; submission order breaks ties.
        wave.sort_by_key(|s| (std::cmp::Reverse(s.opts.priority), s.id));
        stats.waves += 1;

        let mut queue = JobQueue::new();
        let mut pending: Vec<(u64, Pending)> = Vec::with_capacity(wave.len());
        for s in wave {
            let job = Job {
                id: s.id,
                label: s.label,
                kind: s.kind,
                opts: s.opts,
            };
            let p = Pending {
                submitted: s.submitted,
                deadline: s.opts.deadline,
                reply: s.reply,
            };
            // Reject malformed submissions before the wave runs:
            // admitting them through run_queue would re-plan the whole
            // remaining wave once per bad job.
            if let Err(e) = job.validate() {
                deliver(&mut stats, p.submitted, p.deadline, p.reply, job.id, Err(e));
                continue;
            }
            queue.push_job(job);
            pending.push((s.id, p));
        }
        let take = |pending: &mut Vec<(u64, Pending)>, id: u64| -> Option<Pending> {
            pending
                .iter()
                .position(|(pid, _)| *pid == id)
                .map(|i| pending.remove(i).1)
        };
        // Run the wave; a job rejected at admission (e.g. no feasible
        // sharding) fails alone — its completion says why — and the
        // rest of the wave is retried without it.
        loop {
            if queue.is_empty() {
                break;
            }
            match exec.run_queue(&mut queue) {
                Ok(batch) => {
                    for r in batch.results {
                        if let Some(p) = take(&mut pending, r.job_id) {
                            deliver(
                                &mut stats,
                                p.submitted,
                                p.deadline,
                                p.reply,
                                r.job_id,
                                Ok(r),
                            );
                        }
                    }
                    stats.makespan_cycles += batch.report.makespan_cycles;
                    stats.busy_cluster_cycles += batch
                        .report
                        .per_cluster
                        .iter()
                        .map(|p| p.cycles)
                        .sum::<u64>();
                    break;
                }
                Err(SchedError::Job { id, source, .. }) => {
                    if let Some(p) = take(&mut pending, id) {
                        deliver(
                            &mut stats,
                            p.submitted,
                            p.deadline,
                            p.reply,
                            id,
                            Err(*source),
                        );
                    }
                    // run_queue leaves the queue intact on admission
                    // failure; rebuild it without the rejected job.
                    let mut rest = JobQueue::new();
                    while let Some(job) = queue.pop() {
                        if job.id != id {
                            rest.push_job(job);
                        }
                    }
                    queue = rest;
                }
                Err(e) => {
                    // Executor-level failure: fail the remaining wave.
                    while let Some(job) = queue.pop() {
                        if let Some(p) = take(&mut pending, job.id) {
                            deliver(
                                &mut stats,
                                p.submitted,
                                p.deadline,
                                p.reply,
                                job.id,
                                Err(e.clone()),
                            );
                        }
                    }
                    break;
                }
            }
        }
    }
    stats.wall_seconds = t0.elapsed().as_secs_f64();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;

    fn axpy(n: usize, seed: u32) -> JobKind {
        let data = |mut s: u32| -> Vec<f32> {
            (0..n)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 17;
                    s ^= s << 5;
                    ((s % 64) as f32 - 32.0) / 16.0
                })
                .collect()
        };
        JobKind::Axpy {
            a: 2.0,
            x: data(seed),
            y: data(seed.wrapping_add(1)),
        }
    }

    #[test]
    fn serves_multiple_clients_and_reports() {
        let server = Server::start(ServerConfig::with_clusters(2));
        let mut handles = Vec::new();
        let mut threads = Vec::new();
        for t in 0..3u32 {
            let h = server.handle();
            threads.push(std::thread::spawn(move || {
                h.submit(format!("client-{t}"), axpy(300 + t as usize * 100, t + 1))
                    .expect("server running")
            }));
        }
        for t in threads {
            handles.push(t.join().expect("client thread"));
        }
        for h in handles {
            let c = h.wait().expect("job served");
            let r = c.result.expect("valid job");
            assert!(!r.output.is_empty());
            assert!(!c.deadline_missed);
        }
        let report = server.shutdown();
        assert_eq!(report.jobs, 3);
        assert_eq!(report.simulated, 3);
        assert_eq!(report.failed, 0);
        assert!(report.jobs_per_second() > 0.0);
        assert!(report.makespan_cycles > 0);
        assert!(report.occupancy() > 0.0);
    }

    #[test]
    fn bad_job_fails_alone_and_estimates_flow_through() {
        let server = Server::start(ServerConfig::with_clusters(2));
        let good = server.submit("good", axpy(256, 7)).unwrap();
        let bad = server
            .submit(
                "bad",
                JobKind::Axpy {
                    a: 1.0,
                    x: vec![1.0; 4],
                    y: vec![1.0; 3],
                },
            )
            .unwrap();
        let est = server
            .submit_with(
                "estimate",
                axpy(4096, 9),
                JobOpts {
                    backend: BackendKind::Estimate,
                    ..JobOpts::default()
                },
            )
            .unwrap();
        let g = good.wait().unwrap();
        assert!(g.result.is_ok());
        let b = bad.wait().unwrap();
        assert!(matches!(b.result, Err(SchedError::Shape(_))));
        let e = e_unwrap(est.wait().unwrap());
        assert!(e.estimate.is_some());
        let report = server.shutdown();
        assert_eq!(report.jobs, 3);
        assert_eq!(report.failed, 1);
        assert_eq!(report.estimated, 1);
    }

    fn e_unwrap(c: Completion) -> JobResult {
        c.result.expect("estimate served")
    }

    #[test]
    fn callbacks_and_deadlines() {
        let server = Server::start(ServerConfig::with_clusters(1));
        let (tx, rx) = channel();
        server
            .handle()
            .submit_callback(
                "cb",
                axpy(200, 3),
                JobOpts::default().with_deadline(Duration::from_secs(3600)),
                move |c| {
                    let _ = tx.send((c.id, c.deadline_missed, c.result.is_ok()));
                },
            )
            .expect("server running");
        let (_, missed, ok) = rx.recv().expect("callback fired");
        assert!(ok);
        assert!(!missed);
        // An already-expired deadline is reported as missed.
        let h = server
            .submit_with(
                "late",
                axpy(200, 5),
                JobOpts::default().with_deadline(Duration::ZERO),
            )
            .unwrap();
        let c = h.wait().unwrap();
        assert!(c.deadline_missed);
        let report = server.shutdown();
        assert_eq!(report.deadline_misses, 1);
        // Submission after shutdown is a clean error — the handle's
        // channel is gone.
        // (The server itself is consumed by shutdown, so clients see
        // Shutdown through their cloned handles.)
    }

    #[test]
    fn handles_survive_shutdown_ordering() {
        let server = Server::start(ServerConfig::with_clusters(1));
        let handle = server.handle();
        let h = server.submit("pre", axpy(128, 11)).unwrap();
        let report = server.shutdown();
        assert_eq!(report.jobs, 1);
        // The in-flight job was drained before shutdown returned.
        assert!(h.wait().is_ok());
        // New submissions are rejected.
        assert!(matches!(
            handle.submit("post", axpy(16, 1)),
            Err(SchedError::Shutdown)
        ));
    }
}
