//! The always-on job-serving front-end.
//!
//! [`Server`] owns a worker thread driving the scale-out backends; any
//! number of client threads submit jobs through cloned [`Session`]s
//! (see [`Server::session`]) over an mpsc channel. Two admission
//! modes, selected by [`ServerConfig::admission`]:
//!
//! * [`AdmissionMode::Continuous`] (the **default**) — the farm runs
//!   as a persistent service. Every submission is validated, planned
//!   and placed onto the least-loaded clusters the moment it arrives
//!   (graded cluster subsets sized by the measured-duration
//!   [`DurationTable`]); the worker interleaves admission with
//!   per-shard farm events ([`ClusterFarm::step`]) and delivers each
//!   [`Completion`] the event its last shard retires. A late-arriving
//!   small job lands on whichever cluster frees up first instead of
//!   waiting for an entire wave to retire.
//! * [`AdmissionMode::Wave`] — the PR 3 batching reference: pending
//!   submissions are gathered into priority-ordered waves and each
//!   wave runs to completion before its completions are delivered.
//!   Kept as the differential baseline the benchmarks compare
//!   continuous admission against.
//!
//! Per-job wall-clock deadlines are checked at completion and reported
//! both per job and in the final [`ServingReport`].
//!
//! [`ClusterFarm::step`]: crate::ClusterFarm::step
//! [`DurationTable`]: crate::DurationTable

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::backend::{
    AdmittedJob, AnalyticalBackend, Backend, BackendKind, DurationTable, NativeHost,
    SimulatorBackend,
};
use crate::executor::{JobResult, ScaleOutConfig, ScaleOutExecutor};
use crate::job::{Job, JobKind, JobOpts, JobQueue};
use crate::report::ServingReport;
use crate::session::Session;
use crate::SchedError;

/// How the worker admits submissions into the farm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Feed each job into the running farm the moment it arrives and
    /// deliver its completion the event its last shard retires (the
    /// default).
    #[default]
    Continuous,
    /// Gather pending submissions into priority-ordered waves and run
    /// each wave to completion before delivering (the PR 3 reference
    /// behaviour). Wave admission does **not** honor dependency edges
    /// ([`ReadyJob::after`](crate::session::ReadyJob::after)) — waves
    /// order by priority alone; DAG clients need continuous admission.
    Wave,
}

/// Configuration of the serving front-end.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// The scale-out system the worker runs.
    pub scale_out: ScaleOutConfig,
    /// Maximum submissions gathered into one scheduling round (a wave
    /// in wave mode; an admission group in continuous mode).
    pub max_wave: usize,
    /// Admission mode (continuous by default).
    pub admission: AdmissionMode,
    /// Bound on submissions in flight (accepted but not yet
    /// completed). When full, `submit` returns
    /// [`SchedError::Backpressure`] immediately and
    /// [`submit_wait`](crate::session::ReadyJob::submit_wait) blocks
    /// for a slot. `0` (the default) means unbounded — the
    /// pre-overload-control behaviour.
    pub queue_limit: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            scale_out: ScaleOutConfig::default(),
            max_wave: 64,
            admission: AdmissionMode::default(),
            queue_limit: 0,
        }
    }
}

impl ServerConfig {
    /// A server over `clusters` default-configured clusters.
    #[must_use]
    pub fn with_clusters(clusters: usize) -> Self {
        Self {
            scale_out: ScaleOutConfig::with_clusters(clusters),
            ..Self::default()
        }
    }

    /// Selects wave-batched admission (the differential baseline).
    #[must_use]
    pub fn wave_batched(mut self) -> Self {
        self.admission = AdmissionMode::Wave;
        self
    }

    /// Serves against one shared HMC instead of ideal private
    /// memories (see
    /// [`ScaleOutConfig::with_shared_hmc`](crate::ScaleOutConfig::with_shared_hmc)).
    #[must_use]
    pub fn with_shared_hmc(mut self, hmc: ntx_mem::HmcConfig) -> Self {
        self.scale_out = self.scale_out.with_shared_hmc(hmc);
        self
    }

    /// Serves against a multi-cube HMC mesh with home-cube data
    /// placement (see
    /// [`ScaleOutConfig::with_hmc_mesh`](crate::ScaleOutConfig::with_hmc_mesh)).
    #[must_use]
    pub fn with_hmc_mesh(mut self, mesh: ntx_mem::MeshConfig) -> Self {
        self.scale_out = self.scale_out.with_hmc_mesh(mesh);
        self
    }

    /// Bounds the number of submissions in flight (overload control):
    /// when `limit` are pending, non-blocking submission returns
    /// [`SchedError::Backpressure`] instead of growing the backlog.
    #[must_use]
    pub fn with_queue_limit(mut self, limit: usize) -> Self {
        self.queue_limit = limit;
        self
    }

    /// Arms a deterministic chaos schedule on the served farm (see
    /// [`ScaleOutConfig::with_faults`](crate::ScaleOutConfig::with_faults)).
    #[must_use]
    pub fn with_faults(mut self, faults: crate::FaultPlan) -> Self {
        self.scale_out = self.scale_out.with_faults(faults);
        self
    }

    /// Sets the worker-pool width of the served farm (see
    /// [`ScaleOutConfig::with_worker_threads`](crate::ScaleOutConfig::with_worker_threads)).
    #[must_use]
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.scale_out = self.scale_out.with_worker_threads(threads);
        self
    }
}

/// The shared admission gauge: how many submissions are in flight
/// (from `submit` until their completion is delivered), bounded by
/// [`ServerConfig::queue_limit`]. Clients acquire a slot before
/// sending; the worker releases it at delivery. A closed gauge (worker
/// exited) fails all acquisition so blocked submitters wake up.
#[derive(Debug)]
struct AdmissionGauge {
    limit: usize,
    state: Mutex<GaugeState>,
    cv: Condvar,
    rejected: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeState {
    in_flight: usize,
    closed: bool,
}

impl AdmissionGauge {
    fn new(limit: usize) -> Self {
        Self {
            limit,
            state: Mutex::new(GaugeState::default()),
            cv: Condvar::new(),
            rejected: AtomicU64::new(0),
        }
    }

    /// Claims a slot or fails fast: [`SchedError::Backpressure`] when
    /// the bound is hit, [`SchedError::Shutdown`] when the worker is
    /// gone.
    fn try_acquire(&self) -> Result<(), SchedError> {
        let mut s = self.state.lock().expect("gauge poisoned");
        if s.closed {
            return Err(SchedError::Shutdown);
        }
        if self.limit > 0 && s.in_flight >= self.limit {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SchedError::Backpressure { limit: self.limit });
        }
        s.in_flight += 1;
        Ok(())
    }

    /// Claims a slot, blocking while the queue is full.
    fn acquire_blocking(&self) -> Result<(), SchedError> {
        let mut s = self.state.lock().expect("gauge poisoned");
        while !s.closed && self.limit > 0 && s.in_flight >= self.limit {
            s = self.cv.wait(s).expect("gauge poisoned");
        }
        if s.closed {
            return Err(SchedError::Shutdown);
        }
        s.in_flight += 1;
        Ok(())
    }

    /// Returns a slot (a completion was delivered, or a send failed).
    fn release(&self) {
        let mut s = self.state.lock().expect("gauge poisoned");
        s.in_flight = s.in_flight.saturating_sub(1);
        drop(s);
        self.cv.notify_one();
    }

    /// Marks the worker gone and wakes every blocked submitter.
    fn close(&self) {
        self.state.lock().expect("gauge poisoned").closed = true;
        self.cv.notify_all();
    }
}

/// What a client gets back for one submission.
#[derive(Debug)]
pub struct Completion {
    /// Submission id (matches [`JobHandle::id`]).
    pub id: u64,
    /// The job's result, or why it was rejected.
    pub result: Result<JobResult, SchedError>,
    /// Wall-clock time from submission to completion (includes any
    /// simulation ahead of this job).
    pub latency: Duration,
    /// True when the job carried a deadline and `latency` overran it.
    pub deadline_missed: bool,
}

/// How a completion travels back to the client.
enum Reply {
    Handle(Sender<Completion>),
    Callback(Box<dyn FnOnce(Completion) + Send + 'static>),
}

/// One submission in flight.
struct Submission {
    id: u64,
    label: String,
    kind: JobKind,
    opts: JobOpts,
    deps: Vec<u64>,
    submitted: Instant,
    reply: Reply,
}

/// Channel protocol between sessions and the worker. The explicit
/// shutdown sentinel lets [`Server::shutdown`] stop the worker even
/// while cloned [`Session`]s keep the channel alive.
enum Msg {
    Submit(Box<Submission>),
    Shutdown,
}

/// Client-side handle to one submitted job.
#[derive(Debug)]
pub struct JobHandle {
    /// Submission id (also the `job_id` of the eventual result).
    pub id: u64,
    rx: Receiver<Completion>,
}

impl JobHandle {
    /// Blocks until the job completes.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server dropped the job (it was
    /// shut down before the job ran).
    pub fn wait(self) -> Result<Completion, SchedError> {
        self.rx.recv().map_err(|_| SchedError::Shutdown)
    }

    /// Blocks until the job completes or `timeout` elapses; `Ok(None)`
    /// on timeout, so callers can keep the handle and try again (or
    /// give up without losing the submission id).
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server dropped the job — the
    /// completion will never arrive. This covers the worker thread
    /// going away mid-wait (shutdown racing the job, or a dropped
    /// [`Server`]): the wait returns this clean error instead of
    /// timing out forever.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<Option<Completion>, SchedError> {
        match self.rx.recv_timeout(timeout) {
            Ok(c) => Ok(Some(c)),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(SchedError::Shutdown),
        }
    }

    /// Non-blocking poll; `Ok(None)` while the job is still in flight.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server dropped the job — a
    /// poller must stop then, the completion will never arrive.
    pub fn try_wait(&mut self) -> Result<Option<Completion>, SchedError> {
        match self.rx.try_recv() {
            Ok(c) => Ok(Some(c)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(SchedError::Shutdown),
        }
    }
}

/// Cloneable submission endpoint; safe to share across client threads.
/// Prefer the fluent [`Session`] view ([`ServerHandle::session`]) —
/// the `submit*` methods here are deprecated shims.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    tx: Sender<Msg>,
    seq: Arc<AtomicU64>,
    gauge: Arc<AdmissionGauge>,
}

impl ServerHandle {
    /// A fluent [`Session`] over this handle.
    #[must_use]
    pub fn session(&self) -> Session {
        Session {
            handle: self.clone(),
        }
    }

    /// Submits a job with default options; returns its handle.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server is no longer running.
    #[deprecated(
        since = "0.1.0",
        note = "use the session builder: `handle.session().job(label).kind(kind).submit()`"
    )]
    pub fn submit(&self, label: impl Into<String>, kind: JobKind) -> Result<JobHandle, SchedError> {
        self.send_handle(label.into(), kind, JobOpts::default(), Vec::new())
    }

    /// Submits a job with explicit options; returns its handle.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server is no longer running.
    #[deprecated(
        since = "0.1.0",
        note = "use the session builder: `handle.session().job(label).kind(kind).priority(p).submit()`"
    )]
    pub fn submit_with(
        &self,
        label: impl Into<String>,
        kind: JobKind,
        opts: JobOpts,
    ) -> Result<JobHandle, SchedError> {
        self.send_handle(label.into(), kind, opts, Vec::new())
    }

    /// Submits a job whose completion is delivered to `callback` on the
    /// worker thread instead of a handle; returns the submission id.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the server is no longer running.
    #[deprecated(
        since = "0.1.0",
        note = "use the session builder: \
                `handle.session().job(label).kind(kind).submit_callback(cb)`"
    )]
    pub fn submit_callback(
        &self,
        label: impl Into<String>,
        kind: JobKind,
        opts: JobOpts,
        callback: impl FnOnce(Completion) + Send + 'static,
    ) -> Result<u64, SchedError> {
        self.send_callback(label.into(), kind, opts, Vec::new(), callback)
    }

    /// Handle-reply submission primitive (the [`Session`] sink).
    pub(crate) fn send_handle(
        &self,
        label: String,
        kind: JobKind,
        opts: JobOpts,
        deps: Vec<u64>,
    ) -> Result<JobHandle, SchedError> {
        let (tx, rx) = channel();
        let id = self.send(label, kind, opts, deps, Reply::Handle(tx))?;
        Ok(JobHandle { id, rx })
    }

    /// Callback-reply submission primitive (the [`Session`] sink).
    pub(crate) fn send_callback(
        &self,
        label: String,
        kind: JobKind,
        opts: JobOpts,
        deps: Vec<u64>,
        callback: impl FnOnce(Completion) + Send + 'static,
    ) -> Result<u64, SchedError> {
        self.send(label, kind, opts, deps, Reply::Callback(Box::new(callback)))
    }

    /// Blocking handle-reply submission: waits for an admission slot
    /// instead of returning [`SchedError::Backpressure`] (the
    /// [`submit_wait`](crate::session::ReadyJob::submit_wait) sink).
    pub(crate) fn send_handle_wait(
        &self,
        label: String,
        kind: JobKind,
        opts: JobOpts,
        deps: Vec<u64>,
    ) -> Result<JobHandle, SchedError> {
        self.gauge.acquire_blocking()?;
        let (tx, rx) = channel();
        let id = self.send_acquired(label, kind, opts, deps, Reply::Handle(tx))?;
        Ok(JobHandle { id, rx })
    }

    fn send(
        &self,
        label: String,
        kind: JobKind,
        opts: JobOpts,
        deps: Vec<u64>,
        reply: Reply,
    ) -> Result<u64, SchedError> {
        self.gauge.try_acquire()?;
        self.send_acquired(label, kind, opts, deps, reply)
    }

    /// Sends a submission whose admission slot is already claimed; the
    /// slot is returned on a failed send (worker gone).
    fn send_acquired(
        &self,
        label: String,
        kind: JobKind,
        opts: JobOpts,
        deps: Vec<u64>,
        reply: Reply,
    ) -> Result<u64, SchedError> {
        let id = self.seq.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Msg::Submit(Box::new(Submission {
                id,
                label,
                kind,
                opts,
                deps,
                submitted: Instant::now(),
                reply,
            })))
            .map(|()| id)
            .map_err(|_| {
                self.gauge.release();
                SchedError::Shutdown
            })
    }
}

/// The serving front-end: a persistent farm on a worker thread behind
/// an mpsc submission channel.
#[derive(Debug)]
pub struct Server {
    handle: ServerHandle,
    worker: Option<JoinHandle<ServingReport>>,
}

impl Server {
    /// Starts the worker thread.
    #[must_use]
    pub fn start(config: ServerConfig) -> Self {
        let (tx, rx) = channel();
        let gauge = Arc::new(AdmissionGauge::new(config.queue_limit));
        let worker_gauge = Arc::clone(&gauge);
        let worker = std::thread::spawn(move || {
            let report = match config.admission {
                AdmissionMode::Continuous => continuous_loop(&rx, config, &worker_gauge),
                AdmissionMode::Wave => wave_loop(&rx, config, &worker_gauge),
            };
            // Wake any submitter still blocked on a slot: the
            // completion that would free one is never coming.
            worker_gauge.close();
            report
        });
        Self {
            handle: ServerHandle {
                tx,
                seq: Arc::new(AtomicU64::new(0)),
                gauge,
            },
            worker: Some(worker),
        }
    }

    /// A fluent, cloneable [`Session`] for submitting jobs — the
    /// primary client API.
    #[must_use]
    pub fn session(&self) -> Session {
        self.handle.session()
    }

    /// A cloneable submission endpoint for client threads.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Submits from the owning thread with default options.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the worker has exited.
    #[deprecated(
        since = "0.1.0",
        note = "use the session builder: `server.session().job(label).kind(kind).submit()`"
    )]
    pub fn submit(&self, label: impl Into<String>, kind: JobKind) -> Result<JobHandle, SchedError> {
        self.handle
            .send_handle(label.into(), kind, JobOpts::default(), Vec::new())
    }

    /// Submits from the owning thread with explicit options.
    ///
    /// # Errors
    ///
    /// [`SchedError::Shutdown`] when the worker has exited.
    #[deprecated(
        since = "0.1.0",
        note = "use the session builder: `server.session().job(label).kind(kind).priority(p).submit()`"
    )]
    pub fn submit_with(
        &self,
        label: impl Into<String>,
        kind: JobKind,
        opts: JobOpts,
    ) -> Result<JobHandle, SchedError> {
        self.handle
            .send_handle(label.into(), kind, opts, Vec::new())
    }

    /// Stops the worker after every submission enqueued before this
    /// call has been served, and returns the aggregate serving
    /// statistics. Cloned sessions outliving the server see
    /// [`SchedError::Shutdown`] on their next submission; handles of
    /// jobs the worker never reached disconnect.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread itself panicked.
    #[must_use]
    pub fn shutdown(mut self) -> ServingReport {
        // Ignore the send error: a worker that already exited (it only
        // does so on this sentinel or a panic) needs no nudge.
        drop(self.handle.tx.send(Msg::Shutdown));
        self.worker
            .take()
            .expect("worker joined once")
            .join()
            .expect("serving worker panicked")
    }
}

/// Delivers one completion, folds it into the running statistics, and
/// returns the submission's admission slot to the gauge.
#[allow(clippy::too_many_arguments)]
fn deliver(
    stats: &mut ServingReport,
    gauge: &AdmissionGauge,
    submitted: Instant,
    deadline: Option<Duration>,
    reply: Reply,
    id: u64,
    result: Result<JobResult, SchedError>,
) {
    gauge.release();
    let latency = submitted.elapsed();
    let deadline_missed = deadline.is_some_and(|d| latency > d);
    stats.jobs += 1;
    match &result {
        Ok(r) => match r.backend {
            BackendKind::Simulate => stats.simulated += 1,
            BackendKind::Estimate => stats.estimated += 1,
            BackendKind::NativeFast | BackendKind::NativeExact => stats.native += 1,
        },
        Err(_) => stats.failed += 1,
    }
    if deadline_missed {
        stats.deadline_misses += 1;
    }
    stats.total_latency += latency;
    stats.max_latency = stats.max_latency.max(latency);
    let completion = Completion {
        id,
        result,
        latency,
        deadline_missed,
    };
    match reply {
        // A client that dropped its handle just doesn't hear back.
        Reply::Handle(tx) => drop(tx.send(completion)),
        // One misbehaving callback must not take down the worker (and
        // with it every other client's in-flight jobs); the panic is
        // contained to this delivery.
        Reply::Callback(cb) => {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cb(completion)));
        }
    }
}

/// One pending submission: everything needed to route the completion.
struct Pending {
    submitted: Instant,
    deadline: Option<Duration>,
    reply: Reply,
}

/// Removes the pending entry of `id`, if the client is still waiting.
fn take(pending: &mut Vec<(u64, Pending)>, id: u64) -> Option<Pending> {
    pending
        .iter()
        .position(|(pid, _)| *pid == id)
        .map(|i| pending.remove(i).1)
}

/// A validated submission parked on dependency edges: it enters
/// admission the event the last id in `missing` finishes.
struct Waiting {
    job: Job,
    p: Pending,
    missing: Vec<u64>,
}

/// The continuous worker's farm-side state, grouped so dependency
/// release can re-enter admission from any point in the loop (a retire
/// event, or a predecessor that completed during its own admission).
struct ContinuousState {
    sim: SimulatorBackend,
    model: AnalyticalBackend,
    native_fast: NativeHost,
    native_exact: NativeHost,
    table: DurationTable,
    stats: ServingReport,
    /// Farm-placed jobs whose completion a client is waiting for.
    pending: Vec<(u64, Pending)>,
    /// Ids whose completion has been delivered (any outcome). The
    /// release gate of the dependency graph: an edge into this set is
    /// satisfied.
    done: std::collections::HashSet<u64>,
    /// Jobs parked on unfinished predecessors.
    waiting: Vec<Waiting>,
}

impl ContinuousState {
    /// Marks `id` finished and unparks every waiter it was the last
    /// unfinished predecessor of. Idempotent — the done-set makes a
    /// second finish of the same id a no-op, so a predecessor whose
    /// shards were re-placed after a fault still releases its
    /// dependents exactly once (its completion is also delivered
    /// exactly once: [`take`] removes the pending entry on the first
    /// retire that carries the merged result).
    fn finish(&mut self, id: u64) -> Vec<(Job, Pending)> {
        if !self.done.insert(id) {
            return Vec::new();
        }
        let mut ready = Vec::new();
        let mut i = 0;
        while i < self.waiting.len() {
            self.waiting[i].missing.retain(|d| *d != id);
            if self.waiting[i].missing.is_empty() {
                let w = self.waiting.remove(i);
                ready.push((w.job, w.p));
            } else {
                i += 1;
            }
        }
        ready
    }

    /// Admits one dependency-free job. Returns `Some(id)` when the
    /// job's completion was delivered during admission (estimate and
    /// native backends answer inline; simulator admission can reject),
    /// so the caller can cascade the release of its dependents; `None`
    /// when the job was placed on the farm and will finish at a retire
    /// event.
    fn admit(&mut self, job: Job, p: Pending, gauge: &AdmissionGauge) -> Option<u64> {
        match job.opts.backend {
            // Estimates and native jobs never touch the farm: answer
            // immediately, off the simulated clock.
            BackendKind::Estimate | BackendKind::NativeFast | BackendKind::NativeExact => {
                let backend: &mut dyn Backend = match job.opts.backend {
                    BackendKind::Estimate => &mut self.model,
                    BackendKind::NativeFast => &mut self.native_fast,
                    _ => &mut self.native_exact,
                };
                let id = job.id;
                let result = match backend.admit(&job) {
                    Ok(work) => {
                        let mut batch = backend.run_batch(vec![AdmittedJob { job, work }]);
                        Ok(batch.results.pop().expect("one result per admitted job"))
                    }
                    Err(e) => Err(e),
                };
                deliver(
                    &mut self.stats,
                    gauge,
                    p.submitted,
                    p.deadline,
                    p.reply,
                    id,
                    result,
                );
                Some(id)
            }
            BackendKind::Simulate => {
                match self
                    .sim
                    .admit_continuous_within(&job, &self.table, job.opts.deadline_cycles)
                {
                    Ok(_) => {
                        self.pending.push((job.id, p));
                        None
                    }
                    Err(e) => {
                        if matches!(e, SchedError::DeadlineUnmeetable { .. }) {
                            self.stats.shed_jobs += 1;
                        }
                        let id = job.id;
                        deliver(
                            &mut self.stats,
                            gauge,
                            p.submitted,
                            p.deadline,
                            p.reply,
                            id,
                            Err(e),
                        );
                        Some(id)
                    }
                }
            }
        }
    }

    /// Admits every job on the `ready` worklist, highest priority
    /// first (submission id breaks ties), cascading through dependents
    /// that become ready because a predecessor completed during its
    /// own admission. Released dependents merge into the ordering, so
    /// a high-priority dependent overtakes lower-priority jobs that
    /// were ready before it.
    fn drain_ready(&mut self, mut ready: Vec<(Job, Pending)>, gauge: &AdmissionGauge) {
        while !ready.is_empty() {
            let mut best = 0;
            for i in 1..ready.len() {
                let key = |j: &Job| (std::cmp::Reverse(j.opts.priority), j.id);
                if key(&ready[i].0) < key(&ready[best].0) {
                    best = i;
                }
            }
            let (job, p) = ready.swap_remove(best);
            if let Some(id) = self.admit(job, p, gauge) {
                ready.append(&mut self.finish(id));
            }
        }
    }
}

/// The continuous-admission worker: the farm never stops between jobs.
///
/// Each trip around the loop (1) pulls every submission currently on
/// the channel — blocking only when the farm is idle — and admits the
/// group in priority order, each job placed on the least-loaded
/// clusters at that instant; (2) retires exactly one farm shard event,
/// folds its measured duration into the [`DurationTable`], and
/// delivers the completion if that job just finished. Admission is
/// therefore interleaved with execution at shard granularity: a job
/// that arrives mid-run waits at most one shard before it is placed,
/// and its completion never waits for unrelated jobs.
///
/// Robustness hooks live here: jobs carrying a virtual-cycle deadline
/// are shed at admission when the placement estimate proves it
/// unmeetable ([`SchedError::DeadlineUnmeetable`]), and the farm's
/// fault counters (injected faults, retried shards) are folded into
/// the final report. Wave mode keeps the PR 3 semantics and skips
/// both.
///
/// Dependency edges are resolved here, on the merge side: a submission
/// carrying unfinished predecessor ids parks in a waiting list and is
/// handed to admission the event its last predecessor's completion is
/// delivered — by a farm retire, or inline when the predecessor ran on
/// the estimate/native backends (release then cascades within the same
/// admission round). Unknown predecessor ids park the job until they
/// are submitted and finish; at shutdown, jobs still parked fail with
/// [`SchedError::DependencyDropped`]. Because the done-set and the
/// pending list release each id exactly once, a predecessor whose
/// shards were re-placed after a cluster kill still releases its
/// dependents exactly once.
fn continuous_loop(
    rx: &Receiver<Msg>,
    config: ServerConfig,
    gauge: &AdmissionGauge,
) -> ServingReport {
    let mut st = ContinuousState {
        sim: SimulatorBackend::new(config.scale_out),
        model: AnalyticalBackend::new(&config.scale_out),
        native_fast: NativeHost::fast(&config.scale_out),
        native_exact: NativeHost::exact(&config.scale_out),
        table: DurationTable::new(),
        stats: ServingReport::new(config.scale_out.clusters),
        pending: Vec::new(),
        done: std::collections::HashSet::new(),
        waiting: Vec::new(),
    };
    let mut group: Vec<Submission> = Vec::new();
    let t0 = Instant::now();
    let mut open = true;
    loop {
        // Gather the submissions that have arrived. Block only when
        // the farm has nothing to do; otherwise take what is there and
        // get back to retiring shards. Parked waiters don't hold the
        // farm open — only new submissions can release them, and those
        // arrive on this channel.
        group.clear();
        if open {
            if !st.sim.has_farm_work() {
                match rx.recv() {
                    Ok(Msg::Submit(s)) => group.push(*s),
                    Ok(Msg::Shutdown) | Err(_) => open = false,
                }
            }
            while open && group.len() < config.max_wave.max(1) {
                match rx.try_recv() {
                    Ok(Msg::Submit(s)) => group.push(*s),
                    Ok(Msg::Shutdown) => open = false,
                    Err(_) => break,
                }
            }
        }
        if !group.is_empty() {
            st.stats.waves += 1;
        }
        // Validate and park-or-ready each submission; the ready set is
        // then admitted in priority order (ids break ties). A job that
        // fails validation completes right here — which still counts
        // as finishing for its dependents.
        let mut ready: Vec<(Job, Pending)> = Vec::new();
        for s in group.drain(..) {
            let job = Job {
                id: s.id,
                label: s.label,
                kind: s.kind,
                opts: s.opts,
                deps: s.deps,
            };
            let p = Pending {
                submitted: s.submitted,
                deadline: s.opts.deadline,
                reply: s.reply,
            };
            if let Err(e) = job.validate() {
                let id = job.id;
                deliver(
                    &mut st.stats,
                    gauge,
                    p.submitted,
                    p.deadline,
                    p.reply,
                    id,
                    Err(e),
                );
                ready.append(&mut st.finish(id));
                continue;
            }
            let missing: Vec<u64> = job
                .deps
                .iter()
                .copied()
                .filter(|d| !st.done.contains(d))
                .collect();
            if missing.is_empty() {
                ready.push((job, p));
            } else {
                st.waiting.push(Waiting { job, p, missing });
            }
        }
        st.drain_ready(ready, gauge);
        // Retire one shard event, deliver any finished job, and admit
        // the dependents that completion releases.
        if let Some(retire) = st.sim.step_farm() {
            st.table
                .observe(retire.class, retire.est_cycles, retire.cycles);
            st.stats.busy_cluster_cycles += retire.cycles;
            if let Some(result) = retire.result {
                if let Some(p) = take(&mut st.pending, result.job_id) {
                    let id = result.job_id;
                    deliver(
                        &mut st.stats,
                        gauge,
                        p.submitted,
                        p.deadline,
                        p.reply,
                        id,
                        Ok(result),
                    );
                    let released = st.finish(id);
                    st.drain_ready(released, gauge);
                }
            }
        } else if !open {
            break;
        }
    }
    // The channel is closed and the farm is drained: any job still
    // parked waits on a predecessor that will never finish (its id was
    // never submitted, or it is itself parked). Fail them all.
    for w in std::mem::take(&mut st.waiting) {
        let dep = w.missing.first().copied().unwrap_or(w.job.id);
        deliver(
            &mut st.stats,
            gauge,
            w.p.submitted,
            w.p.deadline,
            w.p.reply,
            w.job.id,
            Err(SchedError::DependencyDropped { dep }),
        );
    }
    let mut stats = st.stats;
    stats.makespan_cycles = st.sim.farm_makespan();
    let totals = st.sim.perf_totals();
    stats.ext_wait_cycles = totals.ext_wait_cycles;
    stats.ext_remote_bytes = totals.ext_remote_bytes;
    stats.ext_remote_wait_cycles = totals.ext_remote_wait_cycles;
    stats.fault_stall_cycles = totals.fault_stall_cycles;
    let faults = st.sim.fault_stats();
    stats.faults_injected = faults.faults_injected;
    stats.shards_retried = faults.shards_retried;
    let pool = st.sim.pool_stats();
    stats.worker_threads = pool.worker_threads;
    stats.pool_shards_merged = pool.shards_merged;
    stats.pool_shards_reclaimed = pool.shards_reclaimed;
    stats.backpressure_rejected = gauge.rejected.load(Ordering::Relaxed);
    stats.wall_seconds = t0.elapsed().as_secs_f64();
    stats
}

/// The wave-batched worker (the PR 3 baseline, kept behind
/// [`AdmissionMode::Wave`] as the differential reference). Honors the
/// bounded admission queue but not deadline shedding or fault plans.
fn wave_loop(rx: &Receiver<Msg>, config: ServerConfig, gauge: &AdmissionGauge) -> ServingReport {
    let mut exec = ScaleOutExecutor::new(config.scale_out);
    let mut stats = ServingReport::new(config.scale_out.clusters);
    let t0 = Instant::now();
    let mut done = false;
    while !done {
        let first = match rx.recv() {
            Ok(Msg::Submit(s)) => *s,
            Ok(Msg::Shutdown) | Err(_) => break,
        };
        // Gather a wave: everything already queued, up to the cap.
        let mut wave = vec![first];
        while wave.len() < config.max_wave.max(1) {
            match rx.try_recv() {
                Ok(Msg::Submit(s)) => wave.push(*s),
                Ok(Msg::Shutdown) => {
                    done = true;
                    break;
                }
                Err(_) => break,
            }
        }
        // Priority order; submission order breaks ties.
        wave.sort_by_key(|s| (std::cmp::Reverse(s.opts.priority), s.id));
        stats.waves += 1;

        let mut queue = JobQueue::new();
        let mut pending: Vec<(u64, Pending)> = Vec::with_capacity(wave.len());
        for s in wave {
            // Deps are recorded but not honored in wave mode (see
            // `AdmissionMode::Wave`): waves order by priority alone.
            let job = Job {
                id: s.id,
                label: s.label,
                kind: s.kind,
                opts: s.opts,
                deps: s.deps,
            };
            let p = Pending {
                submitted: s.submitted,
                deadline: s.opts.deadline,
                reply: s.reply,
            };
            // Reject malformed submissions before the wave runs:
            // admitting them through run_queue would re-plan the whole
            // remaining wave once per bad job.
            if let Err(e) = job.validate() {
                deliver(
                    &mut stats,
                    gauge,
                    p.submitted,
                    p.deadline,
                    p.reply,
                    job.id,
                    Err(e),
                );
                continue;
            }
            queue.push_job(job);
            pending.push((s.id, p));
        }
        // Run the wave; a job rejected at admission (e.g. no feasible
        // sharding) fails alone — its completion says why — and the
        // rest of the wave is retried without it.
        loop {
            if queue.is_empty() {
                break;
            }
            match exec.run_queue(&mut queue) {
                Ok(batch) => {
                    for r in batch.results {
                        if let Some(p) = take(&mut pending, r.job_id) {
                            deliver(
                                &mut stats,
                                gauge,
                                p.submitted,
                                p.deadline,
                                p.reply,
                                r.job_id,
                                Ok(r),
                            );
                        }
                    }
                    stats.makespan_cycles += batch.report.makespan_cycles;
                    for p in &batch.report.per_cluster {
                        stats.busy_cluster_cycles += p.cycles;
                        stats.ext_wait_cycles += p.ext_wait_cycles;
                        stats.ext_remote_bytes += p.ext_remote_bytes;
                        stats.ext_remote_wait_cycles += p.ext_remote_wait_cycles;
                    }
                    break;
                }
                Err(SchedError::Job { id, source, .. }) => {
                    if let Some(p) = take(&mut pending, id) {
                        deliver(
                            &mut stats,
                            gauge,
                            p.submitted,
                            p.deadline,
                            p.reply,
                            id,
                            Err(*source),
                        );
                    }
                    // run_queue leaves the queue intact on admission
                    // failure; rebuild it without the rejected job.
                    let mut rest = JobQueue::new();
                    while let Some(job) = queue.pop() {
                        if job.id != id {
                            rest.push_job(job);
                        }
                    }
                    queue = rest;
                }
                Err(e) => {
                    // Executor-level failure: fail the remaining wave.
                    while let Some(job) = queue.pop() {
                        if let Some(p) = take(&mut pending, job.id) {
                            deliver(
                                &mut stats,
                                gauge,
                                p.submitted,
                                p.deadline,
                                p.reply,
                                job.id,
                                Err(e.clone()),
                            );
                        }
                    }
                    break;
                }
            }
        }
    }
    stats.backpressure_rejected = gauge.rejected.load(Ordering::Relaxed);
    stats.wall_seconds = t0.elapsed().as_secs_f64();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axpy(n: usize, seed: u32) -> JobKind {
        let data = |mut s: u32| -> Vec<f32> {
            (0..n)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 17;
                    s ^= s << 5;
                    ((s % 64) as f32 - 32.0) / 16.0
                })
                .collect()
        };
        JobKind::Axpy {
            a: 2.0,
            x: data(seed),
            y: data(seed.wrapping_add(1)),
        }
    }

    fn serves_multiple_clients(config: ServerConfig) {
        let server = Server::start(config);
        let mut handles = Vec::new();
        let mut threads = Vec::new();
        for t in 0..3u32 {
            let session = server.session();
            threads.push(std::thread::spawn(move || {
                session
                    .job(format!("client-{t}"))
                    .kind(axpy(300 + t as usize * 100, t + 1))
                    .submit()
                    .expect("server running")
            }));
        }
        for t in threads {
            handles.push(t.join().expect("client thread"));
        }
        for h in handles {
            let c = h.wait().expect("job served");
            let r = c.result.expect("valid job");
            assert!(!r.output.is_empty());
            assert!(!c.deadline_missed);
        }
        let report = server.shutdown();
        assert_eq!(report.jobs, 3);
        assert_eq!(report.simulated, 3);
        assert_eq!(report.failed, 0);
        assert!(report.jobs_per_second() > 0.0);
        assert!(report.makespan_cycles > 0);
        assert!(report.occupancy() > 0.0);
    }

    #[test]
    fn serves_multiple_clients_continuously_and_reports() {
        serves_multiple_clients(ServerConfig::with_clusters(2));
    }

    #[test]
    fn serves_multiple_clients_in_waves_and_reports() {
        serves_multiple_clients(ServerConfig::with_clusters(2).wave_batched());
    }

    #[test]
    fn bad_job_fails_alone_and_estimates_flow_through() {
        let server = Server::start(ServerConfig::with_clusters(2));
        let session = server.session();
        let good = session.job("good").kind(axpy(256, 7)).submit().unwrap();
        let bad = session
            .job("bad")
            .axpy(1.0, vec![1.0; 4], vec![1.0; 3])
            .submit()
            .unwrap();
        let est = session
            .job("estimate")
            .kind(axpy(4096, 9))
            .estimate()
            .submit()
            .unwrap();
        let g = good.wait().unwrap();
        assert!(g.result.is_ok());
        let b = bad.wait().unwrap();
        assert!(matches!(b.result, Err(SchedError::Shape(_))));
        let e = est.wait().unwrap().result.expect("estimate served");
        assert!(e.estimate.is_some());
        let report = server.shutdown();
        assert_eq!(report.jobs, 3);
        assert_eq!(report.failed, 1);
        assert_eq!(report.estimated, 1);
    }

    #[test]
    fn callbacks_deadlines_and_wait_timeout() {
        let server = Server::start(ServerConfig::with_clusters(1));
        let session = server.session();
        let (tx, rx) = channel();
        session
            .job("cb")
            .kind(axpy(200, 3))
            .deadline(Duration::from_secs(3600))
            .submit_callback(move |c| {
                let _ = tx.send((c.id, c.deadline_missed, c.result.is_ok()));
            })
            .expect("server running");
        let (_, missed, ok) = rx.recv().expect("callback fired");
        assert!(ok);
        assert!(!missed);
        // An already-expired deadline is reported as missed.
        let mut h = session
            .job("late")
            .kind(axpy(200, 5))
            .deadline(Duration::ZERO)
            .submit()
            .unwrap();
        // wait_timeout keeps the handle on timeout and hands the
        // completion over once it arrives.
        let c = loop {
            match h.wait_timeout(Duration::from_millis(50)) {
                Ok(Some(c)) => break c,
                Ok(None) => continue,
                Err(e) => panic!("server dropped the job: {e}"),
            }
        };
        assert!(c.deadline_missed);
        let report = server.shutdown();
        assert_eq!(report.deadline_misses, 1);
    }

    #[test]
    fn handles_survive_shutdown_ordering() {
        let server = Server::start(ServerConfig::with_clusters(1));
        let session = server.session();
        let h = session.job("pre").kind(axpy(128, 11)).submit().unwrap();
        let report = server.shutdown();
        assert_eq!(report.jobs, 1);
        // The in-flight job was drained before shutdown returned.
        assert!(h.wait().is_ok());
        // New submissions are rejected.
        assert!(matches!(
            session.job("post").kind(axpy(16, 1)).submit(),
            Err(SchedError::Shutdown)
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_submit_shims_still_serve() {
        let server = Server::start(ServerConfig::with_clusters(1));
        let h = server.submit("direct", axpy(64, 3)).unwrap();
        let hw = server
            .submit_with(
                "with-opts",
                axpy(64, 5),
                JobOpts::default().with_priority(1),
            )
            .unwrap();
        let (tx, rx) = channel();
        server
            .handle()
            .submit_callback("cb", axpy(64, 7), JobOpts::default(), move |c| {
                let _ = tx.send(c.result.is_ok());
            })
            .unwrap();
        assert!(h.wait().unwrap().result.is_ok());
        assert!(hw.wait().unwrap().result.is_ok());
        assert!(rx.recv().unwrap());
        let report = server.shutdown();
        assert_eq!(report.jobs, 3);
    }

    #[test]
    fn backpressure_rejects_when_queue_full() {
        // Two sizable jobs fill the two in-flight slots; the third
        // submission is rejected client-side with an explicit error
        // instead of queueing without bound.
        let server = Server::start(ServerConfig::with_clusters(1).with_queue_limit(2));
        let session = server.session();
        let a = session.job("a").kind(axpy(60_000, 3)).submit().unwrap();
        let b = session.job("b").kind(axpy(60_000, 5)).submit().unwrap();
        let rejected = session.job("c").kind(axpy(64, 7)).submit();
        assert!(
            matches!(rejected, Err(SchedError::Backpressure { limit: 2 })),
            "third submission should hit the bound: {rejected:?}"
        );
        assert!(a.wait().unwrap().result.is_ok());
        assert!(b.wait().unwrap().result.is_ok());
        let report = server.shutdown();
        assert_eq!(report.jobs, 2);
        assert_eq!(report.backpressure_rejected, 1);
    }

    #[test]
    fn submit_wait_blocks_until_a_slot_frees() {
        let server = Server::start(ServerConfig::with_clusters(1).with_queue_limit(1));
        let session = server.session();
        let a = session.job("a").kind(axpy(60_000, 9)).submit().unwrap();
        // The slot is taken; the blocking variant waits for `a` to
        // retire instead of erroring.
        let waiter = {
            let session = server.session();
            std::thread::spawn(move || {
                session
                    .job("b")
                    .kind(axpy(128, 11))
                    .submit_wait()
                    .expect("slot frees when a completes")
            })
        };
        assert!(a.wait().unwrap().result.is_ok());
        let b = waiter.join().expect("waiter thread");
        assert!(b.wait().unwrap().result.is_ok());
        let report = server.shutdown();
        assert_eq!(report.jobs, 2);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn sheds_jobs_with_unmeetable_cycle_deadlines() {
        let server = Server::start(ServerConfig::with_clusters(1));
        let session = server.session();
        // One cycle from now is unmeetable for any real job, whatever
        // the backlog; a generous budget is always meetable.
        let doomed = session
            .job("doomed")
            .kind(axpy(30_000, 3))
            .deadline_cycles(1)
            .submit()
            .unwrap();
        let fine = session
            .job("fine")
            .kind(axpy(30_000, 5))
            .deadline_cycles(u64::MAX)
            .submit()
            .unwrap();
        let d = doomed.wait().unwrap();
        match d.result {
            Err(SchedError::DeadlineUnmeetable {
                estimated_cycles,
                deadline_cycles,
            }) => {
                assert!(estimated_cycles > deadline_cycles);
                assert_eq!(deadline_cycles, 1);
            }
            other => panic!("expected a shed job, got {other:?}"),
        }
        assert!(fine.wait().unwrap().result.is_ok());
        let report = server.shutdown();
        assert_eq!(report.jobs, 2);
        assert_eq!(report.shed_jobs, 1);
        assert_eq!(report.failed, 1);
        assert_eq!(report.simulated, 1);
    }

    #[test]
    fn fault_plan_kill_loses_no_jobs() {
        // A cluster dies mid-run; its shards are re-placed and every
        // submission still completes successfully.
        let faults = crate::FaultPlan::NONE.with_seed(7).with_kill(1, 500);
        let server = Server::start(ServerConfig::with_clusters(4).with_faults(faults));
        let session = server.session();
        let handles: Vec<_> = (0..8u32)
            .map(|i| {
                session
                    .job(format!("job-{i}"))
                    .kind(axpy(20_000 + 64 * i as usize, i + 1))
                    .submit()
                    .unwrap()
            })
            .collect();
        for h in handles {
            let c = h.wait().expect("job served");
            assert!(!c.result.expect("job survives the kill").output.is_empty());
        }
        let report = server.shutdown();
        assert_eq!(report.jobs, 8);
        assert_eq!(report.failed, 0);
        assert!(report.faults_injected >= 1, "the kill should have fired");
        assert!(report.shards_retried >= 1, "in-flight work was re-placed");
    }

    #[test]
    fn wait_timeout_reports_shutdown_when_worker_is_gone() {
        // Regression: a handle whose completion channel died (worker
        // thread dropped mid-wait) must surface Err(Shutdown), not
        // hang or time out forever.
        let (tx, rx) = channel::<Completion>();
        drop(tx);
        let mut h = JobHandle { id: 0, rx };
        assert!(matches!(
            h.wait_timeout(Duration::from_secs(60)),
            Err(SchedError::Shutdown)
        ));
        assert!(matches!(h.try_wait(), Err(SchedError::Shutdown)));

        // End to end: dropping the server (and every session) without
        // shutdown drains in-flight jobs, so a bounded wait loop
        // terminates with either the completion or a clean error.
        let server = Server::start(ServerConfig::with_clusters(1));
        let mut h = {
            let session = server.session();
            session.job("orphan").kind(axpy(256, 13)).submit().unwrap()
        };
        drop(server.handle);
        drop(server.worker);
        let mut outcome = None;
        for _ in 0..600 {
            match h.wait_timeout(Duration::from_millis(100)) {
                Ok(Some(c)) => {
                    outcome = Some(c.result.is_ok());
                    break;
                }
                Ok(None) => continue,
                Err(SchedError::Shutdown) => {
                    outcome = Some(false);
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(outcome.is_some(), "wait_timeout loop never resolved");
    }

    #[test]
    fn dag_chain_admits_in_dependency_order() {
        // Without edges the tiny tail jobs would overtake the big head
        // job on a 4-cluster farm; with edges every completion is
        // delivered in topological order.
        let server = Server::start(ServerConfig::with_clusters(4));
        let session = server.session();
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let record = |order: &Arc<std::sync::Mutex<Vec<u64>>>| {
            let order = Arc::clone(order);
            move |c: Completion| {
                assert!(c.result.is_ok());
                order.lock().unwrap().push(c.id);
            }
        };
        let a = session
            .job("head")
            .kind(axpy(40_000, 3))
            .submit_callback(record(&order))
            .unwrap();
        let b = session
            .job("mid")
            .kind(axpy(64, 5))
            .after_id(a)
            .submit_callback(record(&order))
            .unwrap();
        let c = session
            .job("tail")
            .kind(axpy(64, 7))
            .after_id(a)
            .after_id(b)
            .submit_callback(record(&order))
            .unwrap();
        let report = server.shutdown();
        assert_eq!(report.jobs, 3);
        assert_eq!(report.failed, 0);
        assert_eq!(*order.lock().unwrap(), vec![a, b, c]);
    }

    #[test]
    fn dag_edge_from_inline_backend_cascades_in_one_round() {
        // A predecessor served inline (estimate / native backends
        // complete during admission) releases its dependents in the
        // same admission round, even when both arrive in one group.
        let server = Server::start(ServerConfig::with_clusters(2));
        let session = server.session();
        let a = session
            .job("plan")
            .kind(axpy(4096, 3))
            .estimate()
            .submit()
            .unwrap();
        let b = session
            .job("run")
            .kind(axpy(256, 5))
            .after(&a)
            .submit()
            .unwrap();
        let c = session
            .job("check")
            .kind(axpy(128, 7))
            .native_exact()
            .after_all([&a, &b])
            .submit()
            .unwrap();
        assert!(a.wait().unwrap().result.is_ok());
        assert!(b.wait().unwrap().result.is_ok());
        assert!(c.wait().unwrap().result.is_ok());
        let report = server.shutdown();
        assert_eq!(report.jobs, 3);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn dangling_dependency_fails_at_shutdown() {
        let server = Server::start(ServerConfig::with_clusters(1));
        let session = server.session();
        let orphan = session
            .job("orphan")
            .kind(axpy(64, 3))
            .after_id(9_999)
            .submit()
            .unwrap();
        // A self-edge is rejected at validation, before it can park
        // forever.
        let selfish = session
            .job("selfish")
            .kind(axpy(64, 5))
            .after_id(1)
            .submit()
            .unwrap();
        assert_eq!(selfish.id, 1);
        assert!(matches!(
            selfish.wait().unwrap().result,
            Err(SchedError::Shape(_))
        ));
        let report = server.shutdown();
        match orphan.wait().unwrap().result {
            Err(SchedError::DependencyDropped { dep }) => assert_eq!(dep, 9_999),
            other => panic!("expected a dropped dependency, got {other:?}"),
        }
        assert_eq!(report.jobs, 2);
        assert_eq!(report.failed, 2);
    }

    #[test]
    fn dag_survives_cluster_kill_and_releases_once() {
        // A chain across a cluster kill: the re-placed predecessor
        // still completes exactly once, so each dependent runs exactly
        // once and the whole chain retires successfully.
        let faults = crate::FaultPlan::NONE.with_seed(11).with_kill(1, 500);
        let server = Server::start(ServerConfig::with_clusters(4).with_faults(faults));
        let session = server.session();
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut prev: Option<u64> = None;
        for i in 0..4u32 {
            let order = Arc::clone(&order);
            let job = session
                .job(format!("step-{i}"))
                .kind(axpy(20_000 + 64 * i as usize, i + 1));
            let job = match prev {
                Some(p) => job.after_id(p),
                None => job,
            };
            let id = job
                .submit_callback(move |c| {
                    assert!(c.result.is_ok(), "chain step failed: {:?}", c.result);
                    order.lock().unwrap().push(c.id);
                })
                .unwrap();
            prev = Some(id);
        }
        let report = server.shutdown();
        assert_eq!(report.jobs, 4);
        assert_eq!(report.failed, 0);
        assert!(report.faults_injected >= 1, "the kill should have fired");
        let order = order.lock().unwrap();
        assert_eq!(*order, vec![0, 1, 2, 3], "chain must retire in order");
    }

    #[test]
    fn continuous_mode_streams_completions_mid_run() {
        // Continuous admission delivers each completion the shard
        // event its job retires: with several substantial jobs in the
        // farm, the first delivery happens well before the last —
        // unlike a wave, which holds every completion until the whole
        // batch has retired (the report-serving benchmark measures
        // that contrast; the deterministic virtual-time overtake is
        // asserted in the proptest suite). Exact delivery interleaving
        // depends on how submissions group, so this asserts the
        // streaming property rather than a specific order.
        let server = Server::start(ServerConfig::with_clusters(4));
        let session = server.session();
        let latencies = Arc::new(std::sync::Mutex::new(Vec::new()));
        for (label, n, seed) in [
            ("warmup", 30_000, 7u32),
            ("big", 59_998, 11),
            ("medium", 2000, 13),
            ("small", 64, 19),
        ] {
            let latencies = Arc::clone(&latencies);
            session
                .job(label)
                .kind(axpy(n, seed))
                .submit_callback(move |c| {
                    assert!(c.result.is_ok());
                    latencies.lock().unwrap().push(c.latency);
                })
                .expect("server running");
        }
        let report = server.shutdown();
        assert_eq!(report.jobs, 4);
        let latencies = latencies.lock().unwrap();
        let first = *latencies.iter().min().expect("deliveries");
        let last = *latencies.iter().max().expect("deliveries");
        assert!(
            first.as_secs_f64() < 0.9 * last.as_secs_f64(),
            "completions should stream out as jobs retire, not bunch at the end: \
             first {first:?} vs last {last:?}"
        );
    }
}
