//! The pipelined cluster farm: event-driven shard execution across N
//! independent clusters.
//!
//! The farm replaces the old executor's per-job barrier. Each cluster
//! owns a FIFO of *shards* (one per job that placed work on it) and
//! runs them back to back: the moment its pipeline for job *i* drains —
//! an observable [`Cluster::run_burst`] event — the cluster stages job
//! *i+1* and queues its input DMA, so in system (makespan) time the
//! store-drain of job *i* on one cluster overlaps the input DMA of job
//! *i+1* on every cluster that finished earlier, and small jobs placed
//! on disjoint cluster subsets run concurrently (cluster-level space
//! sharing).
//!
//! Two accountings of the same per-shard simulations:
//!
//! * **pipelined** (default): cluster `c` starts its next shard the
//!   cycle its previous one retires; the batch makespan is
//!   `max_c Σ_j shard(c, j)`.
//! * **barriered** (`pipelined: false`): every job waits for the
//!   slowest cluster of its predecessor; the batch makespan is
//!   `Σ_j max_c shard(c, j)` — the differential oracle, mirroring the
//!   simulator's `fast_path: false` pattern.
//!
//! Each shard executes in an isolated idle-to-idle measurement window
//! on its cluster (staging is host work; clusters advance their local
//! clocks only while working), so per-job outputs **and** per-job
//! [`PerfSnapshot`] deltas are bit-identical between the two modes —
//! only the overlap accounting differs. This is also why the farm does
//! not chain one job's tiles into the next job's pipeline within a
//! cluster: the TCDM ping-pong region and the external-memory operand
//! regions are reused across jobs, and cross-job contention inside one
//! window would make the per-job counters diverge from the barriered
//! reference.

use ntx_mem::{HmcMesh, HmcPort, HmcSubsystem, MemoryModel};
use ntx_sim::{Cluster, ClusterConfig, FaultPlan, PerfSnapshot};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::mpsc;

use crate::executor::{BatchResult, JobResult};
use crate::job::JobClass;
use crate::pipeline::TilePipeline;
use crate::report::ScaleOutReport;
use crate::tiler::{ClusterPlan, ReadbackSource};

/// The identity of a job inside the farm: everything execution needs
/// once the tiler has captured the job's data into its plans.
#[derive(Debug, Clone)]
pub struct JobMeta {
    /// Queue-assigned id.
    pub id: u64,
    /// Submission label.
    pub label: String,
    /// Output length in `f32` elements.
    pub output_len: usize,
    /// Duration-table class of the job's kind.
    pub class: JobClass,
    /// Requested home cube for the job's operand region (mesh memory
    /// only). `None` falls back to round-robin over the cubes by job
    /// id; out-of-range requests wrap.
    pub home_cube: Option<u32>,
}

/// One job, placed: which cluster runs which shard plan.
#[derive(Debug)]
pub struct PlacedJob {
    /// Job identity.
    pub meta: JobMeta,
    /// `(cluster index, plan)` pairs, one per non-empty shard.
    pub shards: Vec<(usize, ClusterPlan)>,
}

/// How a shard's AXI port is wired for its run: the grant schedule of
/// the job's home cube as seen from the executing cluster, plus the
/// hop cost when that cube is remote. Pure data computed from the
/// static mesh geometry, so both drive modes (and the `parallel`
/// feature) wire shards identically.
#[derive(Debug, Clone, Copy)]
struct ShardWiring {
    port: HmcPort,
    remote: bool,
    latency: u64,
}

/// One entry of a cluster's shard FIFO.
#[derive(Debug)]
struct ShardTask {
    job_idx: usize,
    plan: ClusterPlan,
    wiring: Option<ShardWiring>,
}

/// Per-shard measurement: which job, its counter delta, its duration.
type ShardRecord = (usize, PerfSnapshot, u64);

/// Fault-recovery counters of one farm run (continuous mode; the
/// batch oracle never injects faults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fault events that fired: cluster kills plus transient stalls.
    pub faults_injected: u64,
    /// Shards evacuated from a failed cluster and re-admitted on a
    /// surviving one (queued shards plus the aborted in-flight shard).
    pub shards_retried: u64,
}

/// Worker-pool utilization counters of one continuous farm run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Resolved worker-thread count stepping the continuous farm
    /// (1 = the serial merge loop runs shards inline).
    pub worker_threads: usize,
    /// Shards executed speculatively on pool workers and folded in at
    /// the deterministic `(clock, cluster)` retire front.
    pub shards_merged: u64,
    /// Speculated shards invalidated by a cluster kill: the aborted
    /// in-flight shard plus every queued plan reclaimed from the dead
    /// worker for re-placement on survivors.
    pub shards_reclaimed: u64,
}

/// Resolves a requested worker-thread count for the continuous farm:
/// an explicit `requested > 0` wins; `0` means auto — the
/// `NTX_WORKER_THREADS` environment variable when set to a positive
/// integer, else `1` (the serial merge loop).
#[must_use]
pub fn resolve_worker_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::env::var("NTX_WORKER_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// A command to a pool worker. Per-cluster `Run`s arrive in admission
/// order (the merge thread is the only sender), so each cluster's
/// speculative execution order matches the serial farm's FIFO exactly.
enum WorkerCmd {
    /// Execute the next queued shard of `cluster` speculatively.
    /// (The plan is boxed so the enum stays channel-slot sized.)
    Run {
        cluster: usize,
        plan: Box<ClusterPlan>,
        wiring: Option<ShardWiring>,
    },
    /// Return every plan stashed on a dead `cluster` (the merge thread
    /// detected its kill and is about to re-place the orphans).
    Reclaim { cluster: usize },
}

/// A pool worker's answer for one shard of one cluster, delivered on
/// that cluster's result channel in execution (= admission) order.
enum ShardOutcome {
    /// The shard ran to completion before any armed kill cycle.
    Retired {
        perf: PerfSnapshot,
        cycles: u64,
        /// `(output offset, data)` readback segments, gathered on the
        /// worker because the job's output vector lives merge-side.
        reads: Vec<(usize, Vec<f32>)>,
    },
    /// The shard straddled the cluster's kill cycle: its effects are
    /// discarded and `plan` is the untouched backup for re-placement.
    Aborted { plan: ClusterPlan },
    /// Answer to [`WorkerCmd::Reclaim`]: the stashed (never executed)
    /// plans of a dead cluster, in admission order.
    Reclaimed { plans: Vec<ClusterPlan> },
}

/// One cluster's state as owned by a pool worker thread.
struct WorkerSlot {
    cluster: Cluster,
    /// Local mirror of the merge thread's virtual clock for this
    /// cluster — both are the same pure sum of retired shard cycles
    /// plus injected stalls, so kill/stall decisions agree bit-exactly.
    clock: u64,
    /// Set once the clock reaches an armed kill cycle (or a shard
    /// straddles it): later `Run`s are stashed, never executed.
    dead: bool,
    stash: Vec<ClusterPlan>,
    tx: mpsc::Sender<ShardOutcome>,
}

/// The body of one pool worker thread: owns a disjoint subset of the
/// farm's clusters and runs their shard FIFOs speculatively. Exits
/// when the command channel closes (the pool is dropped).
fn worker_loop(
    mut owned: BTreeMap<usize, WorkerSlot>,
    faults: FaultPlan,
    rx: mpsc::Receiver<WorkerCmd>,
) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            WorkerCmd::Run {
                cluster,
                mut plan,
                wiring,
            } => {
                let slot = owned
                    .get_mut(&cluster)
                    .expect("cluster owned by this worker");
                let kill_at = faults.kill_cycle(cluster as u32);
                if slot.dead || kill_at.is_some_and(|at| slot.clock >= at) {
                    // The cluster crossed its kill cycle: the merge
                    // thread will reclaim this plan for a survivor.
                    slot.dead = true;
                    slot.stash.push(*plan);
                    continue;
                }
                let backup = kill_at.map(|_| plan.clone());
                let start = slot.clock;
                let (perf, cycles) = run_shard(&mut slot.cluster, &mut plan, wiring);
                if let Some(at) = kill_at {
                    if start + cycles > at {
                        // Mid-shard kill: discard the run, freeze the
                        // clock, hand the backup plan to the merge
                        // thread for re-placement.
                        slot.clock = at;
                        slot.dead = true;
                        let plan = *backup.expect("kill armed implies a plan backup");
                        let _ = slot.tx.send(ShardOutcome::Aborted { plan });
                        continue;
                    }
                }
                let reads = plan
                    .readbacks
                    .iter()
                    .map(|rb| {
                        let mut buf = vec![0f32; rb.len as usize];
                        match rb.source {
                            ReadbackSource::Ext(addr) => {
                                slot.cluster.ext_mem().read_f32_into(addr, &mut buf);
                            }
                            ReadbackSource::Tcdm(addr) => {
                                slot.cluster.read_tcdm_into(addr, &mut buf);
                            }
                        }
                        (rb.dst, buf)
                    })
                    .collect();
                slot.clock = start + cycles;
                let stall = faults.stall_between(cluster as u32, start, slot.clock);
                if stall > 0 {
                    slot.cluster.attribute_fault_stall(stall);
                    slot.clock += stall;
                }
                let _ = slot.tx.send(ShardOutcome::Retired {
                    perf,
                    cycles,
                    reads,
                });
            }
            WorkerCmd::Reclaim { cluster } => {
                let slot = owned
                    .get_mut(&cluster)
                    .expect("cluster owned by this worker");
                slot.dead = true;
                let plans = std::mem::take(&mut slot.stash);
                let _ = slot.tx.send(ShardOutcome::Reclaimed { plans });
            }
        }
    }
}

/// The persistent worker pool of a pooled continuous farm: `threads`
/// OS threads, each owning the clusters `c` with `c % threads == t`.
/// Commands flow one channel per thread (preserving per-cluster FIFO
/// order); results come back one channel per cluster so the merge
/// thread can wait on exactly the cluster the deterministic retire
/// order demands next.
struct WorkerPool {
    cmd_tx: Vec<mpsc::Sender<WorkerCmd>>,
    result_rx: Vec<mpsc::Receiver<ShardOutcome>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("clusters", &self.result_rx.len())
            .finish()
    }
}

impl WorkerPool {
    /// Moves the farm's clusters onto `threads` worker threads.
    fn spawn(clusters: Vec<Cluster>, clocks: &[u64], faults: FaultPlan, threads: usize) -> Self {
        let threads = threads.min(clusters.len()).max(1);
        let mut result_rx = Vec::with_capacity(clusters.len());
        let mut owned: Vec<BTreeMap<usize, WorkerSlot>> =
            (0..threads).map(|_| BTreeMap::new()).collect();
        for (c, cluster) in clusters.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            result_rx.push(rx);
            owned[c % threads].insert(
                c,
                WorkerSlot {
                    cluster,
                    clock: clocks[c],
                    dead: false,
                    stash: Vec::new(),
                    tx,
                },
            );
        }
        let mut cmd_tx = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for slots in owned {
            let (tx, rx) = mpsc::channel::<WorkerCmd>();
            cmd_tx.push(tx);
            handles.push(std::thread::spawn(move || worker_loop(slots, faults, rx)));
        }
        Self {
            cmd_tx,
            result_rx,
            handles,
            threads,
        }
    }

    /// Forwards one queued shard to its cluster's worker.
    fn send_run(&self, cluster: usize, plan: ClusterPlan, wiring: Option<ShardWiring>) {
        self.cmd_tx[cluster % self.threads]
            .send(WorkerCmd::Run {
                cluster,
                plan: Box::new(plan),
                wiring,
            })
            .expect("pool worker thread alive");
    }

    /// Blocks for the next shard outcome of `cluster` (its worker runs
    /// ahead speculatively; results arrive in admission order).
    fn recv(&self, cluster: usize) -> ShardOutcome {
        self.result_rx[cluster]
            .recv()
            .expect("pool worker thread alive")
    }

    /// Synchronously recovers the stashed plans of a dead cluster. The
    /// command channel is FIFO, so every `Run` sent before this has
    /// been stashed by the time the worker answers — the plans line up
    /// one-to-one with the merge thread's queued shard metadata.
    fn reclaim(&self, cluster: usize) -> Vec<ClusterPlan> {
        self.cmd_tx[cluster % self.threads]
            .send(WorkerCmd::Reclaim { cluster })
            .expect("pool worker thread alive");
        match self.recv(cluster) {
            ShardOutcome::Reclaimed { plans } => plans,
            _ => unreachable!(
                "every pre-kill shard outcome is consumed before the merge thread \
                 detects the kill, so the reclaim answer is next on the channel"
            ),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the command channels ends the worker loops.
        self.cmd_tx.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One retired shard of the continuously-admitted farm: everything the
/// serving layer needs to update its measured-duration table and
/// deliver completions.
#[derive(Debug)]
pub struct ShardRetire {
    /// Id of the job the shard belongs to.
    pub job_id: u64,
    /// Duration-table class of that job.
    pub class: JobClass,
    /// Cluster the shard ran on.
    pub cluster: usize,
    /// Measured shard duration, cluster cycles.
    pub cycles: u64,
    /// The *raw* roofline estimate for this shard — the denominator of
    /// the measured-duration feedback (`cycles / est_cycles` is the
    /// observed roofline correction). Deliberately not the corrected
    /// placement hint: feeding the corrected value back into the EWMA
    /// would make the learned ratio converge to the square root of the
    /// true correction instead of the correction itself.
    pub est_cycles: u64,
    /// The cluster's virtual clock after this shard retired.
    pub clock: u64,
    /// The finished job, when this was its last outstanding shard.
    pub result: Option<JobResult>,
}

/// One job in flight through the continuous farm.
#[derive(Debug)]
struct ActiveJob {
    meta: JobMeta,
    output: Vec<f32>,
    report: ScaleOutReport,
    remaining: usize,
    start_clock: u64,
    finish_clock: u64,
}

/// One queued shard of the continuous farm. In serial mode the plan
/// waits here; in pooled mode it was forwarded to the cluster's worker
/// at admission (`plan: None`) and only returns — via abort or reclaim
/// — when a kill forces re-placement.
#[derive(Debug)]
struct QueuedShard {
    slot: usize,
    plan: Option<ClusterPlan>,
    /// Corrected estimated cycles (the placement load unit).
    hint: u64,
    /// Raw roofline estimate (the measured-duration feedback input).
    est: u64,
    wiring: Option<ShardWiring>,
}

/// The farm: N independent clusters plus their shard FIFOs. Batch mode
/// ([`run_batch`](ClusterFarm::run_batch)) executes a pre-placed wave;
/// continuous mode ([`admit`](ClusterFarm::admit) /
/// [`step`](ClusterFarm::step) / [`drain`](ClusterFarm::drain)) feeds
/// jobs into the *running* farm and retires shards one observable
/// event at a time.
#[derive(Debug)]
pub struct ClusterFarm {
    /// The cluster states. Emptied when the worker pool activates —
    /// from then on each cluster lives on its worker thread and
    /// [`reference`](Self::reference) serves configuration queries.
    clusters: Vec<Cluster>,
    /// The per-cluster base configuration (before any memory-model
    /// port injection) — rebuilds the reference cluster at pool
    /// activation.
    config: ClusterConfig,
    freq_hz: f64,
    /// Requested worker threads for continuous stepping (resolved; 1 =
    /// serial merge loop). The pool spins up lazily on first admit.
    worker_threads: usize,
    /// The live worker pool once continuous admission activates it.
    pool: Option<WorkerPool>,
    /// Fresh cluster of the same configuration, for tiler/introspection
    /// queries while the real clusters live on the workers.
    reference: Option<Cluster>,
    /// Pool-utilization counters of this run.
    pool_stats: PoolStats,
    /// Event-selection heap over `(clock, cluster)` keys: the earliest
    /// clocked cluster with pending work retires next. Entries are
    /// validated lazily on pop, so stale keys are cheap.
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    /// Per-cluster flag: a key for this cluster is in `ready`.
    enqueued: Vec<bool>,
    /// Per-cluster FIFOs of shards admitted but not yet run
    /// (continuous mode only; `run_batch` keeps its own local queues).
    pending: Vec<VecDeque<QueuedShard>>,
    /// In-flight jobs, slab-indexed by `QueuedShard::slot`.
    active: Vec<Option<ActiveJob>>,
    free_slots: Vec<usize>,
    /// Per-cluster virtual clock: cycles of shard work retired so far.
    clock: Vec<u64>,
    /// Per-cluster estimated cycles still queued (placement load).
    queued_hint: Vec<u64>,
    /// The mesh geometry when the farm runs on [`MemoryModel::HmcMesh`]
    /// (its backing stores are moved into the clusters; what remains
    /// computes ports, homes, and hop costs).
    mesh: Option<HmcMesh>,
    /// Farm-lifetime accumulation of every retired shard's counter
    /// delta (both batch and continuous mode) — the serving layer's
    /// source for memory-stall attribution.
    totals: PerfSnapshot,
    /// The chaos schedule (continuous mode only; defaults to no
    /// faults). Consulted, never mutated — every injected event is a
    /// pure function of (seed, cycle, cluster).
    faults: FaultPlan,
    /// Clusters detected as failed: excluded from stepping and
    /// placement, their clocks frozen at the kill cycle.
    dead: Vec<bool>,
    /// Recovery counters of this run.
    fault_stats: FaultStats,
}

/// Stages a shard's inputs and runs it to completion in an isolated
/// idle-to-idle window; returns the counter delta and cycle count.
///
/// With mesh wiring the cluster's AXI port is first pointed at the
/// shard's home cube; a remote shard additionally pays the one-way hop
/// latency inside the measured window and has its traffic and stall
/// time attributed to the remote counters.
fn run_shard(
    cluster: &mut Cluster,
    plan: &mut ClusterPlan,
    wiring: Option<ShardWiring>,
) -> (PerfSnapshot, u64) {
    if let Some(w) = wiring {
        cluster.set_ext_port(Some(w.port));
    }
    for (addr, values) in &plan.ext_writes {
        cluster.ext_mem().write_f32_slice(*addr, values);
    }
    for (addr, values) in &plan.tcdm_writes {
        cluster.write_tcdm_f32(*addr, values);
    }
    // Measure from here: staging is host work, not simulated time.
    let before = cluster.perf();
    let cycle0 = cluster.cycle();
    let remote = wiring.filter(|w| w.remote);
    if let Some(w) = remote {
        cluster.advance_cycles(w.latency);
    }
    if let Some(raw) = &plan.raw {
        cluster.offload(0, &raw.config);
        cluster.run_to_completion();
    }
    if !plan.tiles.is_empty() {
        // The tiles move into the pipeline — plans are executed once,
        // so there is nothing to clone.
        let tiles = std::mem::take(&mut plan.tiles);
        TilePipeline::new(cluster, tiles).run_to_completion(cluster);
    }
    if let Some(w) = remote {
        let mid = cluster.perf().since(&before);
        cluster.attribute_remote(
            mid.ext_bytes_read + mid.ext_bytes_written,
            w.latency + mid.ext_wait_cycles,
        );
    }
    (cluster.perf().since(&before), cluster.cycle() - cycle0)
}

/// Gathers a shard's result slices into the job's output vector.
fn read_shard(cluster: &mut Cluster, plan: &ClusterPlan, out: &mut [f32]) {
    for rb in &plan.readbacks {
        let dst = &mut out[rb.dst..rb.dst + rb.len as usize];
        match rb.source {
            ReadbackSource::Ext(addr) => cluster.ext_mem().read_f32_into(addr, dst),
            ReadbackSource::Tcdm(addr) => cluster.read_tcdm_into(addr, dst),
        }
    }
}

impl ClusterFarm {
    /// Builds `clusters` independent clusters with ideal private
    /// external memories.
    ///
    /// # Panics
    ///
    /// Panics when `clusters` is zero.
    #[must_use]
    pub fn new(clusters: usize, config: ClusterConfig) -> Self {
        Self::with_memory(clusters, config, MemoryModel::Ideal)
    }

    /// Builds the farm under an explicit external-memory model. With
    /// [`MemoryModel::SharedHmc`] one [`HmcSubsystem`] hands every
    /// cluster its backing store and a port of the shared vault/LoB
    /// bandwidth schedule, so concurrent DMA streams contend for
    /// external-memory slots instead of each owning an ideal pipe —
    /// the farm's clusters stay independent simulations (grants are a
    /// pure function of the cycle), so both drive modes and the
    /// `parallel` feature keep working unchanged.
    ///
    /// # Panics
    ///
    /// Panics when `clusters` is zero.
    #[must_use]
    pub fn with_memory(clusters: usize, config: ClusterConfig, memory: MemoryModel) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        let mut mesh = None;
        let built: Vec<Cluster> = match memory {
            MemoryModel::Ideal => (0..clusters).map(|_| Cluster::new(config)).collect(),
            MemoryModel::SharedHmc(hmc) => {
                let mut sub = HmcSubsystem::new(
                    hmc,
                    u32::try_from(clusters).expect("cluster count fits u32"),
                    config.ntx_freq_hz,
                    config.dma_words_per_cycle,
                );
                sub.take_memories()
                    .into_iter()
                    .enumerate()
                    .map(|(i, mem)| {
                        let mut c = Cluster::new(ClusterConfig {
                            ext_port: Some(sub.port(i as u32)),
                            ..config
                        });
                        c.install_ext(mem);
                        c
                    })
                    .collect()
            }
            MemoryModel::HmcMesh(mc) => {
                let mut m = HmcMesh::new(
                    mc,
                    u32::try_from(clusters).expect("cluster count fits u32"),
                    config.ntx_freq_hz,
                    config.dma_words_per_cycle,
                );
                // Ports are wired per shard (they depend on the job's
                // home cube), so clusters start with no schedule; every
                // `run_shard` installs the right one before staging.
                let built = m
                    .take_memories()
                    .into_iter()
                    .map(|mem| {
                        let mut c = Cluster::new(ClusterConfig {
                            ext_port: None,
                            ..config
                        });
                        c.install_ext(mem);
                        c
                    })
                    .collect();
                mesh = Some(m);
                built
            }
        };
        Self {
            clusters: built,
            config,
            freq_hz: config.ntx_freq_hz,
            worker_threads: 1,
            pool: None,
            reference: None,
            pool_stats: PoolStats::default(),
            ready: BinaryHeap::new(),
            enqueued: vec![false; clusters],
            pending: (0..clusters).map(|_| VecDeque::new()).collect(),
            active: Vec::new(),
            free_slots: Vec::new(),
            clock: vec![0; clusters],
            queued_hint: vec![0; clusters],
            mesh,
            totals: PerfSnapshot::default(),
            faults: FaultPlan::NONE,
            dead: vec![false; clusters],
            fault_stats: FaultStats::default(),
        }
    }

    /// Arms a chaos schedule for this farm's continuous mode. Batch
    /// runs ([`run_batch`](ClusterFarm::run_batch)) ignore it — they
    /// are the fault-free differential oracle.
    ///
    /// # Panics
    ///
    /// Panics once the worker pool is active: the pool bakes the plan
    /// into its workers at activation.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert!(
            self.pool.is_none(),
            "fault plans must be armed before the worker pool activates"
        );
        self.faults = plan;
    }

    /// Sets the worker-thread count for continuous stepping (resolved
    /// via [`resolve_worker_threads`]; values above 1 make the first
    /// continuous admission activate the pool). Batch runs are
    /// unaffected.
    ///
    /// # Panics
    ///
    /// Panics once the worker pool is active.
    pub fn set_worker_threads(&mut self, threads: usize) {
        assert!(
            self.pool.is_none(),
            "the worker-thread count must be set before the pool activates"
        );
        self.worker_threads = threads.max(1);
    }

    /// The resolved worker-thread count of the continuous farm (1 =
    /// serial merge loop).
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        self.worker_threads
    }

    /// Pool-utilization counters of this run (all zero in serial mode;
    /// `worker_threads` always reports the resolved count).
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            worker_threads: self.worker_threads,
            ..self.pool_stats
        }
    }

    /// Spins up the worker pool on the first continuous admission of a
    /// multi-threaded farm: the cluster states move onto the worker
    /// threads and a fresh reference cluster takes over configuration
    /// queries. Serial farms (`worker_threads == 1`) never activate.
    fn activate_pool(&mut self) {
        if self.pool.is_some() || self.worker_threads <= 1 {
            return;
        }
        self.reference = Some(Cluster::new(self.config));
        let clusters = std::mem::take(&mut self.clusters);
        self.pool = Some(WorkerPool::spawn(
            clusters,
            &self.clock,
            self.faults,
            self.worker_threads,
        ));
    }

    /// Queues cluster `index` as an event-selection candidate at its
    /// current clock (no-op when already queued, dead, or idle).
    fn push_candidate(&mut self, index: usize) {
        if !self.enqueued[index] && !self.dead[index] && !self.pending[index].is_empty() {
            self.ready.push(Reverse((self.clock[index], index)));
            self.enqueued[index] = true;
        }
    }

    /// Pops the next event cluster: the earliest `(clock, cluster)`
    /// key whose cluster is alive and has pending work — identical to
    /// a full `min_by_key` scan, in O(log N). Stale keys (the clock
    /// moved while queued) are re-pushed.
    fn next_event_cluster(&mut self) -> Option<usize> {
        while let Some(Reverse((clk, c))) = self.ready.pop() {
            self.enqueued[c] = false;
            if self.dead[c] || self.pending[c].is_empty() {
                continue;
            }
            if clk != self.clock[c] {
                self.push_candidate(c);
                continue;
            }
            return Some(c);
        }
        None
    }

    /// The armed chaos schedule (the empty plan by default).
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        self.faults
    }

    /// Recovery counters of this run (kills fired, shards re-placed).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// True when cluster `index` can still accept and run work: not
    /// yet detected dead, and not past an armed kill cycle.
    #[must_use]
    pub fn is_alive(&self, index: usize) -> bool {
        !self.dead[index] && !self.crossed_kill(index)
    }

    /// Number of live clusters.
    #[must_use]
    pub fn num_alive(&self) -> usize {
        (0..self.num_clusters())
            .filter(|&c| self.is_alive(c))
            .count()
    }

    /// The farm's virtual "now": the earliest live-cluster clock — the
    /// time at which the next admitted shard could start at all. Used
    /// by the serving layer's deadline shedding. Falls back over all
    /// clusters when none are alive.
    #[must_use]
    pub fn virtual_now(&self) -> u64 {
        let alive = (0..self.num_clusters())
            .filter(|&c| self.is_alive(c))
            .map(|c| self.clock[c])
            .min();
        alive.unwrap_or_else(|| self.clock.iter().copied().min().unwrap_or(0))
    }

    /// True when `index` has an armed kill whose cycle its clock has
    /// reached (kill pending detection).
    fn crossed_kill(&self, index: usize) -> bool {
        self.faults
            .kill_cycle(index as u32)
            .is_some_and(|at| self.clock[index] >= at)
    }

    /// Marks `index` dead and re-admits everything still queued on it
    /// onto the least-loaded surviving clusters (FIFO order, ties to
    /// the lowest index — deterministic). `extra` carries the aborted
    /// in-flight shard of a mid-shard kill, evacuated first.
    ///
    /// # Panics
    ///
    /// Panics when no cluster survives to take the work.
    fn fail_cluster(&mut self, index: usize, extra: Option<QueuedShard>) {
        self.dead[index] = true;
        if let Some(at) = self.faults.kill_cycle(index as u32) {
            // Freeze the dead cluster's virtual clock at the kill
            // cycle: work past it never observably happened.
            self.clock[index] = self.clock[index].min(at);
        }
        self.fault_stats.faults_injected += 1;
        let mut orphans: Vec<QueuedShard> = extra.into_iter().collect();
        if self.pool.is_some() {
            // The aborted in-flight shard was a dead speculation too.
            self.pool_stats.shards_reclaimed += orphans.len() as u64;
        }
        let queued: Vec<QueuedShard> = std::mem::take(&mut self.pending[index]).into();
        match &self.pool {
            // The queued plans were forwarded to the dead cluster's
            // worker at admission; reclaim them (FIFO, so they line up
            // with the queued metadata) before re-placement.
            Some(pool) if !queued.is_empty() => {
                let plans = pool.reclaim(index);
                assert_eq!(
                    plans.len(),
                    queued.len(),
                    "reclaimed plans must match the queued shards one-to-one"
                );
                self.pool_stats.shards_reclaimed += plans.len() as u64;
                orphans.extend(queued.into_iter().zip(plans).map(|(mut task, plan)| {
                    task.plan = Some(plan);
                    task
                }));
            }
            _ => orphans.extend(queued),
        }
        self.queued_hint[index] = 0;
        for mut task in orphans {
            let target = (0..self.num_clusters())
                .filter(|&c| self.is_alive(c))
                .min_by_key(|&c| (self.load(c), c))
                .expect("a surviving cluster must exist to re-admit orphaned shards");
            let meta = self.active[task.slot]
                .as_ref()
                .expect("orphaned shard has an active job")
                .meta
                .clone();
            task.wiring = self.wiring_for(target, &meta);
            self.queued_hint[target] += task.hint;
            if let Some(pool) = &self.pool {
                let plan = task.plan.take().expect("reclaimed orphan carries its plan");
                pool.send_run(target, plan, task.wiring);
            }
            self.pending[target].push_back(task);
            self.push_candidate(target);
            self.fault_stats.shards_retried += 1;
        }
    }

    /// The resolved home cube of a job under this farm's mesh (`None`
    /// without a mesh memory model).
    #[must_use]
    pub fn home_cube(&self, job_id: u64, requested: Option<u32>) -> Option<u32> {
        self.mesh.as_ref().map(|m| m.home_of(job_id, requested))
    }

    /// Placement penalty of running a shard of job `job_id` on
    /// `cluster`: 0 when the cluster is attached to the job's home
    /// cube (or the farm has no mesh), 1 when its traffic would cross
    /// a serial link. The admission path sorts candidate clusters by
    /// this before load.
    #[must_use]
    pub fn remote_penalty(&self, cluster: usize, job_id: u64, requested: Option<u32>) -> u64 {
        match &self.mesh {
            Some(m) => {
                let home = m.home_of(job_id, requested);
                u64::from(!m.is_local(cluster as u32, home))
            }
            None => 0,
        }
    }

    /// Farm-lifetime accumulation of every retired shard's counters.
    #[must_use]
    pub fn perf_totals(&self) -> PerfSnapshot {
        self.totals
    }

    /// The wiring a shard of `meta` needs on `cluster` (`None` without
    /// a mesh: the construction-time port stays in place).
    fn wiring_for(&self, cluster: usize, meta: &JobMeta) -> Option<ShardWiring> {
        let mesh = self.mesh.as_ref()?;
        let c = cluster as u32;
        let home = mesh.home_of(meta.id, meta.home_cube);
        let remote = !mesh.is_local(c, home);
        let mut port = mesh.port(c, home);
        if remote {
            // An armed link fault degrades *serial-link* traffic only:
            // local (same-cube) ports keep their nominal schedule.
            if let Some(lf) = self.faults.link_fault {
                port = port.degraded(lf.clip_q16, lf.from, lf.until);
            }
        }
        Some(ShardWiring {
            port,
            remote,
            latency: if remote {
                u64::from(mesh.link_latency_cycles())
            } else {
                0
            },
        })
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clock.len()
    }

    /// Read-only access to cluster `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range, or once the worker pool is
    /// active (cluster states then live on the worker threads — use
    /// [`reference_cluster`](Self::reference_cluster) for
    /// configuration introspection).
    #[must_use]
    pub fn cluster(&self, index: usize) -> &Cluster {
        assert!(
            self.pool.is_none(),
            "cluster states live on the worker pool; use reference_cluster() \
             for configuration introspection"
        );
        &self.clusters[index]
    }

    /// A cluster of this farm's configuration for tiler and capacity
    /// queries — cluster 0 in serial mode, a fresh identically-
    /// configured cluster once the pool owns the real states. Never
    /// carries job data.
    #[must_use]
    pub fn reference_cluster(&self) -> &Cluster {
        match &self.reference {
            Some(r) => r,
            None => &self.clusters[0],
        }
    }

    /// Executes a batch of placed jobs and assembles per-job results
    /// plus the batch window under the chosen accounting (see the
    /// module docs). Results come back in `placed` order.
    #[must_use]
    pub fn run_batch(&mut self, placed: Vec<PlacedJob>, pipelined: bool) -> BatchResult {
        assert!(
            self.pool.is_none(),
            "batch execution is not supported once the worker pool is active"
        );
        let n = self.num_clusters();
        let mut metas = Vec::with_capacity(placed.len());
        let mut outputs: Vec<Vec<f32>> = Vec::with_capacity(placed.len());
        let mut queues: Vec<Vec<ShardTask>> = (0..n).map(|_| Vec::new()).collect();
        for (job_idx, p) in placed.into_iter().enumerate() {
            outputs.push(vec![0f32; p.meta.output_len]);
            for (c, plan) in p.shards {
                let wiring = self.wiring_for(c, &p.meta);
                queues[c].push(ShardTask {
                    job_idx,
                    plan,
                    wiring,
                });
            }
            metas.push(p.meta);
        }

        let records = self.drive(&mut queues, &mut outputs);
        for recs in &records {
            for (_, perf, _) in recs {
                self.totals.accumulate(perf);
            }
        }

        // Per-job windows: per-cluster deltas, shard-local makespan.
        let jobs = metas.len();
        let mut reports: Vec<ScaleOutReport> = (0..jobs)
            .map(|_| ScaleOutReport::new(n, self.freq_hz))
            .collect();
        let mut batch = ScaleOutReport::new(n, self.freq_hz);
        for (c, recs) in records.iter().enumerate() {
            for (j, perf, cycles) in recs {
                reports[*j].per_cluster[c] = *perf;
                reports[*j].makespan_cycles = reports[*j].makespan_cycles.max(*cycles);
                batch.per_cluster[c].accumulate(perf);
            }
        }

        // Virtual farm time: when each job starts and retires.
        let mut start = vec![0u64; jobs];
        let mut finish = vec![0u64; jobs];
        if pipelined {
            start.fill(u64::MAX);
            for recs in &records {
                let mut t = 0u64;
                for (j, _, cycles) in recs {
                    start[*j] = start[*j].min(t);
                    t += cycles;
                    finish[*j] = finish[*j].max(t);
                }
                batch.makespan_cycles = batch.makespan_cycles.max(t);
            }
            for s in &mut start {
                if *s == u64::MAX {
                    *s = 0;
                }
            }
        } else {
            let mut t = 0u64;
            for j in 0..jobs {
                start[j] = t;
                t += reports[j].makespan_cycles;
                finish[j] = t;
            }
            batch.makespan_cycles = t;
        }

        let results = metas
            .into_iter()
            .zip(outputs)
            .zip(reports)
            .enumerate()
            .map(|(j, ((meta, output), report))| JobResult {
                job_id: meta.id,
                label: meta.label,
                output,
                report,
                start_cycle: start[j],
                finish_cycle: finish[j],
                estimate: None,
                backend: crate::BackendKind::Simulate,
            })
            .collect();
        BatchResult {
            results,
            report: batch,
        }
    }

    /// Admits one placed job into the running farm (continuous mode):
    /// its shards join the tail of their clusters' FIFOs and will run
    /// as those clusters free up — no wave boundary, no barrier.
    /// `shard_cycles_hint` is the *corrected* estimated duration of
    /// one shard (the placement load unit); `shard_cycles_est` is the
    /// raw roofline estimate (reported back at retire as the
    /// measured-duration feedback denominator).
    ///
    /// # Panics
    ///
    /// Panics when the job has no shards (admission guarantees at
    /// least one non-empty plan for every valid job).
    pub fn admit(&mut self, placed: PlacedJob, shard_cycles_hint: u64, shard_cycles_est: u64) {
        assert!(!placed.shards.is_empty(), "job admitted with no shards");
        self.activate_pool();
        let n = self.num_clusters();
        let job = ActiveJob {
            output: vec![0f32; placed.meta.output_len],
            report: ScaleOutReport::new(n, self.freq_hz),
            remaining: placed.shards.len(),
            start_clock: u64::MAX,
            finish_clock: 0,
            meta: placed.meta,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.active[s] = Some(job);
                s
            }
            None => {
                self.active.push(Some(job));
                self.active.len() - 1
            }
        };
        for (c, plan) in placed.shards {
            debug_assert!(
                self.is_alive(c),
                "placement targeted dead cluster {c} — the admission path must \
                 filter by `is_alive`"
            );
            self.queued_hint[c] += shard_cycles_hint;
            let meta = &self.active[slot].as_ref().expect("job just stored").meta;
            let wiring = self.wiring_for(c, meta);
            // Pooled farms forward the plan to the cluster's worker
            // right away — it starts speculating the moment its
            // thread is free; the merge queue keeps the metadata.
            let plan = match &self.pool {
                Some(pool) => {
                    pool.send_run(c, plan, wiring);
                    None
                }
                None => Some(plan),
            };
            self.pending[c].push_back(QueuedShard {
                slot,
                plan,
                hint: shard_cycles_hint,
                est: shard_cycles_est,
                wiring,
            });
            self.push_candidate(c);
        }
    }

    /// Retires the next shard event of the continuous farm: the
    /// cluster whose virtual clock is earliest (ties to the lowest
    /// index) runs the shard at the head of its FIFO to completion in
    /// an isolated idle-to-idle window. Returns `None` when no shards
    /// are queued. Per-cluster shard order is admission order, so
    /// per-job outputs and [`PerfSnapshot`]s are bit-identical to a
    /// barriered [`run_batch`](ClusterFarm::run_batch) of the same
    /// placement — only the admission timing differs.
    pub fn step(&mut self) -> Option<ShardRetire> {
        // A loop, not tail recursion: a kill with a deep pending queue
        // re-places every orphan and tries again, and the stack must
        // not grow with the queue depth.
        loop {
            // Detect a kill whose cycle was crossed since the last
            // event: the dead cluster's queue is evacuated before
            // anything else is scheduled, so no shard is ever lost.
            // At most one kill is armed, so only that cluster needs
            // checking.
            if let Some(k) = self.faults.kill {
                let kc = k.cluster as usize;
                if kc < self.num_clusters() && !self.dead[kc] && self.crossed_kill(kc) {
                    self.fail_cluster(kc, None);
                }
            }
            let c = self.next_event_cluster()?;
            let mut task = self.pending[c].pop_front().expect("non-empty FIFO");
            self.queued_hint[c] -= task.hint;
            let kill_at = self.faults.kill_cycle(c as u32);
            let start = self.clock[c];
            // Run the shard — inline on the serial engine, or collect
            // the worker's speculative result. Per-cluster order is
            // admission order on both engines and every cross-cluster
            // decision happens here on the merge thread, so outcomes
            // are bit-identical.
            enum Ran {
                Done(PerfSnapshot, u64, Option<Vec<(usize, Vec<f32>)>>),
                Killed(ClusterPlan),
            }
            let ran = match &self.pool {
                Some(pool) => match pool.recv(c) {
                    ShardOutcome::Retired {
                        perf,
                        cycles,
                        reads,
                    } => {
                        debug_assert!(
                            kill_at.is_none_or(|at| start + cycles <= at),
                            "worker retired a shard across its kill cycle"
                        );
                        self.pool_stats.shards_merged += 1;
                        Ran::Done(perf, cycles, Some(reads))
                    }
                    ShardOutcome::Aborted { plan } => Ran::Killed(plan),
                    ShardOutcome::Reclaimed { .. } => {
                        unreachable!("reclaim answers are consumed inside fail_cluster")
                    }
                },
                None => {
                    // With a kill armed the shard might straddle the
                    // kill cycle; keep a copy so the aborted work can
                    // be re-placed bit-identically (`run_shard`
                    // consumes the tiles).
                    let backup = kill_at.and_then(|_| task.plan.clone());
                    let plan = task.plan.as_mut().expect("serial farm queues plans");
                    let (perf, cycles) = run_shard(&mut self.clusters[c], plan, task.wiring);
                    if kill_at.is_some_and(|at| start + cycles > at) {
                        Ran::Killed(backup.expect("kill armed implies a plan backup"))
                    } else {
                        Ran::Done(perf, cycles, None)
                    }
                }
            };
            let (perf, cycles, reads) = match ran {
                Ran::Killed(plan) => {
                    // The cluster died mid-shard: discard the run — no
                    // readback, no counter accumulation, clock frozen
                    // at the kill cycle — and re-admit the shard (plus
                    // the rest of the queue) on the survivors. The
                    // dead cluster's memory state no longer matters.
                    self.clock[c] = kill_at.expect("mid-shard abort implies an armed kill");
                    task.plan = Some(plan);
                    self.fail_cluster(c, Some(task));
                    continue;
                }
                Ran::Done(perf, cycles, reads) => (perf, cycles, reads),
            };
            self.totals.accumulate(&perf);
            self.clock[c] = start + cycles;
            // Transient stalls: windows whose boundary the shard
            // crossed freeze the cluster afterwards. Dead time is
            // attributed to the fault counter, not to the shard
            // (per-job outputs and counters stay bit-identical to the
            // fault-free run). Pool workers apply the cluster-counter
            // attribution themselves to keep their states in lockstep.
            let stall = self.faults.stall_between(c as u32, start, self.clock[c]);
            if stall > 0 {
                if self.pool.is_none() {
                    self.clusters[c].attribute_fault_stall(stall);
                }
                self.clock[c] += stall;
                self.totals.fault_stall_cycles += stall;
                self.fault_stats.faults_injected += 1;
            }
            let job = self.active[task.slot]
                .as_mut()
                .expect("queued shard has an active job");
            match reads {
                Some(reads) => {
                    for (dst, data) in reads {
                        job.output[dst..dst + data.len()].copy_from_slice(&data);
                    }
                }
                None => {
                    let plan = task.plan.as_ref().expect("serial farm queues plans");
                    read_shard(&mut self.clusters[c], plan, &mut job.output);
                }
            }
            job.report.per_cluster[c].accumulate(&perf);
            job.report.makespan_cycles = job.report.makespan_cycles.max(cycles);
            job.start_clock = job.start_clock.min(start);
            job.finish_clock = job.finish_clock.max(self.clock[c]);
            job.remaining -= 1;
            let (job_id, class) = (job.meta.id, job.meta.class);
            let result = if job.remaining == 0 {
                let done = self.active[task.slot].take().expect("job still active");
                self.free_slots.push(task.slot);
                Some(JobResult {
                    job_id: done.meta.id,
                    label: done.meta.label,
                    output: done.output,
                    report: done.report,
                    start_cycle: done.start_clock,
                    finish_cycle: done.finish_clock,
                    estimate: None,
                    backend: crate::BackendKind::Simulate,
                })
            } else {
                None
            };
            self.push_candidate(c);
            return Some(ShardRetire {
                job_id,
                class,
                cluster: c,
                cycles,
                est_cycles: task.est,
                clock: self.clock[c],
                result,
            });
        }
    }

    /// Runs the continuous farm dry: steps until every queued shard has
    /// retired and returns the events in retire order.
    pub fn drain(&mut self) -> Vec<ShardRetire> {
        let mut events = Vec::new();
        while let Some(e) = self.step() {
            events.push(e);
        }
        events
    }

    /// True when the continuous farm still has queued shards.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.pending.iter().any(|q| !q.is_empty())
    }

    /// Placement load of cluster `index`: its virtual clock plus the
    /// estimated cycles of everything queued on it.
    #[must_use]
    pub fn load(&self, index: usize) -> u64 {
        self.clock[index] + self.queued_hint[index]
    }

    /// Virtual makespan of the continuous farm: the latest cluster
    /// clock.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.clock.iter().copied().max().unwrap_or(0)
    }

    /// Serial drive: clusters are fully independent simulations, so
    /// each runs its whole shard FIFO in turn; readbacks scatter
    /// straight into the job outputs with no intermediate allocation.
    #[cfg(not(feature = "parallel"))]
    fn drive(
        &mut self,
        queues: &mut [Vec<ShardTask>],
        outputs: &mut [Vec<f32>],
    ) -> Vec<Vec<ShardRecord>> {
        let mut records: Vec<Vec<ShardRecord>> = Vec::with_capacity(queues.len());
        for (cluster, queue) in self.clusters.iter_mut().zip(queues.iter_mut()) {
            let mut recs = Vec::with_capacity(queue.len());
            for shard in queue.iter_mut() {
                let (perf, cycles) = run_shard(cluster, &mut shard.plan, shard.wiring);
                read_shard(cluster, &shard.plan, &mut outputs[shard.job_idx]);
                recs.push((shard.job_idx, perf, cycles));
            }
            records.push(recs);
        }
        records
    }

    /// Thread-parallel drive: one OS thread per cluster. Clusters
    /// share no state, so this is observably identical to the serial
    /// drive; each thread gathers its readbacks locally and the main
    /// thread scatters them afterwards.
    #[cfg(feature = "parallel")]
    fn drive(
        &mut self,
        queues: &mut [Vec<ShardTask>],
        outputs: &mut [Vec<f32>],
    ) -> Vec<Vec<ShardRecord>> {
        let per_cluster: Vec<(Vec<ShardRecord>, Vec<Vec<f32>>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .clusters
                .iter_mut()
                .zip(queues.iter_mut())
                .map(|(cluster, queue)| {
                    scope.spawn(move || {
                        let mut recs = Vec::with_capacity(queue.len());
                        let mut reads = Vec::with_capacity(queue.len());
                        for shard in queue.iter_mut() {
                            let (perf, cycles) = run_shard(cluster, &mut shard.plan, shard.wiring);
                            let total: usize =
                                shard.plan.readbacks.iter().map(|r| r.len as usize).sum();
                            let mut buf = vec![0f32; total];
                            let mut off = 0usize;
                            for rb in &shard.plan.readbacks {
                                let seg = &mut buf[off..off + rb.len as usize];
                                match rb.source {
                                    ReadbackSource::Ext(addr) => {
                                        cluster.ext_mem().read_f32_into(addr, seg);
                                    }
                                    ReadbackSource::Tcdm(addr) => {
                                        cluster.read_tcdm_into(addr, seg);
                                    }
                                }
                                off += rb.len as usize;
                            }
                            recs.push((shard.job_idx, perf, cycles));
                            reads.push(buf);
                        }
                        (recs, reads)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cluster thread panicked"))
                .collect()
        });
        let mut records = Vec::with_capacity(per_cluster.len());
        for (queue, (recs, reads)) in queues.iter().zip(per_cluster) {
            for (shard, buf) in queue.iter().zip(&reads) {
                let mut off = 0usize;
                let out = &mut outputs[shard.job_idx];
                for rb in &shard.plan.readbacks {
                    out[rb.dst..rb.dst + rb.len as usize]
                        .copy_from_slice(&buf[off..off + rb.len as usize]);
                    off += rb.len as usize;
                }
            }
            records.push(recs);
        }
        records
    }
}
