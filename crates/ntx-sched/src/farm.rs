//! The pipelined cluster farm: event-driven shard execution across N
//! independent clusters.
//!
//! The farm replaces the old executor's per-job barrier. Each cluster
//! owns a FIFO of *shards* (one per job that placed work on it) and
//! runs them back to back: the moment its pipeline for job *i* drains —
//! an observable [`Cluster::run_burst`] event — the cluster stages job
//! *i+1* and queues its input DMA, so in system (makespan) time the
//! store-drain of job *i* on one cluster overlaps the input DMA of job
//! *i+1* on every cluster that finished earlier, and small jobs placed
//! on disjoint cluster subsets run concurrently (cluster-level space
//! sharing).
//!
//! Two accountings of the same per-shard simulations:
//!
//! * **pipelined** (default): cluster `c` starts its next shard the
//!   cycle its previous one retires; the batch makespan is
//!   `max_c Σ_j shard(c, j)`.
//! * **barriered** (`pipelined: false`): every job waits for the
//!   slowest cluster of its predecessor; the batch makespan is
//!   `Σ_j max_c shard(c, j)` — the differential oracle, mirroring the
//!   simulator's `fast_path: false` pattern.
//!
//! Each shard executes in an isolated idle-to-idle measurement window
//! on its cluster (staging is host work; clusters advance their local
//! clocks only while working), so per-job outputs **and** per-job
//! [`PerfSnapshot`] deltas are bit-identical between the two modes —
//! only the overlap accounting differs. This is also why the farm does
//! not chain one job's tiles into the next job's pipeline within a
//! cluster: the TCDM ping-pong region and the external-memory operand
//! regions are reused across jobs, and cross-job contention inside one
//! window would make the per-job counters diverge from the barriered
//! reference.

use ntx_mem::{HmcMesh, HmcPort, HmcSubsystem, MemoryModel};
use ntx_sim::{Cluster, ClusterConfig, FaultPlan, PerfSnapshot};
use std::collections::VecDeque;

use crate::executor::{BatchResult, JobResult};
use crate::job::JobClass;
use crate::pipeline::TilePipeline;
use crate::report::ScaleOutReport;
use crate::tiler::{ClusterPlan, ReadbackSource};

/// The identity of a job inside the farm: everything execution needs
/// once the tiler has captured the job's data into its plans.
#[derive(Debug, Clone)]
pub struct JobMeta {
    /// Queue-assigned id.
    pub id: u64,
    /// Submission label.
    pub label: String,
    /// Output length in `f32` elements.
    pub output_len: usize,
    /// Duration-table class of the job's kind.
    pub class: JobClass,
    /// Requested home cube for the job's operand region (mesh memory
    /// only). `None` falls back to round-robin over the cubes by job
    /// id; out-of-range requests wrap.
    pub home_cube: Option<u32>,
}

/// One job, placed: which cluster runs which shard plan.
#[derive(Debug)]
pub struct PlacedJob {
    /// Job identity.
    pub meta: JobMeta,
    /// `(cluster index, plan)` pairs, one per non-empty shard.
    pub shards: Vec<(usize, ClusterPlan)>,
}

/// How a shard's AXI port is wired for its run: the grant schedule of
/// the job's home cube as seen from the executing cluster, plus the
/// hop cost when that cube is remote. Pure data computed from the
/// static mesh geometry, so both drive modes (and the `parallel`
/// feature) wire shards identically.
#[derive(Debug, Clone, Copy)]
struct ShardWiring {
    port: HmcPort,
    remote: bool,
    latency: u64,
}

/// One entry of a cluster's shard FIFO.
#[derive(Debug)]
struct ShardTask {
    job_idx: usize,
    plan: ClusterPlan,
    wiring: Option<ShardWiring>,
}

/// Per-shard measurement: which job, its counter delta, its duration.
type ShardRecord = (usize, PerfSnapshot, u64);

/// Fault-recovery counters of one farm run (continuous mode; the
/// batch oracle never injects faults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fault events that fired: cluster kills plus transient stalls.
    pub faults_injected: u64,
    /// Shards evacuated from a failed cluster and re-admitted on a
    /// surviving one (queued shards plus the aborted in-flight shard).
    pub shards_retried: u64,
}

/// One retired shard of the continuously-admitted farm: everything the
/// serving layer needs to update its measured-duration table and
/// deliver completions.
#[derive(Debug)]
pub struct ShardRetire {
    /// Id of the job the shard belongs to.
    pub job_id: u64,
    /// Duration-table class of that job.
    pub class: JobClass,
    /// Cluster the shard ran on.
    pub cluster: usize,
    /// Measured shard duration, cluster cycles.
    pub cycles: u64,
    /// The *raw* roofline estimate for this shard — the denominator of
    /// the measured-duration feedback (`cycles / est_cycles` is the
    /// observed roofline correction). Deliberately not the corrected
    /// placement hint: feeding the corrected value back into the EWMA
    /// would make the learned ratio converge to the square root of the
    /// true correction instead of the correction itself.
    pub est_cycles: u64,
    /// The cluster's virtual clock after this shard retired.
    pub clock: u64,
    /// The finished job, when this was its last outstanding shard.
    pub result: Option<JobResult>,
}

/// One job in flight through the continuous farm.
#[derive(Debug)]
struct ActiveJob {
    meta: JobMeta,
    output: Vec<f32>,
    report: ScaleOutReport,
    remaining: usize,
    start_clock: u64,
    finish_clock: u64,
}

/// One queued shard of the continuous farm.
#[derive(Debug)]
struct QueuedShard {
    slot: usize,
    plan: ClusterPlan,
    /// Corrected estimated cycles (the placement load unit).
    hint: u64,
    /// Raw roofline estimate (the measured-duration feedback input).
    est: u64,
    wiring: Option<ShardWiring>,
}

/// The farm: N independent clusters plus their shard FIFOs. Batch mode
/// ([`run_batch`](ClusterFarm::run_batch)) executes a pre-placed wave;
/// continuous mode ([`admit`](ClusterFarm::admit) /
/// [`step`](ClusterFarm::step) / [`drain`](ClusterFarm::drain)) feeds
/// jobs into the *running* farm and retires shards one observable
/// event at a time.
#[derive(Debug)]
pub struct ClusterFarm {
    clusters: Vec<Cluster>,
    freq_hz: f64,
    /// Per-cluster FIFOs of shards admitted but not yet run
    /// (continuous mode only; `run_batch` keeps its own local queues).
    pending: Vec<VecDeque<QueuedShard>>,
    /// In-flight jobs, slab-indexed by `QueuedShard::slot`.
    active: Vec<Option<ActiveJob>>,
    free_slots: Vec<usize>,
    /// Per-cluster virtual clock: cycles of shard work retired so far.
    clock: Vec<u64>,
    /// Per-cluster estimated cycles still queued (placement load).
    queued_hint: Vec<u64>,
    /// The mesh geometry when the farm runs on [`MemoryModel::HmcMesh`]
    /// (its backing stores are moved into the clusters; what remains
    /// computes ports, homes, and hop costs).
    mesh: Option<HmcMesh>,
    /// Farm-lifetime accumulation of every retired shard's counter
    /// delta (both batch and continuous mode) — the serving layer's
    /// source for memory-stall attribution.
    totals: PerfSnapshot,
    /// The chaos schedule (continuous mode only; defaults to no
    /// faults). Consulted, never mutated — every injected event is a
    /// pure function of (seed, cycle, cluster).
    faults: FaultPlan,
    /// Clusters detected as failed: excluded from stepping and
    /// placement, their clocks frozen at the kill cycle.
    dead: Vec<bool>,
    /// Recovery counters of this run.
    fault_stats: FaultStats,
}

/// Stages a shard's inputs and runs it to completion in an isolated
/// idle-to-idle window; returns the counter delta and cycle count.
///
/// With mesh wiring the cluster's AXI port is first pointed at the
/// shard's home cube; a remote shard additionally pays the one-way hop
/// latency inside the measured window and has its traffic and stall
/// time attributed to the remote counters.
fn run_shard(
    cluster: &mut Cluster,
    plan: &mut ClusterPlan,
    wiring: Option<ShardWiring>,
) -> (PerfSnapshot, u64) {
    if let Some(w) = wiring {
        cluster.set_ext_port(Some(w.port));
    }
    for (addr, values) in &plan.ext_writes {
        cluster.ext_mem().write_f32_slice(*addr, values);
    }
    for (addr, values) in &plan.tcdm_writes {
        cluster.write_tcdm_f32(*addr, values);
    }
    // Measure from here: staging is host work, not simulated time.
    let before = cluster.perf();
    let cycle0 = cluster.cycle();
    let remote = wiring.filter(|w| w.remote);
    if let Some(w) = remote {
        cluster.advance_cycles(w.latency);
    }
    if let Some(raw) = &plan.raw {
        cluster.offload(0, &raw.config);
        cluster.run_to_completion();
    }
    if !plan.tiles.is_empty() {
        // The tiles move into the pipeline — plans are executed once,
        // so there is nothing to clone.
        let tiles = std::mem::take(&mut plan.tiles);
        TilePipeline::new(cluster, tiles).run_to_completion(cluster);
    }
    if let Some(w) = remote {
        let mid = cluster.perf().since(&before);
        cluster.attribute_remote(
            mid.ext_bytes_read + mid.ext_bytes_written,
            w.latency + mid.ext_wait_cycles,
        );
    }
    (cluster.perf().since(&before), cluster.cycle() - cycle0)
}

/// Gathers a shard's result slices into the job's output vector.
fn read_shard(cluster: &mut Cluster, plan: &ClusterPlan, out: &mut [f32]) {
    for rb in &plan.readbacks {
        let dst = &mut out[rb.dst..rb.dst + rb.len as usize];
        match rb.source {
            ReadbackSource::Ext(addr) => cluster.ext_mem().read_f32_into(addr, dst),
            ReadbackSource::Tcdm(addr) => cluster.read_tcdm_into(addr, dst),
        }
    }
}

impl ClusterFarm {
    /// Builds `clusters` independent clusters with ideal private
    /// external memories.
    ///
    /// # Panics
    ///
    /// Panics when `clusters` is zero.
    #[must_use]
    pub fn new(clusters: usize, config: ClusterConfig) -> Self {
        Self::with_memory(clusters, config, MemoryModel::Ideal)
    }

    /// Builds the farm under an explicit external-memory model. With
    /// [`MemoryModel::SharedHmc`] one [`HmcSubsystem`] hands every
    /// cluster its backing store and a port of the shared vault/LoB
    /// bandwidth schedule, so concurrent DMA streams contend for
    /// external-memory slots instead of each owning an ideal pipe —
    /// the farm's clusters stay independent simulations (grants are a
    /// pure function of the cycle), so both drive modes and the
    /// `parallel` feature keep working unchanged.
    ///
    /// # Panics
    ///
    /// Panics when `clusters` is zero.
    #[must_use]
    pub fn with_memory(clusters: usize, config: ClusterConfig, memory: MemoryModel) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        let mut mesh = None;
        let built: Vec<Cluster> = match memory {
            MemoryModel::Ideal => (0..clusters).map(|_| Cluster::new(config)).collect(),
            MemoryModel::SharedHmc(hmc) => {
                let mut sub = HmcSubsystem::new(
                    hmc,
                    u32::try_from(clusters).expect("cluster count fits u32"),
                    config.ntx_freq_hz,
                    config.dma_words_per_cycle,
                );
                sub.take_memories()
                    .into_iter()
                    .enumerate()
                    .map(|(i, mem)| {
                        let mut c = Cluster::new(ClusterConfig {
                            ext_port: Some(sub.port(i as u32)),
                            ..config
                        });
                        c.install_ext(mem);
                        c
                    })
                    .collect()
            }
            MemoryModel::HmcMesh(mc) => {
                let mut m = HmcMesh::new(
                    mc,
                    u32::try_from(clusters).expect("cluster count fits u32"),
                    config.ntx_freq_hz,
                    config.dma_words_per_cycle,
                );
                // Ports are wired per shard (they depend on the job's
                // home cube), so clusters start with no schedule; every
                // `run_shard` installs the right one before staging.
                let built = m
                    .take_memories()
                    .into_iter()
                    .map(|mem| {
                        let mut c = Cluster::new(ClusterConfig {
                            ext_port: None,
                            ..config
                        });
                        c.install_ext(mem);
                        c
                    })
                    .collect();
                mesh = Some(m);
                built
            }
        };
        Self {
            clusters: built,
            freq_hz: config.ntx_freq_hz,
            pending: (0..clusters).map(|_| VecDeque::new()).collect(),
            active: Vec::new(),
            free_slots: Vec::new(),
            clock: vec![0; clusters],
            queued_hint: vec![0; clusters],
            mesh,
            totals: PerfSnapshot::default(),
            faults: FaultPlan::NONE,
            dead: vec![false; clusters],
            fault_stats: FaultStats::default(),
        }
    }

    /// Arms a chaos schedule for this farm's continuous mode. Batch
    /// runs ([`run_batch`](ClusterFarm::run_batch)) ignore it — they
    /// are the fault-free differential oracle.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The armed chaos schedule (the empty plan by default).
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        self.faults
    }

    /// Recovery counters of this run (kills fired, shards re-placed).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// True when cluster `index` can still accept and run work: not
    /// yet detected dead, and not past an armed kill cycle.
    #[must_use]
    pub fn is_alive(&self, index: usize) -> bool {
        !self.dead[index] && !self.crossed_kill(index)
    }

    /// Number of live clusters.
    #[must_use]
    pub fn num_alive(&self) -> usize {
        (0..self.clusters.len())
            .filter(|&c| self.is_alive(c))
            .count()
    }

    /// The farm's virtual "now": the earliest live-cluster clock — the
    /// time at which the next admitted shard could start at all. Used
    /// by the serving layer's deadline shedding. Falls back over all
    /// clusters when none are alive.
    #[must_use]
    pub fn virtual_now(&self) -> u64 {
        let alive = (0..self.clusters.len())
            .filter(|&c| self.is_alive(c))
            .map(|c| self.clock[c])
            .min();
        alive.unwrap_or_else(|| self.clock.iter().copied().min().unwrap_or(0))
    }

    /// True when `index` has an armed kill whose cycle its clock has
    /// reached (kill pending detection).
    fn crossed_kill(&self, index: usize) -> bool {
        self.faults
            .kill_cycle(index as u32)
            .is_some_and(|at| self.clock[index] >= at)
    }

    /// Marks `index` dead and re-admits everything still queued on it
    /// onto the least-loaded surviving clusters (FIFO order, ties to
    /// the lowest index — deterministic). `extra` carries the aborted
    /// in-flight shard of a mid-shard kill, evacuated first.
    ///
    /// # Panics
    ///
    /// Panics when no cluster survives to take the work.
    fn fail_cluster(&mut self, index: usize, extra: Option<QueuedShard>) {
        self.dead[index] = true;
        if let Some(at) = self.faults.kill_cycle(index as u32) {
            // Freeze the dead cluster's virtual clock at the kill
            // cycle: work past it never observably happened.
            self.clock[index] = self.clock[index].min(at);
        }
        self.fault_stats.faults_injected += 1;
        let mut orphans: Vec<QueuedShard> = extra.into_iter().collect();
        orphans.extend(std::mem::take(&mut self.pending[index]));
        self.queued_hint[index] = 0;
        for mut task in orphans {
            let target = (0..self.clusters.len())
                .filter(|&c| self.is_alive(c))
                .min_by_key(|&c| (self.load(c), c))
                .expect("a surviving cluster must exist to re-admit orphaned shards");
            let meta = self.active[task.slot]
                .as_ref()
                .expect("orphaned shard has an active job")
                .meta
                .clone();
            task.wiring = self.wiring_for(target, &meta);
            self.queued_hint[target] += task.hint;
            self.pending[target].push_back(task);
            self.fault_stats.shards_retried += 1;
        }
    }

    /// The resolved home cube of a job under this farm's mesh (`None`
    /// without a mesh memory model).
    #[must_use]
    pub fn home_cube(&self, job_id: u64, requested: Option<u32>) -> Option<u32> {
        self.mesh.as_ref().map(|m| m.home_of(job_id, requested))
    }

    /// Placement penalty of running a shard of job `job_id` on
    /// `cluster`: 0 when the cluster is attached to the job's home
    /// cube (or the farm has no mesh), 1 when its traffic would cross
    /// a serial link. The admission path sorts candidate clusters by
    /// this before load.
    #[must_use]
    pub fn remote_penalty(&self, cluster: usize, job_id: u64, requested: Option<u32>) -> u64 {
        match &self.mesh {
            Some(m) => {
                let home = m.home_of(job_id, requested);
                u64::from(!m.is_local(cluster as u32, home))
            }
            None => 0,
        }
    }

    /// Farm-lifetime accumulation of every retired shard's counters.
    #[must_use]
    pub fn perf_totals(&self) -> PerfSnapshot {
        self.totals
    }

    /// The wiring a shard of `meta` needs on `cluster` (`None` without
    /// a mesh: the construction-time port stays in place).
    fn wiring_for(&self, cluster: usize, meta: &JobMeta) -> Option<ShardWiring> {
        let mesh = self.mesh.as_ref()?;
        let c = cluster as u32;
        let home = mesh.home_of(meta.id, meta.home_cube);
        let remote = !mesh.is_local(c, home);
        let mut port = mesh.port(c, home);
        if remote {
            // An armed link fault degrades *serial-link* traffic only:
            // local (same-cube) ports keep their nominal schedule.
            if let Some(lf) = self.faults.link_fault {
                port = port.degraded(lf.clip_q16, lf.from, lf.until);
            }
        }
        Some(ShardWiring {
            port,
            remote,
            latency: if remote {
                u64::from(mesh.link_latency_cycles())
            } else {
                0
            },
        })
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Read-only access to cluster `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn cluster(&self, index: usize) -> &Cluster {
        &self.clusters[index]
    }

    /// Executes a batch of placed jobs and assembles per-job results
    /// plus the batch window under the chosen accounting (see the
    /// module docs). Results come back in `placed` order.
    #[must_use]
    pub fn run_batch(&mut self, placed: Vec<PlacedJob>, pipelined: bool) -> BatchResult {
        let n = self.clusters.len();
        let mut metas = Vec::with_capacity(placed.len());
        let mut outputs: Vec<Vec<f32>> = Vec::with_capacity(placed.len());
        let mut queues: Vec<Vec<ShardTask>> = (0..n).map(|_| Vec::new()).collect();
        for (job_idx, p) in placed.into_iter().enumerate() {
            outputs.push(vec![0f32; p.meta.output_len]);
            for (c, plan) in p.shards {
                let wiring = self.wiring_for(c, &p.meta);
                queues[c].push(ShardTask {
                    job_idx,
                    plan,
                    wiring,
                });
            }
            metas.push(p.meta);
        }

        let records = self.drive(&mut queues, &mut outputs);
        for recs in &records {
            for (_, perf, _) in recs {
                self.totals.accumulate(perf);
            }
        }

        // Per-job windows: per-cluster deltas, shard-local makespan.
        let jobs = metas.len();
        let mut reports: Vec<ScaleOutReport> = (0..jobs)
            .map(|_| ScaleOutReport::new(n, self.freq_hz))
            .collect();
        let mut batch = ScaleOutReport::new(n, self.freq_hz);
        for (c, recs) in records.iter().enumerate() {
            for (j, perf, cycles) in recs {
                reports[*j].per_cluster[c] = *perf;
                reports[*j].makespan_cycles = reports[*j].makespan_cycles.max(*cycles);
                batch.per_cluster[c].accumulate(perf);
            }
        }

        // Virtual farm time: when each job starts and retires.
        let mut start = vec![0u64; jobs];
        let mut finish = vec![0u64; jobs];
        if pipelined {
            start.fill(u64::MAX);
            for recs in &records {
                let mut t = 0u64;
                for (j, _, cycles) in recs {
                    start[*j] = start[*j].min(t);
                    t += cycles;
                    finish[*j] = finish[*j].max(t);
                }
                batch.makespan_cycles = batch.makespan_cycles.max(t);
            }
            for s in &mut start {
                if *s == u64::MAX {
                    *s = 0;
                }
            }
        } else {
            let mut t = 0u64;
            for j in 0..jobs {
                start[j] = t;
                t += reports[j].makespan_cycles;
                finish[j] = t;
            }
            batch.makespan_cycles = t;
        }

        let results = metas
            .into_iter()
            .zip(outputs)
            .zip(reports)
            .enumerate()
            .map(|(j, ((meta, output), report))| JobResult {
                job_id: meta.id,
                label: meta.label,
                output,
                report,
                start_cycle: start[j],
                finish_cycle: finish[j],
                estimate: None,
            })
            .collect();
        BatchResult {
            results,
            report: batch,
        }
    }

    /// Admits one placed job into the running farm (continuous mode):
    /// its shards join the tail of their clusters' FIFOs and will run
    /// as those clusters free up — no wave boundary, no barrier.
    /// `shard_cycles_hint` is the *corrected* estimated duration of
    /// one shard (the placement load unit); `shard_cycles_est` is the
    /// raw roofline estimate (reported back at retire as the
    /// measured-duration feedback denominator).
    ///
    /// # Panics
    ///
    /// Panics when the job has no shards (admission guarantees at
    /// least one non-empty plan for every valid job).
    pub fn admit(&mut self, placed: PlacedJob, shard_cycles_hint: u64, shard_cycles_est: u64) {
        assert!(!placed.shards.is_empty(), "job admitted with no shards");
        let n = self.clusters.len();
        let job = ActiveJob {
            output: vec![0f32; placed.meta.output_len],
            report: ScaleOutReport::new(n, self.freq_hz),
            remaining: placed.shards.len(),
            start_clock: u64::MAX,
            finish_clock: 0,
            meta: placed.meta,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.active[s] = Some(job);
                s
            }
            None => {
                self.active.push(Some(job));
                self.active.len() - 1
            }
        };
        for (c, plan) in placed.shards {
            debug_assert!(
                self.is_alive(c),
                "placement targeted dead cluster {c} — the admission path must \
                 filter by `is_alive`"
            );
            self.queued_hint[c] += shard_cycles_hint;
            let meta = &self.active[slot].as_ref().expect("job just stored").meta;
            let wiring = self.wiring_for(c, meta);
            self.pending[c].push_back(QueuedShard {
                slot,
                plan,
                hint: shard_cycles_hint,
                est: shard_cycles_est,
                wiring,
            });
        }
    }

    /// Retires the next shard event of the continuous farm: the
    /// cluster whose virtual clock is earliest (ties to the lowest
    /// index) runs the shard at the head of its FIFO to completion in
    /// an isolated idle-to-idle window. Returns `None` when no shards
    /// are queued. Per-cluster shard order is admission order, so
    /// per-job outputs and [`PerfSnapshot`]s are bit-identical to a
    /// barriered [`run_batch`](ClusterFarm::run_batch) of the same
    /// placement — only the admission timing differs.
    pub fn step(&mut self) -> Option<ShardRetire> {
        // Detect kills whose cycle was crossed since the last event:
        // the dead cluster's queue is evacuated before anything else
        // is scheduled, so no shard is ever lost.
        for c in 0..self.clusters.len() {
            if !self.dead[c] && self.crossed_kill(c) {
                self.fail_cluster(c, None);
            }
        }
        let c = (0..self.clusters.len())
            .filter(|&c| !self.dead[c] && !self.pending[c].is_empty())
            .min_by_key(|&c| (self.clock[c], c))?;
        let mut task = self.pending[c].pop_front().expect("non-empty FIFO");
        self.queued_hint[c] -= task.hint;
        // With a kill armed on this cluster the shard might straddle
        // the kill cycle; keep a copy so the aborted work can be
        // re-placed bit-identically (`run_shard` consumes the tiles).
        let kill_at = self.faults.kill_cycle(c as u32);
        let backup = kill_at.map(|_| task.plan.clone());
        let (perf, cycles) = run_shard(&mut self.clusters[c], &mut task.plan, task.wiring);
        let start = self.clock[c];
        if let Some(at) = kill_at {
            if start + cycles > at {
                // The cluster died mid-shard: discard the run — no
                // readback, no counter accumulation, clock frozen at
                // the kill cycle — and re-admit the shard (plus the
                // rest of the queue) on the survivors. The dead
                // cluster's memory state no longer matters.
                self.clock[c] = at;
                task.plan = backup.expect("kill armed implies a plan backup");
                self.fail_cluster(c, Some(task));
                return self.step();
            }
        }
        self.totals.accumulate(&perf);
        let job = self.active[task.slot]
            .as_mut()
            .expect("queued shard has an active job");
        read_shard(&mut self.clusters[c], &task.plan, &mut job.output);
        self.clock[c] = start + cycles;
        // Transient stalls: windows whose boundary the shard crossed
        // freeze the cluster afterwards. Dead time is attributed to
        // the fault counter, not to the shard (per-job outputs and
        // counters stay bit-identical to the fault-free run).
        let stall = self.faults.stall_between(c as u32, start, self.clock[c]);
        if stall > 0 {
            self.clusters[c].attribute_fault_stall(stall);
            self.clock[c] += stall;
            self.totals.fault_stall_cycles += stall;
            self.fault_stats.faults_injected += 1;
        }
        job.report.per_cluster[c].accumulate(&perf);
        job.report.makespan_cycles = job.report.makespan_cycles.max(cycles);
        job.start_clock = job.start_clock.min(start);
        job.finish_clock = job.finish_clock.max(self.clock[c]);
        job.remaining -= 1;
        let (job_id, class) = (job.meta.id, job.meta.class);
        let result = if job.remaining == 0 {
            let done = self.active[task.slot].take().expect("job still active");
            self.free_slots.push(task.slot);
            Some(JobResult {
                job_id: done.meta.id,
                label: done.meta.label,
                output: done.output,
                report: done.report,
                start_cycle: done.start_clock,
                finish_cycle: done.finish_clock,
                estimate: None,
            })
        } else {
            None
        };
        Some(ShardRetire {
            job_id,
            class,
            cluster: c,
            cycles,
            est_cycles: task.est,
            clock: self.clock[c],
            result,
        })
    }

    /// Runs the continuous farm dry: steps until every queued shard has
    /// retired and returns the events in retire order.
    pub fn drain(&mut self) -> Vec<ShardRetire> {
        let mut events = Vec::new();
        while let Some(e) = self.step() {
            events.push(e);
        }
        events
    }

    /// True when the continuous farm still has queued shards.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.pending.iter().any(|q| !q.is_empty())
    }

    /// Placement load of cluster `index`: its virtual clock plus the
    /// estimated cycles of everything queued on it.
    #[must_use]
    pub fn load(&self, index: usize) -> u64 {
        self.clock[index] + self.queued_hint[index]
    }

    /// Virtual makespan of the continuous farm: the latest cluster
    /// clock.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.clock.iter().copied().max().unwrap_or(0)
    }

    /// Serial drive: clusters are fully independent simulations, so
    /// each runs its whole shard FIFO in turn; readbacks scatter
    /// straight into the job outputs with no intermediate allocation.
    #[cfg(not(feature = "parallel"))]
    fn drive(
        &mut self,
        queues: &mut [Vec<ShardTask>],
        outputs: &mut [Vec<f32>],
    ) -> Vec<Vec<ShardRecord>> {
        let mut records: Vec<Vec<ShardRecord>> = Vec::with_capacity(queues.len());
        for (cluster, queue) in self.clusters.iter_mut().zip(queues.iter_mut()) {
            let mut recs = Vec::with_capacity(queue.len());
            for shard in queue.iter_mut() {
                let (perf, cycles) = run_shard(cluster, &mut shard.plan, shard.wiring);
                read_shard(cluster, &shard.plan, &mut outputs[shard.job_idx]);
                recs.push((shard.job_idx, perf, cycles));
            }
            records.push(recs);
        }
        records
    }

    /// Thread-parallel drive: one OS thread per cluster. Clusters
    /// share no state, so this is observably identical to the serial
    /// drive; each thread gathers its readbacks locally and the main
    /// thread scatters them afterwards.
    #[cfg(feature = "parallel")]
    fn drive(
        &mut self,
        queues: &mut [Vec<ShardTask>],
        outputs: &mut [Vec<f32>],
    ) -> Vec<Vec<ShardRecord>> {
        let per_cluster: Vec<(Vec<ShardRecord>, Vec<Vec<f32>>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .clusters
                .iter_mut()
                .zip(queues.iter_mut())
                .map(|(cluster, queue)| {
                    scope.spawn(move || {
                        let mut recs = Vec::with_capacity(queue.len());
                        let mut reads = Vec::with_capacity(queue.len());
                        for shard in queue.iter_mut() {
                            let (perf, cycles) = run_shard(cluster, &mut shard.plan, shard.wiring);
                            let total: usize =
                                shard.plan.readbacks.iter().map(|r| r.len as usize).sum();
                            let mut buf = vec![0f32; total];
                            let mut off = 0usize;
                            for rb in &shard.plan.readbacks {
                                let seg = &mut buf[off..off + rb.len as usize];
                                match rb.source {
                                    ReadbackSource::Ext(addr) => {
                                        cluster.ext_mem().read_f32_into(addr, seg);
                                    }
                                    ReadbackSource::Tcdm(addr) => {
                                        cluster.read_tcdm_into(addr, seg);
                                    }
                                }
                                off += rb.len as usize;
                            }
                            recs.push((shard.job_idx, perf, cycles));
                            reads.push(buf);
                        }
                        (recs, reads)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cluster thread panicked"))
                .collect()
        });
        let mut records = Vec::with_capacity(per_cluster.len());
        for (queue, (recs, reads)) in queues.iter().zip(per_cluster) {
            for (shard, buf) in queue.iter().zip(&reads) {
                let mut off = 0usize;
                let out = &mut outputs[shard.job_idx];
                for rb in &shard.plan.readbacks {
                    out[rb.dst..rb.dst + rb.len as usize]
                        .copy_from_slice(&buf[off..off + rb.len as usize]);
                    off += rb.len as usize;
                }
            }
            records.push(recs);
        }
        records
    }
}
