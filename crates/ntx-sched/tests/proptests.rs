//! Cross-cluster and cross-mode equivalence properties.
//!
//! Two families of properties protect the serving stack:
//!
//! 1. **Sharding invariance** — for random tileable GEMM / convolution
//!    / AXPY / stencil shapes, the N-cluster `ntx-sched` result must be
//!    **bit-identical** to the single-cluster result and to the
//!    `ntx_kernels::reference` oracle.
//! 2. **Pipelining invariance** — for random multi-job mixes, the
//!    pipelined, space-shared [`ClusterFarm`](ntx_sched::ClusterFarm)
//!    must produce per-job outputs, per-job `PerfSnapshot`s and
//!    per-job makespans **bit-identical** to the barriered reference
//!    executor (`pipelined: false`, same placement), while its batch
//!    makespan never exceeds the barriered sum — overlap may only
//!    change accounting, never a simulated bit.
//!
//! Inputs are drawn from a coarse dyadic grid (`q / 16` with small
//! `|q|`) so every product and every partial sum is exactly
//! representable both in the NTX wide accumulator and in the
//! reference's `f64` accumulation. On that grid all computations are
//! exact, which turns value equality into genuine bitwise equality
//! regardless of summation order — any sharding bug (wrong halo, wrong
//! band offset, clobbered ping-pong buffer, cross-job contention) shows
//! up as a bit flip.

use ntx_kernels::blas::GemmKernel;
use ntx_kernels::conv::Conv2dKernel;
use ntx_kernels::reference;
use ntx_sched::{
    run_sharded, ClusterFarm, DurationTable, HmcConfig, Job, JobKind, JobQueue, JobResult,
    MeshConfig, Placement, ScaleOutConfig, ScaleOutExecutor, ShardRetire, SimulatorBackend,
};
use proptest::prelude::*;

/// Values `q / 16` with `q` in `[-64, 64]`: exactly representable, and
/// products/sums of hundreds of them stay exact in both accumulators.
fn grid_f32() -> impl Strategy<Value = f32> {
    (-64i32..=64).prop_map(|q| q as f32 / 16.0)
}

fn grid_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(grid_f32(), len..=len)
}

fn job(kind: JobKind) -> Job {
    Job::new(0, "prop", kind)
}

fn assert_bits_eq(got: &[f32], expect: &[f32], what: &str) {
    assert_eq!(got.len(), expect.len(), "{what}: length");
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "{what}: element {i} differs ({g} vs {e})"
        );
    }
}

/// A random job of any tileable family, sized to fit one cluster.
fn arb_kind() -> impl Strategy<Value = JobKind> {
    prop_oneof![
        (grid_f32(), 1usize..400)
            .prop_flat_map(|(a, n)| (Just(a), grid_vec(n), grid_vec(n)))
            .prop_map(|(a, x, y)| JobKind::Axpy { a, x, y }),
        (1u32..16, 1u32..12, 1u32..10)
            .prop_flat_map(|(m, k, n)| {
                (
                    Just(GemmKernel { m, k, n }),
                    grid_vec((m * k) as usize),
                    grid_vec((k * n) as usize),
                )
            })
            .prop_map(|(dims, a, b)| JobKind::Gemm { dims, a, b }),
        (0u32..10, 0u32..8, 1u32..3)
            .prop_flat_map(|(dh, dw, filters)| {
                let (h, w) = (3 + dh, 3 + dw);
                (
                    Just(Conv2dKernel {
                        height: h,
                        width: w,
                        k: 3,
                        filters,
                    }),
                    grid_vec((h * w) as usize),
                    grid_vec((9 * filters) as usize),
                )
            })
            .prop_map(|(kernel, image, weights)| JobKind::Conv2d {
                kernel,
                image,
                weights,
            }),
        (3u32..16, 3u32..12)
            .prop_flat_map(|(h, w)| (Just((h, w)), grid_vec((h * w) as usize)))
            .prop_map(|((height, width), grid)| JobKind::Stencil2d {
                height,
                width,
                grid,
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N-cluster GEMM == 1-cluster GEMM == reference, bitwise.
    #[test]
    fn gemm_sharding_is_bit_identical(
        (m, k, n, clusters, a, b) in (1u32..24, 1u32..16, 1u32..12, 2usize..6)
            .prop_flat_map(|(m, k, n, clusters)| {
                (
                    Just(m), Just(k), Just(n), Just(clusters),
                    grid_vec((m * k) as usize),
                    grid_vec((k * n) as usize),
                )
            })
    ) {
        let dims = GemmKernel { m, k, n };
        let kind = JobKind::Gemm { dims, a: a.clone(), b: b.clone() };
        let single = run_sharded(&job(kind.clone()), 1).expect("single-cluster gemm");
        let wide = run_sharded(&job(kind), clusters).expect("sharded gemm");
        let expect = reference::gemm(&a, &b, m as usize, k as usize, n as usize);
        assert_bits_eq(&single.output, &expect, "1-cluster vs reference");
        assert_bits_eq(&wide.output, &single.output, "N-cluster vs 1-cluster");
    }

    /// N-cluster conv2d == 1-cluster conv2d == reference, bitwise,
    /// for every filter plane.
    #[test]
    fn conv_sharding_is_bit_identical(
        (h, w, k, filters, clusters, image, weights) in
            (0u32..14, 0u32..12, prop_oneof![Just(3u32), Just(5u32)], 1u32..4, 2usize..6)
                .prop_flat_map(|(dh, dw, k, filters, clusters)| {
                    let (h, w) = (k + dh, k + dw);
                    (
                        Just(h), Just(w), Just(k), Just(filters), Just(clusters),
                        grid_vec((h * w) as usize),
                        grid_vec((k * k * filters) as usize),
                    )
                })
    ) {
        let kernel = Conv2dKernel { height: h, width: w, k, filters };
        let kind = JobKind::Conv2d {
            kernel,
            image: image.clone(),
            weights: weights.clone(),
        };
        let single = run_sharded(&job(kind.clone()), 1).expect("single-cluster conv");
        let wide = run_sharded(&job(kind), clusters).expect("sharded conv");
        let (oh, ow) = (kernel.out_height() as usize, kernel.out_width() as usize);
        let k2 = (k * k) as usize;
        for f in 0..filters as usize {
            let expect = reference::conv2d(
                &image,
                h as usize,
                w as usize,
                &weights[f * k2..(f + 1) * k2],
                k as usize,
            );
            assert_bits_eq(
                &single.output[f * oh * ow..(f + 1) * oh * ow],
                &expect,
                "1-cluster vs reference",
            );
        }
        assert_bits_eq(&wide.output, &single.output, "N-cluster vs 1-cluster");
    }

    /// N-cluster AXPY == 1-cluster AXPY == reference, bitwise.
    #[test]
    fn axpy_sharding_is_bit_identical(
        (a_scalar, clusters, x, y) in (grid_f32(), 2usize..8, 1usize..600)
            .prop_flat_map(|(a_scalar, clusters, n)| {
                (Just(a_scalar), Just(clusters), grid_vec(n), grid_vec(n))
            })
    ) {
        let kind = JobKind::Axpy { a: a_scalar, x: x.clone(), y: y.clone() };
        let single = run_sharded(&job(kind.clone()), 1).expect("single-cluster axpy");
        let wide = run_sharded(&job(kind), clusters).expect("sharded axpy");
        let mut expect = y;
        reference::axpy(a_scalar, &x, &mut expect);
        assert_bits_eq(&single.output, &expect, "1-cluster vs reference");
        assert_bits_eq(&wide.output, &single.output, "N-cluster vs 1-cluster");
    }

    /// N-cluster 2-D Laplace stencil == 1-cluster == reference,
    /// bitwise. The dimension-decomposed stencil rounds twice per
    /// element (x pass, then the accumulating y pass), but on the
    /// dyadic grid both roundings are exact, so halo-band sharding
    /// must not change a bit.
    #[test]
    fn stencil_sharding_is_bit_identical(
        (h, w, clusters, grid) in (3u32..24, 3u32..16, 2usize..6)
            .prop_flat_map(|(h, w, clusters)| {
                (Just(h), Just(w), Just(clusters), grid_vec((h * w) as usize))
            })
    ) {
        let kind = JobKind::Stencil2d { height: h, width: w, grid: grid.clone() };
        let single = run_sharded(&job(kind.clone()), 1).expect("single-cluster stencil");
        let wide = run_sharded(&job(kind), clusters).expect("sharded stencil");
        let expect = reference::laplace2d(&grid, h as usize, w as usize);
        assert_bits_eq(&single.output, &expect, "1-cluster vs reference");
        assert_bits_eq(&wide.output, &single.output, "N-cluster vs 1-cluster");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pipelined, space-shared farm against two oracles, on random
    /// multi-job mixes across 1..8 clusters:
    ///
    /// * the **same-placement barriered** run (`pipelined: false`)
    ///   shares the per-shard simulations by construction — comparing
    ///   it guards the accounting split (and would catch any future
    ///   overlap change that leaks into the simulations): per-job
    ///   outputs, per-cluster `PerfSnapshot` deltas and per-job
    ///   makespans must be bit-identical, and the batch window may
    ///   only shrink;
    /// * the **full-width barriered** executor (`space_share: false`,
    ///   the pre-farm semantics) is an *independent execution* — every
    ///   job sharded across all clusters instead of the heuristic
    ///   subset, so different tile schedules and different DMA traffic
    ///   — whose per-job outputs must still match bitwise. A placement
    ///   bug (wrong cluster subset, cross-job TCDM or external-region
    ///   clobber) shows up here as a bit flip.
    #[test]
    fn pipelined_farm_matches_barriered_references(
        (kinds, clusters) in (prop::collection::vec(arb_kind(), 1..5), 1usize..8)
    ) {
        let mut pipelined =
            ScaleOutExecutor::new(ScaleOutConfig::with_clusters(clusters));
        let mut barriered =
            ScaleOutExecutor::new(ScaleOutConfig::with_clusters(clusters).barriered());
        let mut full_width = ScaleOutExecutor::new(ScaleOutConfig {
            space_share: false,
            ..ScaleOutConfig::with_clusters(clusters).barriered()
        });
        let mut qp = JobQueue::new();
        let mut qb = JobQueue::new();
        let mut qf = JobQueue::new();
        for (i, kind) in kinds.iter().enumerate() {
            qp.job(format!("job-{i}")).kind(kind.clone()).submit();
            qb.job(format!("job-{i}")).kind(kind.clone()).submit();
            qf.job(format!("job-{i}")).kind(kind.clone()).submit();
        }
        let p = pipelined.run_queue(&mut qp).expect("pipelined batch");
        let b = barriered.run_queue(&mut qb).expect("barriered batch");
        let f = full_width.run_queue(&mut qf).expect("full-width batch");
        assert_eq!(p.results.len(), b.results.len());
        for (rp, rb) in p.results.iter().zip(&b.results) {
            assert_bits_eq(&rp.output, &rb.output, "pipelined vs barriered output");
            assert_eq!(
                rp.report.per_cluster, rb.report.per_cluster,
                "per-job PerfSnapshots must be bit-identical across modes"
            );
            assert_eq!(rp.report.makespan_cycles, rb.report.makespan_cycles);
        }
        // Independent oracle: a different sharding must still compute
        // exactly the same bits.
        for (rp, rf) in p.results.iter().zip(&f.results) {
            assert_bits_eq(&rp.output, &rf.output, "space-shared vs full-width output");
        }
        // Barriered accounting is the back-to-back sum; pipelining may
        // only shrink the batch window, never grow it.
        let sum: u64 = b.results.iter().map(|r| r.report.makespan_cycles).sum();
        assert_eq!(b.report.makespan_cycles, sum);
        assert!(p.report.makespan_cycles <= b.report.makespan_cycles);
        // Virtual farm time is consistent in both accountings: each
        // job's window covers at least its slowest shard, barriered
        // jobs run strictly back to back, and the batch window ends
        // when the last job retires.
        let mut prev_finish = 0u64;
        for rb in &b.results {
            assert_eq!(rb.start_cycle, prev_finish);
            assert_eq!(rb.finish_cycle - rb.start_cycle, rb.report.makespan_cycles);
            prev_finish = rb.finish_cycle;
        }
        for rp in &p.results {
            assert!(rp.finish_cycle - rp.start_cycle >= rp.report.makespan_cycles);
            assert!(rp.finish_cycle <= p.report.makespan_cycles);
        }
        assert_eq!(
            p.report.makespan_cycles,
            p.results.iter().map(|r| r.finish_cycle).max().unwrap_or(0)
        );
        // And the farm never invents or loses simulated work.
        assert_eq!(p.report.total_flops(), b.report.total_flops());
    }

    /// Shared-HMC contention against the ideal-memory oracle, on
    /// random multi-job mixes: drawing every DMA ext beat from a
    /// tightly shared vault/LoB budget may only *stretch* timing —
    /// per-job outputs stay bit-identical, external traffic volumes
    /// stay equal, cycles never shrink, and the contended farm's
    /// pipelined/barriered differential continues to hold (the
    /// throttled burst fast path is exercised inside `run_batch`).
    #[test]
    fn shared_hmc_contention_changes_timing_not_data(
        (kinds, clusters) in (prop::collection::vec(arb_kind(), 1..5), 2usize..6)
    ) {
        // 8 GB/s of shared LoB bandwidth: 1.6 words/cycle split across
        // the clusters — a hard throttle against their 1-word ports.
        let hmc = HmcConfig::default().with_interconnect_bits(64);
        let fill = |kinds: &[JobKind]| {
            let mut q = JobQueue::new();
            for (i, kind) in kinds.iter().enumerate() {
                q.job(format!("job-{i}")).kind(kind.clone()).submit();
            }
            q
        };
        // Identical full-width placement in both memory models, so the
        // timing comparison is apples to apples.
        let base = ScaleOutConfig {
            space_share: false,
            ..ScaleOutConfig::with_clusters(clusters).barriered()
        };
        let mut ideal = ScaleOutExecutor::new(base);
        let mut contended = ScaleOutExecutor::new(base.with_shared_hmc(hmc));
        let ri = ideal.run_queue(&mut fill(&kinds)).expect("ideal batch");
        let rc = contended.run_queue(&mut fill(&kinds)).expect("contended batch");
        let traffic = |r: &ntx_sched::BatchResult| -> (u64, u64, u64) {
            r.results
                .iter()
                .flat_map(|j| &j.report.per_cluster)
                .fold((0, 0, 0), |(d, rd, wr), p| {
                    (d + p.dma_bytes, rd + p.ext_bytes_read, wr + p.ext_bytes_written)
                })
        };
        for (i, c) in ri.results.iter().zip(&rc.results) {
            assert_bits_eq(&i.output, &c.output, "contended vs ideal output");
            assert!(
                c.report.makespan_cycles >= i.report.makespan_cycles,
                "contention must never shrink a job window"
            );
        }
        assert_eq!(traffic(&ri), traffic(&rc), "traffic volume must not change");
        assert!(rc.report.makespan_cycles >= ri.report.makespan_cycles);
        // The contended farm keeps its own differential: pipelined,
        // space-shared execution vs the barriered same-placement
        // reference, both under the shared HMC.
        let shared = ScaleOutConfig::with_clusters(clusters).with_shared_hmc(hmc);
        let mut pipelined = ScaleOutExecutor::new(shared);
        let mut barriered = ScaleOutExecutor::new(shared.barriered());
        let p = pipelined.run_queue(&mut fill(&kinds)).expect("pipelined contended");
        let b = barriered.run_queue(&mut fill(&kinds)).expect("barriered contended");
        for (rp, rb) in p.results.iter().zip(&b.results) {
            assert_bits_eq(&rp.output, &rb.output, "contended pipelined vs barriered");
            assert_eq!(
                rp.report.per_cluster, rb.report.per_cluster,
                "per-job PerfSnapshots must stay bit-identical under contention"
            );
            assert_eq!(rp.report.makespan_cycles, rb.report.makespan_cycles);
        }
        assert!(p.report.makespan_cycles <= b.report.makespan_cycles);
        // And the space-shared contended outputs still match the
        // ideal full-width execution bit for bit.
        for (rp, rideal) in p.results.iter().zip(&ri.results) {
            assert_bits_eq(&rp.output, &rideal.output, "contended space-shared vs ideal");
        }
    }
}

/// Drives the continuous-admission engine over `kinds`, interleaving
/// `steps_between` shard events after each admission (jobs arrive
/// while earlier ones are mid-flight, as in the live server), and
/// returns each job's result plus the placement it landed on.
fn run_continuous(
    kinds: &[JobKind],
    clusters: usize,
    steps_between: usize,
) -> (Vec<JobResult>, Vec<Placement>) {
    let mut sim = SimulatorBackend::new(ScaleOutConfig::with_clusters(clusters));
    let mut table = DurationTable::new();
    let mut placements = Vec::new();
    let mut results: Vec<Option<JobResult>> = kinds.iter().map(|_| None).collect();
    let settle = |r: ShardRetire, results: &mut Vec<Option<JobResult>>| {
        if let Some(res) = r.result {
            let slot = res.job_id as usize;
            results[slot] = Some(res);
        }
    };
    for (i, kind) in kinds.iter().enumerate() {
        let job = Job::new(i as u64, format!("job-{i}"), kind.clone());
        let placement = sim
            .admit_continuous(&job, &table)
            .expect("continuous admission");
        placements.push(placement);
        for _ in 0..steps_between {
            if let Some(r) = sim.step_farm() {
                table.observe(r.class, r.est_cycles, r.cycles);
                settle(r, &mut results);
            }
        }
    }
    while let Some(r) = sim.step_farm() {
        table.observe(r.class, r.est_cycles, r.cycles);
        settle(r, &mut results);
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("every admitted job retires"))
        .collect();
    (results, placements)
}

/// Replays recorded continuous placements into a fresh **barriered**
/// farm ([`Placement::replay`] rebuilds each placed job bit for bit) —
/// the same-placement oracle.
fn replay_barriered(
    kinds: &[JobKind],
    placements: &[Placement],
    clusters: usize,
) -> Vec<JobResult> {
    let config = ScaleOutConfig::with_clusters(clusters);
    let mut farm = ClusterFarm::with_memory(clusters, config.cluster, config.memory);
    let placed = kinds
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            let job = Job::new(i as u64, format!("job-{i}"), kind.clone());
            placements[i]
                .replay(&job, farm.cluster(0))
                .expect("replayed plan")
        })
        .collect();
    farm.run_batch(placed, false).results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Continuous admission against the barriered same-placement
    /// oracle, on random multi-job mixes across 1..8 clusters:
    /// admitting jobs into the *running* farm — interleaved with shard
    /// retirements, placed by the measured-duration table onto graded
    /// cluster subsets — must not change a simulated bit. Per-job
    /// outputs, per-cluster `PerfSnapshot` deltas and per-job
    /// makespans are compared bitwise against a fresh barriered farm
    /// replaying the exact placement continuous admission chose
    /// (shards execute in admission order per cluster in both).
    #[test]
    fn continuous_admission_matches_barriered_oracle(
        (kinds, clusters, steps_between) in
            (prop::collection::vec(arb_kind(), 1..6), 1usize..8, 0usize..4)
    ) {
        let (continuous, placements) = run_continuous(&kinds, clusters, steps_between);
        let oracle = replay_barriered(&kinds, &placements, clusters);
        assert_eq!(continuous.len(), oracle.len());
        for (c, o) in continuous.iter().zip(&oracle) {
            assert_bits_eq(&c.output, &o.output, "continuous vs barriered output");
            assert_eq!(
                c.report.per_cluster, o.report.per_cluster,
                "per-job PerfSnapshots must be bit-identical across admission modes"
            );
            assert_eq!(c.report.makespan_cycles, o.report.makespan_cycles);
        }
        // Graded placement stays within the farm and each job's
        // cluster list is disjoint and ascending.
        for p in &placements {
            assert!(!p.clusters.is_empty() && p.clusters.len() <= clusters);
            assert!(p.clusters.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

/// One full chaos run: drives continuous admission under `plan`,
/// returning per-job results, the exact shard retire trace
/// `(job_id, cluster, clock, cycles)`, and the farm's fault counters.
fn run_with_faults(
    kinds: &[JobKind],
    clusters: usize,
    steps_between: usize,
    plan: ntx_sched::FaultPlan,
) -> (
    Vec<JobResult>,
    Vec<(u64, usize, u64, u64)>,
    ntx_sched::FaultStats,
) {
    run_continuous_config(
        kinds,
        ScaleOutConfig::with_clusters(clusters).with_faults(plan),
        steps_between,
    )
}

/// Drives continuous admission under an arbitrary `config` (memory
/// model, fault plan, worker-pool width), returning per-job results,
/// the exact shard retire trace and the farm's fault counters — the
/// fully-observable record a pooled-vs-serial differential compares.
fn run_continuous_config(
    kinds: &[JobKind],
    config: ScaleOutConfig,
    steps_between: usize,
) -> (
    Vec<JobResult>,
    Vec<(u64, usize, u64, u64)>,
    ntx_sched::FaultStats,
) {
    let mut sim = SimulatorBackend::new(config);
    let mut table = DurationTable::new();
    let mut trace = Vec::new();
    let mut results: Vec<Option<JobResult>> = kinds.iter().map(|_| None).collect();
    let mut settle = |r: ShardRetire, results: &mut Vec<Option<JobResult>>| {
        trace.push((r.job_id, r.cluster, r.clock, r.cycles));
        if let Some(res) = r.result {
            let slot = res.job_id as usize;
            results[slot] = Some(res);
        }
    };
    for (i, kind) in kinds.iter().enumerate() {
        let job = Job::new(i as u64, format!("job-{i}"), kind.clone());
        sim.admit_continuous(&job, &table)
            .expect("continuous admission under faults");
        for _ in 0..steps_between {
            if let Some(r) = sim.step_farm() {
                table.observe(r.class, r.est_cycles, r.cycles);
                settle(r, &mut results);
            }
        }
    }
    while let Some(r) = sim.step_farm() {
        table.observe(r.class, r.est_cycles, r.cycles);
        settle(r, &mut results);
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("no job may be lost to an injected fault"))
        .collect();
    (results, trace, sim.fault_stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The chaos layer against two oracles, on random multi-job mixes:
    ///
    /// * **determinism** — two runs under the *same* [`FaultPlan`]
    ///   (same seed, same kill, same stall schedule) must agree on
    ///   every observable: per-job output bits, per-job windows, the
    ///   exact shard retire trace and the fault counters. A fault
    ///   layer that consulted ambient randomness or wall time would
    ///   diverge here;
    /// * **bit-identity under recovery** — killing a cluster mid-run
    ///   and re-placing its in-flight and queued shards may change
    ///   timing and placement, but every job still completes with
    ///   outputs **bit-identical** to the fault-free run of the same
    ///   mix: faults perturb scheduling, never data. Transient stalls
    ///   must not even move a shard, so windows match the fault-free
    ///   run exactly modulo the injected dead time.
    #[test]
    fn fault_injection_is_deterministic_and_preserves_bits(
        (kinds, clusters, steps_between, seed, kill_cluster, kill_cycle) in (
            prop::collection::vec(arb_kind(), 1..6),
            2usize..8,
            0usize..4,
            0u64..1000,
            0u32..8,
            1u64..4000,
        )
    ) {
        let plan = ntx_sched::FaultPlan::NONE
            .with_seed(seed)
            .with_kill(kill_cluster % clusters as u32, kill_cycle)
            .with_stalls(64, 1 << 14, 32);
        let (r1, t1, s1) = run_with_faults(&kinds, clusters, steps_between, plan);
        let (r2, t2, s2) = run_with_faults(&kinds, clusters, steps_between, plan);
        assert_eq!(t1, t2, "same plan, same retire trace");
        assert_eq!(s1, s2, "same plan, same fault counters");
        for (a, b) in r1.iter().zip(&r2) {
            assert_bits_eq(&a.output, &b.output, "same plan, same output bits");
            assert_eq!(
                (a.start_cycle, a.finish_cycle),
                (b.start_cycle, b.finish_cycle),
                "same plan, same job windows"
            );
        }
        // Against the fault-free oracle: zero lost jobs, identical bits.
        let (oracle, _) = run_continuous(&kinds, clusters, steps_between);
        assert_eq!(r1.len(), oracle.len(), "every submitted job completes");
        for (f, o) in r1.iter().zip(&oracle) {
            assert_bits_eq(&f.output, &o.output, "faulted vs fault-free output");
        }
        // A different seed keeps the data but may move the timing.
        let reseeded = plan.with_seed(seed.wrapping_add(1));
        let (r3, _, _) = run_with_faults(&kinds, clusters, steps_between, reseeded);
        for (a, b) in r1.iter().zip(&r3) {
            assert_bits_eq(&a.output, &b.output, "reseeded chaos still exact");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The worker-pool farm against the serial farm, on random
    /// multi-job mixes across every memory model and under seeded
    /// chaos: stepping clusters speculatively on 2..8 pool threads and
    /// merging retires on the `(clock, cluster)` front must be a pure
    /// implementation detail. Per-job output bits, per-cluster
    /// `PerfSnapshot` deltas, job windows, the **exact retire trace**
    /// and the fault counters must all equal the serial farm's — under
    /// mid-shard cluster kills (speculated shards on the dead cluster
    /// are invalidated and re-run on survivors) and transient stalls,
    /// with shared-HMC and 2-cube-mesh ports travelling to the worker
    /// threads.
    #[test]
    fn pooled_farm_is_bit_identical_to_serial(
        (kinds, clusters, steps_between, threads, mem_sel, seed, kill_cluster, kill_cycle) in (
            prop::collection::vec(arb_kind(), 1..6),
            2usize..8,
            0usize..4,
            2usize..=8,
            0u8..3,
            0u64..1000,
            0u32..8,
            1u64..4000,
        )
    ) {
        let plan = ntx_sched::FaultPlan::NONE
            .with_seed(seed)
            .with_kill(kill_cluster % clusters as u32, kill_cycle)
            .with_stalls(64, 1 << 14, 32);
        let hmc = HmcConfig::default().with_interconnect_bits(64);
        let base = ScaleOutConfig::with_clusters(clusters).with_faults(plan);
        let base = match mem_sel {
            0 => base,
            1 => base.with_shared_hmc(hmc),
            _ => base.with_hmc_mesh(MeshConfig::default().with_cubes(2).with_cube(hmc)),
        };
        let (rs, ts, ss) =
            run_continuous_config(&kinds, base.with_worker_threads(1), steps_between);
        let (rp, tp, sp) =
            run_continuous_config(&kinds, base.with_worker_threads(threads), steps_between);
        assert_eq!(tp, ts, "pooled retire trace must equal the serial trace");
        assert_eq!(sp, ss, "pooled fault counters must equal the serial counters");
        for (p, s) in rp.iter().zip(&rs) {
            assert_bits_eq(&p.output, &s.output, "pooled vs serial output");
            assert_eq!(
                p.report.per_cluster, s.report.per_cluster,
                "per-job PerfSnapshots must be bit-identical across engines"
            );
            assert_eq!(p.report.makespan_cycles, s.report.makespan_cycles);
            assert_eq!(
                (p.start_cycle, p.finish_cycle),
                (s.start_cycle, s.finish_cycle),
                "pooled vs serial job windows"
            );
        }
    }
}

#[test]
fn late_small_job_overtakes_inflight_wave() {
    // A "wave" of three 2000-element AXPYs is admitted together and
    // allowed to start (one shard event retires); then a tiny job
    // arrives LATE. Continuous admission places it on the
    // least-loaded cluster of the running farm, where it retires
    // (virtual farm time) before the wave completes — while the
    // barriered reference of the very same placement parks it behind
    // every wave job.
    let clusters = 4usize;
    let mediums = 3usize;
    let kinds: Vec<JobKind> = (0..mediums)
        .map(|i| {
            let n = 2000 + i * 8;
            JobKind::Axpy {
                a: 1.5,
                x: (0..n).map(|j| (j % 32) as f32 / 16.0).collect(),
                y: vec![1.0; n],
            }
        })
        .chain(std::iter::once(JobKind::Axpy {
            a: 2.0,
            x: vec![0.5; 64],
            y: vec![0.25; 64],
        }))
        .collect();
    let small = kinds.len() - 1;
    let mut sim = SimulatorBackend::new(ScaleOutConfig::with_clusters(clusters));
    let table = DurationTable::new();
    let mut placements = Vec::new();
    let mut results: Vec<Option<JobResult>> = kinds.iter().map(|_| None).collect();
    // The wave goes in first, as one admission group.
    for (i, kind) in kinds[..mediums].iter().enumerate() {
        let job = Job::new(i as u64, format!("job-{i}"), kind.clone());
        placements.push(sim.admit_continuous(&job, &table).expect("admit medium"));
    }
    // One shard retires: the wave is now genuinely in flight.
    let first = sim.step_farm().expect("wave has work");
    assert!(first.result.is_none(), "no wave job may be finished yet");
    // The small job arrives late, into the running farm.
    let job = Job::new(small as u64, format!("job-{small}"), kinds[small].clone());
    placements.push(sim.admit_continuous(&job, &table).expect("admit small"));
    while let Some(r) = sim.step_farm() {
        if let Some(res) = r.result {
            let slot = res.job_id as usize;
            results[slot] = Some(res);
        }
    }
    let finish: Vec<u64> = results
        .iter()
        .map(|r| r.as_ref().expect("job retired").finish_cycle)
        .collect();
    let wave_finish = finish[..mediums].iter().copied().max().unwrap();
    assert!(
        finish[small] < wave_finish,
        "late small job (finish {}) must overtake the in-flight wave (finish {})",
        finish[small],
        wave_finish,
    );
    // Same placement, barriered accounting: the late job waits for the
    // whole wave instead, finishing last — continuous admission is
    // what buys the overtake.
    let oracle = replay_barriered(&kinds, &placements, clusters);
    let barriered_finish: Vec<u64> = oracle.iter().map(|r| r.finish_cycle).collect();
    assert!(
        (0..mediums).all(|m| barriered_finish[small] > barriered_finish[m]),
        "barriered reference should park the late job behind the wave: {barriered_finish:?}"
    );
    assert!(
        finish[small] < barriered_finish[small],
        "continuous admission must complete the late job earlier than the barrier"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mesh degeneracy: a 1-cube [`MeshConfig`] is the *same machine*
    /// as the PR 5 shared-HMC subsystem — every cluster is local to the
    /// only cube, so ports, grants, outputs, per-job `PerfSnapshot`s
    /// (including the new remote counters, which must stay zero) and
    /// makespans are bit-identical, not merely close. Run under a
    /// tight 64-bit LoB so the schedule actually throttles.
    #[test]
    fn one_cube_mesh_degenerates_to_shared_hmc(
        (kinds, clusters) in (prop::collection::vec(arb_kind(), 1..5), 2usize..6)
    ) {
        let hmc = HmcConfig::default().with_interconnect_bits(64);
        let mesh = MeshConfig::default().with_cubes(1).with_cube(hmc);
        let fill = |kinds: &[JobKind]| {
            let mut q = JobQueue::new();
            for (i, kind) in kinds.iter().enumerate() {
                q.job(format!("job-{i}")).kind(kind.clone()).submit();
            }
            q
        };
        let base = ScaleOutConfig::with_clusters(clusters);
        let mut shared = ScaleOutExecutor::new(base.with_shared_hmc(hmc));
        let mut meshed = ScaleOutExecutor::new(base.with_hmc_mesh(mesh));
        let rs = shared.run_queue(&mut fill(&kinds)).expect("shared batch");
        let rm = meshed.run_queue(&mut fill(&kinds)).expect("mesh batch");
        for (s, m) in rs.results.iter().zip(&rm.results) {
            assert_bits_eq(&s.output, &m.output, "1-cube mesh vs shared HMC output");
            assert_eq!(
                s.report.per_cluster, m.report.per_cluster,
                "per-job PerfSnapshots must be bit-identical on a 1-cube mesh"
            );
            assert_eq!(s.report.makespan_cycles, m.report.makespan_cycles);
            assert_eq!((s.start_cycle, s.finish_cycle), (m.start_cycle, m.finish_cycle));
            for p in m.report.per_cluster.iter() {
                assert_eq!(p.ext_remote_bytes, 0, "no remote traffic on one cube");
                assert_eq!(p.ext_remote_wait_cycles, 0);
            }
        }
        assert_eq!(rs.report.makespan_cycles, rm.report.makespan_cycles);
    }

    /// Placement is a timing policy, not a data policy: running the
    /// same mix on the same mesh with data-affine placement versus
    /// pure load-ordered (affinity off) may move shards across cubes
    /// and stretch cycles, but per-job outputs and traffic volumes
    /// stay bit-identical.
    #[test]
    fn placement_affinity_changes_timing_not_data(
        kinds in prop::collection::vec(arb_kind(), 1..5)
    ) {
        let mesh = MeshConfig::default()
            .with_cubes(2)
            .with_cube(HmcConfig::default().with_interconnect_bits(64));
        let fill = |kinds: &[JobKind]| {
            let mut q = JobQueue::new();
            for (i, kind) in kinds.iter().enumerate() {
                // Odd jobs pinned to cube 1, even jobs default
                // round-robin — exercises both home paths.
                let b = q.job(format!("job-{i}")).kind(kind.clone());
                if i % 2 == 1 { b.home_cube(1).submit(); } else { b.submit(); }
            }
            q
        };
        let base = ScaleOutConfig::with_clusters(4).with_hmc_mesh(mesh);
        let mut affine = ScaleOutExecutor::new(base);
        let mut naive = ScaleOutExecutor::new(base.without_affinity());
        let ra = affine.run_queue(&mut fill(&kinds)).expect("affine batch");
        let rn = naive.run_queue(&mut fill(&kinds)).expect("naive batch");
        let traffic = |r: &ntx_sched::BatchResult| -> (u64, u64, u64) {
            r.results
                .iter()
                .flat_map(|j| &j.report.per_cluster)
                .fold((0, 0, 0), |(d, rd, wr), p| {
                    (d + p.dma_bytes, rd + p.ext_bytes_read, wr + p.ext_bytes_written)
                })
        };
        for (a, n) in ra.results.iter().zip(&rn.results) {
            assert_bits_eq(&a.output, &n.output, "affine vs naive placement output");
        }
        assert_eq!(traffic(&ra), traffic(&rn), "placement must not change traffic volume");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random job DAGs through the live continuous server: for a mixed
    /// GEMM/conv/AXPY/stencil queue with random dependency edges
    /// (`deps[i]` drawn from earlier submissions), served on 1..8
    /// clusters with 1..4 worker-pool threads, with or without a
    /// seeded mid-run cluster kill:
    ///
    /// * **edge safety** — no job's completion is delivered before
    ///   every one of its predecessors' completions (the observable
    ///   form of "never admitted before its predecessors retired");
    /// * **exactness** — every job completes (kills re-place, never
    ///   lose) and its output is bit-identical to a topologically
    ///   ordered serial replay — each job run alone on one fresh
    ///   cluster, which is the exact single-job semantics the DAG
    ///   serving must preserve.
    #[test]
    fn random_dag_completes_in_dependency_order_with_exact_outputs(
        (kinds, edges, clusters, threads, kill) in (
            prop::collection::vec(arb_kind(), 1..6),
            prop::collection::vec(any::<u32>(), 6),
            1usize..8,
            1usize..4,
            (any::<bool>(), 0u64..500, 0u32..8, 1u64..3000),
        )
    ) {
        use std::sync::{Arc, Mutex};
        let n = kinds.len();
        // Bit j of edges[i] draws the edge j -> i (j < i), so every
        // generated graph is a DAG over submission order.
        let deps: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..i).filter(|j| edges[i] >> j & 1 == 1).collect())
            .collect();
        let mut scale_out = ScaleOutConfig::with_clusters(clusters).with_worker_threads(threads);
        let (kill_on, seed, kill_cluster, kill_cycle) = kill;
        if kill_on {
            scale_out = scale_out.with_faults(
                ntx_sched::FaultPlan::NONE
                    .with_seed(seed)
                    .with_kill(kill_cluster % clusters as u32, kill_cycle),
            );
        }
        let server = ntx_sched::Server::start(ntx_sched::ServerConfig {
            scale_out,
            ..Default::default()
        });
        let session = server.session();
        let outputs = Arc::new(Mutex::new(vec![None::<Vec<f32>>; n]));
        let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
        let mut ids = Vec::with_capacity(n);
        for (i, kind) in kinds.iter().enumerate() {
            let mut b = session.job(format!("dag-{i}")).kind(kind.clone());
            for &d in &deps[i] {
                b = b.after_id(ids[d]);
            }
            let (outs, ord) = (Arc::clone(&outputs), Arc::clone(&order));
            let id = b
                .submit_callback(move |c| {
                    let r = c.result.expect("DAG job completes");
                    outs.lock().expect("outputs lock")[i] = Some(r.output);
                    ord.lock().expect("order lock").push(i);
                })
                .expect("server running");
            ids.push(id);
        }
        let report = server.shutdown();
        prop_assert_eq!(report.jobs, n as u64, "every DAG job must complete");
        prop_assert_eq!(report.failed, 0, "no DAG job may fail");
        let order = order.lock().expect("order lock").clone();
        prop_assert_eq!(order.len(), n);
        let mut pos = vec![usize::MAX; n];
        for (p, &i) in order.iter().enumerate() {
            pos[i] = p;
        }
        for (i, ds) in deps.iter().enumerate() {
            for &d in ds {
                prop_assert!(
                    pos[d] < pos[i],
                    "job {} completed before its predecessor {}",
                    i,
                    d
                );
            }
        }
        let outputs = outputs.lock().expect("outputs lock").clone();
        for (i, kind) in kinds.iter().enumerate() {
            let serial = run_sharded(&Job::new(i as u64, format!("dag-{i}"), kind.clone()), 1)
                .expect("serial replay");
            let got = outputs[i].as_ref().expect("output recorded");
            assert_bits_eq(got, &serial.output, "DAG serving vs serial replay output");
        }
    }
}
