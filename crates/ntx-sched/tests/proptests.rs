//! Cross-cluster equivalence properties.
//!
//! For random tileable GEMM / convolution / AXPY shapes, the N-cluster
//! `ntx-sched` result must be **bit-identical** to the single-cluster
//! result and to the `ntx_kernels::reference` oracle.
//!
//! Inputs are drawn from a coarse dyadic grid (`q / 16` with small
//! `|q|`) so every product and every partial sum is exactly
//! representable both in the NTX wide accumulator and in the
//! reference's `f64` accumulation. On that grid all three computations
//! are exact, which turns value equality into genuine bitwise equality
//! regardless of summation order — any sharding bug (wrong halo, wrong
//! band offset, clobbered ping-pong buffer) shows up as a bit flip.

use ntx_kernels::blas::GemmKernel;
use ntx_kernels::conv::Conv2dKernel;
use ntx_kernels::reference;
use ntx_sched::{run_sharded, Job, JobKind};
use proptest::prelude::*;

/// Values `q / 16` with `q` in `[-64, 64]`: exactly representable, and
/// products/sums of hundreds of them stay exact in both accumulators.
fn grid_f32() -> impl Strategy<Value = f32> {
    (-64i32..=64).prop_map(|q| q as f32 / 16.0)
}

fn grid_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(grid_f32(), len..=len)
}

fn job(kind: JobKind) -> Job {
    Job {
        id: 0,
        label: "prop".into(),
        kind,
    }
}

fn assert_bits_eq(got: &[f32], expect: &[f32], what: &str) {
    assert_eq!(got.len(), expect.len(), "{what}: length");
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "{what}: element {i} differs ({g} vs {e})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N-cluster GEMM == 1-cluster GEMM == reference, bitwise.
    #[test]
    fn gemm_sharding_is_bit_identical(
        (m, k, n, clusters, a, b) in (1u32..24, 1u32..16, 1u32..12, 2usize..6)
            .prop_flat_map(|(m, k, n, clusters)| {
                (
                    Just(m), Just(k), Just(n), Just(clusters),
                    grid_vec((m * k) as usize),
                    grid_vec((k * n) as usize),
                )
            })
    ) {
        let dims = GemmKernel { m, k, n };
        let kind = JobKind::Gemm { dims, a: a.clone(), b: b.clone() };
        let single = run_sharded(&job(kind.clone()), 1).expect("single-cluster gemm");
        let wide = run_sharded(&job(kind), clusters).expect("sharded gemm");
        let expect = reference::gemm(&a, &b, m as usize, k as usize, n as usize);
        assert_bits_eq(&single.output, &expect, "1-cluster vs reference");
        assert_bits_eq(&wide.output, &single.output, "N-cluster vs 1-cluster");
    }

    /// N-cluster conv2d == 1-cluster conv2d == reference, bitwise,
    /// for every filter plane.
    #[test]
    fn conv_sharding_is_bit_identical(
        (h, w, k, filters, clusters, image, weights) in
            (0u32..14, 0u32..12, prop_oneof![Just(3u32), Just(5u32)], 1u32..4, 2usize..6)
                .prop_flat_map(|(dh, dw, k, filters, clusters)| {
                    let (h, w) = (k + dh, k + dw);
                    (
                        Just(h), Just(w), Just(k), Just(filters), Just(clusters),
                        grid_vec((h * w) as usize),
                        grid_vec((k * k * filters) as usize),
                    )
                })
    ) {
        let kernel = Conv2dKernel { height: h, width: w, k, filters };
        let kind = JobKind::Conv2d {
            kernel,
            image: image.clone(),
            weights: weights.clone(),
        };
        let single = run_sharded(&job(kind.clone()), 1).expect("single-cluster conv");
        let wide = run_sharded(&job(kind), clusters).expect("sharded conv");
        let (oh, ow) = (kernel.out_height() as usize, kernel.out_width() as usize);
        let k2 = (k * k) as usize;
        for f in 0..filters as usize {
            let expect = reference::conv2d(
                &image,
                h as usize,
                w as usize,
                &weights[f * k2..(f + 1) * k2],
                k as usize,
            );
            assert_bits_eq(
                &single.output[f * oh * ow..(f + 1) * oh * ow],
                &expect,
                "1-cluster vs reference",
            );
        }
        assert_bits_eq(&wide.output, &single.output, "N-cluster vs 1-cluster");
    }

    /// N-cluster AXPY == 1-cluster AXPY == reference, bitwise.
    #[test]
    fn axpy_sharding_is_bit_identical(
        (a_scalar, clusters, x, y) in (grid_f32(), 2usize..8, 1usize..600)
            .prop_flat_map(|(a_scalar, clusters, n)| {
                (Just(a_scalar), Just(clusters), grid_vec(n), grid_vec(n))
            })
    ) {
        let kind = JobKind::Axpy { a: a_scalar, x: x.clone(), y: y.clone() };
        let single = run_sharded(&job(kind.clone()), 1).expect("single-cluster axpy");
        let wide = run_sharded(&job(kind), clusters).expect("sharded axpy");
        let mut expect = y;
        reference::axpy(a_scalar, &x, &mut expect);
        assert_bits_eq(&single.output, &expect, "1-cluster vs reference");
        assert_bits_eq(&wide.output, &single.output, "N-cluster vs 1-cluster");
    }
}
