//! Native-backend equivalence properties.
//!
//! The exact-mode contract: a job routed to
//! [`BackendKind::NativeExact`] must produce output **bit-identical**
//! to the cycle-accurate simulator on every job kind, any cluster
//! count, batch or continuous admission, alone or interleaved with
//! simulated and fast-native jobs in the same queue.
//!
//! Unlike the sharding proptests (which use a dyadic grid so every
//! sum is exact), inputs here are drawn from a *rough* grid — `q / 7`
//! is not exactly representable — so reductions genuinely round and
//! the property exercises the rounding behaviour itself: both paths
//! must round identically (wide Kulisch accumulation, one rounding
//! per architecturally-visible store), not merely compute exactly.

use ntx_kernels::blas::GemmKernel;
use ntx_kernels::conv::Conv2dKernel;
use ntx_sched::{
    run_sharded, BackendKind, Job, JobKind, JobQueue, ScaleOutConfig, ScaleOutExecutor, Server,
    ServerConfig,
};
use proptest::prelude::*;

/// Rough values `q / 7`: representable inputs whose products and sums
/// are *not* exactly representable, forcing real rounding decisions.
fn rough_f32() -> impl Strategy<Value = f32> {
    (-64i32..=64).prop_map(|q| q as f32 / 7.0)
}

fn rough_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(rough_f32(), len..=len)
}

fn assert_bits_eq(got: &[f32], expect: &[f32], what: &str) {
    assert_eq!(got.len(), expect.len(), "{what}: length");
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert_eq!(
            g.to_bits(),
            e.to_bits(),
            "{what}: element {i} differs ({g} vs {e})"
        );
    }
}

/// A random job of any native-eligible family, sized to fit one
/// cluster.
fn arb_kind() -> impl Strategy<Value = JobKind> {
    prop_oneof![
        (rough_f32(), 1usize..400)
            .prop_flat_map(|(a, n)| (Just(a), rough_vec(n), rough_vec(n)))
            .prop_map(|(a, x, y)| JobKind::Axpy { a, x, y }),
        (1u32..16, 1u32..14, 1u32..10)
            .prop_flat_map(|(m, k, n)| {
                (
                    Just(GemmKernel { m, k, n }),
                    rough_vec((m * k) as usize),
                    rough_vec((k * n) as usize),
                )
            })
            .prop_map(|(dims, a, b)| JobKind::Gemm { dims, a, b }),
        (0u32..10, 0u32..8, 1u32..3)
            .prop_flat_map(|(dh, dw, filters)| {
                let (h, w) = (3 + dh, 3 + dw);
                (
                    Just(Conv2dKernel {
                        height: h,
                        width: w,
                        k: 3,
                        filters,
                    }),
                    rough_vec((h * w) as usize),
                    rough_vec((9 * filters) as usize),
                )
            })
            .prop_map(|(kernel, image, weights)| JobKind::Conv2d {
                kernel,
                image,
                weights,
            }),
        (3u32..16, 3u32..12)
            .prop_flat_map(|(h, w)| (Just((h, w)), rough_vec((h * w) as usize)))
            .prop_map(|((height, width), grid)| JobKind::Stencil2d {
                height,
                width,
                grid,
            }),
    ]
}

/// The simulator oracle for one kind: a fresh single-cluster run.
fn oracle(kind: &JobKind) -> Vec<f32> {
    run_sharded(&Job::new(0, "oracle", kind.clone()), 1)
        .expect("oracle run")
        .output
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch path: a mixed queue of simulated / native-exact /
    /// native-fast jobs on 1–8 clusters. Every simulated and every
    /// native-exact output must match the single-cluster simulator
    /// oracle bit for bit — the farm may shard and place freely, the
    /// native backend may thread freely, no bit may move.
    #[test]
    fn native_exact_bit_identical_on_mixed_queues(
        jobs in prop::collection::vec((arb_kind(), 0u8..3), 1..5),
        clusters in 1usize..=8,
    ) {
        let mut exec = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(clusters));
        let mut queue = JobQueue::new();
        for (i, (kind, lane)) in jobs.iter().enumerate() {
            let backend = match lane {
                0 => BackendKind::Simulate,
                1 => BackendKind::NativeExact,
                _ => BackendKind::NativeFast,
            };
            queue
                .job(format!("job{i}"))
                .kind(kind.clone())
                .backend(backend)
                .submit();
        }
        let batch = exec.run_queue(&mut queue).expect("mixed queue runs");
        prop_assert_eq!(batch.results.len(), jobs.len());
        for (result, (kind, lane)) in batch.results.iter().zip(&jobs) {
            match lane {
                // Simulated and native-exact jobs agree with the
                // oracle bitwise; fast jobs only promise shape.
                0 | 1 => assert_bits_eq(&result.output, &oracle(kind), "mixed queue"),
                _ => prop_assert_eq!(result.output.len(), oracle(kind).len()),
            }
        }
    }

    /// Continuous path: the same mix submitted through a live server,
    /// so native answers interleave with farm shard retires and the
    /// admission EWMA. Ordering and interleaving must not move a bit.
    #[test]
    fn native_exact_bit_identical_under_continuous_admission(
        jobs in prop::collection::vec((arb_kind(), (0u8..2).prop_map(|b| b == 1)), 1..5),
        clusters in 1usize..=8,
    ) {
        let server = Server::start(ServerConfig::with_clusters(clusters));
        let session = server.session();
        let handles: Vec<_> = jobs
            .iter()
            .enumerate()
            .map(|(i, (kind, native))| {
                let ready = session.job(format!("job{i}")).kind(kind.clone());
                let ready = if *native { ready.native_exact() } else { ready };
                ready.submit().expect("server running")
            })
            .collect();
        for (handle, (kind, _)) in handles.into_iter().zip(&jobs) {
            let done = handle.wait().expect("served");
            let result = done.result.expect("valid job");
            assert_bits_eq(&result.output, &oracle(kind), "continuous");
        }
        let report = server.shutdown();
        prop_assert_eq!(report.jobs, jobs.len() as u64);
        let native_jobs = jobs.iter().filter(|(_, n)| *n).count() as u64;
        prop_assert_eq!(report.native, native_jobs);
        prop_assert_eq!(report.simulated, report.jobs - native_jobs);
        prop_assert_eq!(report.failed, 0);
    }
}

/// The two bench workloads the CI gate times: conv3x3 on a 66×63
/// image with 4 filters, and a 4096-element dot product. Exact mode
/// must match the simulator bitwise on both, deterministically.
#[test]
fn bench_workloads_bit_identical() {
    let mut seed = 0x2f6e_3a11u32;
    let mut data = |n: usize| -> Vec<f32> {
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 17;
                seed ^= seed << 5;
                ((seed % 509) as f32 - 254.0) / 7.0
            })
            .collect()
    };
    let conv = JobKind::Conv2d {
        kernel: Conv2dKernel {
            height: 66,
            width: 63,
            k: 3,
            filters: 4,
        },
        image: data(66 * 63),
        weights: data(9 * 4),
    };
    let dot = JobKind::Gemm {
        dims: GemmKernel {
            m: 1,
            k: 4096,
            n: 1,
        },
        a: data(4096),
        b: data(4096),
    };
    let mut exec = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(4));
    let mut queue = JobQueue::new();
    for kind in [&conv, &dot] {
        queue
            .job("native")
            .kind(kind.clone())
            .native_exact()
            .submit();
    }
    let batch = exec.run_queue(&mut queue).expect("bench workloads run");
    assert_bits_eq(&batch.results[0].output, &oracle(&conv), "conv3x3 66x63x4");
    assert_bits_eq(&batch.results[1].output, &oracle(&dot), "dot-4096");
}

/// Raw command-stream jobs have no native lowering: admission must
/// reject them with a shape error instead of executing garbage.
#[test]
fn raw_jobs_rejected_at_native_admission() {
    use ntx_isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect};
    let cfg = NtxConfig::builder()
        .command(Command::Mac {
            operand: OperandSelect::Memory,
        })
        .loops(LoopNest::vector(4))
        .agu(0, AguConfig::stream(0x000, 4))
        .agu(1, AguConfig::stream(0x100, 4))
        .agu(2, AguConfig::fixed(0x200))
        .build()
        .unwrap();
    let kind = JobKind::Raw(ntx_sched::RawJob {
        config: cfg,
        tcdm: vec![(0x000, vec![1.0; 4]), (0x100, vec![1.0; 4])],
        result_addr: 0x200,
        result_len: 1,
    });
    let mut exec = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(2));
    let mut queue = JobQueue::new();
    queue.job("raw").kind(kind).native_exact().submit();
    let err = exec
        .run_queue(&mut queue)
        .expect_err("raw must be rejected");
    assert!(matches!(
        err,
        ntx_sched::SchedError::Job { source, .. }
            if matches!(*source, ntx_sched::SchedError::Shape(_))
    ));
}
