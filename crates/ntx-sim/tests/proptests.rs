//! Property-based tests of the cluster simulator.
//!
//! Oracle: a plain-Rust interpretation of the offloaded command — the
//! loop nest walked in software over a shadow copy of the TCDM. The
//! simulator must produce bit-identical memory contents regardless of
//! arbitration, stalls and scheduling.

use ntx_fpu::WideAccumulator;
use ntx_isa::{AccuInit, AguConfig, Command, LoopCounters, LoopNest, NtxConfig, OperandSelect};
use ntx_mem::{DmaDescriptor, DmaDirection, HmcConfig, HmcSubsystem};
use ntx_sim::{Cluster, ClusterConfig};
use proptest::prelude::*;

/// A software golden model of one NTX command over a word-addressed
/// memory image.
fn golden_execute(cfg: &NtxConfig, mem: &mut Vec<f32>) {
    let rd = |mem: &Vec<f32>, addr: u32| mem[(addr / 4) as usize % mem.len()];
    let mut counters = LoopCounters::new(cfg.loops);
    let mut agus = [
        ntx_isa::Agu::new(cfg.agus[0]),
        ntx_isa::Agu::new(cfg.agus[1]),
        ntx_isa::Agu::new(cfg.agus[2]),
    ];
    let mut acc = WideAccumulator::new();
    loop {
        if cfg.command.is_reduction() && counters.at_init() {
            acc.clear();
            if cfg.accu_init == AccuInit::Memory {
                acc.add_value(rd(mem, agus[2].address()));
            }
        }
        let reads = cfg.command.reads_per_element();
        let x = if reads >= 1 {
            rd(mem, agus[0].address())
        } else {
            0.0
        };
        let y = if reads >= 2 {
            rd(mem, agus[1].address())
        } else {
            cfg.register
        };
        let out = match cfg.command {
            Command::Mac { .. } => {
                acc.add_product(x, y);
                None
            }
            Command::Add { .. } => Some(x + y),
            Command::Mul { .. } => Some(x * y),
            Command::Relu => Some(if x > 0.0 { x } else { 0.0 }),
            Command::Copy => Some(x),
            Command::Set => Some(cfg.register),
            _ => None,
        };
        if counters.at_store() {
            let addr = (agus[2].address() / 4) as usize % mem.len();
            match cfg.command {
                Command::Mac { .. } => mem[addr] = acc.round(),
                _ => mem[addr] = out.unwrap_or(0.0),
            }
        }
        match counters.advance() {
            Some(level) => {
                for a in &mut agus {
                    a.advance(level);
                }
            }
            None => break,
        }
    }
}

/// Commands covered by the golden model above.
fn arb_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        Just(Command::Mac {
            operand: OperandSelect::Memory
        }),
        Just(Command::Mac {
            operand: OperandSelect::Register
        }),
        Just(Command::Add {
            operand: OperandSelect::Memory
        }),
        Just(Command::Mul {
            operand: OperandSelect::Register
        }),
        Just(Command::Relu),
        Just(Command::Copy),
        Just(Command::Set),
    ]
}

/// Small loop nests with levels consistent with the command class.
fn arb_case() -> impl Strategy<Value = (Command, LoopNest, [AguConfig; 3], f32, bool)> {
    (
        arb_command(),
        prop::collection::vec(1u32..5, 1..=3),
        1usize..=2,
        prop::array::uniform3((0u32..64, prop::array::uniform5(-8i32..8))),
        -4i32..4,
        any::<bool>(),
    )
        .prop_map(|(cmd, counts, store, agu_raw, reg, mem_init)| {
            let depth = counts.len();
            let store_level = if cmd.is_reduction() {
                store.min(depth)
            } else {
                0
            };
            let nest = LoopNest::nested(&counts).with_levels(store.min(depth), store_level);
            let agus =
                agu_raw.map(|(base, strides)| AguConfig::new(base * 4, strides.map(|s| s * 4)));
            (cmd, nest, agus, reg as f32 * 0.5, mem_init)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any single offloaded command, the simulated TCDM ends up
    /// bit-identical to the software golden model, no matter how the
    /// arbitration interleaves the accesses.
    #[test]
    fn engine_matches_golden_model((cmd, nest, agus, reg, mem_init) in arb_case()) {
        let mut cluster = Cluster::new(ClusterConfig::default());
        // A deterministic pattern covering the whole TCDM, so address
        // wrap-around behaves identically in both models.
        let words = 16_384usize;
        let image: Vec<f32> = (0..words).map(|i| ((i * 37 % 29) as f32) - 14.0).collect();
        cluster.write_tcdm_f32(0, &image);
        let mut builder = NtxConfig::builder();
        builder
            .command(cmd)
            .loops(nest)
            .register(reg)
            .accu_init(if mem_init && cmd.is_reduction() {
                AccuInit::Memory
            } else {
                AccuInit::Zero
            });
        for (i, a) in agus.iter().enumerate() {
            builder.agu(i, *a);
        }
        let cfg = builder.build().expect("valid by construction");
        // Golden model over a shadow image.
        let mut shadow = image.clone();
        golden_execute(&cfg, &mut shadow);
        // Simulate.
        cluster.offload_with_writes(0, &cfg, 1);
        cluster.run_to_completion();
        let got = cluster.read_tcdm_f32(0, words);
        for (i, (g, e)) in got.iter().zip(&shadow).enumerate() {
            prop_assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "word {} differs: sim {} vs golden {} (cmd {:?})",
                i,
                g,
                e,
                cfg.command
            );
        }
    }

    /// Executing the same command on a contended cluster (all 8 engines
    /// running copies over disjoint regions) yields the same per-engine
    /// results as running it alone: arbitration affects timing, never
    /// values.
    #[test]
    fn contention_does_not_change_results(n in 1u32..40, seed in any::<u32>()) {
        let mut lone = Cluster::new(ClusterConfig::default());
        let mut busy = Cluster::new(ClusterConfig::default());
        let mut s = seed | 1;
        let data: Vec<f32> = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 17;
                s ^= s << 5;
                (s as f32 / u32::MAX as f32) - 0.5
            })
            .collect();
        let region = 0x1800u32;
        let make = |base: u32| {
            NtxConfig::builder()
                .command(Command::Mac {
                    operand: OperandSelect::Memory,
                })
                .loops(LoopNest::vector(n))
                .agu(0, AguConfig::stream(base, 4))
                .agu(1, AguConfig::stream(base + 0x800, 4))
                .agu(2, AguConfig::fixed(base + 0x1000))
                .build()
                .unwrap()
        };
        for e in 0..8u32 {
            busy.write_tcdm_f32(e * region, &data);
            busy.write_tcdm_f32(e * region + 0x800, &data);
        }
        lone.write_tcdm_f32(0, &data);
        lone.write_tcdm_f32(0x800, &data);
        lone.offload_with_writes(0, &make(0), 1);
        lone.run_to_completion();
        for e in 0..8 {
            busy.offload_with_writes(e, &make(e as u32 * region), 1);
        }
        busy.run_to_completion();
        let expect = lone.read_tcdm_f32(0x1000, 1)[0];
        for e in 0..8u32 {
            let got = busy.read_tcdm_f32(e * region + 0x1000, 1)[0];
            prop_assert_eq!(got.to_bits(), expect.to_bits(), "engine {}", e);
        }
        // And the contended run must have seen some conflicts for
        // non-trivial lengths — the arbitration was actually exercised.
        if n > 8 {
            prop_assert!(busy.perf().tcdm_requests > 0);
        }
    }

    /// The burst fast path is bit-identical to pure per-cycle stepping:
    /// for random command mixes across several engines (strided walks,
    /// reductions, elementwise store cadences, register operands,
    /// memory accumulator init) plus concurrent DMA traffic, both modes
    /// must agree on the final TCDM image, the cycle counter, and every
    /// performance counter — including stall and conflict counts.
    #[test]
    fn fast_path_matches_per_cycle_reference(
        cases in prop::collection::vec(arb_case(), 1..4),
        with_dma in any::<bool>(),
    ) {
        let fast_cfg = ClusterConfig { fast_path: true, ..ClusterConfig::default() };
        let slow_cfg = ClusterConfig { fast_path: false, ..ClusterConfig::default() };
        let mut fast = Cluster::new(fast_cfg);
        let mut slow = Cluster::new(slow_cfg);
        let words = 16_384usize;
        let image: Vec<f32> = (0..words).map(|i| ((i * 41 % 23) as f32) - 11.0).collect();
        let ext_image: Vec<f32> = (0..256).map(|i| (i as f32) * 0.25 - 32.0).collect();
        for c in [&mut fast, &mut slow] {
            c.write_tcdm_f32(0, &image);
            c.ext_mem().write_f32_slice(0x4000, &ext_image);
            c.ext_mem().reset_counters();
        }
        // Drive both clusters through the same offload + DMA sequence.
        for (engine, (cmd, nest, agus, reg, mem_init)) in cases.iter().enumerate() {
            let mut builder = NtxConfig::builder();
            builder
                .command(*cmd)
                .loops(*nest)
                .register(*reg)
                .accu_init(if *mem_init && cmd.is_reduction() {
                    AccuInit::Memory
                } else {
                    AccuInit::Zero
                });
            for (i, a) in agus.iter().enumerate() {
                builder.agu(i, *a);
            }
            let cfg = builder.build().expect("valid by construction");
            fast.offload_with_writes(engine, &cfg, 2);
            slow.offload_with_writes(engine, &cfg, 2);
        }
        if with_dma {
            for c in [&mut fast, &mut slow] {
                c.dma_push(DmaDescriptor::linear(0x4000, 0xa000, 512, DmaDirection::ExtToTcdm));
                c.dma_push(DmaDescriptor {
                    ext_addr: 0x8000,
                    tcdm_addr: 0xa200,
                    row_bytes: 32,
                    rows: 4,
                    ext_stride: 48,
                    tcdm_stride: 32,
                    dir: DmaDirection::TcdmToExt,
                });
            }
        }
        fast.run_to_completion();
        slow.run_to_completion();
        // Run a little further: idle bursting must also agree.
        fast.run_for(100);
        slow.run_for(100);
        prop_assert_eq!(fast.cycle(), slow.cycle(), "cycle counters diverged");
        let (pf, ps) = (fast.perf(), slow.perf());
        prop_assert_eq!(pf, ps, "performance counters diverged");
        let got = fast.read_tcdm_f32(0, words);
        let expect = slow.read_tcdm_f32(0, words);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            prop_assert_eq!(g.to_bits(), e.to_bits(), "TCDM word {} differs", i);
        }
        if with_dma {
            let fe = fast.ext_mem().read_f32_slice(0x8000, 64);
            let se = slow.ext_mem().read_f32_slice(0x8000, 64);
            prop_assert_eq!(fe, se, "external memory diverged");
        }
    }

    /// Under a binding shared-HMC slot schedule the burst fast path
    /// (throttled whole-row DMA bursts, clipped per-cycle stepping)
    /// stays bit-identical to the pure per-cycle reference — cycle
    /// counter, every performance counter, TCDM and external images.
    /// And against the *ideal* private memory, contention only ever
    /// changes timing: data is bit-identical, cycles never shrink.
    #[test]
    fn throttled_fast_path_matches_reference_and_ideal_data(
        cases in prop::collection::vec(arb_case(), 1..3),
        ports in 2u32..48,
        index in 0u32..48,
    ) {
        let port = HmcSubsystem::new(
            HmcConfig::default().with_interconnect_bits(64),
            ports,
            1.25e9,
            1,
        )
        .port(index % ports);
        let drive = |fast_path: bool, ext_port: Option<ntx_mem::HmcPort>| {
            let mut c = Cluster::new(ClusterConfig {
                fast_path,
                ext_port,
                ..ClusterConfig::default()
            });
            let words = 16_384usize;
            let image: Vec<f32> = (0..words).map(|i| ((i * 41 % 23) as f32) - 11.0).collect();
            let ext_image: Vec<f32> = (0..256).map(|i| (i as f32) * 0.25 - 32.0).collect();
            c.write_tcdm_f32(0, &image);
            c.ext_mem().write_f32_slice(0x4000, &ext_image);
            c.ext_mem().reset_counters();
            // Input DMA, compute, output DMA — the double-buffered
            // shape whose ext beats the shared schedule throttles.
            c.dma_push(DmaDescriptor::linear(0x4000, 0xa000, 512, DmaDirection::ExtToTcdm));
            for (engine, (cmd, nest, agus, reg, mem_init)) in cases.iter().enumerate() {
                let mut builder = NtxConfig::builder();
                builder
                    .command(*cmd)
                    .loops(*nest)
                    .register(*reg)
                    .accu_init(if *mem_init && cmd.is_reduction() {
                        AccuInit::Memory
                    } else {
                        AccuInit::Zero
                    });
                for (i, a) in agus.iter().enumerate() {
                    builder.agu(i, *a);
                }
                let cfg = builder.build().expect("valid by construction");
                c.offload_with_writes(engine, &cfg, 2);
            }
            c.dma_push(DmaDescriptor {
                ext_addr: 0x8000,
                tcdm_addr: 0xa200,
                row_bytes: 32,
                rows: 4,
                ext_stride: 48,
                tcdm_stride: 32,
                dir: DmaDirection::TcdmToExt,
            });
            c.run_to_completion();
            c.run_for(50);
            let tcdm = c.read_tcdm_f32(0, words);
            let dma_tile = c.read_tcdm_f32(0xa000, 128);
            let ext = c.ext_mem().read_f32_slice(0x8000, 64);
            (c.cycle(), c.perf(), tcdm, dma_tile, ext)
        };
        let (fc, fp, ft, fd, fe) = drive(true, Some(port));
        let (sc, sp, st, sd, se) = drive(false, Some(port));
        prop_assert_eq!(fc, sc, "cycle counters diverged under throttling");
        prop_assert_eq!(fp, sp, "performance counters diverged under throttling");
        for (i, (g, e)) in ft.iter().zip(&st).enumerate() {
            prop_assert_eq!(g.to_bits(), e.to_bits(), "TCDM word {} differs", i);
        }
        prop_assert_eq!(fd, sd);
        prop_assert_eq!(fe, se, "external memory diverged under throttling");
        // Ideal-memory oracle: contention never speeds anything up and
        // never touches what the DMA moved. (The random engine mixes
        // here may race *each other* on overlapping TCDM words, so
        // only the DMA-transferred regions are timing-invariant; the
        // scheduler-level proptests assert full output bit-identity on
        // race-free kernels.)
        let (ic, ip, _it, id, ie) = drive(true, None);
        prop_assert!(fc >= ic, "contention must not speed anything up");
        prop_assert!(fp.ext_wait_cycles >= ip.ext_wait_cycles);
        prop_assert_eq!(ip.ext_wait_cycles, 0, "ideal memory never waits");
        for (i, (g, e)) in fd.iter().zip(&id).enumerate() {
            prop_assert_eq!(g.to_bits(), e.to_bits(), "contended DMA tile word {} differs from ideal", i);
        }
        prop_assert_eq!(fe, ie, "contended external data differs from ideal");
        prop_assert_eq!(fp.dma_bytes, ip.dma_bytes, "traffic volume must not change");
    }
}
