//! The execution engine of one NTX co-processor (Fig. 2).
//!
//! Couples the ISA-level descriptors (loops, AGUs, commands) to the FPU
//! datapath and walks the offloaded loop nest at one innermost iteration
//! per cycle. The engine interacts with the cluster through a
//! two-phase-per-cycle protocol:
//!
//! 1. [`NtxEngine::desired_accesses`] lists the TCDM accesses of the
//!    current iteration (operand reads, accumulator-init read, store
//!    write);
//! 2. the cluster arbitrates all masters and calls
//!    [`NtxEngine::commit`] with the grant flags — all granted executes
//!    the iteration, any denial is a banking-conflict stall.
//!
//! Command offloading uses the double-buffered register interface of
//! §II-E: one command executes while the next is staged; a command
//! write while the buffer is full reports
//! [`EngineStatus::Backpressure`], which stalls the writing core.

use ntx_fpu::{FpuDatapath, FpuOp, SPILL_WORDS};
use ntx_isa::{
    AccuInit, Agu, Command, ConfigError, LoopCounters, NtxConfig, RegFile, RegOffset, StoreSource,
    WriteEffect,
};
use ntx_mem::{Interconnect, MasterId, Tcdm};

/// Outcome of a register write as seen by the offloading core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStatus {
    /// The write was accepted.
    Accepted,
    /// The command buffer is full; the core must retry (bus stall).
    Backpressure,
}

/// The TCDM accesses of one engine cycle — a fixed-capacity inline list
/// (at most init read, x read, y read, store write), replacing the
/// per-cycle `Vec` the hot loop used to allocate.
#[derive(Debug, Clone, Copy, Default)]
pub struct AccessList {
    addrs: [u32; 4],
    write_mask: u8,
    len: u8,
}

impl AccessList {
    fn push(&mut self, addr: u32, write: bool) {
        self.addrs[self.len as usize] = addr;
        self.write_mask |= u8::from(write) << self.len;
        self.len += 1;
    }

    /// Number of accesses this cycle.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the engine requests nothing this cycle.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The requested byte addresses, in the fixed order *init read, x
    /// read, y read, store write*.
    #[must_use]
    pub fn addrs(&self) -> &[u32] {
        &self.addrs[..self.len as usize]
    }

    /// Iterates `(address, is_write)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, bool)> + '_ {
        (0..self.len as usize).map(|i| (self.addrs[i], self.write_mask & (1 << i) != 0))
    }
}

/// One engine cycle planned once: the access list plus the event flags
/// both arbitration and commit need, so the hot loop derives them a
/// single time per cycle instead of re-walking the loop-counter state
/// in `desired_accesses` *and* `commit`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CyclePlan {
    list: AccessList,
    needs_init: bool,
    needs_x: bool,
    needs_y: bool,
    /// `counters.at_store()` — store fires after this iteration.
    at_store: bool,
    /// Reduction accumulator (re-)initialisation fires this iteration.
    reduction_init: bool,
}

impl CyclePlan {
    /// The TCDM accesses of the planned cycle.
    #[must_use]
    pub fn accesses(&self) -> &AccessList {
        &self.list
    }
}

/// Outcome of an engine burst (see [`NtxEngine::burst_sole`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BurstOutcome {
    /// Cycles the burst advanced.
    pub cycles: u64,
    /// Cycles in which the engine issued at least one TCDM request
    /// (what the cluster's busy counter observes).
    pub accessed_cycles: u64,
}

/// Minimum pure-MAC run length worth entering the batched streak loop.
const MIN_STREAK: u32 = 2;
/// Elements per batched streak chunk (stack buffers).
const STREAK_CHUNK: usize = 64;

#[derive(Debug, Clone)]
struct Execution {
    config: NtxConfig,
    counters: LoopCounters,
    agus: [Agu; 3],
    /// Operand latches (the depth-2 FIFOs of Fig. 2): a granted read is
    /// kept across stall cycles so only missing operands are re-
    /// requested — this is what lets two same-bank streams make
    /// progress at half rate instead of deadlocking.
    latch_x: Option<f32>,
    latch_y: Option<f32>,
    latch_init: Option<f32>,
    /// Latched wide-spill image for [`AccuInit::Wide`] restores — the
    /// full accumulator state read through AGU 2 as one multi-word
    /// burst, kept across stall cycles like the scalar latches.
    latch_init_wide: Option<[u32; SPILL_WORDS]>,
    /// Init/store events are periodic in the flat iteration index (the
    /// loop counters are a mixed-radix encoding of it): `at_init` fires
    /// every `prod(bounds[..init_level])` iterations, `at_store` on the
    /// last iteration of every `prod(bounds[..store_level])`-long
    /// period. These countdowns make the per-cycle event checks O(1)
    /// instead of re-scanning the counter cascade.
    init_countdown: u64,
    init_period: u64,
    store_countdown: u64,
    store_period: u64,
}

impl Execution {
    /// True while the accumulator-init value for the current iteration
    /// still has to be fetched from the TCDM.
    #[inline]
    fn init_fetch_pending(&self) -> bool {
        match self.config.accu_init {
            AccuInit::Zero => false,
            AccuInit::Memory => self.latch_init.is_none(),
            AccuInit::Wide => self.latch_init_wide.is_none(),
        }
    }

    /// Fetches and latches the init operand after a granted init read:
    /// the rounded `f32` for [`AccuInit::Memory`], the full spill image
    /// for [`AccuInit::Wide`].
    fn latch_init_fetch(&mut self, tcdm: &mut Tcdm) {
        match self.config.accu_init {
            AccuInit::Wide => {
                self.latch_init_wide = Some(read_spill(tcdm, self.agus[2].address()));
            }
            _ => self.latch_init = Some(tcdm.read_f32(self.agus[2].address())),
        }
    }

    fn new(config: NtxConfig) -> Self {
        let bounds = config.loops.bounds();
        let period =
            |level: usize| -> u64 { bounds[..level].iter().map(|&b| u64::from(b)).product() };
        let init_period = period(config.loops.init_level());
        let store_period = period(config.loops.store_level());
        Self {
            config,
            counters: LoopCounters::new(config.loops),
            agus: [
                Agu::new(config.agus[0]),
                Agu::new(config.agus[1]),
                Agu::new(config.agus[2]),
            ],
            latch_x: None,
            latch_y: None,
            latch_init: None,
            latch_init_wide: None,
            init_countdown: 0,
            init_period,
            store_countdown: store_period - 1,
            store_period,
        }
    }

    /// `counters.at_init()`, tracked incrementally.
    #[inline]
    fn at_init(&self) -> bool {
        self.init_countdown == 0
    }

    /// `counters.at_store()`, tracked incrementally.
    #[inline]
    fn at_store(&self) -> bool {
        self.store_countdown == 0
    }

    /// Advances the event countdowns by one executed iteration.
    #[inline]
    fn tick_events(&mut self) {
        self.init_countdown = match self.init_countdown {
            0 => self.init_period - 1,
            n => n - 1,
        };
        self.store_countdown = match self.store_countdown {
            0 => self.store_period - 1,
            n => n - 1,
        };
        debug_assert_eq!(self.at_init(), self.counters.at_init());
        debug_assert_eq!(self.at_store(), self.counters.at_store());
    }
}

/// One NTX co-processor: register interface, controller, loop/AGU state
/// and FPU.
#[derive(Debug, Clone)]
pub struct NtxEngine {
    regfile: RegFile,
    current: Option<Execution>,
    staged: Option<NtxConfig>,
    fpu: FpuDatapath,
    // Counters.
    flops: u64,
    active_cycles: u64,
    stall_cycles: u64,
    commands_completed: u64,
}

impl Default for NtxEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl NtxEngine {
    /// Creates an idle engine.
    #[must_use]
    pub fn new() -> Self {
        Self {
            regfile: RegFile::new(),
            current: None,
            staged: None,
            fpu: FpuDatapath::new(),
            flops: 0,
            active_cycles: 0,
            stall_cycles: 0,
            commands_completed: 0,
        }
    }

    /// Switches this engine's FPU to the pre-overhaul reference
    /// accumulator (see [`FpuDatapath::use_reference_accumulator`]);
    /// used by clusters with the fast path disabled so the baseline is
    /// the seed implementation end to end.
    pub fn use_reference_fpu(&mut self) {
        self.fpu.use_reference_accumulator();
    }

    /// True while a command is executing or staged.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.current.is_some() || self.staged.is_some()
    }

    /// Writes a configuration register (the §II-E offload path).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] for bad offsets or an invalid committed
    /// configuration.
    pub fn write_reg(&mut self, offset: u32, value: u32) -> Result<EngineStatus, ConfigError> {
        if offset == RegOffset::COMMAND && self.staged.is_some() && self.current.is_some() {
            return Ok(EngineStatus::Backpressure);
        }
        match self.regfile.write(offset, value)? {
            WriteEffect::Staged => Ok(EngineStatus::Accepted),
            WriteEffect::Commit(cfg) => {
                self.accept_command(*cfg);
                Ok(EngineStatus::Accepted)
            }
        }
    }

    /// Reads a configuration register; the status register reflects the
    /// live busy state.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError::RegisterOffsetOutOfRange`].
    pub fn read_reg(&self, offset: u32) -> Result<u32, ConfigError> {
        self.regfile.read(offset, self.is_busy())
    }

    /// Offloads a full configuration through the driver path (bypasses
    /// the register write sequence; the cluster accounts the cycles).
    /// Returns `Backpressure` if both command slots are occupied.
    pub fn offload(&mut self, config: &NtxConfig) -> EngineStatus {
        if self.staged.is_some() && self.current.is_some() {
            return EngineStatus::Backpressure;
        }
        self.regfile.load_config(config);
        self.accept_command(*config);
        EngineStatus::Accepted
    }

    fn accept_command(&mut self, config: NtxConfig) {
        if self.current.is_none() {
            self.fpu.set_register(config.register);
            self.current = Some(Execution::new(config));
        } else {
            debug_assert!(self.staged.is_none(), "caller checked backpressure");
            self.staged = Some(config);
        }
    }

    /// Plans the current iteration: accesses plus the event flags the
    /// commit path needs, derived in one pass over the loop state.
    #[must_use]
    pub fn plan_cycle(&self) -> CyclePlan {
        let mut plan = CyclePlan::default();
        let Some(exec) = &self.current else {
            return plan;
        };
        let cmd = exec.config.command;
        plan.reduction_init = cmd.is_reduction() && exec.at_init();
        plan.at_store = exec.at_store();
        plan.needs_init = plan.reduction_init && exec.init_fetch_pending();
        let reads = cmd.reads_per_element();
        plan.needs_x = reads >= 1 && exec.latch_x.is_none();
        plan.needs_y = reads >= 2 && exec.latch_y.is_none();
        if plan.needs_init {
            plan.list.push(exec.agus[2].address(), false);
        }
        if plan.needs_x {
            plan.list.push(exec.agus[0].address(), false);
        }
        if plan.needs_y {
            plan.list.push(exec.agus[1].address(), false);
        }
        if plan.at_store {
            plan.list.push(exec.agus[2].address(), true);
        }
        plan
    }

    /// TCDM accesses needed by the current iteration this cycle, in the
    /// fixed order *init read, x read, y read, store write*.
    /// Already-latched operands are not re-requested. Empty when idle.
    #[must_use]
    pub fn desired_accesses(&self) -> AccessList {
        self.plan_cycle().list
    }

    /// Consumes this cycle's grants: granted reads are latched; when all
    /// operands are present and the store grant (if needed) arrived, the
    /// iteration executes. Anything missing is a conflict-stall cycle
    /// and the missing accesses are retried next cycle.
    /// `granted` must parallel [`Self::desired_accesses`] — a
    /// mismatched length is a caller bug and trips a debug assertion.
    ///
    /// This is the *reference* commit: it re-derives every event flag
    /// from the loop-counter cascade and always runs the operand-latch
    /// protocol, exactly as the pre-burst simulator did. The burst fast
    /// path uses [`NtxEngine::commit_planned`], whose outcome must be —
    /// and is, by the differential proptests — bit-identical.
    pub fn commit(&mut self, granted: &[bool], tcdm: &mut Tcdm) {
        let Some(exec) = &mut self.current else {
            debug_assert!(
                granted.is_empty(),
                "grants offered to an idle engine (got {})",
                granted.len()
            );
            return;
        };
        let cmd = exec.config.command;
        let reads = cmd.reads_per_element();
        let needs_init = cmd.is_reduction() && exec.counters.at_init() && exec.init_fetch_pending();
        let needs_x = reads >= 1 && exec.latch_x.is_none();
        let needs_y = reads >= 2 && exec.latch_y.is_none();
        let store_needed = exec.counters.at_store();
        debug_assert_eq!(
            granted.len(),
            usize::from(needs_init)
                + usize::from(needs_x)
                + usize::from(needs_y)
                + usize::from(store_needed),
            "grant slice must parallel desired_accesses"
        );
        let mut gi = 0;
        let mut take = |flag: bool| {
            if flag {
                let g = granted.get(gi).copied().unwrap_or(false);
                gi += 1;
                g
            } else {
                false
            }
        };
        // Latch granted reads (same order as desired_accesses).
        if take(needs_init) {
            exec.latch_init_fetch(tcdm);
        }
        if take(needs_x) {
            exec.latch_x = Some(tcdm.read_f32(exec.agus[0].address()));
        }
        if take(needs_y) {
            exec.latch_y = Some(tcdm.read_f32(exec.agus[1].address()));
        }
        let store_granted = take(store_needed);
        // Ready when nothing is missing any more.
        let init_pending =
            cmd.is_reduction() && exec.counters.at_init() && exec.init_fetch_pending();
        let reads_ready = !init_pending
            && (reads < 1 || exec.latch_x.is_some())
            && (reads < 2 || exec.latch_y.is_some());
        if !reads_ready || (store_needed && !store_granted) {
            self.stall_cycles += 1;
            return;
        }
        // Accumulator (re-)initialisation at the init level.
        if cmd.is_reduction() && exec.counters.at_init() {
            apply_accu_init(&mut self.fpu, exec, tcdm);
        }
        let x = exec.latch_x.take().unwrap_or(0.0);
        let y = if reads >= 2 {
            exec.latch_y.take().expect("checked by reads_ready")
        } else {
            self.fpu.register()
        };
        exec.latch_init = None;
        exec.latch_init_wide = None;
        // Execute.
        let index = exec.counters.index_counter();
        let out = self.fpu.execute(cmd.fpu_op(), x, y, index);
        self.flops += cmd.flops_per_element();
        self.active_cycles += 1;
        // Write-back.
        if store_needed {
            let addr = exec.agus[2].address();
            match cmd.store_source() {
                StoreSource::Element => {
                    tcdm.write_f32(addr, out.unwrap_or(0.0));
                }
                StoreSource::Accumulator => {
                    if exec.config.wide_store {
                        write_spill(tcdm, addr, &self.fpu.store_accumulator_wide());
                    } else {
                        tcdm.write_f32(addr, self.fpu.store_accumulator());
                    }
                }
                StoreSource::CompareValue => {
                    let v = match cmd {
                        Command::Min => self.fpu.store_min(),
                        _ => self.fpu.store_max(),
                    };
                    tcdm.write_f32(addr, v);
                }
                StoreSource::CompareIndex => {
                    let idx = match cmd {
                        Command::ArgMin => self.fpu.argmin(),
                        _ => self.fpu.argmax(),
                    };
                    tcdm.write_u32(addr, idx.unwrap_or(u32::MAX));
                }
            }
        }
        // Advance the cascade and the AGUs.
        match exec.counters.advance() {
            Some(level) => {
                for agu in &mut exec.agus {
                    agu.advance(level);
                }
                exec.tick_events();
            }
            None => {
                self.current = None;
                self.commands_completed += 1;
                if let Some(next) = self.staged.take() {
                    self.fpu.set_register(next.register);
                    self.current = Some(Execution::new(next));
                }
            }
        }
    }

    /// [`NtxEngine::commit`] with the cycle plan supplied by the caller
    /// (the hot loop plans once for arbitration and reuses it here).
    /// `plan` must be this cycle's [`NtxEngine::plan_cycle`].
    pub fn commit_planned(&mut self, plan: &CyclePlan, granted: &[bool], tcdm: &mut Tcdm) {
        if self.current.is_none() {
            debug_assert!(
                granted.is_empty(),
                "grants offered to an idle engine (got {})",
                granted.len()
            );
            return;
        }
        debug_assert_eq!(
            granted.len(),
            plan.list.len(),
            "grant slice must parallel desired_accesses"
        );
        if granted.iter().all(|&g| g) {
            self.commit_all_granted(plan, tcdm);
            return;
        }
        // Partial grants: latch what was granted, retry the rest.
        let exec = self.current.as_mut().expect("checked above");
        let cmd = exec.config.command;
        let reads = cmd.reads_per_element();
        let mut gi = 0;
        let mut take = |flag: bool| {
            if flag {
                let g = granted.get(gi).copied().unwrap_or(false);
                gi += 1;
                g
            } else {
                false
            }
        };
        if take(plan.needs_init) {
            exec.latch_init_fetch(tcdm);
        }
        if take(plan.needs_x) {
            exec.latch_x = Some(tcdm.read_f32(exec.agus[0].address()));
        }
        if take(plan.needs_y) {
            exec.latch_y = Some(tcdm.read_f32(exec.agus[1].address()));
        }
        let store_granted = take(plan.at_store);
        // Ready when nothing is missing any more.
        let init_pending = cmd.is_reduction() && exec.at_init() && exec.init_fetch_pending();
        let reads_ready = !init_pending
            && (reads < 1 || exec.latch_x.is_some())
            && (reads < 2 || exec.latch_y.is_some());
        if !reads_ready || (plan.at_store && !store_granted) {
            self.stall_cycles += 1;
            return;
        }
        // Accumulator (re-)initialisation at the init level.
        if plan.reduction_init {
            apply_accu_init(&mut self.fpu, exec, tcdm);
        }
        let x = exec.latch_x.take().unwrap_or(0.0);
        let y = if reads >= 2 {
            exec.latch_y.take().expect("checked by reads_ready")
        } else {
            self.fpu.register()
        };
        exec.latch_init = None;
        exec.latch_init_wide = None;
        self.finish_iteration(x, y, plan.at_store, tcdm);
    }

    /// The iteration when every requested access was granted — the
    /// burst fast path's common case: operands stream straight from the
    /// TCDM into the datapath, skipping the latch protocol and the
    /// grant-slice walk entirely.
    #[inline]
    pub fn commit_all_granted(&mut self, plan: &CyclePlan, tcdm: &mut Tcdm) {
        let Some(exec) = &mut self.current else {
            return;
        };
        let cmd = exec.config.command;
        let reads = cmd.reads_per_element();
        if plan.reduction_init {
            apply_accu_init(&mut self.fpu, exec, tcdm);
        }
        let exec = self.current.as_mut().expect("checked above");
        let x = match exec.latch_x.take() {
            Some(v) => v,
            None if reads >= 1 => tcdm.read_f32(exec.agus[0].address()),
            None => 0.0,
        };
        let y = if reads >= 2 {
            match exec.latch_y.take() {
                Some(v) => v,
                None => tcdm.read_f32(exec.agus[1].address()),
            }
        } else {
            self.fpu.register()
        };
        exec.latch_init = None;
        exec.latch_init_wide = None;
        self.finish_iteration(x, y, plan.at_store, tcdm);
    }

    /// Executes the ready iteration and advances the machine — shared
    /// tail of the planned commit paths.
    #[inline]
    fn finish_iteration(&mut self, x: f32, y: f32, at_store: bool, tcdm: &mut Tcdm) {
        let exec = self.current.as_mut().expect("iteration in flight");
        let cmd = exec.config.command;
        let index = exec.counters.index_counter();
        let out = self.fpu.execute(cmd.fpu_op(), x, y, index);
        self.flops += cmd.flops_per_element();
        self.active_cycles += 1;
        if at_store {
            let addr = exec.agus[2].address();
            match cmd.store_source() {
                StoreSource::Element => {
                    tcdm.write_f32(addr, out.unwrap_or(0.0));
                }
                StoreSource::Accumulator => {
                    if exec.config.wide_store {
                        write_spill(tcdm, addr, &self.fpu.store_accumulator_wide());
                    } else {
                        tcdm.write_f32(addr, self.fpu.store_accumulator());
                    }
                }
                StoreSource::CompareValue => {
                    let v = match cmd {
                        Command::Min => self.fpu.store_min(),
                        _ => self.fpu.store_max(),
                    };
                    tcdm.write_f32(addr, v);
                }
                StoreSource::CompareIndex => {
                    let idx = match cmd {
                        Command::ArgMin => self.fpu.argmin(),
                        _ => self.fpu.argmax(),
                    };
                    tcdm.write_u32(addr, idx.unwrap_or(u32::MAX));
                }
            }
        }
        match exec.counters.advance() {
            Some(level) => {
                for agu in &mut exec.agus {
                    agu.advance(level);
                }
                exec.tick_events();
            }
            None => {
                self.current = None;
                self.commands_completed += 1;
                if let Some(next) = self.staged.take() {
                    self.fpu.set_register(next.register);
                    self.current = Some(Execution::new(next));
                }
            }
        }
    }

    /// Runs this engine as the *sole* TCDM master for up to
    /// `max_cycles` cycles — the burst fast path of the cluster
    /// simulator. Returns the cycles advanced and how many of them
    /// issued TCDM requests; the burst ends early when the engine
    /// retires its last command (current and staged).
    ///
    /// Bit-exact with the per-cycle `desired_accesses`/`arbitrate`/
    /// `commit` protocol: with a single master, arbitration is
    /// deterministic (the first same-bank request wins), so steady-state
    /// MAC streams whose remaining iterations are provably conflict-free
    /// — precomputed from the level-0 AGU strides and the bank count —
    /// are executed as batched TCDM slices fed straight into the FPU,
    /// while loop boundaries, init/store events, latched operands and
    /// potential same-bank conflicts fall back to the cycle-accurate
    /// path. All counters (engine, TCDM, interconnect, round-robin
    /// state) advance by exactly what per-cycle stepping would produce.
    pub fn burst_sole(
        &mut self,
        tcdm: &mut Tcdm,
        interconnect: &mut Interconnect,
        master: MasterId,
        max_cycles: u64,
    ) -> BurstOutcome {
        let mut out = BurstOutcome::default();
        while out.cycles < max_cycles && self.current.is_some() {
            let streak = self.streak_len(tcdm, max_cycles - out.cycles);
            if streak >= MIN_STREAK {
                self.run_streak(tcdm, interconnect, master, streak);
                out.cycles += u64::from(streak);
                out.accessed_cycles += u64::from(streak);
                continue;
            }
            // Cycle-accurate fallback (events, conflicts, odd commands).
            let plan = self.plan_cycle();
            let list = plan.accesses();
            let mut granted = [false; 4];
            interconnect.arbitrate_sole(master, list.addrs(), &mut granted[..list.len()]);
            let accessed = !list.is_empty();
            self.commit_planned(&plan, &granted[..plan.accesses().len()], tcdm);
            out.cycles += 1;
            out.accessed_cycles += u64::from(accessed);
        }
        out
    }

    /// Length of the provably conflict-free pure-MAC run the burst may
    /// execute in one batch: steady-state (no latches, no init/store
    /// events, level-0 advances only) with either a register operand
    /// (single stream, never self-conflicting) or two memory streams
    /// whose bank distance is invariant (equal level-0 bank rotation)
    /// and non-zero.
    fn streak_len(&self, tcdm: &Tcdm, cap: u64) -> u32 {
        let Some(exec) = &self.current else {
            return 0;
        };
        let op = exec.config.command.fpu_op();
        if op != FpuOp::Mac
            || exec.latch_x.is_some()
            || exec.latch_y.is_some()
            || exec.latch_init.is_some()
            || exec.latch_init_wide.is_some()
        {
            return 0;
        }
        let run = exec.counters.level0_run_len();
        if run < MIN_STREAK {
            return 0;
        }
        let reads = exec.config.command.reads_per_element();
        if reads == 2 {
            let banks = tcdm.config().banks;
            let sx = exec.agus[0].stride(0);
            let sy = exec.agus[1].stride(0);
            let period = 4 * banks as i64;
            if (i64::from(sx) - i64::from(sy)).rem_euclid(period) != 0 {
                return 0; // bank distance varies: conflicts not precomputable
            }
            let cfg = tcdm.config();
            if cfg.bank_of(exec.agus[0].address()) == cfg.bank_of(exec.agus[1].address()) {
                return 0; // would self-conflict every cycle
            }
        }
        run.min(cap.min(u64::from(u32::MAX)) as u32)
    }

    /// Executes a precomputed conflict-free MAC streak of `n`
    /// iterations as batched slice reads feeding the FPU directly.
    fn run_streak(
        &mut self,
        tcdm: &mut Tcdm,
        interconnect: &mut Interconnect,
        master: MasterId,
        n: u32,
    ) {
        let exec = self.current.as_mut().expect("checked by streak_len");
        let reads = exec.config.command.reads_per_element();
        let x0 = exec.agus[0].address();
        let sx = exec.agus[0].stride(0);
        let mut xs = [0f32; STREAK_CHUNK];
        let mut ys = [0f32; STREAK_CHUNK];
        let mut done = 0u32;
        if reads == 2 {
            let y0 = exec.agus[1].address();
            let sy = exec.agus[1].stride(0);
            while done < n {
                let m = ((n - done) as usize).min(STREAK_CHUNK);
                fetch_stream(
                    tcdm,
                    x0.wrapping_add(sx.wrapping_mul(done as i32) as u32),
                    sx,
                    &mut xs[..m],
                );
                fetch_stream(
                    tcdm,
                    y0.wrapping_add(sy.wrapping_mul(done as i32) as u32),
                    sy,
                    &mut ys[..m],
                );
                self.fpu.mac_slices(&xs[..m], &ys[..m]);
                done += m as u32;
            }
            interconnect.grant_stream(master, y0, sy, n);
        } else {
            while done < n {
                let m = ((n - done) as usize).min(STREAK_CHUNK);
                fetch_stream(
                    tcdm,
                    x0.wrapping_add(sx.wrapping_mul(done as i32) as u32),
                    sx,
                    &mut xs[..m],
                );
                self.fpu.mac_register_slice(&xs[..m]);
                done += m as u32;
            }
        }
        interconnect.grant_stream(master, x0, sx, n);
        // Advance the nest and all three AGUs by n level-0 iterations.
        exec.counters.advance_level0_by(n);
        debug_assert!(exec.init_countdown >= u64::from(n) && exec.store_countdown >= u64::from(n));
        exec.init_countdown -= u64::from(n);
        exec.store_countdown -= u64::from(n);
        for agu in &mut exec.agus {
            agu.advance_by(0, n);
        }
        self.flops += u64::from(n) * exec.config.command.flops_per_element();
        self.active_cycles += u64::from(n);
    }

    /// Flops retired by this engine.
    #[must_use]
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Cycles in which an iteration executed.
    #[must_use]
    pub fn active_cycles(&self) -> u64 {
        self.active_cycles
    }

    /// Cycles lost to banking-conflict stalls.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Commands retired.
    #[must_use]
    pub fn commands_completed(&self) -> u64 {
        self.commands_completed
    }

    /// Read access to the FPU (precision experiments).
    #[must_use]
    pub fn fpu(&self) -> &FpuDatapath {
        &self.fpu
    }

    /// Resets the performance counters (not the execution state).
    pub fn reset_counters(&mut self) {
        self.flops = 0;
        self.active_cycles = 0;
        self.stall_cycles = 0;
        self.commands_completed = 0;
    }
}

/// Applies the accumulator (re-)initialisation of the current init
/// event: zero, rounded-`f32` load, or full wide-spill restore. Reads
/// from the operand latch when one is held (the stall-retry paths) and
/// straight from the TCDM otherwise (the all-granted fast path); both
/// cost the same TCDM read total per init event.
fn apply_accu_init(fpu: &mut FpuDatapath, exec: &Execution, tcdm: &mut Tcdm) {
    match exec.config.accu_init {
        AccuInit::Zero => fpu.init_accumulator(None),
        AccuInit::Memory => {
            let v = match exec.latch_init {
                Some(v) => v,
                None => tcdm.read_f32(exec.agus[2].address()),
            };
            fpu.init_accumulator(Some(v));
        }
        AccuInit::Wide => {
            let words = match exec.latch_init_wide {
                Some(w) => w,
                None => read_spill(tcdm, exec.agus[2].address()),
            };
            fpu.init_accumulator_wide(&words);
        }
    }
}

/// Reads one wide-accumulator spill image (a single arbitration event,
/// [`SPILL_WORDS`] counted TCDM reads).
fn read_spill(tcdm: &mut Tcdm, base: u32) -> [u32; SPILL_WORDS] {
    let mut words = [0u32; SPILL_WORDS];
    for (i, w) in words.iter_mut().enumerate() {
        *w = tcdm.read_u32(base + 4 * i as u32);
    }
    words
}

/// Writes one wide-accumulator spill image (a single arbitration event,
/// [`SPILL_WORDS`] counted TCDM writes).
fn write_spill(tcdm: &mut Tcdm, base: u32, words: &[u32; SPILL_WORDS]) {
    for (i, &w) in words.iter().enumerate() {
        tcdm.write_u32(base + 4 * i as u32, w);
    }
}

/// Reads `out.len()` elements of a strided stream (counted), using the
/// batched slice accessor for the contiguous stride-4 common case.
fn fetch_stream(tcdm: &mut Tcdm, base: u32, stride: i32, out: &mut [f32]) {
    if stride == 4 {
        tcdm.read_f32_into(base, out);
    } else {
        let mut a = base;
        for o in out.iter_mut() {
            *o = tcdm.read_f32(a);
            a = a.wrapping_add(stride as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntx_isa::{AguConfig, LoopNest, OperandSelect};

    fn mac() -> Command {
        Command::Mac {
            operand: OperandSelect::Memory,
        }
    }

    fn run_engine(engine: &mut NtxEngine, tcdm: &mut Tcdm, max_cycles: u64) -> u64 {
        let mut cycles = 0;
        while engine.is_busy() {
            let n = engine.desired_accesses().len();
            engine.commit(&vec![true; n], tcdm);
            cycles += 1;
            assert!(cycles <= max_cycles, "engine did not finish");
        }
        cycles
    }

    #[test]
    fn dot_product() {
        let mut tcdm = Tcdm::default();
        for i in 0..8u32 {
            tcdm.write_f32(4 * i, (i + 1) as f32);
            tcdm.write_f32(0x100 + 4 * i, 1.0);
        }
        let cfg = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::vector(8))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        assert_eq!(engine.offload(&cfg), EngineStatus::Accepted);
        let cycles = run_engine(&mut engine, &mut tcdm, 100);
        assert_eq!(cycles, 8); // one iteration per cycle
        assert_eq!(tcdm.read_f32(0x200), 36.0);
        assert_eq!(engine.flops(), 16);
        assert_eq!(engine.commands_completed(), 1);
    }

    #[test]
    fn axpy_with_register_operand() {
        // y = a*x + y via MacReg with memory accumulator init.
        let mut tcdm = Tcdm::default();
        for i in 0..4u32 {
            tcdm.write_f32(4 * i, (i + 1) as f32); // x
            tcdm.write_f32(0x100 + 4 * i, 10.0); // y
        }
        let cfg = NtxConfig::builder()
            .command(Command::Mac {
                operand: OperandSelect::Register,
            })
            .register(2.0)
            .loops(LoopNest::nested(&[1, 4]).with_levels(1, 1))
            .agu(0, AguConfig::stream(0, 4))
            .agu(2, AguConfig::new(0x100, [0, 4, 0, 0, 0]))
            .accu_init(ntx_isa::AccuInit::Memory)
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        engine.offload(&cfg);
        run_engine(&mut engine, &mut tcdm, 100);
        for i in 0..4u32 {
            assert_eq!(
                tcdm.read_f32(0x100 + 4 * i),
                10.0 + 2.0 * (i + 1) as f32,
                "element {i}"
            );
        }
    }

    #[test]
    fn elementwise_relu() {
        let mut tcdm = Tcdm::default();
        let input = [-1.0f32, 2.0, -3.0, 4.0];
        for (i, &v) in input.iter().enumerate() {
            tcdm.write_f32(4 * i as u32, v);
        }
        let cfg = NtxConfig::builder()
            .command(Command::Relu)
            .loops(LoopNest::elementwise(4))
            .agu(0, AguConfig::stream(0, 4))
            .agu(2, AguConfig::stream(0x100, 4))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        engine.offload(&cfg);
        run_engine(&mut engine, &mut tcdm, 100);
        let got: Vec<f32> = (0..4).map(|i| tcdm.read_f32(0x100 + 4 * i)).collect();
        assert_eq!(got, vec![0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn argmax_writes_index_bits() {
        let mut tcdm = Tcdm::default();
        for (i, &v) in [0.5f32, 9.0, 3.0].iter().enumerate() {
            tcdm.write_f32(4 * i as u32, v);
        }
        let cfg = NtxConfig::builder()
            .command(Command::ArgMax)
            .loops(LoopNest::vector(3))
            .agu(0, AguConfig::stream(0, 4))
            .agu(2, AguConfig::fixed(0x80))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        engine.offload(&cfg);
        run_engine(&mut engine, &mut tcdm, 100);
        assert_eq!(tcdm.read_u32(0x80), 1);
    }

    #[test]
    fn memset_via_set() {
        let mut tcdm = Tcdm::default();
        let cfg = NtxConfig::builder()
            .command(Command::Set)
            .register(7.5)
            .loops(LoopNest::elementwise(5))
            .agu(2, AguConfig::stream(0x40, 4))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        engine.offload(&cfg);
        run_engine(&mut engine, &mut tcdm, 100);
        for i in 0..5 {
            assert_eq!(tcdm.read_f32(0x40 + 4 * i), 7.5);
        }
        assert_eq!(engine.flops(), 0);
    }

    #[test]
    fn stall_on_denied_grant() {
        let mut tcdm = Tcdm::default();
        let cfg = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::vector(2))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        engine.offload(&cfg);
        // Deny the first cycle entirely.
        let n = engine.desired_accesses().len();
        engine.commit(&vec![false; n], &mut tcdm);
        assert_eq!(engine.stall_cycles(), 1);
        assert_eq!(engine.active_cycles(), 0);
        // Partial grants also stall (all-or-nothing iteration issue).
        let mut grants = vec![true; n];
        grants[0] = false;
        engine.commit(&grants, &mut tcdm);
        assert_eq!(engine.stall_cycles(), 2);
        run_engine(&mut engine, &mut tcdm, 100);
        assert_eq!(engine.active_cycles(), 2);
    }

    #[test]
    fn double_buffering_accepts_one_staged_command() {
        let mut tcdm = Tcdm::default();
        let cfg = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::vector(4))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        assert_eq!(engine.offload(&cfg), EngineStatus::Accepted);
        assert_eq!(engine.offload(&cfg), EngineStatus::Accepted); // staged
        assert_eq!(engine.offload(&cfg), EngineStatus::Backpressure);
        // Drain both commands.
        let mut cycles = 0;
        while engine.is_busy() {
            let n = engine.desired_accesses().len();
            engine.commit(&vec![true; n], &mut tcdm);
            cycles += 1;
            assert!(cycles < 100);
        }
        assert_eq!(engine.commands_completed(), 2);
    }

    #[test]
    fn burst_sole_matches_per_cycle_protocol() {
        use ntx_mem::{BankRequest, Interconnect};
        let configs = [
            // Conflict-free streak: dot product over distinct banks.
            NtxConfig::builder()
                .command(mac())
                .loops(LoopNest::vector(100))
                .agu(0, AguConfig::stream(0, 4))
                .agu(1, AguConfig::stream(0x804, 4))
                .agu(2, AguConfig::fixed(0x200))
                .build()
                .unwrap(),
            // Same-bank x/y: self-conflicts every cycle (no streak).
            NtxConfig::builder()
                .command(mac())
                .loops(LoopNest::vector(20))
                .agu(0, AguConfig::stream(0, 4))
                .agu(1, AguConfig::stream(0x800, 4))
                .agu(2, AguConfig::fixed(0x200))
                .build()
                .unwrap(),
            // Register-operand MAC with memory accumulator init.
            NtxConfig::builder()
                .command(Command::Mac {
                    operand: OperandSelect::Register,
                })
                .register(1.5)
                .loops(LoopNest::nested(&[16, 4]).with_levels(1, 1))
                .agu(0, AguConfig::stream(0x40, 4))
                .agu(2, AguConfig::new(0x900, [0, 4, 0, 0, 0]))
                .accu_init(AccuInit::Memory)
                .build()
                .unwrap(),
            // Elementwise store cadence (no streak, store every cycle).
            NtxConfig::builder()
                .command(Command::Relu)
                .loops(LoopNest::elementwise(30))
                .agu(0, AguConfig::stream(0, 4))
                .agu(2, AguConfig::stream(0xc00, 4))
                .build()
                .unwrap(),
            // Strided walk with unequal rotations (streak rejected).
            NtxConfig::builder()
                .command(mac())
                .loops(LoopNest::nested(&[9, 5]).with_levels(2, 2))
                .agu(0, AguConfig::new(0, [12, 4, 0, 0, 0]))
                .agu(1, AguConfig::new(0x600, [4, -32, 0, 0, 0]))
                .agu(2, AguConfig::new(0xa00, [0, 0, 4, 0, 0]))
                .build()
                .unwrap(),
            // Wide spill/restore per row (split-K protocol shape).
            NtxConfig::builder()
                .command(mac())
                .loops(LoopNest::nested(&[12, 3]).with_levels(1, 1))
                .agu(0, AguConfig::stream(0, 4))
                .agu(1, AguConfig::stream(0x404, 4))
                .agu(2, AguConfig::new(0x1000, [0, 88, 0, 0, 0]))
                .accu_init(AccuInit::Wide)
                .wide_store(true)
                .build()
                .unwrap(),
        ];
        let image: Vec<f32> = (0..2048).map(|i| ((i * 13 % 31) as f32) - 15.0).collect();
        let mut ref_tcdm = Tcdm::default();
        let mut fast_tcdm = Tcdm::default();
        ref_tcdm.poke_f32_from(0, &image);
        fast_tcdm.poke_f32_from(0, &image);
        let mut ref_ic = Interconnect::new(32);
        let mut fast_ic = Interconnect::new(32);
        let mut reference = NtxEngine::new();
        let mut fast = NtxEngine::new();
        let me = MasterId::Ntx(0);
        for cfg in &configs {
            reference.offload(cfg);
            fast.offload(cfg);
            // Reference: full desired/arbitrate/commit cycles.
            let mut ref_cycles = 0u64;
            while reference.is_busy() {
                let list = reference.desired_accesses();
                let reqs: Vec<BankRequest> = list
                    .addrs()
                    .iter()
                    .map(|&addr| BankRequest { master: me, addr })
                    .collect();
                let grants = ref_ic.arbitrate(&reqs);
                reference.commit(&grants, &mut ref_tcdm);
                ref_cycles += 1;
                assert!(ref_cycles < 10_000);
            }
            // Fast path: burst with a small cap to exercise resumption.
            let mut cycles = 0u64;
            while fast.is_busy() {
                let out = fast.burst_sole(&mut fast_tcdm, &mut fast_ic, me, 37);
                assert!(out.cycles > 0);
                cycles += out.cycles;
                assert!(cycles < 10_000);
            }
            assert_eq!(cycles, ref_cycles, "cycles for {:?}", cfg.command);
            assert_eq!(fast.flops(), reference.flops());
            assert_eq!(fast.active_cycles(), reference.active_cycles());
            assert_eq!(fast.stall_cycles(), reference.stall_cycles());
            assert_eq!(fast.commands_completed(), reference.commands_completed());
            assert_eq!(fast_ic.requests(), ref_ic.requests());
            assert_eq!(fast_ic.grants(), ref_ic.grants());
            assert_eq!(fast_ic.conflicts(), ref_ic.conflicts());
            assert_eq!(
                (fast_tcdm.reads(), fast_tcdm.writes()),
                (ref_tcdm.reads(), ref_tcdm.writes()),
                "tcdm counters for {:?}",
                cfg.command
            );
            for a in (0..8192u32).step_by(4) {
                assert_eq!(
                    fast_tcdm.peek_u32(a),
                    ref_tcdm.peek_u32(a),
                    "tcdm word {a:#x} after {:?}",
                    cfg.command
                );
            }
        }
    }

    #[test]
    fn wide_spill_resumes_reductions_bit_exactly() {
        // An 8-element dot product whose running sum transiently holds
        // 9e14 + 3 at the pass boundary: any f32 rounding there loses
        // the small terms, so only the wide-chained split can match the
        // unsplit oracle (which cancels back down to exactly 6.0).
        let xs = [3.0e7f32, 1.0, 0.25, 0.5, -3.0e7, 2.0, 0.125, 4.0];
        let ys = [3.0e7f32, 1.0, 4.0, 2.0, 3.0e7, 0.5, 8.0, 0.25];
        let mut tcdm = Tcdm::default();
        tcdm.poke_f32_from(0, &xs);
        tcdm.poke_f32_from(0x100, &ys);
        let pass = |lo: u32, init: AccuInit, wide: bool, c_addr: u32| {
            NtxConfig::builder()
                .command(mac())
                .loops(LoopNest::vector(4))
                .agu(0, AguConfig::stream(16 * lo, 4))
                .agu(1, AguConfig::stream(0x100 + 16 * lo, 4))
                .agu(2, AguConfig::fixed(c_addr))
                .accu_init(init)
                .wide_store(wide)
                .build()
                .unwrap()
        };
        // Oracle: the unsplit reduction.
        let mut engine = NtxEngine::new();
        engine.offload(
            &NtxConfig::builder()
                .command(mac())
                .loops(LoopNest::vector(8))
                .agu(0, AguConfig::stream(0, 4))
                .agu(1, AguConfig::stream(0x100, 4))
                .agu(2, AguConfig::fixed(0x600))
                .build()
                .unwrap(),
        );
        run_engine(&mut engine, &mut tcdm, 100);
        // Split into two passes chained through the wide spill image;
        // the final pass stores the rounded f32 over the image base.
        let mut wide = NtxEngine::new();
        wide.offload(&pass(0, AccuInit::Zero, true, 0x700));
        run_engine(&mut wide, &mut tcdm, 100);
        wide.offload(&pass(1, AccuInit::Wide, false, 0x700));
        run_engine(&mut wide, &mut tcdm, 100);
        // Split chained through the rounded f32 (read-modify-write).
        let mut lossy = NtxEngine::new();
        lossy.offload(&pass(0, AccuInit::Zero, false, 0x780));
        run_engine(&mut lossy, &mut tcdm, 100);
        lossy.offload(&pass(1, AccuInit::Memory, false, 0x780));
        run_engine(&mut lossy, &mut tcdm, 100);
        let unsplit = tcdm.read_u32(0x600);
        assert_eq!(f32::from_bits(unsplit), 6.0, "exact sum");
        assert_eq!(tcdm.read_u32(0x700), unsplit, "wide-chained split differs");
        assert_ne!(tcdm.read_u32(0x780), unsplit, "f32 chaining must round");
    }

    #[test]
    fn register_interface_offload_matches_driver() {
        // Program the engine through raw register writes like the core.
        let mut tcdm = Tcdm::default();
        for i in 0..4u32 {
            tcdm.write_f32(4 * i, 2.0);
            tcdm.write_f32(0x100 + 4 * i, 3.0);
        }
        let cfg = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::vector(4))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let mut image = RegFile::new();
        image.load_config(&cfg);
        let mut engine = NtxEngine::new();
        for off in (0..ntx_isa::NTX_REGFILE_BYTES).step_by(4) {
            if off == RegOffset::COMMAND || off == RegOffset::STATUS {
                continue;
            }
            let v = image.read(off, false).unwrap();
            assert_eq!(engine.write_reg(off, v).unwrap(), EngineStatus::Accepted);
        }
        assert_eq!(engine.read_reg(RegOffset::STATUS).unwrap(), 0);
        engine
            .write_reg(RegOffset::COMMAND, cfg.command.encode())
            .unwrap();
        assert_eq!(engine.read_reg(RegOffset::STATUS).unwrap(), 1);
        run_engine(&mut engine, &mut tcdm, 100);
        assert_eq!(tcdm.read_f32(0x200), 24.0);
    }
}
