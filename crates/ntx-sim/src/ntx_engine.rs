//! The execution engine of one NTX co-processor (Fig. 2).
//!
//! Couples the ISA-level descriptors (loops, AGUs, commands) to the FPU
//! datapath and walks the offloaded loop nest at one innermost iteration
//! per cycle. The engine interacts with the cluster through a
//! two-phase-per-cycle protocol:
//!
//! 1. [`NtxEngine::desired_accesses`] lists the TCDM accesses of the
//!    current iteration (operand reads, accumulator-init read, store
//!    write);
//! 2. the cluster arbitrates all masters and calls
//!    [`NtxEngine::commit`] with the grant flags — all granted executes
//!    the iteration, any denial is a banking-conflict stall.
//!
//! Command offloading uses the double-buffered register interface of
//! §II-E: one command executes while the next is staged; a command
//! write while the buffer is full reports
//! [`EngineStatus::Backpressure`], which stalls the writing core.

use ntx_fpu::FpuDatapath;
use ntx_isa::{
    AccuInit, Agu, Command, ConfigError, LoopCounters, NtxConfig, RegFile, RegOffset, StoreSource,
    WriteEffect,
};
use ntx_mem::Tcdm;

/// Outcome of a register write as seen by the offloading core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStatus {
    /// The write was accepted.
    Accepted,
    /// The command buffer is full; the core must retry (bus stall).
    Backpressure,
}

#[derive(Debug, Clone)]
struct Execution {
    config: NtxConfig,
    counters: LoopCounters,
    agus: [Agu; 3],
    /// Operand latches (the depth-2 FIFOs of Fig. 2): a granted read is
    /// kept across stall cycles so only missing operands are re-
    /// requested — this is what lets two same-bank streams make
    /// progress at half rate instead of deadlocking.
    latch_x: Option<f32>,
    latch_y: Option<f32>,
    latch_init: Option<f32>,
}

impl Execution {
    fn new(config: NtxConfig) -> Self {
        Self {
            config,
            counters: LoopCounters::new(config.loops),
            agus: [
                Agu::new(config.agus[0]),
                Agu::new(config.agus[1]),
                Agu::new(config.agus[2]),
            ],
            latch_x: None,
            latch_y: None,
            latch_init: None,
        }
    }

    fn needs_x(&self) -> bool {
        self.config.command.reads_per_element() >= 1 && self.latch_x.is_none()
    }

    fn needs_y(&self) -> bool {
        self.config.command.reads_per_element() >= 2 && self.latch_y.is_none()
    }

    fn needs_init(&self) -> bool {
        self.config.command.is_reduction()
            && self.config.accu_init == AccuInit::Memory
            && self.counters.at_init()
            && self.latch_init.is_none()
    }

    fn needs_store(&self) -> bool {
        self.counters.at_store()
    }
}

/// One NTX co-processor: register interface, controller, loop/AGU state
/// and FPU.
#[derive(Debug, Clone)]
pub struct NtxEngine {
    regfile: RegFile,
    current: Option<Execution>,
    staged: Option<NtxConfig>,
    fpu: FpuDatapath,
    // Counters.
    flops: u64,
    active_cycles: u64,
    stall_cycles: u64,
    commands_completed: u64,
}

impl Default for NtxEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl NtxEngine {
    /// Creates an idle engine.
    #[must_use]
    pub fn new() -> Self {
        Self {
            regfile: RegFile::new(),
            current: None,
            staged: None,
            fpu: FpuDatapath::new(),
            flops: 0,
            active_cycles: 0,
            stall_cycles: 0,
            commands_completed: 0,
        }
    }

    /// True while a command is executing or staged.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.current.is_some() || self.staged.is_some()
    }

    /// Writes a configuration register (the §II-E offload path).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] for bad offsets or an invalid committed
    /// configuration.
    pub fn write_reg(&mut self, offset: u32, value: u32) -> Result<EngineStatus, ConfigError> {
        if offset == RegOffset::COMMAND && self.staged.is_some() && self.current.is_some() {
            return Ok(EngineStatus::Backpressure);
        }
        match self.regfile.write(offset, value)? {
            WriteEffect::Staged => Ok(EngineStatus::Accepted),
            WriteEffect::Commit(cfg) => {
                self.accept_command(*cfg);
                Ok(EngineStatus::Accepted)
            }
        }
    }

    /// Reads a configuration register; the status register reflects the
    /// live busy state.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError::RegisterOffsetOutOfRange`].
    pub fn read_reg(&self, offset: u32) -> Result<u32, ConfigError> {
        self.regfile.read(offset, self.is_busy())
    }

    /// Offloads a full configuration through the driver path (bypasses
    /// the register write sequence; the cluster accounts the cycles).
    /// Returns `Backpressure` if both command slots are occupied.
    pub fn offload(&mut self, config: &NtxConfig) -> EngineStatus {
        if self.staged.is_some() && self.current.is_some() {
            return EngineStatus::Backpressure;
        }
        self.regfile.load_config(config);
        self.accept_command(*config);
        EngineStatus::Accepted
    }

    fn accept_command(&mut self, config: NtxConfig) {
        if self.current.is_none() {
            self.fpu.set_register(config.register);
            self.current = Some(Execution::new(config));
        } else {
            debug_assert!(self.staged.is_none(), "caller checked backpressure");
            self.staged = Some(config);
        }
    }

    /// TCDM accesses needed by the current iteration this cycle:
    /// `(address, is_write)` pairs, in the fixed order *init read, x
    /// read, y read, store write*. Already-latched operands are not
    /// re-requested. Empty when idle.
    #[must_use]
    pub fn desired_accesses(&self) -> Vec<(u32, bool)> {
        let Some(exec) = &self.current else {
            return Vec::new();
        };
        let mut v = Vec::with_capacity(4);
        if exec.needs_init() {
            v.push((exec.agus[2].address(), false));
        }
        if exec.needs_x() {
            v.push((exec.agus[0].address(), false));
        }
        if exec.needs_y() {
            v.push((exec.agus[1].address(), false));
        }
        if exec.needs_store() {
            v.push((exec.agus[2].address(), true));
        }
        v
    }

    /// Consumes this cycle's grants: granted reads are latched; when all
    /// operands are present and the store grant (if needed) arrived, the
    /// iteration executes. Anything missing is a conflict-stall cycle
    /// and the missing accesses are retried next cycle.
    /// `granted` must parallel [`Self::desired_accesses`].
    pub fn commit(&mut self, granted: &[bool], tcdm: &mut Tcdm) {
        let Some(exec) = &mut self.current else {
            return;
        };
        let mut gi = 0;
        let mut take = |flag: bool| {
            if flag {
                let g = granted.get(gi).copied().unwrap_or(false);
                gi += 1;
                g
            } else {
                false
            }
        };
        // Latch granted reads (same order as desired_accesses).
        let needs_init = exec.needs_init();
        if take(needs_init) {
            exec.latch_init = Some(tcdm.read_f32(exec.agus[2].address()));
        }
        let needs_x = exec.needs_x();
        if take(needs_x) {
            exec.latch_x = Some(tcdm.read_f32(exec.agus[0].address()));
        }
        let needs_y = exec.needs_y();
        if take(needs_y) {
            exec.latch_y = Some(tcdm.read_f32(exec.agus[1].address()));
        }
        let store_needed = exec.needs_store();
        let store_granted = take(store_needed);
        // Ready when nothing is missing any more.
        let cmd = exec.config.command;
        let reads = cmd.reads_per_element();
        let init_pending = cmd.is_reduction()
            && exec.config.accu_init == AccuInit::Memory
            && exec.counters.at_init()
            && exec.latch_init.is_none();
        let reads_ready = !init_pending
            && (reads < 1 || exec.latch_x.is_some())
            && (reads < 2 || exec.latch_y.is_some());
        if !reads_ready || (store_needed && !store_granted) {
            self.stall_cycles += 1;
            return;
        }
        // Accumulator (re-)initialisation at the init level.
        if cmd.is_reduction() && exec.counters.at_init() {
            let init = match exec.config.accu_init {
                AccuInit::Zero => None,
                AccuInit::Memory => exec.latch_init,
            };
            self.fpu.init_accumulator(init);
        }
        let x = exec.latch_x.take().unwrap_or(0.0);
        let y = if reads >= 2 {
            exec.latch_y.take().expect("checked by reads_ready")
        } else {
            self.fpu.register()
        };
        exec.latch_init = None;
        // Execute.
        let index = exec.counters.index_counter();
        let out = self.fpu.execute(cmd.fpu_op(), x, y, index);
        self.flops += cmd.flops_per_element();
        self.active_cycles += 1;
        // Write-back.
        if exec.counters.at_store() {
            let addr = exec.agus[2].address();
            match cmd.store_source() {
                StoreSource::Element => {
                    tcdm.write_f32(addr, out.unwrap_or(0.0));
                }
                StoreSource::Accumulator => {
                    tcdm.write_f32(addr, self.fpu.store_accumulator());
                }
                StoreSource::CompareValue => {
                    let v = match cmd {
                        Command::Min => self.fpu.store_min(),
                        _ => self.fpu.store_max(),
                    };
                    tcdm.write_f32(addr, v);
                }
                StoreSource::CompareIndex => {
                    let idx = match cmd {
                        Command::ArgMin => self.fpu.argmin(),
                        _ => self.fpu.argmax(),
                    };
                    tcdm.write_u32(addr, idx.unwrap_or(u32::MAX));
                }
            }
        }
        // Advance the cascade and the AGUs.
        match exec.counters.advance() {
            Some(level) => {
                for agu in &mut exec.agus {
                    agu.advance(level);
                }
            }
            None => {
                self.current = None;
                self.commands_completed += 1;
                if let Some(next) = self.staged.take() {
                    self.fpu.set_register(next.register);
                    self.current = Some(Execution::new(next));
                }
            }
        }
    }

    /// Flops retired by this engine.
    #[must_use]
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Cycles in which an iteration executed.
    #[must_use]
    pub fn active_cycles(&self) -> u64 {
        self.active_cycles
    }

    /// Cycles lost to banking-conflict stalls.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Commands retired.
    #[must_use]
    pub fn commands_completed(&self) -> u64 {
        self.commands_completed
    }

    /// Read access to the FPU (precision experiments).
    #[must_use]
    pub fn fpu(&self) -> &FpuDatapath {
        &self.fpu
    }

    /// Resets the performance counters (not the execution state).
    pub fn reset_counters(&mut self) {
        self.flops = 0;
        self.active_cycles = 0;
        self.stall_cycles = 0;
        self.commands_completed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntx_isa::{AguConfig, LoopNest, OperandSelect};

    fn mac() -> Command {
        Command::Mac {
            operand: OperandSelect::Memory,
        }
    }

    fn run_engine(engine: &mut NtxEngine, tcdm: &mut Tcdm, max_cycles: u64) -> u64 {
        let mut cycles = 0;
        while engine.is_busy() {
            let n = engine.desired_accesses().len();
            engine.commit(&vec![true; n], tcdm);
            cycles += 1;
            assert!(cycles <= max_cycles, "engine did not finish");
        }
        cycles
    }

    #[test]
    fn dot_product() {
        let mut tcdm = Tcdm::default();
        for i in 0..8u32 {
            tcdm.write_f32(4 * i, (i + 1) as f32);
            tcdm.write_f32(0x100 + 4 * i, 1.0);
        }
        let cfg = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::vector(8))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        assert_eq!(engine.offload(&cfg), EngineStatus::Accepted);
        let cycles = run_engine(&mut engine, &mut tcdm, 100);
        assert_eq!(cycles, 8); // one iteration per cycle
        assert_eq!(tcdm.read_f32(0x200), 36.0);
        assert_eq!(engine.flops(), 16);
        assert_eq!(engine.commands_completed(), 1);
    }

    #[test]
    fn axpy_with_register_operand() {
        // y = a*x + y via MacReg with memory accumulator init.
        let mut tcdm = Tcdm::default();
        for i in 0..4u32 {
            tcdm.write_f32(4 * i, (i + 1) as f32); // x
            tcdm.write_f32(0x100 + 4 * i, 10.0); // y
        }
        let cfg = NtxConfig::builder()
            .command(Command::Mac {
                operand: OperandSelect::Register,
            })
            .register(2.0)
            .loops(LoopNest::nested(&[1, 4]).with_levels(1, 1))
            .agu(0, AguConfig::stream(0, 4))
            .agu(2, AguConfig::new(0x100, [0, 4, 0, 0, 0]))
            .accu_init(ntx_isa::AccuInit::Memory)
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        engine.offload(&cfg);
        run_engine(&mut engine, &mut tcdm, 100);
        for i in 0..4u32 {
            assert_eq!(
                tcdm.read_f32(0x100 + 4 * i),
                10.0 + 2.0 * (i + 1) as f32,
                "element {i}"
            );
        }
    }

    #[test]
    fn elementwise_relu() {
        let mut tcdm = Tcdm::default();
        let input = [-1.0f32, 2.0, -3.0, 4.0];
        for (i, &v) in input.iter().enumerate() {
            tcdm.write_f32(4 * i as u32, v);
        }
        let cfg = NtxConfig::builder()
            .command(Command::Relu)
            .loops(LoopNest::elementwise(4))
            .agu(0, AguConfig::stream(0, 4))
            .agu(2, AguConfig::stream(0x100, 4))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        engine.offload(&cfg);
        run_engine(&mut engine, &mut tcdm, 100);
        let got: Vec<f32> = (0..4).map(|i| tcdm.read_f32(0x100 + 4 * i)).collect();
        assert_eq!(got, vec![0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn argmax_writes_index_bits() {
        let mut tcdm = Tcdm::default();
        for (i, &v) in [0.5f32, 9.0, 3.0].iter().enumerate() {
            tcdm.write_f32(4 * i as u32, v);
        }
        let cfg = NtxConfig::builder()
            .command(Command::ArgMax)
            .loops(LoopNest::vector(3))
            .agu(0, AguConfig::stream(0, 4))
            .agu(2, AguConfig::fixed(0x80))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        engine.offload(&cfg);
        run_engine(&mut engine, &mut tcdm, 100);
        assert_eq!(tcdm.read_u32(0x80), 1);
    }

    #[test]
    fn memset_via_set() {
        let mut tcdm = Tcdm::default();
        let cfg = NtxConfig::builder()
            .command(Command::Set)
            .register(7.5)
            .loops(LoopNest::elementwise(5))
            .agu(2, AguConfig::stream(0x40, 4))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        engine.offload(&cfg);
        run_engine(&mut engine, &mut tcdm, 100);
        for i in 0..5 {
            assert_eq!(tcdm.read_f32(0x40 + 4 * i), 7.5);
        }
        assert_eq!(engine.flops(), 0);
    }

    #[test]
    fn stall_on_denied_grant() {
        let mut tcdm = Tcdm::default();
        let cfg = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::vector(2))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        engine.offload(&cfg);
        // Deny the first cycle entirely.
        let n = engine.desired_accesses().len();
        engine.commit(&vec![false; n], &mut tcdm);
        assert_eq!(engine.stall_cycles(), 1);
        assert_eq!(engine.active_cycles(), 0);
        // Partial grants also stall (all-or-nothing iteration issue).
        let mut grants = vec![true; n];
        grants[0] = false;
        engine.commit(&grants, &mut tcdm);
        assert_eq!(engine.stall_cycles(), 2);
        run_engine(&mut engine, &mut tcdm, 100);
        assert_eq!(engine.active_cycles(), 2);
    }

    #[test]
    fn double_buffering_accepts_one_staged_command() {
        let mut tcdm = Tcdm::default();
        let cfg = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::vector(4))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let mut engine = NtxEngine::new();
        assert_eq!(engine.offload(&cfg), EngineStatus::Accepted);
        assert_eq!(engine.offload(&cfg), EngineStatus::Accepted); // staged
        assert_eq!(engine.offload(&cfg), EngineStatus::Backpressure);
        // Drain both commands.
        let mut cycles = 0;
        while engine.is_busy() {
            let n = engine.desired_accesses().len();
            engine.commit(&vec![true; n], &mut tcdm);
            cycles += 1;
            assert!(cycles < 100);
        }
        assert_eq!(engine.commands_completed(), 2);
    }

    #[test]
    fn register_interface_offload_matches_driver() {
        // Program the engine through raw register writes like the core.
        let mut tcdm = Tcdm::default();
        for i in 0..4u32 {
            tcdm.write_f32(4 * i, 2.0);
            tcdm.write_f32(0x100 + 4 * i, 3.0);
        }
        let cfg = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::vector(4))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .unwrap();
        let mut image = RegFile::new();
        image.load_config(&cfg);
        let mut engine = NtxEngine::new();
        for off in (0..ntx_isa::NTX_REGFILE_BYTES).step_by(4) {
            if off == RegOffset::COMMAND || off == RegOffset::STATUS {
                continue;
            }
            let v = image.read(off, false).unwrap();
            assert_eq!(engine.write_reg(off, v).unwrap(), EngineStatus::Accepted);
        }
        assert_eq!(engine.read_reg(RegOffset::STATUS).unwrap(), 0);
        engine
            .write_reg(RegOffset::COMMAND, cfg.command.encode())
            .unwrap();
        assert_eq!(engine.read_reg(RegOffset::STATUS).unwrap(), 1);
        run_engine(&mut engine, &mut tcdm, 100);
        assert_eq!(tcdm.read_f32(0x200), 24.0);
    }
}
