//! The cluster's memory map as seen by the RISC-V control core.
//!
//! §II-E: the NTX configuration registers are mapped into the core's
//! address space, with all co-processors additionally aliased at a
//! broadcast address for efficient common-value configuration. The DMA
//! is programmed through a small descriptor register block, and the L2
//! region models the 1.25 MB memory outside the cluster that holds the
//! RISC-V binary (§II-A).

/// Address-map constants.
pub mod map {
    /// Base of the TCDM region.
    pub const TCDM_BASE: u32 = 0x0000_0000;
    /// Base of the NTX register windows; co-processor `i` lives at
    /// `NTX_BASE + i * NTX_REGFILE_BYTES`.
    pub const NTX_BASE: u32 = 0x1000_0000;
    /// Broadcast alias: a write here reaches every NTX (§II-E).
    pub const NTX_BROADCAST: u32 = 0x10ff_0000;
    /// Base of the DMA descriptor registers.
    pub const DMA_BASE: u32 = 0x2000_0000;
    /// DMA: external address, low word.
    pub const DMA_EXT_LO: u32 = 0x00;
    /// DMA: external address, high word.
    pub const DMA_EXT_HI: u32 = 0x04;
    /// DMA: TCDM address.
    pub const DMA_TCDM: u32 = 0x08;
    /// DMA: bytes per row.
    pub const DMA_ROW_BYTES: u32 = 0x0c;
    /// DMA: number of rows.
    pub const DMA_ROWS: u32 = 0x10;
    /// DMA: external stride between rows.
    pub const DMA_EXT_STRIDE: u32 = 0x14;
    /// DMA: TCDM stride between rows.
    pub const DMA_TCDM_STRIDE: u32 = 0x18;
    /// DMA: writing starts the transfer; bit 0 selects the direction
    /// (0 = external→TCDM, 1 = TCDM→external).
    pub const DMA_START: u32 = 0x1c;
    /// DMA: status register (number of descriptors in flight).
    pub const DMA_STATUS: u32 = 0x20;
    /// Size of the DMA register block.
    pub const DMA_SIZE: u32 = 0x24;
    /// Base of the L2 program/shared memory (1.25 MB in the paper).
    pub const L2_BASE: u32 = 0x8000_0000;
}

#[cfg(test)]
mod tests {
    use super::map;

    #[test]
    fn regions_do_not_overlap() {
        assert!(map::TCDM_BASE < map::NTX_BASE);
        assert!(map::NTX_BASE < map::NTX_BROADCAST);
        assert!(map::NTX_BROADCAST < map::DMA_BASE);
        assert!(map::DMA_BASE + map::DMA_SIZE < map::L2_BASE);
    }
}
