//! Deterministic fault injection for scale-out robustness testing.
//!
//! A [`FaultPlan`] describes the chaos a farm run must survive:
//! a hard cluster failure at a given cycle ([`ClusterKill`]), seeded
//! transient cluster stalls ([`StallSpec`]), and mesh serial-link
//! degradation over a cycle window ([`LinkFault`]). Every injected
//! event is a **pure function of (seed, cycle, cluster)** — no global
//! RNG, no cross-cluster state — so the farm's clusters remain
//! independent simulations and two runs with the same plan replay the
//! same faults cycle for cycle. Faults perturb *timing and placement*
//! only; the executing kernels stay bit-exact, which is what lets the
//! scheduler's differential oracles prove recovery lossless.

/// Permanent loss of one cluster at a virtual cycle.
///
/// The cluster executes normally until its local clock reaches
/// `at_cycle`; from then on it accepts no work and any shard that
/// would straddle the kill boundary is discarded (its effects rolled
/// back by the farm) and re-placed on a surviving cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterKill {
    /// Index of the cluster that fails.
    pub cluster: u32,
    /// Local virtual cycle at which it fails.
    pub at_cycle: u64,
}

/// Seeded transient stalls: a cluster freezes for a bounded number of
/// cycles at pseudo-random window boundaries.
///
/// Time is divided into windows of `period` cycles. Whether a given
/// `(cluster, window)` stalls — and for how long — is derived by
/// hashing `(seed, cluster, window)`, so occurrences are spread
/// pseudo-randomly yet reproducibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallSpec {
    /// Window length in cycles (must be > 0).
    pub period: u64,
    /// Stall probability per window, in Q16 fixed point
    /// (`0x1_0000` = always).
    pub prob_q16: u32,
    /// Longest possible stall; actual durations are uniform in
    /// `1..=max_cycles`.
    pub max_cycles: u64,
}

/// Degradation of the mesh serial links: remote-cube bandwidth is
/// clipped to `clip_q16 / 2^16` of nominal for cycles in
/// `from..until`. Local traffic is unaffected, matching a marginal
/// cable/SerDes rather than a failed vault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFault {
    /// Bandwidth multiplier in Q16 fixed point (`0x8000` = half).
    pub clip_q16: u32,
    /// First degraded cycle.
    pub from: u64,
    /// First cycle past the degradation window.
    pub until: u64,
}

/// A deterministic, seeded chaos schedule for one farm run.
///
/// Plans are plain `Copy` data: they travel inside
/// `ScaleOutConfig`/`ServerConfig` and are consulted — never mutated —
/// by the farm. The default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the stall hash; plans with different seeds stall at
    /// different windows.
    pub seed: u64,
    /// Optional hard cluster failure.
    pub kill: Option<ClusterKill>,
    /// Optional transient stall schedule.
    pub stall: Option<StallSpec>,
    /// Optional serial-link degradation window.
    pub link_fault: Option<LinkFault>,
}

/// SplitMix64 finalizer: the avalanche permutation used to hash
/// `(seed, cluster, window)` into an independent 64-bit draw.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (injects nothing); identical to `default()` but
    /// usable in `const` position.
    pub const NONE: FaultPlan = FaultPlan {
        seed: 0,
        kill: None,
        stall: None,
        link_fault: None,
    };

    /// Builder: seeds the stall hash.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: kills `cluster` once its clock reaches `at_cycle`.
    #[must_use]
    pub fn with_kill(mut self, cluster: u32, at_cycle: u64) -> Self {
        self.kill = Some(ClusterKill { cluster, at_cycle });
        self
    }

    /// Builder: stalls each cluster with probability
    /// `prob_q16 / 2^16` per `period`-cycle window, for up to
    /// `max_cycles` cycles.
    #[must_use]
    pub fn with_stalls(mut self, period: u64, prob_q16: u32, max_cycles: u64) -> Self {
        assert!(period > 0, "stall period must be positive");
        assert!(max_cycles > 0, "stall duration must be positive");
        self.stall = Some(StallSpec {
            period,
            prob_q16,
            max_cycles,
        });
        self
    }

    /// Builder: clips remote serial-link bandwidth to
    /// `clip_q16 / 2^16` of nominal for cycles `from..until`.
    #[must_use]
    pub fn with_link_fault(mut self, clip_q16: u32, from: u64, until: u64) -> Self {
        assert!(from < until, "degradation window must be non-empty");
        self.link_fault = Some(LinkFault {
            clip_q16,
            from,
            until,
        });
        self
    }

    /// True when the plan injects at least one kind of fault.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.kill.is_some() || self.stall.is_some() || self.link_fault.is_some()
    }

    /// The kill cycle armed for `cluster`, if any.
    #[must_use]
    pub fn kill_cycle(&self, cluster: u32) -> Option<u64> {
        match self.kill {
            Some(k) if k.cluster == cluster => Some(k.at_cycle),
            _ => None,
        }
    }

    /// Stall duration (cycles) injected at the start of stall window
    /// `window` on `cluster`, or 0 when that window does not stall.
    /// Pure in `(self.seed, cluster, window)`.
    #[must_use]
    pub fn stall_in_window(&self, cluster: u32, window: u64) -> u64 {
        let Some(s) = self.stall else { return 0 };
        let h = mix64(
            self.seed
                ^ mix64(u64::from(cluster).wrapping_add(0x636c_7573_7465_72))
                ^ mix64(window.wrapping_add(0x7769_6e64_6f77)),
        );
        // Low 16 bits decide occurrence against the Q16 probability
        // (`0x1_0000` = always); the upper bits pick a duration in
        // `1..=max_cycles`.
        if u32::from((h & 0xffff) as u16) >= s.prob_q16 {
            return 0;
        }
        1 + (h >> 16) % s.max_cycles
    }

    /// Total stall cycles injected on `cluster` for stall windows
    /// whose boundary `w * period` (w ≥ 1; clusters start live) falls
    /// in `(from_cycle, to_cycle]`. The farm calls this when a
    /// cluster's clock jumps across one or more window boundaries
    /// (shard retirement advances clocks in bursts).
    #[must_use]
    pub fn stall_between(&self, cluster: u32, from_cycle: u64, to_cycle: u64) -> u64 {
        let Some(s) = self.stall else { return 0 };
        if from_cycle >= to_cycle {
            return 0;
        }
        let first = from_cycle / s.period + 1;
        let last = to_cycle / s.period + 1;
        (first..last)
            .map(|w| self.stall_in_window(cluster, w))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::NONE;
        assert!(!p.is_active());
        assert_eq!(p.kill_cycle(0), None);
        assert_eq!(p.stall_between(3, 0, 1_000_000), 0);
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn kill_targets_one_cluster() {
        let p = FaultPlan::default().with_kill(2, 5_000);
        assert!(p.is_active());
        assert_eq!(p.kill_cycle(2), Some(5_000));
        assert_eq!(p.kill_cycle(1), None);
    }

    #[test]
    fn stalls_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::default()
            .with_seed(7)
            .with_stalls(256, 0x8000, 64);
        let b = FaultPlan::default()
            .with_seed(7)
            .with_stalls(256, 0x8000, 64);
        let c = FaultPlan::default()
            .with_seed(8)
            .with_stalls(256, 0x8000, 64);
        let run =
            |p: &FaultPlan| -> Vec<u64> { (0..64).map(|w| p.stall_in_window(1, w)).collect() };
        assert_eq!(run(&a), run(&b));
        assert_ne!(run(&a), run(&c));
        // ~50% of windows stall, each within 1..=64 cycles.
        let hits = run(&a).iter().filter(|&&d| d > 0).count();
        assert!((16..=48).contains(&hits), "hit count {hits} implausible");
        assert!(run(&a).iter().all(|&d| d <= 64));
    }

    #[test]
    fn stall_probability_extremes() {
        let never = FaultPlan::default().with_stalls(100, 0, 10);
        let always = FaultPlan::default().with_stalls(100, 0x1_0000, 10);
        assert_eq!(never.stall_between(0, 0, 10_000), 0);
        for w in 0..32 {
            let d = always.stall_in_window(0, w);
            assert!((1..=10).contains(&d));
        }
    }

    #[test]
    fn stall_between_sums_crossed_windows_exactly_once() {
        let p = FaultPlan::default()
            .with_seed(3)
            .with_stalls(100, 0x2_0000, 5);
        // Sweeping in arbitrary chunks covers each boundary once.
        let whole = p.stall_between(4, 0, 1_000);
        let mut chunked = 0;
        let cuts = [0, 37, 100, 101, 350, 612, 899, 1_000];
        for pair in cuts.windows(2) {
            chunked += p.stall_between(4, pair[0], pair[1]);
        }
        assert_eq!(whole, chunked);
        // Empty sweeps contribute nothing.
        assert_eq!(p.stall_between(4, 300, 300), 0);
        // Cycle 0 is not a boundary (clusters start live) and the
        // first boundary at `period` is excluded until reached.
        assert_eq!(p.stall_between(4, 0, 99), 0);
        assert_eq!(p.stall_between(4, 0, 100), p.stall_in_window(4, 1));
    }

    #[test]
    fn clusters_stall_independently() {
        let p = FaultPlan::default()
            .with_seed(11)
            .with_stalls(64, 0x8000, 32);
        let a: Vec<u64> = (0..64).map(|w| p.stall_in_window(0, w)).collect();
        let b: Vec<u64> = (0..64).map(|w| p.stall_in_window(1, w)).collect();
        assert_ne!(a, b, "clusters must draw independent stall schedules");
    }
}
