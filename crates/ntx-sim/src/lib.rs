//! Cycle-approximate simulator of one NTX processing cluster.
//!
//! Binds together the substrates of the companion crates into the
//! cluster of Fig. 1/2 of the paper: eight [`NtxEngine`] co-processors
//! and a DMA engine sharing a 32-bank TCDM through an arbitrating
//! interconnect, plus an RV32IMC control core (either the interpreted
//! [`ntx_riscv::Cpu`] through the cluster's [`Bus`](ntx_riscv::Bus)
//! implementation, or the lightweight host-driver API used by the
//! kernel library).
//!
//! The model advances in NTX clock cycles (1.25 GHz in the 22FDX
//! implementation). Per cycle every active engine issues the TCDM
//! accesses of its current innermost iteration; the interconnect grants
//! one access per bank; an engine whose accesses are not all granted
//! stalls and retries — reproducing the banking-conflict behaviour that
//! §III-C measures at ≈13 % and that limits practical throughput to
//! ≈17.4 Gflop/s.
//!
//! # Example
//!
//! ```
//! use ntx_sim::{Cluster, ClusterConfig};
//! use ntx_isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect};
//!
//! let mut cluster = Cluster::new(ClusterConfig::default());
//! cluster.write_tcdm_f32(0x000, &[1.0, 2.0, 3.0, 4.0]);
//! cluster.write_tcdm_f32(0x100, &[4.0, 3.0, 2.0, 1.0]);
//! let cfg = NtxConfig::builder()
//!     .command(Command::Mac { operand: OperandSelect::Memory })
//!     .loops(LoopNest::vector(4))
//!     .agu(0, AguConfig::stream(0x000, 4))
//!     .agu(1, AguConfig::stream(0x100, 4))
//!     .agu(2, AguConfig::fixed(0x200))
//!     .build()?;
//! cluster.offload(0, &cfg);
//! cluster.run_to_completion();
//! assert_eq!(cluster.read_tcdm_f32(0x200, 1)[0], 20.0);
//! # Ok::<(), ntx_isa::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
pub mod fault;
mod mmio;
mod ntx_engine;
mod perf;

pub use cluster::{Cluster, ClusterConfig};
pub use fault::{ClusterKill, FaultPlan, LinkFault, StallSpec};
pub use mmio::map;
pub use ntx_engine::{AccessList, BurstOutcome, EngineStatus, NtxEngine};
pub use perf::PerfSnapshot;
