//! Performance counters of the cluster simulator.
//!
//! [`PerfSnapshot`] is the measurement record every evaluation
//! experiment consumes: cycles, retired flops, TCDM conflict statistics,
//! DMA traffic, and the derived figures (utilisation, Gflop/s at a given
//! clock, conflict probability) that appear in §III of the paper.

/// A point-in-time copy of all cluster counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerfSnapshot {
    /// Simulated NTX clock cycles.
    pub cycles: u64,
    /// Floating-point operations retired by all NTX engines.
    pub flops: u64,
    /// Cycles in which at least one engine executed an iteration.
    pub ntx_busy_cycles: u64,
    /// Engine-cycles spent stalled on TCDM conflicts (summed over
    /// engines).
    pub ntx_stall_cycles: u64,
    /// Engine-cycles spent executing iterations (summed over engines).
    pub ntx_active_cycles: u64,
    /// Commands completed by all engines.
    pub commands_completed: u64,
    /// TCDM requests seen by the interconnect.
    pub tcdm_requests: u64,
    /// TCDM requests denied due to a banking conflict.
    pub tcdm_conflicts: u64,
    /// Bytes moved by the DMA (both directions).
    pub dma_bytes: u64,
    /// Cycles in which the DMA moved at least one word.
    pub dma_busy_cycles: u64,
    /// Bytes read from external memory (DRAM traffic in).
    pub ext_bytes_read: u64,
    /// Bytes written to external memory (DRAM traffic out).
    pub ext_bytes_written: u64,
    /// Cycles the DMA had transfer beats pending but the shared HMC
    /// subsystem granted zero external-memory slots (always zero with
    /// the ideal private memory).
    pub ext_wait_cycles: u64,
    /// External-memory bytes that crossed a serial link to a remote
    /// cube of an HMC mesh (subset of `ext_bytes_read` +
    /// `ext_bytes_written`; zero for local or single-cube traffic).
    pub ext_remote_bytes: u64,
    /// Cycles attributable to remote-cube access: the per-shard hop
    /// latency plus the zero-grant waits incurred while running
    /// against a remote link (subset of overall stall time; zero for
    /// local traffic).
    pub ext_remote_wait_cycles: u64,
    /// TCDM read accesses performed (energy model input).
    pub tcdm_reads: u64,
    /// TCDM write accesses performed (energy model input).
    pub tcdm_writes: u64,
    /// Cycles spent frozen by injected transient faults (subset of
    /// `cycles`; zero without a [`crate::FaultPlan`]).
    pub fault_stall_cycles: u64,
}

impl PerfSnapshot {
    /// Difference of two snapshots (`self` must be the later one),
    /// isolating one measurement phase.
    #[must_use]
    pub fn since(&self, earlier: &PerfSnapshot) -> PerfSnapshot {
        PerfSnapshot {
            cycles: self.cycles - earlier.cycles,
            flops: self.flops - earlier.flops,
            ntx_busy_cycles: self.ntx_busy_cycles - earlier.ntx_busy_cycles,
            ntx_stall_cycles: self.ntx_stall_cycles - earlier.ntx_stall_cycles,
            ntx_active_cycles: self.ntx_active_cycles - earlier.ntx_active_cycles,
            commands_completed: self.commands_completed - earlier.commands_completed,
            tcdm_requests: self.tcdm_requests - earlier.tcdm_requests,
            tcdm_conflicts: self.tcdm_conflicts - earlier.tcdm_conflicts,
            dma_bytes: self.dma_bytes - earlier.dma_bytes,
            dma_busy_cycles: self.dma_busy_cycles - earlier.dma_busy_cycles,
            ext_bytes_read: self.ext_bytes_read - earlier.ext_bytes_read,
            ext_bytes_written: self.ext_bytes_written - earlier.ext_bytes_written,
            ext_wait_cycles: self.ext_wait_cycles - earlier.ext_wait_cycles,
            ext_remote_bytes: self.ext_remote_bytes - earlier.ext_remote_bytes,
            ext_remote_wait_cycles: self.ext_remote_wait_cycles - earlier.ext_remote_wait_cycles,
            tcdm_reads: self.tcdm_reads - earlier.tcdm_reads,
            tcdm_writes: self.tcdm_writes - earlier.tcdm_writes,
            fault_stall_cycles: self.fault_stall_cycles - earlier.fault_stall_cycles,
        }
    }

    /// Average flops per cycle across the cluster (peak is 16 for the
    /// 8-engine cluster: 8 × 2 flop FMAC).
    #[must_use]
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flops as f64 / self.cycles as f64
        }
    }

    /// Achieved compute performance at NTX clock `freq_hz`, in flop/s.
    #[must_use]
    pub fn flops_per_second(&self, freq_hz: f64) -> f64 {
        self.flops_per_cycle() * freq_hz
    }

    /// Field-wise accumulation of a counter delta into this running
    /// total. The exhaustive destructuring makes adding a field
    /// without summing it here a compile error, not a silent
    /// under-count — aggregators (the scale-out reports, the serving
    /// front-end) share this one definition.
    pub fn accumulate(&mut self, delta: &PerfSnapshot) {
        let PerfSnapshot {
            cycles,
            flops,
            ntx_busy_cycles,
            ntx_stall_cycles,
            ntx_active_cycles,
            commands_completed,
            tcdm_requests,
            tcdm_conflicts,
            dma_bytes,
            dma_busy_cycles,
            ext_bytes_read,
            ext_bytes_written,
            ext_wait_cycles,
            ext_remote_bytes,
            ext_remote_wait_cycles,
            tcdm_reads,
            tcdm_writes,
            fault_stall_cycles,
        } = *delta;
        self.cycles += cycles;
        self.flops += flops;
        self.ntx_busy_cycles += ntx_busy_cycles;
        self.ntx_stall_cycles += ntx_stall_cycles;
        self.ntx_active_cycles += ntx_active_cycles;
        self.commands_completed += commands_completed;
        self.tcdm_requests += tcdm_requests;
        self.tcdm_conflicts += tcdm_conflicts;
        self.dma_bytes += dma_bytes;
        self.dma_busy_cycles += dma_busy_cycles;
        self.ext_bytes_read += ext_bytes_read;
        self.ext_bytes_written += ext_bytes_written;
        self.ext_wait_cycles += ext_wait_cycles;
        self.ext_remote_bytes += ext_remote_bytes;
        self.ext_remote_wait_cycles += ext_remote_wait_cycles;
        self.tcdm_reads += tcdm_reads;
        self.tcdm_writes += tcdm_writes;
        self.fault_stall_cycles += fault_stall_cycles;
    }

    /// Banking-conflict probability seen at the interconnect (the
    /// §III-C figure; ≈0.13 in the paper's gate-level trace).
    #[must_use]
    pub fn conflict_probability(&self) -> f64 {
        if self.tcdm_requests == 0 {
            0.0
        } else {
            self.tcdm_conflicts as f64 / self.tcdm_requests as f64
        }
    }

    /// Fraction of engine-cycles lost to TCDM stalls.
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        let total = self.ntx_active_cycles + self.ntx_stall_cycles;
        if total == 0 {
            0.0
        } else {
            self.ntx_stall_cycles as f64 / total as f64
        }
    }

    /// DMA bandwidth achieved over the measured window at clock
    /// `freq_hz`, bytes/s.
    #[must_use]
    pub fn dma_bandwidth(&self, freq_hz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.dma_bytes as f64 / self.cycles as f64 * freq_hz
        }
    }

    /// Operational intensity of the measured phase: flops per external-
    /// memory byte (the x axis of the Fig. 5 roofline).
    #[must_use]
    pub fn operational_intensity(&self) -> f64 {
        let bytes = self.ext_bytes_read + self.ext_bytes_written;
        if bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics_handle_zero() {
        let p = PerfSnapshot::default();
        assert_eq!(p.flops_per_cycle(), 0.0);
        assert_eq!(p.conflict_probability(), 0.0);
        assert_eq!(p.stall_fraction(), 0.0);
        assert_eq!(p.dma_bandwidth(1.0e9), 0.0);
        assert!(p.operational_intensity().is_infinite());
    }

    #[test]
    fn since_subtracts_fields() {
        let early = PerfSnapshot {
            cycles: 100,
            flops: 50,
            ..Default::default()
        };
        let late = PerfSnapshot {
            cycles: 300,
            flops: 450,
            ..Default::default()
        };
        let d = late.since(&early);
        assert_eq!(d.cycles, 200);
        assert_eq!(d.flops, 400);
        assert_eq!(d.flops_per_cycle(), 2.0);
    }

    #[test]
    fn performance_at_clock() {
        let p = PerfSnapshot {
            cycles: 1000,
            flops: 16_000,
            ..Default::default()
        };
        // 16 flop/cycle at 1.25 GHz = the 20 Gflop/s peak of Table I.
        assert!((p.flops_per_second(1.25e9) - 20.0e9).abs() < 1.0);
    }

    #[test]
    fn operational_intensity_counts_both_directions() {
        let p = PerfSnapshot {
            flops: 100,
            ext_bytes_read: 40,
            ext_bytes_written: 10,
            ..Default::default()
        };
        assert!((p.operational_intensity() - 2.0).abs() < 1e-12);
    }
}
