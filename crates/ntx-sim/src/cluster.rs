//! The NTX processing cluster: core + 8 NTX + TCDM + DMA (§II-A).

use crate::mmio::map;
use crate::ntx_engine::{CyclePlan, EngineStatus, NtxEngine};
use crate::perf::PerfSnapshot;
use ntx_isa::{NtxConfig, NTX_REGFILE_BYTES};
use ntx_mem::{
    BankRequest, DmaDescriptor, DmaDirection, DmaEngine, ExtMemory, HmcPort, Interconnect,
    MasterId, Tcdm, TcdmConfig,
};
use ntx_riscv::{AccessSize, Bus, BusError, Cpu, Trap};

/// Static configuration of a cluster instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of NTX co-processors (paper: 8).
    pub num_ntx: usize,
    /// TCDM geometry (paper: 64 kB in 32 banks).
    pub tcdm: TcdmConfig,
    /// AXI port width in 32-bit words per NTX cycle (1 = the 64-bit
    /// port at half clock of the tape-out; 2/4 model the 128/256-bit
    /// variants of §III-C).
    pub dma_words_per_cycle: u32,
    /// NTX/TCDM clock (paper: 1.25 GHz worst case).
    pub ntx_freq_hz: f64,
    /// Core clock divider (paper: core runs at half the NTX clock).
    pub core_clock_divider: u64,
    /// L2 program/shared memory size in bytes (paper: 1.25 MB).
    pub l2_bytes: u32,
    /// NTX cycles consumed per configuration-register write issued by
    /// the driver offload path (one core store at half clock = 2).
    pub offload_write_cycles: u64,
    /// Enables the burst fast path in [`Cluster::run_burst`] (and the
    /// run helpers built on it). Results, cycle counts and every
    /// performance counter are bit-identical either way — the flag
    /// exists so differential tests and benchmarks can pin the pure
    /// per-cycle path.
    pub fast_path: bool,
    /// Shared external-memory bandwidth schedule (a port of an
    /// [`ntx_mem::HmcSubsystem`]). `None` models the ideal private
    /// memory of the stand-alone cluster; `Some` clips every DMA
    /// ext-transfer beat at the slots the shared HMC grants this
    /// cluster in that cycle — timing changes, data never does.
    pub ext_port: Option<HmcPort>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            num_ntx: 8,
            tcdm: TcdmConfig::default(),
            dma_words_per_cycle: 1,
            ntx_freq_hz: 1.25e9,
            core_clock_divider: 2,
            l2_bytes: 0x0014_0000,
            offload_write_cycles: 2,
            fast_path: true,
            ext_port: None,
        }
    }
}

impl ClusterConfig {
    /// Peak compute performance in flop/s (`num_ntx` FMACs at 2 flop per
    /// cycle) — 20 Gflop/s for the default cluster (Table I).
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        self.num_ntx as f64 * 2.0 * self.ntx_freq_hz
    }

    /// Peak AXI bandwidth in bytes/s — 5 GB/s for the default cluster.
    #[must_use]
    pub fn peak_bandwidth(&self) -> f64 {
        f64::from(self.dma_words_per_cycle) * 4.0 * self.ntx_freq_hz
    }
}

/// One simulated processing cluster.
///
/// See the crate-level example for typical host-driven use; the type
/// also implements [`ntx_riscv::Bus`] so an interpreted RV32IMC program
/// can drive the very same hardware through the §II-E register
/// interface (see [`Cluster::run_program`]).
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    tcdm: Tcdm,
    interconnect: Interconnect,
    dma: DmaEngine,
    ext: ExtMemory,
    engines: Vec<NtxEngine>,
    l2: Vec<u8>,
    cycle: u64,
    busy_cycles: u64,
    offload_writes: u64,
    /// Cycles the DMA had beats pending but the shared HMC granted
    /// zero external-memory slots (always zero without an `ext_port`).
    ext_wait_cycles: u64,
    /// External-memory bytes attributed to remote (off-home-cube) mesh
    /// traffic by [`Cluster::attribute_remote`].
    ext_remote_bytes: u64,
    /// Cycles attributed to remote mesh traffic (hop latency + waits).
    ext_remote_wait_cycles: u64,
    /// Cycles spent frozen by injected transient faults
    /// ([`Cluster::attribute_fault_stall`]).
    fault_stall_cycles: u64,
    dma_stage: DmaStage,
    /// Reusable hot-loop buffers (the fast path's replacement for the
    /// per-cycle `Vec`s of the reference [`Cluster::step`]).
    req_buf: Vec<BankRequest>,
    grant_buf: Vec<bool>,
    span_buf: Vec<(usize, usize)>,
    plan_buf: Vec<CyclePlan>,
    dma_buf: Vec<u32>,
    /// Grant slice that is always `true` (the all-granted common case).
    true_buf: Vec<bool>,
    /// `banks - 1` when the bank count fits a u64 occupancy mask
    /// (power of two, ≤ 64); `None` disables the fused conflict check.
    fast_bank_mask: Option<u32>,
}

#[derive(Debug, Clone, Copy, Default)]
struct DmaStage {
    ext_lo: u32,
    ext_hi: u32,
    tcdm_addr: u32,
    row_bytes: u32,
    rows: u32,
    ext_stride: u32,
    tcdm_stride: u32,
}

impl Cluster {
    /// Builds a cluster from its configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero engines, bad TCDM
    /// geometry — see [`Tcdm::new`]).
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.num_ntx > 0, "cluster needs at least one NTX");
        Self {
            config,
            tcdm: Tcdm::new(config.tcdm),
            interconnect: Interconnect::new(config.tcdm.banks),
            dma: DmaEngine::new(config.dma_words_per_cycle),
            ext: ExtMemory::new(),
            engines: (0..config.num_ntx)
                .map(|_| {
                    let mut e = NtxEngine::new();
                    // With the fast path disabled the cluster is the
                    // pure per-cycle baseline end to end, including the
                    // pre-overhaul FPU internals (results stay
                    // bit-identical either way).
                    if !config.fast_path {
                        e.use_reference_fpu();
                    }
                    e
                })
                .collect(),
            l2: vec![0; config.l2_bytes as usize],
            cycle: 0,
            busy_cycles: 0,
            offload_writes: 0,
            ext_wait_cycles: 0,
            ext_remote_bytes: 0,
            ext_remote_wait_cycles: 0,
            fault_stall_cycles: 0,
            dma_stage: DmaStage::default(),
            req_buf: Vec::new(),
            grant_buf: Vec::new(),
            span_buf: Vec::new(),
            plan_buf: Vec::new(),
            dma_buf: Vec::new(),
            true_buf: Vec::new(),
            fast_bank_mask: (config.tcdm.banks.is_power_of_two() && config.tcdm.banks <= 64)
                .then(|| config.tcdm.banks - 1),
        }
    }

    /// The static configuration.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Current simulated cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Replaces the external-memory grant schedule — how a mesh farm
    /// rewires a cluster per shard, pointing its AXI port at the
    /// shard's home cube (local or remote). `None` restores the ideal
    /// private memory. Must only be called while the cluster is idle:
    /// a schedule swap mid-burst would retime in-flight beats.
    ///
    /// # Panics
    ///
    /// Panics if the DMA still has beats in flight.
    pub fn set_ext_port(&mut self, port: Option<HmcPort>) {
        assert!(
            self.dma.is_idle(),
            "cannot swap the ext-port schedule under an active DMA"
        );
        self.config.ext_port = port;
    }

    /// Advances the cycle counter by `n` without simulating anything —
    /// dead time in which no master does work, e.g. the serial-link
    /// hop latency a mesh charges before a remote shard's first beat.
    pub fn advance_cycles(&mut self, n: u64) {
        self.cycle = self.cycle.saturating_add(n);
    }

    /// Attributes traffic and stall time measured over a remote shard
    /// to the mesh remote-traffic counters
    /// ([`PerfSnapshot::ext_remote_bytes`] /
    /// [`PerfSnapshot::ext_remote_wait_cycles`]). The farm calls this
    /// after draining a shard whose operands lived on another cube.
    pub fn attribute_remote(&mut self, bytes: u64, wait_cycles: u64) {
        self.ext_remote_bytes += bytes;
        self.ext_remote_wait_cycles += wait_cycles;
    }

    /// Freezes the cluster for `n` cycles of injected transient fault:
    /// the clock advances with no master doing work, and the dead time
    /// is attributed to [`PerfSnapshot::fault_stall_cycles`]. The farm
    /// calls this at stall-window boundaries of an armed
    /// [`crate::FaultPlan`].
    pub fn attribute_fault_stall(&mut self, n: u64) {
        self.cycle = self.cycle.saturating_add(n);
        self.fault_stall_cycles += n;
    }

    /// External-memory words the shared HMC grants the DMA *this*
    /// cycle (the full port width with an ideal private memory).
    #[inline]
    fn ext_allowance(&self) -> u32 {
        match self.config.ext_port {
            Some(p) => p.granted(self.cycle).min(self.config.dma_words_per_cycle),
            None => self.config.dma_words_per_cycle,
        }
    }

    /// Clips the DMA's desired accesses for this cycle at the granted
    /// external-memory slots and accounts a wait cycle when the grant
    /// is zero while beats are pending. Shared by the reference
    /// [`Cluster::step`] and the fast path so the two stay bit-exact.
    #[inline]
    fn clip_dma_desired(&mut self, desired: &mut Vec<u32>) {
        if desired.is_empty() {
            return;
        }
        let allow = self.ext_allowance() as usize;
        if allow == 0 {
            self.ext_wait_cycles += 1;
        }
        desired.truncate(allow);
    }

    /// Advances the cluster by one NTX clock cycle: all engines and the
    /// DMA present their TCDM accesses, the interconnect arbitrates,
    /// winners proceed.
    ///
    /// This is the *reference* per-cycle path (it allocates its request
    /// and grant lists each call, and runs the reference arbiter). The
    /// burst fast path of [`Cluster::run_burst`] must stay bit-identical
    /// to stepping this — enforced by the differential proptests.
    pub fn step(&mut self) {
        let mut requests: Vec<BankRequest> = Vec::with_capacity(self.engines.len() * 3 + 4);
        let mut spans: Vec<(usize, usize)> = Vec::with_capacity(self.engines.len());
        let mut any_active = false;
        for (i, engine) in self.engines.iter().enumerate() {
            let start = requests.len();
            for (addr, _write) in engine.desired_accesses().iter() {
                requests.push(BankRequest {
                    master: MasterId::Ntx(i),
                    addr,
                });
            }
            if requests.len() > start {
                any_active = true;
            }
            spans.push((start, requests.len()));
        }
        let dma_start = requests.len();
        let mut dma_desired = self.dma.desired_accesses();
        self.clip_dma_desired(&mut dma_desired);
        for addr in dma_desired {
            requests.push(BankRequest {
                master: MasterId::Dma,
                addr,
            });
            any_active = true;
        }
        let grants = self.interconnect.arbitrate(&requests);
        for (i, engine) in self.engines.iter_mut().enumerate() {
            let (a, b) = spans[i];
            engine.commit(&grants[a..b], &mut self.tcdm);
        }
        self.dma
            .commit(&grants[dma_start..], &mut self.tcdm, &mut self.ext);
        if any_active {
            self.busy_cycles += 1;
        }
        self.cycle += 1;
    }

    /// One allocation-free simulation cycle: the multi-master leg of the
    /// burst fast path. Identical semantics to [`Cluster::step`], but
    /// the request/grant/span lists live in reused buffers and the
    /// arbiter runs its allocation-free variant with a conflict-free
    /// bank-mask pre-pass.
    fn fast_cycle(&mut self) {
        // Pass 1: plan every engine once and probe a u64 bank-occupancy
        // mask; without a duplicate bank the whole cycle is granted and
        // no request list or arbiter run is needed at all.
        self.plan_buf.clear();
        let mut dma_buf = std::mem::take(&mut self.dma_buf);
        self.dma.desired_accesses_into(&mut dma_buf);
        self.clip_dma_desired(&mut dma_buf);
        self.dma_buf = dma_buf;
        if let Some(bmask) = self.fast_bank_mask {
            let mut n_req = 0u64;
            let mut occupancy = 0u64;
            let mut dup = false;
            for engine in &self.engines {
                let plan = engine.plan_cycle();
                for &addr in plan.accesses().addrs() {
                    let bit = 1u64 << ((addr >> 2) & bmask);
                    dup |= occupancy & bit != 0;
                    occupancy |= bit;
                }
                n_req += plan.accesses().len() as u64;
                self.plan_buf.push(plan);
            }
            for &addr in &self.dma_buf {
                let bit = 1u64 << ((addr >> 2) & bmask);
                dup |= occupancy & bit != 0;
                occupancy |= bit;
            }
            if !dup {
                let dma_words = self.dma_buf.len();
                self.interconnect
                    .record_uncontended(n_req + dma_words as u64);
                for (i, engine) in self.engines.iter_mut().enumerate() {
                    let plan = &self.plan_buf[i];
                    if plan.accesses().is_empty() && !engine.is_busy() {
                        continue;
                    }
                    for &addr in plan.accesses().addrs() {
                        self.interconnect.note_grant(addr, MasterId::Ntx(i));
                    }
                    engine.commit_all_granted(plan, &mut self.tcdm);
                }
                if dma_words > 0 {
                    for &addr in &self.dma_buf {
                        self.interconnect.note_grant(addr, MasterId::Dma);
                    }
                    if self.true_buf.len() < dma_words {
                        self.true_buf.resize(dma_words, true);
                    }
                    self.dma
                        .commit(&self.true_buf[..dma_words], &mut self.tcdm, &mut self.ext);
                }
                if n_req > 0 || dma_words > 0 {
                    self.busy_cycles += 1;
                }
                self.cycle += 1;
                return;
            }
        } else {
            for engine in &self.engines {
                self.plan_buf.push(engine.plan_cycle());
            }
        }
        // Contended (or unmaskable geometry): build the request list
        // from the plans and run the allocation-free arbiter.
        self.req_buf.clear();
        self.span_buf.clear();
        for (i, plan) in self.plan_buf.iter().enumerate() {
            let start = self.req_buf.len();
            for &addr in plan.accesses().addrs() {
                self.req_buf.push(BankRequest {
                    master: MasterId::Ntx(i),
                    addr,
                });
            }
            self.span_buf.push((start, self.req_buf.len()));
        }
        let dma_start = self.req_buf.len();
        for &addr in &self.dma_buf {
            self.req_buf.push(BankRequest {
                master: MasterId::Dma,
                addr,
            });
        }
        let any_active = !self.req_buf.is_empty();
        self.interconnect
            .arbitrate_into(&self.req_buf, &mut self.grant_buf);
        for (i, engine) in self.engines.iter_mut().enumerate() {
            let (a, b) = self.span_buf[i];
            engine.commit_planned(&self.plan_buf[i], &self.grant_buf[a..b], &mut self.tcdm);
        }
        self.dma
            .commit(&self.grant_buf[dma_start..], &mut self.tcdm, &mut self.ext);
        if any_active {
            self.busy_cycles += 1;
        }
        self.cycle += 1;
    }

    /// Advances the cluster by up to `max_cycles` cycles through the
    /// burst fast path, returning the cycles actually advanced (at
    /// least 1 unless `max_cycles` is 0).
    ///
    /// The burst stops early at *observable events* — an engine
    /// retiring its last command, a DMA descriptor completing, the DMA
    /// queue draining — so pollers (the tile pipeline's watermarks,
    /// [`Cluster::run_to_completion`]) observe exactly the same state
    /// transitions as with per-cycle stepping. Between events the work
    /// is dispatched to the cheapest exact path:
    ///
    /// * all idle → the cycle counter jumps in one step;
    /// * one engine, DMA idle → [`NtxEngine::burst_sole`] (batched
    ///   conflict-free MAC streaks, per-cycle fallback otherwise);
    /// * DMA only → [`ntx_mem::DmaEngine::burst_sole`] (whole-row
    ///   slices);
    /// * multiple masters → allocation-free per-cycle stepping.
    ///
    /// With [`ClusterConfig::fast_path`] disabled this is exactly one
    /// reference [`Cluster::step`]. Results and counters are
    /// bit-identical in all modes.
    pub fn run_burst(&mut self, max_cycles: u64) -> u64 {
        if max_cycles == 0 {
            return 0;
        }
        if !self.config.fast_path {
            self.step();
            return 1;
        }
        let busy: usize = self.engines.iter().filter(|e| e.is_busy()).count();
        let dma_active = !self.dma.is_idle();
        match (busy, dma_active) {
            (0, false) => {
                // Idle cycles carry no state changes; skip them in bulk.
                self.cycle = self.cycle.saturating_add(max_cycles);
                max_cycles
            }
            (1, false) => {
                let i = self
                    .engines
                    .iter()
                    .position(|e| e.is_busy())
                    .expect("one engine is busy");
                let engine = &mut self.engines[i];
                let out = engine.burst_sole(
                    &mut self.tcdm,
                    &mut self.interconnect,
                    MasterId::Ntx(i),
                    max_cycles,
                );
                self.cycle += out.cycles;
                self.busy_cycles += out.accessed_cycles;
                out.cycles
            }
            (0, true) => {
                // A shared-HMC port that can actually bind routes to
                // the contended-aware burst (whole-row slices clipped
                // at granted slot runs); otherwise the schedule is
                // indistinguishable from the ideal memory and the
                // plain burst applies.
                let throttled = self.config.ext_port.filter(|p| {
                    p.throttles() || p.words_per_cycle() < self.config.dma_words_per_cycle
                });
                if let Some(port) = throttled {
                    let b = self.dma.burst_sole_throttled(
                        &mut self.tcdm,
                        &mut self.ext,
                        &mut self.interconnect,
                        port,
                        self.cycle,
                        max_cycles,
                    );
                    self.cycle += b.cycles;
                    self.busy_cycles += b.active_cycles;
                    self.ext_wait_cycles += b.cycles - b.active_cycles;
                    b.cycles
                } else {
                    let cycles = self.dma.burst_sole(
                        &mut self.tcdm,
                        &mut self.ext,
                        &mut self.interconnect,
                        max_cycles,
                    );
                    self.cycle += cycles;
                    self.busy_cycles += cycles;
                    cycles
                }
            }
            _ => {
                // Contended regime: cycle-accurate stepping without
                // allocations, chunked until the master set changes or
                // a descriptor retires.
                let dma_done0 = self.dma.completed();
                let mut cycles = 0;
                while cycles < max_cycles {
                    self.fast_cycle();
                    cycles += 1;
                    let busy_now = self.engines.iter().filter(|e| e.is_busy()).count();
                    if busy_now != busy
                        || self.dma.completed() != dma_done0
                        || self.dma.is_idle() == dma_active
                    {
                        break;
                    }
                }
                cycles
            }
        }
    }

    /// Steps the cluster `n` cycles (burst-accelerated when
    /// [`ClusterConfig::fast_path`] is enabled; identical outcome
    /// either way).
    pub fn run_for(&mut self, n: u64) {
        let mut left = n;
        while left > 0 {
            left -= self.run_burst(left);
        }
    }

    /// True when every engine and the DMA are idle.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.dma.is_idle() && self.engines.iter().all(|e| !e.is_busy())
    }

    /// True while any NTX engine still has work (command running or
    /// staged), regardless of DMA state. The scale-out scheduler polls
    /// this to decide when a tile's compute phase has drained while its
    /// stores are still in flight.
    #[must_use]
    pub fn engines_busy(&self) -> bool {
        self.engines.iter().any(NtxEngine::is_busy)
    }

    /// Runs until idle; returns the number of cycles stepped.
    ///
    /// # Panics
    ///
    /// Panics after 10^9 cycles as a hang guard.
    pub fn run_to_completion(&mut self) -> u64 {
        let start = self.cycle;
        while !self.is_idle() {
            self.run_burst(u64::MAX);
            assert!(
                self.cycle - start < 1_000_000_000,
                "cluster failed to drain within 1e9 cycles"
            );
        }
        self.cycle - start
    }

    // --- offloading (driver path) ---

    /// Offloads a command to engine `index`, charging the full §II-E
    /// register-write sequence (29 writes) at the core's clock. The
    /// cluster keeps stepping during the writes, so other engines and
    /// the DMA continue working — this is exactly the overlap the
    /// offloading scheme is designed for.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn offload(&mut self, index: usize, config: &NtxConfig) {
        self.offload_with_writes(index, config, 29);
    }

    /// Offload accounting only `writes` register updates (a driver that
    /// reuses the staged configuration and only changes what differs,
    /// as §II-E recommends).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn offload_with_writes(&mut self, index: usize, config: &NtxConfig, writes: u64) {
        assert!(index < self.engines.len(), "engine index out of range");
        self.run_for(writes * self.config.offload_write_cycles);
        self.offload_writes += writes;
        // Retry while the double buffer is full (one exact cycle per
        // retry; `run_burst(1)` dispatches it through the fast path).
        while self.engines[index].offload(config) == EngineStatus::Backpressure {
            self.run_burst(1);
        }
    }

    /// Broadcast-offloads the same command to every engine (the §II-E
    /// broadcast alias): one register-write sequence, all engines start.
    pub fn offload_broadcast(&mut self, config: &NtxConfig) {
        self.run_for(29 * self.config.offload_write_cycles);
        self.offload_writes += 29;
        for i in 0..self.engines.len() {
            while self.engines[i].offload(config) == EngineStatus::Backpressure {
                self.run_burst(1);
            }
        }
    }

    /// Read-only access to engine `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn engine(&self, index: usize) -> &NtxEngine {
        &self.engines[index]
    }

    /// Number of NTX engines.
    #[must_use]
    pub fn num_engines(&self) -> usize {
        self.engines.len()
    }

    // --- DMA ---

    /// Enqueues a DMA descriptor (driver path).
    pub fn dma_push(&mut self, desc: DmaDescriptor) {
        self.dma.push(desc);
    }

    /// True when the DMA queue is drained.
    #[must_use]
    pub fn dma_idle(&self) -> bool {
        self.dma.is_idle()
    }

    /// Number of DMA descriptors retired since construction (used by
    /// the double-buffering scheduler as a completion watermark).
    #[must_use]
    pub fn dma_completed(&self) -> u64 {
        self.dma.completed()
    }

    // --- host data access (test-bench, no simulated cycles) ---

    /// Preloads `values` into the TCDM at byte address `addr`.
    pub fn write_tcdm_f32(&mut self, addr: u32, values: &[f32]) {
        self.tcdm.poke_f32_from(addr, values);
    }

    /// Reads `out.len()` floats from the TCDM at byte address `addr`
    /// into a caller buffer — the allocation-free readback used by the
    /// scale-out executor's result assembly.
    pub fn read_tcdm_into(&self, addr: u32, out: &mut [f32]) {
        self.tcdm.peek_f32_into(addr, out);
    }

    /// Reads `n` floats from the TCDM at byte address `addr`.
    #[must_use]
    pub fn read_tcdm_f32(&self, addr: u32, n: usize) -> Vec<f32> {
        let mut out = vec![0f32; n];
        self.read_tcdm_into(addr, &mut out);
        out
    }

    /// Mutable access to the external memory (preloading kernels' input
    /// data and reading back results).
    pub fn ext_mem(&mut self) -> &mut ExtMemory {
        &mut self.ext
    }

    /// Replaces the external memory behind the AXI port — how a
    /// cluster farm installs the backing store its shared
    /// [`ntx_mem::HmcSubsystem`] owns for this cluster's port.
    pub fn install_ext(&mut self, mem: ExtMemory) {
        self.ext = mem;
    }

    // --- measurement ---

    /// Snapshots every performance counter.
    #[must_use]
    pub fn perf(&self) -> PerfSnapshot {
        let mut s = PerfSnapshot {
            cycles: self.cycle,
            ntx_busy_cycles: self.busy_cycles,
            tcdm_requests: self.interconnect.requests(),
            tcdm_conflicts: self.interconnect.conflicts(),
            dma_bytes: self.dma.bytes_moved(),
            dma_busy_cycles: self.dma.busy_cycles(),
            ext_bytes_read: self.ext.bytes_read(),
            ext_bytes_written: self.ext.bytes_written(),
            ext_wait_cycles: self.ext_wait_cycles,
            ext_remote_bytes: self.ext_remote_bytes,
            ext_remote_wait_cycles: self.ext_remote_wait_cycles,
            fault_stall_cycles: self.fault_stall_cycles,
            tcdm_reads: self.tcdm.reads(),
            tcdm_writes: self.tcdm.writes(),
            ..Default::default()
        };
        for e in &self.engines {
            s.flops += e.flops();
            s.ntx_active_cycles += e.active_cycles();
            s.ntx_stall_cycles += e.stall_cycles();
            s.commands_completed += e.commands_completed();
        }
        s
    }

    /// Total configuration-register writes issued by the offload paths.
    #[must_use]
    pub fn offload_writes(&self) -> u64 {
        self.offload_writes
    }

    /// Clears all performance counters (cycle counter keeps running).
    pub fn reset_counters(&mut self) {
        self.busy_cycles = 0;
        self.offload_writes = 0;
        self.ext_wait_cycles = 0;
        self.ext_remote_bytes = 0;
        self.ext_remote_wait_cycles = 0;
        self.fault_stall_cycles = 0;
        self.interconnect.reset_counters();
        self.dma.reset_counters();
        self.ext.reset_counters();
        self.tcdm.reset_counters();
        for e in &mut self.engines {
            e.reset_counters();
        }
    }

    // --- RISC-V program execution ---

    /// Loads a program image into L2 at `offset` (byte address relative
    /// to [`map::L2_BASE`]).
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds the L2 size.
    pub fn load_program(&mut self, offset: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            let a = offset as usize + 4 * i;
            self.l2[a..a + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Runs an interpreted RV32IMC core against this cluster until it
    /// traps or `max_core_steps` instructions retire. The cluster steps
    /// [`ClusterConfig::core_clock_divider`] NTX cycles per core
    /// instruction, modelling the half-rate core clock of §III-A.
    pub fn run_program(&mut self, cpu: &mut Cpu, max_core_steps: u64) -> Option<Trap> {
        for _ in 0..max_core_steps {
            if let Err(trap) = cpu.step(self) {
                return Some(trap);
            }
            self.run_for(self.config.core_clock_divider);
        }
        None
    }

    fn engine_mmio_write(&mut self, index: usize, offset: u32, value: u32) -> Result<(), BusError> {
        loop {
            match self.engines[index].write_reg(offset, value) {
                Ok(EngineStatus::Accepted) => return Ok(()),
                Ok(EngineStatus::Backpressure) => self.step(), // bus stall
                Err(_) => {
                    return Err(BusError::Device {
                        addr: map::NTX_BASE + index as u32 * NTX_REGFILE_BYTES + offset,
                    })
                }
            }
        }
    }
}

/// Errors map to [`BusError::Device`]; NTX windows and DMA registers
/// require word-aligned word accesses like the RTL.
impl Bus for Cluster {
    fn read(&mut self, addr: u32, size: AccessSize) -> Result<u32, BusError> {
        let tcdm_size = self.config.tcdm.bytes;
        match addr {
            a if a < tcdm_size => {
                let mut v = 0u32;
                for i in 0..size.bytes() {
                    v |= u32::from(self.tcdm.read_u8(a + i)) << (8 * i);
                }
                Ok(v)
            }
            a if (map::NTX_BASE..map::NTX_BROADCAST).contains(&a) => {
                let index = ((a - map::NTX_BASE) / NTX_REGFILE_BYTES) as usize;
                let offset = (a - map::NTX_BASE) % NTX_REGFILE_BYTES;
                if index >= self.engines.len() || size != AccessSize::Word {
                    return Err(BusError::Unmapped { addr });
                }
                self.engines[index]
                    .read_reg(offset)
                    .map_err(|_| BusError::Device { addr })
            }
            a if (map::DMA_BASE..map::DMA_BASE + map::DMA_SIZE).contains(&a) => {
                if size != AccessSize::Word {
                    return Err(BusError::Misaligned {
                        addr,
                        size: size.bytes(),
                    });
                }
                let s = &self.dma_stage;
                Ok(match a - map::DMA_BASE {
                    map::DMA_EXT_LO => s.ext_lo,
                    map::DMA_EXT_HI => s.ext_hi,
                    map::DMA_TCDM => s.tcdm_addr,
                    map::DMA_ROW_BYTES => s.row_bytes,
                    map::DMA_ROWS => s.rows,
                    map::DMA_EXT_STRIDE => s.ext_stride,
                    map::DMA_TCDM_STRIDE => s.tcdm_stride,
                    map::DMA_STATUS => self.dma.pending() as u32,
                    _ => 0,
                })
            }
            a if a >= map::L2_BASE => {
                let off = (a - map::L2_BASE) as usize;
                if off + size.bytes() as usize > self.l2.len() {
                    return Err(BusError::Unmapped { addr });
                }
                let mut v = 0u32;
                for i in 0..size.bytes() as usize {
                    v |= u32::from(self.l2[off + i]) << (8 * i);
                }
                Ok(v)
            }
            _ => Err(BusError::Unmapped { addr }),
        }
    }

    fn write(&mut self, addr: u32, size: AccessSize, value: u32) -> Result<(), BusError> {
        let tcdm_size = self.config.tcdm.bytes;
        match addr {
            a if a < tcdm_size => {
                for i in 0..size.bytes() {
                    self.tcdm.write_u8(a + i, (value >> (8 * i)) as u8);
                }
                Ok(())
            }
            a if (map::NTX_BASE..map::NTX_BROADCAST).contains(&a) => {
                let index = ((a - map::NTX_BASE) / NTX_REGFILE_BYTES) as usize;
                let offset = (a - map::NTX_BASE) % NTX_REGFILE_BYTES;
                if index >= self.engines.len() || size != AccessSize::Word {
                    return Err(BusError::Unmapped { addr });
                }
                self.engine_mmio_write(index, offset, value)
            }
            a if (map::NTX_BROADCAST..map::NTX_BROADCAST + NTX_REGFILE_BYTES).contains(&a) => {
                let offset = a - map::NTX_BROADCAST;
                if size != AccessSize::Word {
                    return Err(BusError::Unmapped { addr });
                }
                for i in 0..self.engines.len() {
                    self.engine_mmio_write(i, offset, value)?;
                }
                Ok(())
            }
            a if (map::DMA_BASE..map::DMA_BASE + map::DMA_SIZE).contains(&a) => {
                if size != AccessSize::Word {
                    return Err(BusError::Misaligned {
                        addr,
                        size: size.bytes(),
                    });
                }
                let off = a - map::DMA_BASE;
                match off {
                    map::DMA_EXT_LO => self.dma_stage.ext_lo = value,
                    map::DMA_EXT_HI => self.dma_stage.ext_hi = value,
                    map::DMA_TCDM => self.dma_stage.tcdm_addr = value,
                    map::DMA_ROW_BYTES => self.dma_stage.row_bytes = value,
                    map::DMA_ROWS => self.dma_stage.rows = value,
                    map::DMA_EXT_STRIDE => self.dma_stage.ext_stride = value,
                    map::DMA_TCDM_STRIDE => self.dma_stage.tcdm_stride = value,
                    map::DMA_START => {
                        let s = self.dma_stage;
                        let dir = if value & 1 == 0 {
                            DmaDirection::ExtToTcdm
                        } else {
                            DmaDirection::TcdmToExt
                        };
                        self.dma.push(DmaDescriptor {
                            ext_addr: (u64::from(s.ext_hi) << 32) | u64::from(s.ext_lo),
                            tcdm_addr: s.tcdm_addr,
                            row_bytes: s.row_bytes,
                            rows: s.rows.max(1),
                            ext_stride: u64::from(s.ext_stride),
                            tcdm_stride: s.tcdm_stride,
                            dir,
                        });
                    }
                    _ => return Err(BusError::Device { addr }),
                }
                Ok(())
            }
            a if a >= map::L2_BASE => {
                let off = (a - map::L2_BASE) as usize;
                if off + size.bytes() as usize > self.l2.len() {
                    return Err(BusError::Unmapped { addr });
                }
                for i in 0..size.bytes() as usize {
                    self.l2[off + i] = (value >> (8 * i)) as u8;
                }
                Ok(())
            }
            _ => Err(BusError::Unmapped { addr }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntx_isa::{AguConfig, Command, LoopNest, OperandSelect, RegOffset};

    /// The worker-pool farm moves whole clusters (with any attached
    /// HMC/mesh ports) onto worker threads; `Cluster` must stay `Send`.
    #[test]
    fn cluster_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Cluster>();
    }

    fn mac_cfg(x: u32, y: u32, out: u32, n: u32) -> NtxConfig {
        NtxConfig::builder()
            .command(Command::Mac {
                operand: OperandSelect::Memory,
            })
            .loops(LoopNest::vector(n))
            .agu(0, AguConfig::stream(x, 4))
            .agu(1, AguConfig::stream(y, 4))
            .agu(2, AguConfig::fixed(out))
            .build()
            .expect("valid")
    }

    #[test]
    fn single_engine_dot_product() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.write_tcdm_f32(0, &[1.0, 2.0, 3.0]);
        cluster.write_tcdm_f32(0x100, &[1.0, 1.0, 1.0]);
        cluster.offload(0, &mac_cfg(0, 0x100, 0x200, 3));
        cluster.run_to_completion();
        assert_eq!(cluster.read_tcdm_f32(0x200, 1)[0], 6.0);
    }

    #[test]
    fn eight_engines_in_parallel() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let n = 64u32;
        for e in 0..8u32 {
            let base = e * 0x400;
            let xs: Vec<f32> = (0..n).map(|i| (i + e) as f32).collect();
            let ys: Vec<f32> = (0..n).map(|_| 2.0).collect();
            cluster.write_tcdm_f32(base, &xs);
            cluster.write_tcdm_f32(base + 0x200, &ys);
        }
        for e in 0..8 {
            let base = e as u32 * 0x400;
            cluster.offload_with_writes(e, &mac_cfg(base, base + 0x200, base + 0x3fc, n), 4);
        }
        cluster.run_to_completion();
        for e in 0..8u32 {
            let expect: f32 = (0..n).map(|i| (i + e) as f32 * 2.0).sum();
            assert_eq!(
                cluster.read_tcdm_f32(e * 0x400 + 0x3fc, 1)[0],
                expect,
                "engine {e}"
            );
        }
        let perf = cluster.perf();
        assert_eq!(perf.flops, 8 * u64::from(n) * 2);
        assert_eq!(perf.commands_completed, 8);
        // With 8 engines streaming, some conflicts must have occurred.
        assert!(perf.tcdm_requests > 0);
    }

    #[test]
    fn dma_and_compute_overlap() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.write_tcdm_f32(0, &[1.0; 32]);
        cluster.write_tcdm_f32(0x100, &[3.0; 32]);
        cluster.ext_mem().write_f32_slice(0x8000, &[9.0; 256]);
        cluster.dma_push(DmaDescriptor::linear(
            0x8000,
            0x4000,
            1024,
            DmaDirection::ExtToTcdm,
        ));
        cluster.offload_with_writes(0, &mac_cfg(0, 0x100, 0x200, 32), 1);
        cluster.run_to_completion();
        assert_eq!(cluster.read_tcdm_f32(0x200, 1)[0], 96.0);
        assert_eq!(cluster.read_tcdm_f32(0x4000, 1)[0], 9.0);
        let perf = cluster.perf();
        assert_eq!(perf.dma_bytes, 1024);
        assert!(perf.ext_bytes_read >= 1024);
    }

    #[test]
    fn peak_numbers_match_table_1() {
        let c = ClusterConfig::default();
        assert!((c.peak_flops() - 20.0e9).abs() < 1.0);
        assert!((c.peak_bandwidth() - 5.0e9).abs() < 1.0);
    }

    #[test]
    fn offload_costs_cycles() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let c0 = cluster.cycle();
        cluster.offload(0, &mac_cfg(0, 0x100, 0x200, 1));
        // 29 writes at 2 cycles each.
        assert_eq!(cluster.cycle() - c0, 58);
        assert_eq!(cluster.offload_writes(), 29);
    }

    #[test]
    fn broadcast_reaches_all_engines() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.write_tcdm_f32(0, &[2.0, 2.0]);
        cluster.write_tcdm_f32(0x100, &[5.0, 5.0]);
        cluster.offload_broadcast(&mac_cfg(0, 0x100, 0x200, 2));
        cluster.run_to_completion();
        // All engines computed the same dot product into the same cell.
        assert_eq!(cluster.read_tcdm_f32(0x200, 1)[0], 20.0);
        let perf = cluster.perf();
        assert_eq!(perf.commands_completed, 8);
    }

    #[test]
    fn mmio_bus_tcdm_and_l2() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.write(0x40, AccessSize::Word, 0x1234_5678).unwrap();
        assert_eq!(cluster.read(0x40, AccessSize::Word).unwrap(), 0x1234_5678);
        assert_eq!(cluster.read(0x41, AccessSize::Byte).unwrap(), 0x56);
        cluster
            .write(map::L2_BASE + 8, AccessSize::Word, 0xabcd_0123)
            .unwrap();
        assert_eq!(
            cluster.read(map::L2_BASE + 8, AccessSize::Word).unwrap(),
            0xabcd_0123
        );
        assert!(cluster.read(0x4000_0000, AccessSize::Word).is_err());
    }

    #[test]
    fn mmio_ntx_window_drives_engine() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.write_tcdm_f32(0, &[4.0, 4.0]);
        cluster.write_tcdm_f32(0x100, &[0.5, 0.5]);
        let cfg = mac_cfg(0, 0x100, 0x200, 2);
        let mut image = ntx_isa::RegFile::new();
        image.load_config(&cfg);
        let base = map::NTX_BASE;
        for off in (0..NTX_REGFILE_BYTES).step_by(4) {
            if off == RegOffset::COMMAND || off == RegOffset::STATUS {
                continue;
            }
            let v = image.read(off, false).unwrap();
            cluster.write(base + off, AccessSize::Word, v).unwrap();
        }
        cluster
            .write(
                base + RegOffset::COMMAND,
                AccessSize::Word,
                cfg.command.encode(),
            )
            .unwrap();
        assert_eq!(
            cluster
                .read(base + RegOffset::STATUS, AccessSize::Word)
                .unwrap(),
            1
        );
        cluster.run_to_completion();
        assert_eq!(cluster.read_tcdm_f32(0x200, 1)[0], 4.0);
    }

    #[test]
    fn mmio_dma_descriptor_block() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.ext_mem().write_f32_slice(0x100, &[1.5, 2.5]);
        let b = map::DMA_BASE;
        cluster
            .write(b + map::DMA_EXT_LO, AccessSize::Word, 0x100)
            .unwrap();
        cluster
            .write(b + map::DMA_EXT_HI, AccessSize::Word, 0)
            .unwrap();
        cluster
            .write(b + map::DMA_TCDM, AccessSize::Word, 0x300)
            .unwrap();
        cluster
            .write(b + map::DMA_ROW_BYTES, AccessSize::Word, 8)
            .unwrap();
        cluster
            .write(b + map::DMA_ROWS, AccessSize::Word, 1)
            .unwrap();
        cluster
            .write(b + map::DMA_EXT_STRIDE, AccessSize::Word, 8)
            .unwrap();
        cluster
            .write(b + map::DMA_TCDM_STRIDE, AccessSize::Word, 8)
            .unwrap();
        cluster
            .write(b + map::DMA_START, AccessSize::Word, 0)
            .unwrap();
        assert_eq!(
            cluster.read(b + map::DMA_STATUS, AccessSize::Word).unwrap(),
            1
        );
        cluster.run_to_completion();
        assert_eq!(cluster.read_tcdm_f32(0x300, 2), vec![1.5, 2.5]);
    }

    #[test]
    fn shared_hmc_port_stretches_timing_but_not_data() {
        use ntx_mem::hmc::{HmcConfig, HmcSubsystem};
        // 8 GB/s LoB split 16 ways = 0.1 words/cycle per port: a hard
        // throttle against the 1-word AXI port.
        let sub = HmcSubsystem::new(
            HmcConfig::default().with_interconnect_bits(64),
            16,
            1.25e9,
            1,
        );
        let run = |ext_port| {
            let mut cluster = Cluster::new(ClusterConfig {
                ext_port,
                ..ClusterConfig::default()
            });
            cluster.write_tcdm_f32(0, &[1.0; 32]);
            cluster.write_tcdm_f32(0x100, &[3.0; 32]);
            cluster.ext_mem().write_f32_slice(0x8000, &[9.0; 256]);
            cluster.dma_push(DmaDescriptor::linear(
                0x8000,
                0x4000,
                1024,
                DmaDirection::ExtToTcdm,
            ));
            cluster.offload_with_writes(0, &mac_cfg(0, 0x100, 0x200, 32), 1);
            cluster.run_to_completion();
            let data = (
                cluster.read_tcdm_f32(0x200, 1)[0],
                cluster.read_tcdm_f32(0x4000, 256),
            );
            (data, cluster.cycle(), cluster.perf())
        };
        let (ideal_data, ideal_cycles, ideal_perf) = run(None);
        let (contended_data, contended_cycles, contended_perf) = run(Some(sub.port(3)));
        assert_eq!(ideal_data, contended_data, "contention must not touch data");
        assert!(
            contended_cycles > 2 * ideal_cycles,
            "0.1 words/cycle must stretch the DMA-bound run ({contended_cycles} vs {ideal_cycles})"
        );
        assert_eq!(ideal_perf.ext_wait_cycles, 0);
        assert!(contended_perf.ext_wait_cycles > 0);
        // Traffic is identical either way — only its timing moved.
        assert_eq!(ideal_perf.dma_bytes, contended_perf.dma_bytes);
        assert_eq!(ideal_perf.ext_bytes_read, contended_perf.ext_bytes_read);
        assert_eq!(ideal_perf.flops, contended_perf.flops);
    }

    #[test]
    fn conflict_probability_is_plausible_under_streaming() {
        // 8 engines streaming disjoint regions: conflicts happen but
        // round-robin keeps the system fair; the measured probability
        // should be in the same regime as the paper's 13 %.
        let mut cluster = Cluster::new(ClusterConfig::default());
        let n = 512u32;
        for e in 0..8u32 {
            let base = e * 0x1800;
            cluster.write_tcdm_f32(base, &vec![1.0; n as usize]);
            cluster.write_tcdm_f32(base + 0x800, &vec![1.0; n as usize]);
        }
        for e in 0..8 {
            let base = e as u32 * 0x1800;
            cluster.offload_with_writes(e, &mac_cfg(base, base + 0x800, base + 0x17fc, n), 1);
        }
        cluster.run_to_completion();
        let p = cluster.perf().conflict_probability();
        assert!(p > 0.0 && p < 0.5, "conflict probability {p} out of regime");
    }
}
