//! Compiling networks into servable training-step job DAGs.
//!
//! The cost model in [`training`](crate::TrainingModel) *predicts* what
//! one training step costs; this module *builds* one: every compute
//! layer of a [`Network`] is lowered to GEMM operations — forward,
//! backward-by-data, backward-by-weights — linked by dependency edges,
//! so the whole step can be submitted to the serving stack as a job
//! DAG (`session.job(..).gemm(..).after_id(..)`) and executed by any
//! backend. The lowering is the standard im2col view:
//!
//! * conv forward: `M = c_out`, `K = c_in·kh·kw`, `N = out_h·out_w`;
//! * conv backward-by-data: `M = c_in`, `K = c_out·kh·kw`, `N = h·w`;
//! * conv backward-by-weights: `M = c_out`, `K = out_h·out_w`,
//!   `N = c_in·kh·kw`;
//! * fully-connected layers are the degenerate `1×1` case with the
//!   minibatch as the `N` dimension.
//!
//! Pooling layers carry no MACs; they contribute no ops but forward
//! their dependency so the chain stays connected. Edges follow the
//! data: forward ops chain layer to layer; each backward-by-data op
//! waits on the downstream gradient and its own forward op; each
//! backward-by-weights op waits on the downstream gradient and the
//! *previous* layer's forward activations — which leaves the two
//! backward ops of one layer free to run concurrently.
//!
//! Full-size ImageNet layers are far too large for a cycle-accurate
//! run, so [`TrainingStep::scaled`] caps every GEMM dimension while
//! preserving the DAG shape — the form the simulator and the bit-exact
//! native backend execute and cross-check in the `report-dnn` bench.

use ntx_kernels::blas::GemmKernel;

use crate::layer::{Layer, Network};

/// Which training pass an op belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Forward activation computation.
    Forward,
    /// Gradient with respect to the layer input.
    BackwardData,
    /// Gradient with respect to the layer weights.
    BackwardWeight,
}

impl Pass {
    /// Short label used in op names ("fwd", "bwd-d", "bwd-w").
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Pass::Forward => "fwd",
            Pass::BackwardData => "bwd-d",
            Pass::BackwardWeight => "bwd-w",
        }
    }
}

/// One GEMM operation of a compiled training step.
#[derive(Debug, Clone)]
pub struct StepOp {
    /// Human-readable name, e.g. `"conv3 bwd-w"`.
    pub name: String,
    /// Which pass the op implements.
    pub pass: Pass,
    /// Index of the source layer in the network's layer list.
    pub layer: usize,
    /// The im2col GEMM dimensions.
    pub dims: GemmKernel,
    /// Indices of predecessor ops in [`TrainingStep::ops`]. Always
    /// strictly smaller than this op's own index, so the list order is
    /// a valid topological order.
    pub deps: Vec<usize>,
}

impl StepOp {
    /// Deterministic operand data for this op: `(A, B)` sized to
    /// `dims`, seeded per op so every layer gets distinct values.
    /// Values are multiples of 1/16 in `[-2, 2)` — products and small
    /// sums stay exactly representable, keeping cross-backend
    /// bit-compares meaningful.
    #[must_use]
    pub fn gemm_data(&self, seed: u32) -> (Vec<f32>, Vec<f32>) {
        let data = |n: usize, mut s: u32| -> Vec<f32> {
            s = s.wrapping_mul(0x9e37_79b9) | 1;
            (0..n)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 17;
                    s ^= s << 5;
                    ((s % 64) as f32 - 32.0) / 16.0
                })
                .collect()
        };
        let a = data((self.dims.m * self.dims.k) as usize, seed);
        let b = data(
            (self.dims.k * self.dims.n) as usize,
            seed.wrapping_add(0x5bd1),
        );
        (a, b)
    }
}

/// A whole training step compiled to a GEMM job DAG.
#[derive(Debug, Clone)]
pub struct TrainingStep {
    /// Name of the source network.
    pub network: String,
    /// Ops in a valid topological order (every dep precedes its user).
    pub ops: Vec<StepOp>,
    /// The minibatch size the step was compiled for.
    pub batch: u32,
}

impl TrainingStep {
    /// Total multiply-accumulates across all ops (each GEMM is
    /// `m·k·n` MACs).
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| u64::from(op.dims.m) * u64::from(op.dims.k) * u64::from(op.dims.n))
            .sum()
    }

    /// The same DAG with every GEMM dimension clamped to `cap` (≥ 1):
    /// identical op list, names and edges, but sizes a cycle-accurate
    /// simulator can execute. Used by the `report-dnn` bench to
    /// cross-check simulator and native backends bit-for-bit.
    #[must_use]
    pub fn scaled(&self, cap: u32) -> TrainingStep {
        let cap = cap.max(1);
        let mut s = self.clone();
        for op in &mut s.ops {
            op.dims.m = op.dims.m.min(cap);
            op.dims.k = op.dims.k.min(cap);
            op.dims.n = op.dims.n.min(cap);
        }
        s
    }

    /// Checks the topological invariant: every dependency index is in
    /// range and strictly precedes its user.
    #[must_use]
    pub fn is_topological(&self) -> bool {
        self.ops
            .iter()
            .enumerate()
            .all(|(i, op)| op.deps.iter().all(|&d| d < i))
    }
}

/// The GEMM view of one compute layer, per pass. Pooling layers yield
/// `None` (no MACs).
fn lower(layer: &Layer, pass: Pass, batch: u32) -> Option<GemmKernel> {
    match layer {
        Layer::Conv(c) => {
            let (oh, ow) = (c.out_h(), c.out_w());
            Some(match pass {
                Pass::Forward => GemmKernel {
                    m: c.c_out,
                    k: c.c_in * c.kh * c.kw,
                    n: oh * ow,
                },
                Pass::BackwardData => GemmKernel {
                    m: c.c_in,
                    k: c.c_out * c.kh * c.kw,
                    n: c.h * c.w,
                },
                Pass::BackwardWeight => GemmKernel {
                    m: c.c_out,
                    k: oh * ow,
                    n: c.c_in * c.kh * c.kw,
                },
            })
        }
        Layer::Fc(f) => Some(match pass {
            Pass::Forward => GemmKernel {
                m: f.outputs,
                k: f.inputs,
                n: batch,
            },
            Pass::BackwardData => GemmKernel {
                m: f.inputs,
                k: f.outputs,
                n: batch,
            },
            Pass::BackwardWeight => GemmKernel {
                m: f.outputs,
                k: batch,
                n: f.inputs,
            },
        }),
        Layer::Pool(_) => None,
    }
}

/// Short per-layer name ("conv0", "fc5", …).
fn layer_tag(layer: &Layer, index: usize) -> String {
    match layer {
        Layer::Conv(_) => format!("conv{index}"),
        Layer::Fc(_) => format!("fc{index}"),
        Layer::Pool(_) => format!("pool{index}"),
    }
}

/// Compiles one training step of `net` (minibatch `batch`) into a GEMM
/// job DAG. Conv dims are per sample (activation GEMMs repeat per
/// sample on a real farm; the DAG models the dependency structure, not
/// the replication); FC layers batch along `N`. The first compute
/// layer emits no backward-by-data op — input gradients are unused.
#[must_use]
pub fn training_step(net: &Network, batch: u32) -> TrainingStep {
    let batch = batch.max(1);
    let mut ops: Vec<StepOp> = Vec::new();
    // Forward chain. `fwd[i]` is the op index of layer i's forward
    // GEMM; pooling layers forward their producer's index so the
    // chain never breaks.
    let mut fwd: Vec<Option<usize>> = Vec::with_capacity(net.layers.len());
    let mut prev: Option<usize> = None;
    for (i, layer) in net.layers.iter().enumerate() {
        match lower(layer, Pass::Forward, batch) {
            Some(dims) => {
                let idx = ops.len();
                ops.push(StepOp {
                    name: format!("{} {}", layer_tag(layer, i), Pass::Forward.tag()),
                    pass: Pass::Forward,
                    layer: i,
                    dims,
                    deps: prev.into_iter().collect(),
                });
                prev = Some(idx);
                fwd.push(Some(idx));
            }
            None => fwd.push(prev),
        }
    }
    // Backward sweep, last compute layer first. `grad` is the op that
    // produces the gradient flowing into the next-earlier layer.
    let mut grad: Option<usize> = prev;
    let compute_layers: Vec<usize> = (0..net.layers.len())
        .filter(|&i| !matches!(net.layers[i], Layer::Pool(_)))
        .collect();
    for (pos, &i) in compute_layers.iter().enumerate().rev() {
        let layer = &net.layers[i];
        // Weight gradient: needs the incoming gradient and the
        // previous layer's forward activations.
        if let Some(dims) = lower(layer, Pass::BackwardWeight, batch) {
            let mut deps: Vec<usize> = grad.into_iter().collect();
            if pos > 0 {
                if let Some(f) = fwd[compute_layers[pos - 1]] {
                    if !deps.contains(&f) {
                        deps.push(f);
                    }
                }
            }
            ops.push(StepOp {
                name: format!("{} {}", layer_tag(layer, i), Pass::BackwardWeight.tag()),
                pass: Pass::BackwardWeight,
                layer: i,
                dims,
                deps,
            });
        }
        // Data gradient: becomes the incoming gradient of the
        // next-earlier compute layer. The first compute layer skips it.
        if pos > 0 {
            if let Some(dims) = lower(layer, Pass::BackwardData, batch) {
                let mut deps: Vec<usize> = grad.into_iter().collect();
                if let Some(f) = fwd[i] {
                    if !deps.contains(&f) {
                        deps.push(f);
                    }
                }
                let idx = ops.len();
                ops.push(StepOp {
                    name: format!("{} {}", layer_tag(layer, i), Pass::BackwardData.tag()),
                    pass: Pass::BackwardData,
                    layer: i,
                    dims,
                    deps,
                });
                grad = Some(idx);
            }
        }
    }
    TrainingStep {
        network: net.name.to_string(),
        ops,
        batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks;

    #[test]
    fn alexnet_step_is_a_topological_dag() {
        let net = networks::alexnet();
        let step = training_step(&net, 64);
        assert!(step.is_topological());
        let compute = net
            .layers
            .iter()
            .filter(|l| !matches!(l, Layer::Pool(_)))
            .count();
        // Every compute layer: fwd + bwd-w; all but the first: bwd-d.
        assert_eq!(step.ops.len(), 3 * compute - 1);
        assert!(step.total_macs() > 0);
        // The forward chain is connected: each forward op (after the
        // first) depends on the previous forward op.
        let fwds: Vec<usize> = step
            .ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.pass == Pass::Forward)
            .map(|(i, _)| i)
            .collect();
        for w in fwds.windows(2) {
            assert!(step.ops[w[1]].deps.contains(&w[0]));
        }
    }

    #[test]
    fn conv_lowering_is_im2col() {
        use crate::layer::ConvLayer;
        let net = Network {
            name: "one-conv",
            layers: vec![Layer::Conv(ConvLayer::square(8, 8, 3, 16, 3, 1))],
        };
        let step = training_step(&net, 4);
        // Single layer: fwd + bwd-w only.
        assert_eq!(step.ops.len(), 2);
        let f = &step.ops[0];
        assert_eq!((f.dims.m, f.dims.k, f.dims.n), (16, 27, 64));
        let w = &step.ops[1];
        assert_eq!(w.pass, Pass::BackwardWeight);
        assert_eq!((w.dims.m, w.dims.k, w.dims.n), (16, 64, 27));
        // GEMM MACs match the layer-count MACs for the forward op.
        assert_eq!(
            u64::from(f.dims.m) * u64::from(f.dims.k) * u64::from(f.dims.n),
            net.layers[0].macs()
        );
    }

    #[test]
    fn backward_ops_of_one_layer_are_concurrent() {
        let net = networks::alexnet();
        let step = training_step(&net, 64);
        for (i, op) in step.ops.iter().enumerate() {
            if op.pass != Pass::BackwardWeight {
                continue;
            }
            // The matching bwd-d op of the same layer (when present)
            // must not depend on the bwd-w op or vice versa.
            if let Some((j, other)) = step
                .ops
                .iter()
                .enumerate()
                .find(|(_, o)| o.layer == op.layer && o.pass == Pass::BackwardData)
            {
                assert!(!op.deps.contains(&j));
                assert!(!other.deps.contains(&i));
            }
        }
    }

    #[test]
    fn scaling_preserves_shape_and_bounds_dims() {
        let step = training_step(&networks::alexnet(), 64);
        let small = step.scaled(24);
        assert_eq!(small.ops.len(), step.ops.len());
        assert!(small.is_topological());
        for (a, b) in step.ops.iter().zip(&small.ops) {
            assert_eq!(a.deps, b.deps);
            assert!(b.dims.m <= 24 && b.dims.k <= 24 && b.dims.n <= 24);
            assert!(b.dims.m >= 1 && b.dims.k >= 1 && b.dims.n >= 1);
        }
    }

    #[test]
    fn gemm_data_is_deterministic_and_sized() {
        let step = training_step(&networks::alexnet(), 64).scaled(16);
        let op = &step.ops[0];
        let (a1, b1) = op.gemm_data(7);
        let (a2, b2) = op.gemm_data(7);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_eq!(a1.len(), (op.dims.m * op.dims.k) as usize);
        assert_eq!(b1.len(), (op.dims.k * op.dims.n) as usize);
        let (a3, _) = op.gemm_data(8);
        assert_ne!(a1, a3);
    }
}
