//! DNN workload models for the Table II training-efficiency study.
//!
//! The paper evaluates NTX configurations on six convolutional networks
//! — AlexNet, GoogLeNet, Inception-v3, ResNet-34/50/152 — reporting the
//! energy efficiency of one full-precision training pass. This crate
//! provides layer-exact descriptions of those networks
//! ([`networks`]), per-layer compute/parameter/activation accounting
//! ([`Layer`]), and the training-pass cost model ([`training`]) that
//! the system-level evaluation in `ntx-model` consumes.
//!
//! # Example
//!
//! ```
//! use ntx_dnn::networks;
//!
//! let net = networks::alexnet();
//! // AlexNet forward pass ≈ 0.7 GMAC.
//! let gmacs = net.total_macs() as f64 / 1e9;
//! assert!(gmacs > 0.5 && gmacs < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
mod layer;
pub mod networks;
mod training;

pub use compile::{Pass, StepOp, TrainingStep};
pub use layer::{ConvLayer, FcLayer, Layer, Network, PoolLayer};
pub use training::{TrainingCost, TrainingModel};
