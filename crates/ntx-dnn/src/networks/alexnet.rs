//! AlexNet [20] — 5 convolutions (two-tower grouping on conv2/4/5) and
//! three fully-connected layers; ≈0.72 GMAC, ≈61 M parameters.

use crate::layer::{ConvLayer, FcLayer, Layer, Network, PoolLayer};

/// Builds the AlexNet layer table.
#[must_use]
pub fn alexnet() -> Network {
    let mut layers = Vec::new();
    // conv1: 11×11/4, 3→96, output 55×55.
    layers.push(Layer::Conv(ConvLayer::square(220, 220, 3, 96, 11, 4)));
    layers.push(Layer::Pool(PoolLayer {
        h: 54,
        w: 54,
        c: 96,
        k: 3,
        stride: 2,
    }));
    // conv2: 5×5, 96→256, grouped (2): effective c_in 48, output 27×27.
    layers.push(Layer::Conv(ConvLayer::square(27, 27, 48, 256, 5, 1)));
    layers.push(Layer::Pool(PoolLayer {
        h: 26,
        w: 26,
        c: 256,
        k: 3,
        stride: 2,
    }));
    // conv3: 3×3, 256→384, output 13×13.
    layers.push(Layer::Conv(ConvLayer::square(13, 13, 256, 384, 3, 1)));
    // conv4: 3×3, 384→384, grouped (2).
    layers.push(Layer::Conv(ConvLayer::square(13, 13, 192, 384, 3, 1)));
    // conv5: 3×3, 384→256, grouped (2).
    layers.push(Layer::Conv(ConvLayer::square(13, 13, 192, 256, 3, 1)));
    layers.push(Layer::Pool(PoolLayer {
        h: 13,
        w: 13,
        c: 256,
        k: 3,
        stride: 2,
    }));
    // fc6/fc7/fc8 dominate the parameter count.
    layers.push(Layer::Fc(FcLayer {
        inputs: 9216,
        outputs: 4096,
    }));
    layers.push(Layer::Fc(FcLayer {
        inputs: 4096,
        outputs: 4096,
    }));
    layers.push(Layer::Fc(FcLayer {
        inputs: 4096,
        outputs: 1000,
    }));
    Network {
        name: "AlexNet",
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv1_produces_55x55() {
        let net = alexnet();
        if let Layer::Conv(c) = net.layers[0] {
            assert_eq!(c.out_h(), 55);
            assert_eq!(c.activations_out(), 55 * 55 * 96);
        } else {
            panic!("first layer must be conv1");
        }
    }

    #[test]
    fn fc_layers_dominate_parameters() {
        let net = alexnet();
        let fc_params: u64 = net
            .layers
            .iter()
            .filter(|l| matches!(l, Layer::Fc(_)))
            .map(Layer::params)
            .sum();
        assert!(fc_params * 10 > net.total_params() * 9);
    }
}
