//! GoogLeNet [10] — the 9-module Inception-v1 network.

use crate::layer::{ConvLayer, FcLayer, Layer, Network, PoolLayer};

/// Appends one inception module at spatial size `s` with the branch
/// widths of Table 1 of [10]: `ch1` (1×1), `ch3r→ch3` (3×3 branch),
/// `ch5r→ch5` (5×5 branch), `pool_proj` (pooling projection). Returns
/// the module's output channel count.
fn inception(
    layers: &mut Vec<Layer>,
    s: u32,
    c_in: u32,
    ch1: u32,
    ch3r: u32,
    ch3: u32,
    ch5r: u32,
    ch5: u32,
    pool_proj: u32,
) -> u32 {
    layers.push(Layer::Conv(ConvLayer::square(s, s, c_in, ch1, 1, 1)));
    layers.push(Layer::Conv(ConvLayer::square(s, s, c_in, ch3r, 1, 1)));
    layers.push(Layer::Conv(ConvLayer::square(s, s, ch3r, ch3, 3, 1)));
    layers.push(Layer::Conv(ConvLayer::square(s, s, c_in, ch5r, 1, 1)));
    layers.push(Layer::Conv(ConvLayer::square(s, s, ch5r, ch5, 5, 1)));
    layers.push(Layer::Pool(PoolLayer {
        h: s,
        w: s,
        c: c_in,
        k: 3,
        stride: 1,
    }));
    layers.push(Layer::Conv(ConvLayer::square(s, s, c_in, pool_proj, 1, 1)));
    ch1 + ch3 + ch5 + pool_proj
}

/// Builds the GoogLeNet layer table.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn googlenet() -> Network {
    let mut layers = Vec::new();
    // Stem.
    layers.push(Layer::Conv(ConvLayer::square(224, 224, 3, 64, 7, 2))); // 112
    layers.push(Layer::Pool(PoolLayer {
        h: 112,
        w: 112,
        c: 64,
        k: 3,
        stride: 2,
    })); // 56
    layers.push(Layer::Conv(ConvLayer::square(56, 56, 64, 64, 1, 1)));
    layers.push(Layer::Conv(ConvLayer::square(56, 56, 64, 192, 3, 1)));
    layers.push(Layer::Pool(PoolLayer {
        h: 56,
        w: 56,
        c: 192,
        k: 3,
        stride: 2,
    })); // 28
         // Inception 3a/3b at 28×28.
    let c = inception(&mut layers, 28, 192, 64, 96, 128, 16, 32, 32);
    let c = inception(&mut layers, 28, c, 128, 128, 192, 32, 96, 64);
    layers.push(Layer::Pool(PoolLayer {
        h: 28,
        w: 28,
        c,
        k: 3,
        stride: 2,
    })); // 14
         // Inception 4a–4e at 14×14.
    let c = inception(&mut layers, 14, c, 192, 96, 208, 16, 48, 64);
    let c = inception(&mut layers, 14, c, 160, 112, 224, 24, 64, 64);
    let c = inception(&mut layers, 14, c, 128, 128, 256, 24, 64, 64);
    let c = inception(&mut layers, 14, c, 112, 144, 288, 32, 64, 64);
    let c = inception(&mut layers, 14, c, 256, 160, 320, 32, 128, 128);
    layers.push(Layer::Pool(PoolLayer {
        h: 14,
        w: 14,
        c,
        k: 3,
        stride: 2,
    })); // 7
         // Inception 5a/5b at 7×7.
    let c = inception(&mut layers, 7, c, 256, 160, 320, 32, 128, 128);
    let c = inception(&mut layers, 7, c, 384, 192, 384, 48, 128, 128);
    // Global average pool + classifier.
    layers.push(Layer::Pool(PoolLayer {
        h: 7,
        w: 7,
        c,
        k: 7,
        stride: 7,
    }));
    layers.push(Layer::Fc(FcLayer {
        inputs: c,
        outputs: 1000,
    }));
    Network {
        name: "GoogLeNet",
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_output_channels_match_the_paper() {
        let mut layers = Vec::new();
        // Inception 3a: 64 + 128 + 32 + 32 = 256.
        assert_eq!(
            inception(&mut layers, 28, 192, 64, 96, 128, 16, 32, 32),
            256
        );
    }

    #[test]
    fn final_classifier_sees_1024_channels() {
        let net = googlenet();
        let Some(Layer::Fc(fc)) = net.layers.last() else {
            panic!("last layer must be the classifier");
        };
        assert_eq!(fc.inputs, 1024); // 384+384+128+128
        assert_eq!(fc.outputs, 1000);
    }

    #[test]
    fn much_lighter_in_parameters_than_alexnet() {
        // GoogLeNet's famous claim: ~12× fewer parameters than AlexNet.
        let g = googlenet().total_params();
        let a = super::super::alexnet().total_params();
        assert!(a > 7 * g, "AlexNet {a} vs GoogLeNet {g}");
    }
}
