//! Inception-v3 [21] — factorised inception modules at 35/17/8 spatial
//! resolution; ≈5.7 GMAC.

use crate::layer::{ConvLayer, FcLayer, Layer, Network, PoolLayer};

fn conv(layers: &mut Vec<Layer>, s: u32, c_in: u32, c_out: u32, kh: u32, kw: u32, stride: u32) {
    layers.push(Layer::Conv(ConvLayer {
        h: s,
        w: s,
        c_in,
        c_out,
        kh,
        kw,
        stride,
    }));
}

/// Inception-A at 35×35 (5×5 branch, double-3×3 branch, pool proj).
fn inception_a(layers: &mut Vec<Layer>, c_in: u32, pool_features: u32) -> u32 {
    let s = 35;
    conv(layers, s, c_in, 64, 1, 1, 1);
    conv(layers, s, c_in, 48, 1, 1, 1);
    conv(layers, s, 48, 64, 5, 5, 1);
    conv(layers, s, c_in, 64, 1, 1, 1);
    conv(layers, s, 64, 96, 3, 3, 1);
    conv(layers, s, 96, 96, 3, 3, 1);
    conv(layers, s, c_in, pool_features, 1, 1, 1);
    64 + 64 + 96 + pool_features
}

/// Reduction-A: 35×35 → 17×17.
fn reduction_a(layers: &mut Vec<Layer>, c_in: u32) -> u32 {
    conv(layers, 35, c_in, 384, 3, 3, 2);
    conv(layers, 35, c_in, 64, 1, 1, 1);
    conv(layers, 35, 64, 96, 3, 3, 1);
    conv(layers, 35, 96, 96, 3, 3, 2);
    layers.push(Layer::Pool(PoolLayer {
        h: 35,
        w: 35,
        c: c_in,
        k: 3,
        stride: 2,
    }));
    384 + 96 + c_in
}

/// Inception-B at 17×17 with factorised 7×7 branches of width `c7`.
fn inception_b(layers: &mut Vec<Layer>, c_in: u32, c7: u32) -> u32 {
    let s = 17;
    conv(layers, s, c_in, 192, 1, 1, 1);
    // 7×7 branch: 1×1, 1×7, 7×1.
    conv(layers, s, c_in, c7, 1, 1, 1);
    conv(layers, s, c7, c7, 1, 7, 1);
    conv(layers, s, c7, 192, 7, 1, 1);
    // Double 7×7 branch.
    conv(layers, s, c_in, c7, 1, 1, 1);
    conv(layers, s, c7, c7, 7, 1, 1);
    conv(layers, s, c7, c7, 1, 7, 1);
    conv(layers, s, c7, c7, 7, 1, 1);
    conv(layers, s, c7, 192, 1, 7, 1);
    // Pool projection.
    conv(layers, s, c_in, 192, 1, 1, 1);
    4 * 192
}

/// Reduction-B: 17×17 → 8×8.
fn reduction_b(layers: &mut Vec<Layer>, c_in: u32) -> u32 {
    conv(layers, 17, c_in, 192, 1, 1, 1);
    conv(layers, 17, 192, 320, 3, 3, 2);
    conv(layers, 17, c_in, 192, 1, 1, 1);
    conv(layers, 17, 192, 192, 1, 7, 1);
    conv(layers, 17, 192, 192, 7, 1, 1);
    conv(layers, 17, 192, 192, 3, 3, 2);
    layers.push(Layer::Pool(PoolLayer {
        h: 17,
        w: 17,
        c: c_in,
        k: 3,
        stride: 2,
    }));
    320 + 192 + c_in
}

/// Inception-C at 8×8 (split 3×3 branches).
fn inception_c(layers: &mut Vec<Layer>, c_in: u32) -> u32 {
    let s = 8;
    conv(layers, s, c_in, 320, 1, 1, 1);
    conv(layers, s, c_in, 384, 1, 1, 1);
    conv(layers, s, 384, 384, 1, 3, 1);
    conv(layers, s, 384, 384, 3, 1, 1);
    conv(layers, s, c_in, 448, 1, 1, 1);
    conv(layers, s, 448, 384, 3, 3, 1);
    conv(layers, s, 384, 384, 1, 3, 1);
    conv(layers, s, 384, 384, 3, 1, 1);
    conv(layers, s, c_in, 192, 1, 1, 1);
    320 + 768 + 768 + 192
}

/// Builds the Inception-v3 layer table.
#[must_use]
pub fn inception_v3() -> Network {
    let mut layers = Vec::new();
    // Stem: 299 → 149 → 147 → 73 → 71 → 35 (canonical sizes).
    conv(&mut layers, 299, 3, 32, 3, 3, 2); // 150
    conv(&mut layers, 149, 32, 32, 3, 3, 1);
    conv(&mut layers, 147, 32, 64, 3, 3, 1);
    layers.push(Layer::Pool(PoolLayer {
        h: 147,
        w: 147,
        c: 64,
        k: 3,
        stride: 2,
    })); // 74 ≈ 73
    conv(&mut layers, 73, 64, 80, 1, 1, 1);
    conv(&mut layers, 73, 80, 192, 3, 3, 1);
    layers.push(Layer::Pool(PoolLayer {
        h: 71,
        w: 71,
        c: 192,
        k: 3,
        stride: 2,
    })); // 36 ≈ 35
         // 3× Inception-A.
    let c = inception_a(&mut layers, 192, 32);
    let c = inception_a(&mut layers, c, 64);
    let c = inception_a(&mut layers, c, 64);
    // Reduction-A.
    let c = reduction_a(&mut layers, c);
    // 4× Inception-B with growing 7×7 widths.
    let c = inception_b(&mut layers, c, 128);
    let c = inception_b(&mut layers, c, 160);
    let c = inception_b(&mut layers, c, 160);
    let c = inception_b(&mut layers, c, 192);
    // Reduction-B.
    let c = reduction_b(&mut layers, c);
    // 2× Inception-C.
    let c = inception_c(&mut layers, c);
    let c = inception_c(&mut layers, c);
    // Classifier.
    layers.push(Layer::Pool(PoolLayer {
        h: 8,
        w: 8,
        c,
        k: 8,
        stride: 8,
    }));
    layers.push(Layer::Fc(FcLayer {
        inputs: c,
        outputs: 1000,
    }));
    Network {
        name: "Inception-v3",
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_channel_arithmetic() {
        let mut l = Vec::new();
        assert_eq!(inception_a(&mut l, 192, 32), 256);
        assert_eq!(reduction_a(&mut l, 288), 768);
        assert_eq!(inception_b(&mut l, 768, 128), 768);
        assert_eq!(reduction_b(&mut l, 768), 1280);
        assert_eq!(inception_c(&mut l, 1280), 2048);
    }

    #[test]
    fn classifier_input_is_2048() {
        let net = inception_v3();
        let Some(Layer::Fc(fc)) = net.layers.last() else {
            panic!("classifier missing");
        };
        assert_eq!(fc.inputs, 2048);
    }
}
