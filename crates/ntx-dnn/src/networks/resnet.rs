//! Deep residual networks [11]: ResNet-34 (basic blocks) and
//! ResNet-50/152 (bottleneck blocks), generated from the stage table of
//! the paper.

use crate::layer::{ConvLayer, FcLayer, Layer, Network, PoolLayer};

fn conv(layers: &mut Vec<Layer>, s: u32, c_in: u32, c_out: u32, k: u32, stride: u32) {
    layers.push(Layer::Conv(ConvLayer::square(s, s, c_in, c_out, k, stride)));
}

fn stem(layers: &mut Vec<Layer>) {
    conv(layers, 224, 3, 64, 7, 2); // 112
    layers.push(Layer::Pool(PoolLayer {
        h: 112,
        w: 112,
        c: 64,
        k: 3,
        stride: 2,
    })); // 56
}

/// A basic residual block: two 3×3 convolutions (ResNet-18/34).
/// `stride` applies to the first conv; a strided block also adds the
/// 1×1 projection on the shortcut.
fn basic_block(layers: &mut Vec<Layer>, s: u32, c_in: u32, c_out: u32, stride: u32) {
    conv(layers, s, c_in, c_out, 3, stride);
    let s_out = s / stride;
    conv(layers, s_out, c_out, c_out, 3, 1);
    if stride != 1 || c_in != c_out {
        conv(layers, s, c_in, c_out, 1, stride); // projection shortcut
    }
}

/// A bottleneck block: 1×1 reduce, 3×3, 1×1 expand (×4) (ResNet-50+).
fn bottleneck_block(layers: &mut Vec<Layer>, s: u32, c_in: u32, width: u32, stride: u32) {
    let c_out = 4 * width;
    conv(layers, s, c_in, width, 1, 1);
    conv(layers, s, width, width, 3, stride);
    let s_out = s / stride;
    conv(layers, s_out, width, c_out, 1, 1);
    if stride != 1 || c_in != c_out {
        conv(layers, s, c_in, c_out, 1, stride);
    }
}

fn residual_network(name: &'static str, blocks: [u32; 4], bottleneck: bool) -> Network {
    let mut layers = Vec::new();
    stem(&mut layers);
    let widths = [64u32, 128, 256, 512];
    let mut s = 56u32;
    let mut c_in = 64u32;
    for (stage, (&width, &count)) in widths.iter().zip(&blocks).enumerate() {
        for b in 0..count {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            if bottleneck {
                bottleneck_block(&mut layers, s, c_in, width, stride);
                c_in = 4 * width;
            } else {
                basic_block(&mut layers, s, c_in, width, stride);
                c_in = width;
            }
            s /= stride;
        }
    }
    layers.push(Layer::Pool(PoolLayer {
        h: s,
        w: s,
        c: c_in,
        k: s,
        stride: s,
    }));
    layers.push(Layer::Fc(FcLayer {
        inputs: c_in,
        outputs: 1000,
    }));
    Network { name, layers }
}

/// ResNet-34: basic blocks, stage depths 3-4-6-3.
#[must_use]
pub fn resnet34() -> Network {
    residual_network("ResNet-34", [3, 4, 6, 3], false)
}

/// ResNet-50: bottleneck blocks, stage depths 3-4-6-3.
#[must_use]
pub fn resnet50() -> Network {
    residual_network("ResNet-50", [3, 4, 6, 3], true)
}

/// ResNet-152: bottleneck blocks, stage depths 3-8-36-3.
#[must_use]
pub fn resnet152() -> Network {
    residual_network("ResNet-152", [3, 8, 36, 3], true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet34_mac_count_near_published() {
        let gmacs = resnet34().total_macs() as f64 / 1e9;
        assert!((3.0..4.5).contains(&gmacs), "{gmacs:.2} GMAC");
    }

    #[test]
    fn resnet50_classifier_width() {
        let net = resnet50();
        let Some(crate::layer::Layer::Fc(fc)) = net.layers.last() else {
            panic!("classifier missing");
        };
        assert_eq!(fc.inputs, 2048);
    }

    #[test]
    fn resnet34_classifier_width() {
        let net = resnet34();
        let Some(crate::layer::Layer::Fc(fc)) = net.layers.last() else {
            panic!("classifier missing");
        };
        assert_eq!(fc.inputs, 512);
    }

    #[test]
    fn block_counts() {
        // ResNet-152 has 50 bottleneck blocks = 150 convs + projections
        // + stem + fc; sanity-check the layer count regime.
        let n152 = resnet152().layers.len();
        let n50 = resnet50().layers.len();
        assert!(n152 > 150);
        assert!(n50 > 50 && n50 < n152);
    }

    #[test]
    fn spatial_sizes_collapse_to_7() {
        // After 4 stages the feature map is 7×7 (global pool window).
        let net = resnet50();
        let pool = net
            .layers
            .iter()
            .rev()
            .find_map(|l| match l {
                crate::layer::Layer::Pool(p) => Some(*p),
                _ => None,
            })
            .expect("global pool present");
        assert_eq!(pool.h, 7);
        assert_eq!(pool.k, 7);
    }
}
