//! The six networks of the Table II training study.
//!
//! Layer tables follow the published architectures; spatial sizes are
//! the canonical feature-map sizes (same-padding approximation, stem
//! strides included), so total MAC counts land within a few percent of
//! the commonly quoted figures — which is what the energy-efficiency
//! model consumes.

mod alexnet;
mod googlenet;
mod inception_v3;
mod resnet;

pub use alexnet::alexnet;
pub use googlenet::googlenet;
pub use inception_v3::inception_v3;
pub use resnet::{resnet152, resnet34, resnet50};

use crate::layer::Network;

/// All six evaluated networks, in the column order of Table II.
#[must_use]
pub fn all() -> Vec<Network> {
    vec![
        alexnet(),
        googlenet(),
        inception_v3(),
        resnet34(),
        resnet50(),
        resnet152(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published forward-pass GMAC figures (grouped AlexNet, torchvision
    /// conventions); our tables must land in the right regime.
    #[test]
    fn mac_totals_are_in_the_published_regime() {
        let cases: [(fn() -> Network, f64, f64); 6] = [
            (alexnet, 0.5, 1.2),
            (googlenet, 1.0, 2.2),
            (inception_v3, 4.5, 7.0),
            (resnet34, 3.0, 4.5),
            (resnet50, 3.5, 5.0),
            (resnet152, 10.0, 13.0),
        ];
        for (f, lo, hi) in cases {
            let net = f();
            let gmacs = net.total_macs() as f64 / 1e9;
            assert!(
                gmacs > lo && gmacs < hi,
                "{}: {gmacs:.2} GMAC outside [{lo}, {hi}]",
                net.name
            );
        }
    }

    #[test]
    fn parameter_counts_are_plausible() {
        // AlexNet is famously parameter-heavy (~61 M), ResNet-50 ~25 M.
        let alex = alexnet();
        let m = alex.total_params() as f64 / 1e6;
        assert!(m > 40.0 && m < 70.0, "AlexNet params {m:.1} M");
        let r50 = resnet50();
        let m = r50.total_params() as f64 / 1e6;
        assert!(m > 18.0 && m < 30.0, "ResNet-50 params {m:.1} M");
    }

    #[test]
    fn deeper_resnets_cost_more() {
        assert!(resnet50().total_macs() > resnet34().total_macs());
        assert!(resnet152().total_macs() > 2 * resnet50().total_macs());
    }

    #[test]
    fn all_returns_six_networks_in_table_order() {
        let nets = all();
        let names: Vec<&str> = nets.iter().map(|n| n.name).collect();
        assert_eq!(
            names,
            vec![
                "AlexNet",
                "GoogLeNet",
                "Inception-v3",
                "ResNet-34",
                "ResNet-50",
                "ResNet-152"
            ]
        );
    }

    #[test]
    fn every_network_is_nonempty_and_consistent() {
        for net in all() {
            assert!(net.layers.len() > 5, "{} too shallow", net.name);
            assert!(net.total_macs() > 0);
            assert!(net.total_params() > 0);
            assert!(net.total_activations() > 0);
        }
    }
}
