//! Layer-level accounting of convolutional networks.

/// A 2-D convolution layer ("same" padding, square kernels — the shape
/// used by all six evaluated networks; stem layers with larger strides
/// express their geometry through `stride`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvLayer {
    /// Input feature-map height.
    pub h: u32,
    /// Input feature-map width.
    pub w: u32,
    /// Input channels.
    pub c_in: u32,
    /// Output channels (filters).
    pub c_out: u32,
    /// Kernel height (square unless `kw` differs).
    pub kh: u32,
    /// Kernel width.
    pub kw: u32,
    /// Spatial stride.
    pub stride: u32,
}

impl ConvLayer {
    /// Square-kernel constructor.
    #[must_use]
    pub fn square(h: u32, w: u32, c_in: u32, c_out: u32, k: u32, stride: u32) -> Self {
        Self {
            h,
            w,
            c_in,
            c_out,
            kh: k,
            kw: k,
            stride,
        }
    }

    /// Output height (same padding).
    #[must_use]
    pub fn out_h(&self) -> u32 {
        self.h.div_ceil(self.stride)
    }

    /// Output width (same padding).
    #[must_use]
    pub fn out_w(&self) -> u32 {
        self.w.div_ceil(self.stride)
    }

    /// Multiply-accumulate operations of one forward pass.
    #[must_use]
    pub fn macs(&self) -> u64 {
        u64::from(self.out_h())
            * u64::from(self.out_w())
            * u64::from(self.c_out)
            * u64::from(self.c_in)
            * u64::from(self.kh)
            * u64::from(self.kw)
    }

    /// Weight parameters (biases ignored, as in the usual MAC counts).
    #[must_use]
    pub fn params(&self) -> u64 {
        u64::from(self.c_in) * u64::from(self.c_out) * u64::from(self.kh) * u64::from(self.kw)
    }

    /// Input activation element count.
    #[must_use]
    pub fn activations_in(&self) -> u64 {
        u64::from(self.h) * u64::from(self.w) * u64::from(self.c_in)
    }

    /// Output activation element count.
    #[must_use]
    pub fn activations_out(&self) -> u64 {
        u64::from(self.out_h()) * u64::from(self.out_w()) * u64::from(self.c_out)
    }
}

/// A fully-connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FcLayer {
    /// Input feature count.
    pub inputs: u32,
    /// Output feature count.
    pub outputs: u32,
}

impl FcLayer {
    /// MACs of one forward pass.
    #[must_use]
    pub fn macs(&self) -> u64 {
        u64::from(self.inputs) * u64::from(self.outputs)
    }
}

/// A pooling layer (max or average — identical cost footprint here:
/// negligible MACs, real activation traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolLayer {
    /// Input height.
    pub h: u32,
    /// Input width.
    pub w: u32,
    /// Channels.
    pub c: u32,
    /// Window size.
    pub k: u32,
    /// Stride.
    pub stride: u32,
}

impl PoolLayer {
    /// Output activation element count.
    #[must_use]
    pub fn activations_out(&self) -> u64 {
        u64::from(self.h.div_ceil(self.stride))
            * u64::from(self.w.div_ceil(self.stride))
            * u64::from(self.c)
    }

    /// Input activation element count.
    #[must_use]
    pub fn activations_in(&self) -> u64 {
        u64::from(self.h) * u64::from(self.w) * u64::from(self.c)
    }
}

/// One network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Layer {
    /// Convolution.
    Conv(ConvLayer),
    /// Fully connected.
    Fc(FcLayer),
    /// Pooling.
    Pool(PoolLayer),
}

impl Layer {
    /// Forward-pass MACs.
    #[must_use]
    pub fn macs(&self) -> u64 {
        match self {
            Layer::Conv(c) => c.macs(),
            Layer::Fc(f) => f.macs(),
            // Pooling compares/averages; counted as 1 op per input
            // element but no MACs.
            Layer::Pool(_) => 0,
        }
    }

    /// Weight parameters.
    #[must_use]
    pub fn params(&self) -> u64 {
        match self {
            Layer::Conv(c) => c.params(),
            Layer::Fc(f) => u64::from(f.inputs) * u64::from(f.outputs),
            Layer::Pool(_) => 0,
        }
    }

    /// Input activation elements.
    #[must_use]
    pub fn activations_in(&self) -> u64 {
        match self {
            Layer::Conv(c) => c.activations_in(),
            Layer::Fc(f) => u64::from(f.inputs),
            Layer::Pool(p) => p.activations_in(),
        }
    }

    /// Output activation elements.
    #[must_use]
    pub fn activations_out(&self) -> u64 {
        match self {
            Layer::Conv(c) => c.activations_out(),
            Layer::Fc(f) => u64::from(f.outputs),
            Layer::Pool(p) => p.activations_out(),
        }
    }
}

/// A whole network: a named list of layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    /// Display name ("AlexNet", "ResNet-50", …).
    pub name: &'static str,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Total forward-pass MACs.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(Layer::macs).sum()
    }

    /// Total weight parameters.
    #[must_use]
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Total activation elements written during one forward pass.
    #[must_use]
    pub fn total_activations(&self) -> u64 {
        self.layers.iter().map(Layer::activations_out).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_macs_known_value() {
        // 3x3 conv, 8->16 channels on 10x10 input, stride 1:
        // 10*10*16*8*9 MACs.
        let c = ConvLayer::square(10, 10, 8, 16, 3, 1);
        assert_eq!(c.macs(), 10 * 10 * 16 * 8 * 9);
        assert_eq!(c.params(), 8 * 16 * 9);
    }

    #[test]
    fn strided_conv_shrinks_output() {
        let c = ConvLayer::square(224, 224, 3, 64, 7, 2);
        assert_eq!(c.out_h(), 112);
        assert_eq!(c.activations_out(), 112 * 112 * 64);
    }

    #[test]
    fn asymmetric_kernel() {
        let c = ConvLayer {
            h: 17,
            w: 17,
            c_in: 128,
            c_out: 192,
            kh: 1,
            kw: 7,
            stride: 1,
        };
        assert_eq!(c.macs(), 17 * 17 * 192 * 128 * 7);
    }

    #[test]
    fn network_totals_sum_layers() {
        let net = Network {
            name: "tiny",
            layers: vec![
                Layer::Conv(ConvLayer::square(8, 8, 1, 4, 3, 1)),
                Layer::Pool(PoolLayer {
                    h: 8,
                    w: 8,
                    c: 4,
                    k: 2,
                    stride: 2,
                }),
                Layer::Fc(FcLayer {
                    inputs: 64,
                    outputs: 10,
                }),
            ],
        };
        assert_eq!(net.total_macs(), 8 * 8 * 4 * 9 + 64 * 10);
        assert_eq!(net.total_params(), 4 * 9 + 640);
        assert_eq!(net.total_activations(), 8 * 8 * 4 + 4 * 4 * 4 + 10);
    }
}
