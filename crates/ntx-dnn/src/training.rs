//! Training-pass cost model (§III-D).
//!
//! Table II reports energy efficiency *"with respect to training
//! different DNNs"* at full fp32 precision. Following the model of the
//! companion TC article [12], one training step per sample costs:
//!
//! * **compute**: 3× the forward MACs (forward, backward-by-data,
//!   backward-by-weights), at 2 flops per MAC;
//! * **DRAM traffic**: activations stream in and out of the clusters
//!   for each of the three passes, while weights (and weight gradients)
//!   amortise over the minibatch.
//!
//! The resulting per-network `flop / byte` ratio is what differentiates
//! the Table II columns: AlexNet's huge fully-connected layers make it
//! the most memory-bound network of the six, GoogLeNet and Inception
//! are the most compute-dense — exactly the ordering of the paper's
//! efficiency numbers.

use crate::layer::{Layer, Network};

/// Cost of one training step (one minibatch) of a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingCost {
    /// Total floating-point operations.
    pub flops: u64,
    /// Total DRAM traffic in bytes.
    pub dram_bytes: u64,
}

impl TrainingCost {
    /// Operational intensity of the training step, flop/byte.
    #[must_use]
    pub fn operational_intensity(&self) -> f64 {
        if self.dram_bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.dram_bytes as f64
        }
    }
}

/// The training cost model with its calibration constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingModel {
    /// Minibatch size (paper-era ImageNet training commonly used 64 to
    /// 256 per device; the default follows [12]).
    pub batch: u32,
    /// Backward/forward compute ratio (3 = fwd + bwd-data + bwd-weight).
    pub pass_factor: u32,
    /// Bytes per element (4 = fp32 end to end, the paper's headline
    /// "full floating-point precision").
    pub bytes_per_element: u32,
    /// Aggregate on-chip (TCDM) capacity available for batching one
    /// layer's activations, in elements. It bounds how many samples
    /// can share one streaming pass over the layer's weights: large
    /// fully-connected layers whose per-sample activations crowd out
    /// the TCDM must re-stream their weights — the mechanism that
    /// makes AlexNet the least efficient network of Table II.
    /// Defaults to 16 clusters × 16 K elements.
    pub tcdm_capacity_elems: u64,
}

impl Default for TrainingModel {
    fn default() -> Self {
        Self {
            batch: 64,
            pass_factor: 3,
            bytes_per_element: 4,
            tcdm_capacity_elems: 16 * 16_384,
        }
    }
}

impl TrainingModel {
    /// Number of samples that can share one weight-streaming pass of
    /// `layer` (clamped to `1..=batch`).
    #[must_use]
    pub fn weight_reuse(&self, layer: &Layer) -> u64 {
        let per_sample = layer.activations_in() + layer.activations_out();
        if per_sample == 0 {
            return u64::from(self.batch);
        }
        (self.tcdm_capacity_elems / per_sample).clamp(1, u64::from(self.batch))
    }

    /// Cost of one layer per training step.
    #[must_use]
    pub fn layer_cost(&self, layer: &Layer) -> TrainingCost {
        let b = u64::from(self.batch);
        let e = u64::from(self.bytes_per_element);
        let passes = u64::from(self.pass_factor);
        let flops = 2 * layer.macs() * passes * b;
        // Activations move once per pass. The output tensor is written
        // once; the input tensor is shared with the producing layer (and
        // with sibling branches in inception-style modules), so half of
        // its traffic is charged here and half at the producer.
        let act = (layer.activations_in() / 2 + layer.activations_out()) * e * passes * b;
        // Weights stream once per group of `weight_reuse` samples for
        // the forward and backward-by-data passes, and the gradient is
        // written back once per group in the weight-update pass.
        let weights = layer.params() * e * 3 * b.div_ceil(self.weight_reuse(layer));
        TrainingCost {
            flops,
            dram_bytes: act + weights,
        }
    }

    /// Cost of one full training step of `net`.
    #[must_use]
    pub fn network_cost(&self, net: &Network) -> TrainingCost {
        let mut flops = 0u64;
        let mut bytes = 0u64;
        for l in &net.layers {
            let c = self.layer_cost(l);
            flops += c.flops;
            bytes += c.dram_bytes;
        }
        TrainingCost {
            flops,
            dram_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvLayer, FcLayer};
    use crate::networks;

    #[test]
    fn conv_layer_cost_scales_with_batch() {
        let layer = Layer::Conv(ConvLayer::square(16, 16, 8, 8, 3, 1));
        let m1 = TrainingModel {
            batch: 1,
            ..Default::default()
        };
        let m8 = TrainingModel {
            batch: 8,
            ..Default::default()
        };
        let c1 = m1.layer_cost(&layer);
        let c8 = m8.layer_cost(&layer);
        assert_eq!(c8.flops, 8 * c1.flops);
        // Weight traffic does not scale with batch, so intensity rises.
        assert!(c8.operational_intensity() > c1.operational_intensity());
    }

    #[test]
    fn fc_layers_are_memory_bound() {
        let fc = Layer::Fc(FcLayer {
            inputs: 4096,
            outputs: 4096,
        });
        let conv = Layer::Conv(ConvLayer::square(56, 56, 64, 64, 3, 1));
        let m = TrainingModel::default();
        assert!(
            m.layer_cost(&fc).operational_intensity() < m.layer_cost(&conv).operational_intensity()
        );
    }

    #[test]
    fn training_flops_are_three_times_inference() {
        let net = networks::alexnet();
        let m = TrainingModel {
            batch: 1,
            ..Default::default()
        };
        let c = m.network_cost(&net);
        assert_eq!(c.flops, 2 * 3 * net.total_macs());
    }

    #[test]
    fn alexnet_is_most_memory_bound_at_small_batch() {
        // AlexNet's 61 M parameters dominate its traffic when the
        // batch cannot amortise them: at batch 1 it has the lowest
        // training intensity of the six networks — the mechanism behind
        // its last-place efficiency in every Table II column.
        let m = TrainingModel {
            batch: 1,
            ..Default::default()
        };
        let alex = m.network_cost(&networks::alexnet()).operational_intensity();
        for net in networks::all() {
            if net.name == "AlexNet" {
                continue;
            }
            let oi = m.network_cost(&net).operational_intensity();
            assert!(
                oi > alex,
                "{} intensity {oi:.1} should exceed AlexNet {alex:.1} at batch 1",
                net.name
            );
        }
    }

    #[test]
    fn batch_amortises_weight_traffic() {
        // Growing the minibatch amortises weight traffic and raises the
        // training intensity of every network, saturating at the
        // activation-bound limit.
        let nets = networks::all();
        for net in &nets {
            let small = TrainingModel {
                batch: 1,
                ..Default::default()
            }
            .network_cost(net)
            .operational_intensity();
            let large = TrainingModel {
                batch: 256,
                ..Default::default()
            }
            .network_cost(net)
            .operational_intensity();
            assert!(
                large > small,
                "{}: batch 256 intensity {large:.1} <= batch 1 {small:.1}",
                net.name
            );
        }
    }
}
