//! Bench-trajectory comparison: fresh `BENCH_*.json` vs committed
//! baselines.
//!
//! The report binaries emit their measurements as JSON with a stable
//! schema; `bench/baseline/` holds committed copies from a known-good
//! run. [`compare`] flattens both documents to `path -> value` pairs
//! and gates the **cycle-domain** metrics — numeric keys containing
//! `cycles` (deterministic simulator outputs, machine-independent) and
//! booleans the baseline holds `true` (bit-identity, DAG-order and
//! determinism flags). A gated number may grow at most
//! [`TOLERANCE`] (15 %) over its baseline; a gated boolean may never
//! flip to `false`. Everything wall-clock — `*_wall_s`, `*_speedup`,
//! latency seconds — varies with the host and stays informational.
//!
//! The parser is a minimal recursive-descent JSON reader (the repo
//! builds offline; no serde), sufficient for the machine-generated
//! output of `format::*_json`.

/// Fractional growth a gated cycle-domain metric may show over its
/// baseline before `bench-diff` fails (0.15 = +15 %).
pub const TOLERANCE: f64 = 0.15;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    // The report formatters never emit escapes beyond
                    // these; \u is out of scope for this reader.
                    let esc = self.bytes.get(self.pos + 1);
                    s.push(match esc {
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(&c @ (b'"' | b'\\' | b'/')) => c as char,
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    });
                    self.pos += 2;
                }
                Some(&c) => {
                    s.push(c as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// A human-readable message with the byte offset of the first syntax
/// error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Flattens a document to `("runs[0].makespan_cycles", value)` pairs,
/// scalars only.
#[must_use]
pub fn flatten(v: &Json) -> Vec<(String, Json)> {
    fn walk(prefix: &str, v: &Json, out: &mut Vec<(String, Json)>) {
        match v {
            Json::Obj(fields) => {
                for (k, v) in fields {
                    let path = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    walk(&path, v, out);
                }
            }
            Json::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    walk(&format!("{prefix}[{i}]"), v, out);
                }
            }
            scalar => out.push((prefix.to_string(), scalar.clone())),
        }
    }
    let mut out = Vec::new();
    walk("", v, &mut out);
    out
}

/// Whether a flattened path is a gated cycle-domain number.
fn is_cycle_metric(path: &str) -> bool {
    path.rsplit('.')
        .next()
        .is_some_and(|k| k.contains("cycles"))
}

/// One comparison failure.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Flattened metric path.
    pub path: String,
    /// What went wrong, with both values.
    pub detail: String,
}

/// Outcome of comparing one fresh report against its baseline.
#[derive(Debug, Clone, Default)]
pub struct DiffOutcome {
    /// Cycle-domain numbers checked.
    pub gated_numbers: usize,
    /// Baseline-true booleans checked.
    pub gated_bools: usize,
    /// Metrics that regressed past tolerance (fail CI).
    pub regressions: Vec<Regression>,
    /// Largest fractional growth seen over a gated nonzero baseline
    /// number (may be negative: an improvement).
    pub worst_growth: f64,
}

/// Compares a fresh report against its committed baseline.
///
/// Gated: numeric keys containing `cycles` may grow at most
/// `tolerance` over the baseline; booleans the baseline holds `true`
/// must stay `true`; a gated baseline metric missing from the fresh
/// report is a failure (schema changes require a baseline refresh).
/// Everything else — wall-clock seconds, speedups, counts — is
/// informational. Keys only the fresh report has are ignored.
///
/// # Errors
///
/// The baseline or fresh document fails to parse.
pub fn compare(baseline: &str, fresh: &str, tolerance: f64) -> Result<DiffOutcome, String> {
    let base = flatten(&parse(baseline).map_err(|e| format!("baseline: {e}"))?);
    let fresh: std::collections::HashMap<String, Json> =
        flatten(&parse(fresh).map_err(|e| format!("fresh: {e}"))?)
            .into_iter()
            .collect();
    let mut out = DiffOutcome {
        worst_growth: f64::NEG_INFINITY,
        ..DiffOutcome::default()
    };
    for (path, bv) in base {
        match bv {
            Json::Num(b) if is_cycle_metric(&path) => {
                out.gated_numbers += 1;
                match fresh.get(&path) {
                    Some(Json::Num(f)) => {
                        if b > 0.0 {
                            out.worst_growth = out.worst_growth.max((f - b) / b);
                        }
                        if *f > b * (1.0 + tolerance) {
                            out.regressions.push(Regression {
                                path,
                                detail: format!(
                                    "{f:.0} cycles vs baseline {b:.0} (+{:.1}%, limit +{:.0}%)",
                                    (f - b) / b * 100.0,
                                    tolerance * 100.0
                                ),
                            });
                        }
                    }
                    other => out.regressions.push(Regression {
                        path,
                        detail: format!("baseline has {b:.0} cycles, fresh has {other:?}"),
                    }),
                }
            }
            Json::Bool(true) => {
                out.gated_bools += 1;
                if fresh.get(&path) != Some(&Json::Bool(true)) {
                    out.regressions.push(Regression {
                        detail: format!("baseline true, fresh {:?}", fresh.get(&path)),
                        path,
                    });
                }
            }
            _ => {}
        }
    }
    if out.worst_growth == f64::NEG_INFINITY {
        out.worst_growth = 0.0;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_report_shaped_json() {
        let doc = r#"{
  "network": "AlexNet",
  "runs": [ { "jobs": 23, "wall_s": 0.5, "ok": true }, { "jobs": 23 } ],
  "err": 3.9e-5,
  "neg": -1,
  "nothing": null
}"#;
        let v = parse(doc).expect("parses");
        let flat = flatten(&v);
        assert!(flat.contains(&("network".into(), Json::Str("AlexNet".into()))));
        assert!(flat.contains(&("runs[0].jobs".into(), Json::Num(23.0))));
        assert!(flat.contains(&("runs[1].jobs".into(), Json::Num(23.0))));
        assert!(flat.contains(&("err".into(), Json::Num(3.9e-5))));
        assert!(flat.contains(&("nothing".into(), Json::Null)));
        assert!(parse("{ \"a\": 1 } x").is_err());
        assert!(parse("{ \"a\": }").is_err());
    }

    #[test]
    fn gates_cycles_growth_and_boolean_flips() {
        let base = r#"{ "makespan_cycles": 1000, "wall_s": 1.0, "bit_identical": true }"#;
        let same = r#"{ "makespan_cycles": 1100, "wall_s": 9.0, "bit_identical": true }"#;
        let out = compare(base, same, 0.15).expect("compares");
        assert!(out.regressions.is_empty(), "{:?}", out.regressions);
        assert_eq!(out.gated_numbers, 1);
        assert_eq!(out.gated_bools, 1);
        assert!((out.worst_growth - 0.1).abs() < 1e-9);

        let slow = r#"{ "makespan_cycles": 1200, "wall_s": 0.1, "bit_identical": true }"#;
        let out = compare(base, slow, 0.15).expect("compares");
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].path, "makespan_cycles");

        let broken = r#"{ "makespan_cycles": 900, "wall_s": 0.1, "bit_identical": false }"#;
        let out = compare(base, broken, 0.15).expect("compares");
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].path, "bit_identical");
    }

    #[test]
    fn missing_gated_metric_fails_but_new_keys_pass() {
        let base = r#"{ "runs": [ { "makespan_cycles": 10 } ] }"#;
        let fresh = r#"{ "runs": [ { "other": 1 } ], "extra": true }"#;
        let out = compare(base, fresh, 0.15).expect("compares");
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].path, "runs[0].makespan_cycles");
        // Baseline-false booleans and wall-clock values are never gated.
        let base = r#"{ "flag": false, "wall_s": 1.0 }"#;
        let fresh = r#"{ "flag": true, "wall_s": 100.0 }"#;
        assert!(compare(base, fresh, 0.15)
            .expect("compares")
            .regressions
            .is_empty());
    }
}
