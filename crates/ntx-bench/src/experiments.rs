//! The experiment runners behind every reproduced table and figure.

use ntx_fpu::rmse_ratio_vs_fma;
use ntx_kernels::blas::{AxpyKernel, GemmKernel, GemvKernel};
use ntx_kernels::conv::Conv2dKernel;
use ntx_kernels::schedule::{axpy_tiles, conv_tiles, run_tiles, write_replicated_weights};
use ntx_kernels::stencil::{
    DiffusionKernel, HighOrderLaplaceKernel, Laplace1dKernel, Laplace2dKernel, Laplace3dKernel,
};
use ntx_model::compare::{greenwave_comparison, StencilPlatform};
use ntx_model::power::EnergyModel;
use ntx_model::roofline::{Roofline, RooflinePoint};
use ntx_sim::{Cluster, ClusterConfig, PerfSnapshot};

/// Deterministic pseudo-random data generator (xorshift32), so every
/// experiment is reproducible without a seed file.
pub fn test_data(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect()
}

// ---------------------------------------------------------------- Table I

/// Everything Table I reports, measured from the simulator plus the
/// calibrated energy model.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// Peak compute performance, flop/s.
    pub peak_flops: f64,
    /// Peak AXI bandwidth, bytes/s.
    pub peak_bandwidth: f64,
    /// Measured sustained performance on the 3×3-conv workload, flop/s.
    pub sustained_flops: f64,
    /// Measured banking-conflict probability (paper: ≈0.13).
    pub conflict_probability: f64,
    /// Practical performance ceiling derived from it (paper: ≈17.4 G).
    pub practical_peak: f64,
    /// Modelled power on the conv workload, W (paper: 0.186).
    pub power_w: f64,
    /// Peak-rate energy efficiency, flop/s/W (paper: 108 G).
    pub efficiency: f64,
    /// Energy per flop at peak rate, pJ (paper: 9.3).
    pub pj_per_flop: f64,
    /// Raw counters of the measured window.
    pub perf: PerfSnapshot,
}

/// Runs the Table I workload — a streaming multi-filter 3×3 convolution
/// with DMA double buffering — on the default cluster and evaluates the
/// calibrated energy model on the measured activity.
#[must_use]
pub fn table1_report() -> Table1Report {
    let mut cluster = Cluster::new(ClusterConfig::default());
    // Odd image pitch: streaming kernels pad their leading dimension
    // so the eight engines spread across the TCDM banks.
    let kernel = Conv2dKernel {
        height: 66,
        width: 63,
        k: 3,
        filters: 8,
    };
    let image = test_data((kernel.height * kernel.width) as usize, 0x1234_5678);
    let weights = test_data((kernel.k * kernel.k * kernel.filters) as usize, 0x9abc_def0);
    cluster.ext_mem().write_f32_slice(0, &image);
    write_replicated_weights(&mut cluster, 0, &weights);
    let tiles = conv_tiles(&cluster, &kernel, 0, 0, 0x10_0000, 8);
    let perf = run_tiles(&mut cluster, &tiles);
    let cfg = cluster.config();
    let model = EnergyModel::tapeout();
    let freq = cfg.ntx_freq_hz;
    let power = model.cluster_power(&perf, freq);
    Table1Report {
        peak_flops: cfg.peak_flops(),
        peak_bandwidth: cfg.peak_bandwidth(),
        sustained_flops: perf.flops_per_second(freq),
        conflict_probability: perf.conflict_probability(),
        practical_peak: cfg.peak_flops() * (1.0 - perf.conflict_probability()),
        power_w: power,
        efficiency: model.peak_efficiency(&perf, freq, cfg.peak_flops()),
        pj_per_flop: model.picojoule_per_flop(&perf, freq, cfg.peak_flops()),
        perf,
    }
}

// ---------------------------------------------------------------- Fig. 5

fn fresh_cluster() -> Cluster {
    Cluster::new(ClusterConfig::default())
}

/// Utilisation (fraction of the 16 flop/cycle cluster peak) of a
/// measured window.
fn utilization(perf: &PerfSnapshot) -> f64 {
    if perf.cycles == 0 {
        0.0
    } else {
        perf.flops as f64 / (16.0 * perf.cycles as f64)
    }
}

/// §III-C-style extrapolation: the measured sustained compute rate,
/// capped by the conflict-derated bandwidth roof at intensity `oi`.
fn extrapolate(roofline: &Roofline, oi: f64, perf: &PerfSnapshot) -> f64 {
    let compute_rate = utilization(perf) * roofline.peak_flops;
    compute_rate.min(roofline.practical_bandwidth() * oi)
}

/// The 15 kernel points of Fig. 5. AXPY and the 3×3 convolution are
/// measured end to end in the streaming simulator; the other kernels
/// are extrapolated the way §III-C extrapolates from its gate-level
/// trace: the sustained compute rate measured in a representative
/// cycle simulation, capped by the conflict-derated bandwidth roof
/// (`practical_bandwidth × OI`) when the kernel streams its working
/// set — the streaming AXPY measurement validates that cap (it reaches
/// 99 % of it).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn fig5_points() -> Vec<RooflinePoint> {
    let roofline = Roofline::default();
    let mut points = Vec::new();

    // --- AXPY, streaming, measured directly ---
    for &n in &[16u32, 16_384] {
        let mut cluster = fresh_cluster();
        let x = test_data(n as usize, 1);
        let y = test_data(n as usize, 2);
        cluster.ext_mem().write_f32_slice(0, &x);
        cluster.ext_mem().write_f32_slice(0x100_0000, &y);
        let tiles = axpy_tiles(&cluster, n, 2.0, 0, 0x100_0000, 2048.min(n));
        let perf = run_tiles(&mut cluster, &tiles);
        points.push(RooflinePoint {
            label: format!("AXPY {n}"),
            oi: AxpyKernel { n, a: 2.0 }.cost().operational_intensity(),
            performance: perf.flops_per_second(1.25e9),
        });
    }

    // --- GEMV 16 measured in-TCDM; GEMV 16384 extrapolated ---
    {
        let mut cluster = fresh_cluster();
        let k = GemvKernel { rows: 16, cols: 16 };
        let a = test_data(256, 3);
        let x = test_data(16, 4);
        let (_, perf) = k.run(&mut cluster, &a, &x);
        let oi = k.cost().operational_intensity();
        points.push(RooflinePoint {
            label: "GEMV 16".into(),
            oi,
            performance: extrapolate(&roofline, oi, &perf),
        });
    }
    {
        // Representative larger tile for the utilisation measurement.
        let mut cluster = fresh_cluster();
        let k = GemvKernel {
            rows: 16,
            cols: 512,
        };
        let a = test_data(16 * 512, 5);
        let x = test_data(512, 6);
        let (_, perf) = k.run(&mut cluster, &a, &x);
        let oi = GemvKernel {
            rows: 16_384,
            cols: 16_384,
        }
        .cost()
        .operational_intensity();
        points.push(RooflinePoint {
            label: "GEMV 16384 / LAP1D".into(),
            oi,
            performance: extrapolate(&roofline, oi, &perf),
        });
    }

    // --- GEMM 16/32/64 measured in-TCDM; 128 and 1024 extrapolated ---
    let mut gemm64_perf = PerfSnapshot::default();
    for &n in &[16u32, 32, 64] {
        let mut cluster = fresh_cluster();
        let k = GemmKernel { m: n, k: n, n };
        let a = test_data((n * n) as usize, 7);
        let b = test_data((n * n) as usize, 8);
        let (_, perf) = k.run(&mut cluster, &a, &b);
        if n == 64 {
            gemm64_perf = perf;
        }
        let oi = k.cost().operational_intensity();
        points.push(RooflinePoint {
            label: format!("GEMM {n}"),
            oi,
            performance: extrapolate(&roofline, oi, &perf),
        });
    }
    for &n in &[128u32, 1024] {
        let oi = GemmKernel { m: n, k: n, n }.cost().operational_intensity();
        points.push(RooflinePoint {
            label: format!("GEMM {n}"),
            oi,
            // Larger tiles amortise more setup; the measured GEMM-64
            // sustained rate is the conservative extrapolation base.
            performance: extrapolate(&roofline, oi, &gemm64_perf),
        });
    }

    // --- CONV 3×3 streaming, measured; 5×5 and 7×7 in-TCDM ---
    {
        let mut cluster = fresh_cluster();
        let k = Conv2dKernel {
            height: 66,
            width: 63,
            k: 3,
            filters: 4,
        };
        let img = test_data((k.height * k.width) as usize, 9);
        let w = test_data(9 * 4, 10);
        cluster.ext_mem().write_f32_slice(0, &img);
        write_replicated_weights(&mut cluster, 0, &w);
        let tiles = conv_tiles(&cluster, &k, 0, 0, 0x10_0000, 8);
        let perf = run_tiles(&mut cluster, &tiles);
        points.push(RooflinePoint {
            label: "CONV 3x3".into(),
            oi: k.cost().operational_intensity(),
            performance: perf.flops_per_second(1.25e9),
        });
    }
    for &ksz in &[5u32, 7] {
        let mut cluster = fresh_cluster();
        let k = Conv2dKernel {
            height: 24 + ksz,
            width: 33,
            k: ksz,
            filters: 1,
        };
        let img = test_data((k.height * k.width) as usize, 11);
        let w = test_data((ksz * ksz) as usize, 12);
        let (_, perf) = k.run(&mut cluster, &img, &w);
        // The figure plots the DNN-style multi-filter intensity.
        let oi = Conv2dKernel { filters: 4, ..k }
            .cost()
            .operational_intensity();
        points.push(RooflinePoint {
            label: format!("CONV {ksz}x{ksz}"),
            oi,
            performance: extrapolate(&roofline, oi, &perf),
        });
    }

    // --- Stencils, measured in-TCDM ---
    {
        let mut cluster = fresh_cluster();
        let k = Laplace2dKernel {
            height: 63,
            width: 63,
        };
        let grid = test_data(63 * 63, 13);
        let (_, perf) = k.run(&mut cluster, &grid);
        let oi = k.cost().operational_intensity();
        points.push(RooflinePoint {
            label: "LAP2D".into(),
            oi,
            performance: extrapolate(&roofline, oi, &perf),
        });
    }
    {
        let mut cluster = fresh_cluster();
        let k = Laplace3dKernel {
            depth: 16,
            height: 16,
            width: 15,
        };
        let grid = test_data(16 * 16 * 15, 14);
        let (_, perf) = k.run(&mut cluster, &grid);
        let oi = k.cost().operational_intensity();
        points.push(RooflinePoint {
            label: "LAP3D".into(),
            oi,
            performance: extrapolate(&roofline, oi, &perf),
        });
    }
    {
        let mut cluster = fresh_cluster();
        let k = DiffusionKernel {
            depth: 12,
            height: 16,
            width: 15,
        };
        let grid = test_data(12 * 16 * 15, 15);
        let plane = [0.05, 0.1, 0.05, 0.1, 0.4, 0.1, 0.05, 0.1, 0.05];
        let (_, perf) = k.run(&mut cluster, &grid, &plane, &[0.08, 0.07], &[0.02, 0.03]);
        let oi = k.cost().operational_intensity();
        points.push(RooflinePoint {
            label: "DIFF".into(),
            oi,
            performance: extrapolate(&roofline, oi, &perf),
        });
    }
    points
}

/// Measured utilisation of a 1-D Laplace run (exercised separately from
/// the Fig. 5 list because its point coincides with GEMV 16384 in the
/// figure).
#[must_use]
pub fn lap1d_utilization() -> f64 {
    let mut cluster = fresh_cluster();
    let input = test_data(4096, 16);
    let (_, perf) = Laplace1dKernel { n: 4096 }.run(&mut cluster, &input);
    utilization(&perf)
}

// ----------------------------------------------------------- §II-C RMSE

/// Result of the deferred-rounding precision experiment.
#[derive(Debug, Clone, Copy)]
pub struct PrecisionReport {
    /// RMSE of the NTX wide-accumulator reduction vs the f64 reference.
    pub ntx_rmse: f64,
    /// RMSE of a conventional sequential-FMA fp32 FPU.
    pub fpu_rmse: f64,
    /// `fpu_rmse / ntx_rmse` (paper: ≈1.7 on a DNN conv layer).
    pub improvement: f64,
}

/// Reproduces the §II-C claim on a DNN-convolution-shaped workload:
/// dot products of length `3·3·64` (a 3×3 kernel over 64 input
/// channels), many output pixels.
#[must_use]
pub fn precision_experiment() -> PrecisionReport {
    let dot_len = 3 * 3 * 64;
    let rows = 2048;
    let lhs = test_data(dot_len * rows, 0xdead_beef);
    let rhs = test_data(dot_len * rows, 0xcafe_f00d);
    let (ntx, fpu) = rmse_ratio_vs_fma(&lhs, &rhs, dot_len);
    PrecisionReport {
        ntx_rmse: ntx.rmse,
        fpu_rmse: fpu.rmse,
        improvement: fpu.rmse / ntx.rmse,
    }
}

// --------------------------------------------------- scale-out scaling

/// One row of the strong-scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Cluster count of this run.
    pub clusters: usize,
    /// Makespan of the sharded workload, NTX cycles.
    pub makespan_cycles: u64,
    /// Aggregate achieved performance, flop/s.
    pub flops_per_second: f64,
    /// Throughput ratio vs the 1-cluster run.
    pub speedup: f64,
    /// Strong-scaling efficiency (speedup / clusters).
    pub efficiency: f64,
    /// Fraction of cluster-cycles with the DMA moving data.
    pub dma_occupancy: f64,
    /// Modelled system power, W.
    pub power_w: f64,
    /// Achieved energy efficiency, flop/s/W.
    pub flops_per_watt: f64,
}

/// The scale-out experiment: a fixed conv3x3 workload sharded across
/// 1/2/4/8 clusters.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Workload description for the printout.
    pub workload: String,
    /// One row per cluster count, ascending.
    pub points: Vec<ScalingPoint>,
    /// True when every cluster count produced bit-identical output.
    pub bit_identical: bool,
}

/// Runs the multi-filter 3x3 convolution of the Table I workload shape
/// through `ntx_sched` at 1, 2, 4 and 8 clusters and reports
/// strong-scaling throughput, efficiency and modelled power. Outputs
/// are compared bitwise across cluster counts — the scheduler's
/// sharding must not change a single result bit.
#[must_use]
pub fn scaling_report() -> ScalingReport {
    use ntx_sched::{Job, JobKind};

    let kernel = Conv2dKernel {
        height: 194,
        width: 63,
        k: 3,
        filters: 8,
    };
    let image = test_data((kernel.height * kernel.width) as usize, 0x5ca1_e0f1);
    let weights = test_data((kernel.k * kernel.k * kernel.filters) as usize, 0x0123_4567);
    let job = Job::new(
        0,
        "conv3x3",
        JobKind::Conv2d {
            kernel,
            image,
            weights,
        },
    );
    let model = EnergyModel::tapeout();
    let mut points = Vec::new();
    let mut baseline: Option<ntx_sched::ScaleOutReport> = None;
    let mut reference_output: Option<Vec<f32>> = None;
    let mut bit_identical = true;
    for clusters in [1usize, 2, 4, 8] {
        let result = ntx_sched::run_sharded(&job, clusters).expect("valid scaling workload");
        match &reference_output {
            None => reference_output = Some(result.output.clone()),
            Some(expect) => {
                bit_identical &= expect
                    .iter()
                    .zip(&result.output)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            }
        }
        let report = result.report;
        let base = baseline.get_or_insert_with(|| report.clone());
        let energy = report.energy(&model);
        points.push(ScalingPoint {
            clusters,
            makespan_cycles: report.makespan_cycles,
            flops_per_second: report.flops_per_second(),
            speedup: report.speedup_vs(base),
            efficiency: report.scaling_efficiency_vs(base),
            dma_occupancy: report.dma_occupancy(),
            power_w: energy.power_w,
            flops_per_watt: energy.flops_per_watt,
        });
    }
    ScalingReport {
        workload: format!(
            "conv 3x3, {}x{} image, {} filters ({} Mflop)",
            kernel.height,
            kernel.width,
            kernel.filters,
            kernel.cost().flops / 1_000_000
        ),
        points,
        bit_identical,
    }
}

// ----------------------------------------------------- serving stack

/// One async-server run of the serving experiment (the same submission
/// pattern, measured once per admission mode).
#[derive(Debug, Clone)]
pub struct ServerRunStats {
    /// Jobs completed by the run.
    pub served_jobs: u64,
    /// Throughput, jobs per wall-clock second.
    pub jobs_per_second: f64,
    /// Mean per-job wall-clock latency, seconds.
    pub mean_latency_s: f64,
    /// Largest per-job wall-clock latency, seconds.
    pub max_latency_s: f64,
    /// Cluster occupancy inside the served makespan.
    pub occupancy: f64,
    /// Deadline misses reported by the server.
    pub deadline_misses: u64,
}

/// The `report-serving` measurement: the layered `ntx-sched` serving
/// stack exercised end to end — pipelined farm vs barriered reference,
/// continuous admission vs its barriered same-placement oracle,
/// analytical estimates, and the async front-end under multi-client
/// load in both admission modes (continuous, the default, vs the
/// wave-batched baseline).
#[derive(Debug, Clone)]
pub struct ServingBenchReport {
    /// Clusters in the farm.
    pub clusters: usize,
    /// Jobs in the mixed queue.
    pub jobs: usize,
    /// Batch makespan of the same-placement barriered reference,
    /// cycles.
    pub barriered_makespan_cycles: u64,
    /// Batch makespan of the full-width barriered executor (the
    /// pre-farm semantics: every job across all clusters, back to
    /// back) — an independent execution with different tile schedules.
    pub fullwidth_makespan_cycles: u64,
    /// Batch makespan of the pipelined farm, cycles.
    pub pipelined_makespan_cycles: u64,
    /// `barriered / pipelined` (the inter-job overlap win).
    pub pipelined_speedup: f64,
    /// `fullwidth / pipelined` (overlap + space sharing vs the old
    /// executor).
    pub fullwidth_speedup: f64,
    /// Per-job outputs bitwise identical across all three runs
    /// (pipelined vs same-placement barriered vs full-width).
    pub bit_identical: bool,
    /// Per-job `PerfSnapshot`s and makespans identical between the
    /// same-placement modes.
    pub snapshots_identical: bool,
    /// Virtual farm makespan of the continuous-admission run, cycles.
    pub continuous_makespan_cycles: u64,
    /// Continuous-admission per-job outputs **and** `PerfSnapshot`s
    /// bitwise identical to the barriered oracle replaying the exact
    /// placement continuous admission chose.
    pub continuous_bit_identical: bool,
    /// Estimated total cycles the analytical backend predicts for the
    /// same queue.
    pub estimated_cycles_total: u64,
    /// Simulator cycles spent while answering the estimates (must be
    /// zero — estimates never touch the farm).
    pub estimate_sim_cycles: u64,
    /// The async server under continuous admission (the default).
    pub continuous: ServerRunStats,
    /// The async server under wave batching (the PR 3 baseline).
    pub wave: ServerRunStats,
    /// `wave mean latency / continuous mean latency` — the continuous
    /// admission win (≥ 1.0 means continuous is no worse).
    pub latency_win: f64,
    /// `continuous jobs/s / wave jobs/s` (≥ 1.0 means continuous
    /// throughput is no worse).
    pub throughput_ratio: f64,
    /// Worker-pool core-scaling sweep: the same continuous drive at
    /// 1, 2 and 4 pool threads, wall-clock jobs/s each.
    pub pool_scaling: Vec<PoolScalingPoint>,
    /// Wall-clock jobs/s at 4 pool threads over 1 thread (the
    /// core-scaling headline; ~1.0 on a single-core host).
    pub pool_speedup_4x: f64,
    /// Every pooled run produced outputs, retire traces and makespans
    /// bit-identical to the serial (1-thread) run.
    pub pool_bit_identical: bool,
    /// Host cores visible to the process
    /// (`std::thread::available_parallelism`); speedup is only
    /// meaningful when this covers the pool width.
    pub host_cores: usize,
}

/// One thread count of the worker-pool core-scaling sweep.
#[derive(Debug, Clone)]
pub struct PoolScalingPoint {
    /// Worker threads stepping the cluster pool (1 = serial farm).
    pub threads: usize,
    /// Wall-clock throughput of the continuous drive, jobs/s.
    pub jobs_per_second: f64,
    /// Throughput over the 1-thread run.
    pub speedup: f64,
}

/// One continuous-admission drive of the pool-scaling workload on
/// `threads` pool threads: admits every job (two shard events
/// interleaved per admission, as the server does), drains the farm,
/// and returns the wall-clock throughput plus the full observable
/// record for the cross-thread-count differential.
fn pool_scaling_run(
    jobs: &[(String, ntx_sched::JobKind)],
    clusters: usize,
    threads: usize,
) -> (f64, Vec<Vec<f32>>, Vec<(u64, usize, u64, u64)>, u64) {
    use ntx_sched::{DurationTable, Job, JobResult, ScaleOutConfig, SimulatorBackend};
    let config = ScaleOutConfig::with_clusters(clusters).with_worker_threads(threads);
    let mut sim = SimulatorBackend::new(config);
    let mut table = DurationTable::new();
    let mut trace = Vec::new();
    let mut results: Vec<Option<JobResult>> = (0..jobs.len()).map(|_| None).collect();
    let t0 = std::time::Instant::now();
    let mut settle = |r: ntx_sched::ShardRetire,
                      table: &mut DurationTable,
                      results: &mut Vec<Option<JobResult>>| {
        table.observe(r.class, r.est_cycles, r.cycles);
        trace.push((r.job_id, r.cluster, r.clock, r.cycles));
        if let Some(res) = r.result {
            let slot = res.job_id as usize;
            results[slot] = Some(res);
        }
    };
    for (i, (label, kind)) in jobs.iter().enumerate() {
        let job = Job::new(i as u64, label.clone(), kind.clone());
        sim.admit_continuous(&job, &table).expect("admit");
        for _ in 0..2 {
            if let Some(r) = sim.step_farm() {
                settle(r, &mut table, &mut results);
            }
        }
    }
    while let Some(r) = sim.step_farm() {
        settle(r, &mut table, &mut results);
    }
    let wall = t0.elapsed().as_secs_f64();
    let jps = if wall > 0.0 {
        jobs.len() as f64 / wall
    } else {
        0.0
    };
    let outputs = results
        .into_iter()
        .map(|r| r.expect("every job retires").output)
        .collect();
    (jps, outputs, trace, sim.farm_makespan())
}

/// Runs the worker-pool core-scaling sweep: the serving mix repeated
/// four times (64 jobs) driven through continuous admission at 1, 2
/// and 4 pool threads, measuring wall-clock jobs/s and checking every
/// pooled run bit-identical to the serial one.
fn pool_scaling_sweep(clusters: usize) -> (Vec<PoolScalingPoint>, f64, bool) {
    // Four copies of the mix: enough shard work that the wall clock
    // measures simulation, not setup.
    let jobs: Vec<(String, ntx_sched::JobKind)> = (0..4)
        .flat_map(|rep| {
            serving_jobs()
                .into_iter()
                .map(move |(label, kind)| (format!("{label} r{rep}"), kind))
        })
        .collect();
    let (base_jps, base_out, base_trace, base_makespan) = pool_scaling_run(&jobs, clusters, 1);
    let mut points = vec![PoolScalingPoint {
        threads: 1,
        jobs_per_second: base_jps,
        speedup: 1.0,
    }];
    let mut identical = true;
    let mut speedup_4x = 1.0;
    for threads in [2usize, 4] {
        let (jps, out, trace, makespan) = pool_scaling_run(&jobs, clusters, threads);
        identical &= out.len() == base_out.len()
            && out.iter().zip(&base_out).all(|(a, b)| {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            })
            && trace == base_trace
            && makespan == base_makespan;
        let speedup = if base_jps > 0.0 { jps / base_jps } else { 0.0 };
        if threads == 4 {
            speedup_4x = speedup;
        }
        points.push(PoolScalingPoint {
            threads,
            jobs_per_second: jps,
            speedup,
        });
    }
    (points, speedup_4x, identical)
}

/// The mixed workload queue of the serving experiment: four job
/// families at assorted sizes, so the space-sharing placement and the
/// inter-job pipeline both have something to chew on.
fn serving_jobs() -> Vec<(String, ntx_sched::JobKind)> {
    use ntx_sched::JobKind;
    let conv = |h: u32, w: u32, f: u32, seed: u32| {
        let kernel = Conv2dKernel {
            height: h,
            width: w,
            k: 3,
            filters: f,
        };
        JobKind::Conv2d {
            kernel,
            image: test_data((h * w) as usize, seed),
            weights: test_data((9 * f) as usize, seed ^ 0xffff),
        }
    };
    let gemm = |m: u32, k: u32, n: u32, seed: u32| JobKind::Gemm {
        dims: GemmKernel { m, k, n },
        a: test_data((m * k) as usize, seed),
        b: test_data((k * n) as usize, seed ^ 0xaaaa),
    };
    let axpy = |n: usize, seed: u32| JobKind::Axpy {
        a: 1.25,
        x: test_data(n, seed),
        y: test_data(n, seed ^ 0x5555),
    };
    let stencil = |h: u32, w: u32, seed: u32| JobKind::Stencil2d {
        height: h,
        width: w,
        grid: test_data((h * w) as usize, seed),
    };
    // A serving-shaped mix: a couple of farm-wide jobs plus a tail of
    // small requests — the "many users" regime where space sharing
    // pays (a small job on one cluster spends 2-3x fewer
    // cluster-cycles than the same job sharded eight ways).
    vec![
        ("conv3x3 98x63x4".into(), conv(98, 63, 4, 0x1111)),
        ("gemm 24x16x12 a".into(), gemm(24, 16, 12, 0x2222)),
        ("stencil 40x23 a".into(), stencil(40, 23, 0x3333)),
        ("gemm 32x16x16".into(), gemm(32, 16, 16, 0x4444)),
        ("conv3x3 30x23x2".into(), conv(30, 23, 2, 0x5555)),
        ("axpy 6000".into(), axpy(6000, 0x6666)),
        ("stencil 30x17".into(), stencil(30, 17, 0x7777)),
        ("gemm 16x16x16".into(), gemm(16, 16, 16, 0x8888)),
        ("conv3x3 24x17x1".into(), conv(24, 17, 1, 0x9999)),
        ("gemm 24x16x12 b".into(), gemm(24, 16, 12, 0xaaab)),
        ("stencil 24x15".into(), stencil(24, 15, 0xbbbb)),
        ("axpy 800".into(), axpy(800, 0xcccc)),
        ("gemm 20x12x12".into(), gemm(20, 12, 12, 0xdddd)),
        ("stencil 40x23 b".into(), stencil(40, 23, 0xeeee)),
        ("conv3x3 30x23x1".into(), conv(30, 23, 1, 0xffff)),
        ("axpy 500".into(), axpy(500, 0x1235)),
    ]
}

/// Submits the serving queue to an async server (four clients, four
/// jobs each, assorted priorities, generous deadlines) and returns the
/// run statistics. One submission pattern shared by both admission
/// modes so their latency/throughput numbers compare like for like.
fn serve_queue(
    jobs: &[(String, ntx_sched::JobKind)],
    config: ntx_sched::ServerConfig,
) -> ServerRunStats {
    use ntx_sched::Server;
    let server = Server::start(config);
    let mut clients = Vec::new();
    for (client, chunk) in jobs.chunks(4).enumerate() {
        let session = server.session();
        let chunk: Vec<_> = chunk.to_vec();
        clients.push(std::thread::spawn(move || {
            let mut handles = Vec::new();
            for (i, (label, kind)) in chunk.into_iter().enumerate() {
                handles.push(
                    session
                        .job(label)
                        .kind(kind)
                        .priority((client + i) as u8 % 3)
                        .deadline(std::time::Duration::from_secs(600))
                        .submit()
                        .expect("server running"),
                );
            }
            for h in handles {
                let c = h.wait().expect("job served");
                assert!(c.result.is_ok(), "serving failed: {:?}", c.result);
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    let report = server.shutdown();
    ServerRunStats {
        served_jobs: report.jobs,
        jobs_per_second: report.jobs_per_second(),
        mean_latency_s: report.mean_latency().as_secs_f64(),
        max_latency_s: report.max_latency.as_secs_f64(),
        occupancy: report.occupancy(),
        deadline_misses: report.deadline_misses,
    }
}

/// Runs the mixed queue through the synchronous continuous-admission
/// engine, then replays the *exact* placement it chose into a fresh
/// barriered farm — the differential oracle. Returns the continuous
/// virtual makespan and whether per-job outputs and `PerfSnapshot`s
/// matched bit for bit.
fn continuous_vs_barriered_oracle(
    jobs: &[(String, ntx_sched::JobKind)],
    clusters: usize,
) -> (u64, bool) {
    use ntx_sched::{ClusterFarm, DurationTable, Job, JobResult, ScaleOutConfig, SimulatorBackend};
    let config = ScaleOutConfig::with_clusters(clusters);
    let mut sim = SimulatorBackend::new(config);
    let mut table = DurationTable::new();
    let mut placements = Vec::new();
    let mut results: Vec<Option<JobResult>> = (0..jobs.len()).map(|_| None).collect();
    let settle = |r: ntx_sched::ShardRetire,
                  table: &mut DurationTable,
                  results: &mut Vec<Option<JobResult>>| {
        table.observe(r.class, r.est_cycles, r.cycles);
        if let Some(res) = r.result {
            let slot = res.job_id as usize;
            results[slot] = Some(res);
        }
    };
    for (i, (label, kind)) in jobs.iter().enumerate() {
        let job = Job::new(i as u64, label.clone(), kind.clone());
        placements.push(sim.admit_continuous(&job, &table).expect("admit"));
        // Interleave a couple of shard events per admission, as the
        // server does.
        for _ in 0..2 {
            if let Some(r) = sim.step_farm() {
                settle(r, &mut table, &mut results);
            }
        }
    }
    while let Some(r) = sim.step_farm() {
        settle(r, &mut table, &mut results);
    }
    let makespan = sim.farm_makespan();

    // The oracle: identical placement, barriered accounting
    // (Placement::replay asserts the rebuilt shard count matches).
    let mut farm = ClusterFarm::with_memory(clusters, config.cluster, config.memory);
    let placed = jobs
        .iter()
        .enumerate()
        .map(|(i, (label, kind))| {
            let job = Job::new(i as u64, label.clone(), kind.clone());
            placements[i]
                .replay(&job, farm.cluster(0))
                .expect("replay plan")
        })
        .collect();
    let oracle = farm.run_batch(placed, false);
    let identical = oracle.results.iter().enumerate().all(|(i, o)| {
        let c = results[i].as_ref().expect("continuous result");
        c.output.len() == o.output.len()
            && c.output
                .iter()
                .zip(&o.output)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && c.report.per_cluster == o.report.per_cluster
            && c.report.makespan_cycles == o.report.makespan_cycles
    });
    (makespan, identical)
}

/// Runs the serving experiment (see [`ServingBenchReport`]).
///
/// # Panics
///
/// Panics when a deterministic workload fails admission or the server
/// drops a job — both indicate scheduler bugs.
#[must_use]
pub fn serving_report() -> ServingBenchReport {
    use ntx_sched::{JobQueue, ScaleOutConfig, ScaleOutExecutor, ServerConfig};
    let clusters = 8usize;
    let jobs = serving_jobs();

    // Pipelined farm vs barriered reference, same queue.
    let fill = |queue: &mut JobQueue| {
        for (label, kind) in &jobs {
            queue.job(label.clone()).kind(kind.clone()).submit();
        }
    };
    let mut pipelined = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(clusters));
    let mut queue = JobQueue::new();
    fill(&mut queue);
    let p = pipelined.run_queue(&mut queue).expect("pipelined batch");
    let mut barriered = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(clusters).barriered());
    let mut queue = JobQueue::new();
    fill(&mut queue);
    let b = barriered.run_queue(&mut queue).expect("barriered batch");
    // Independent oracle: the pre-farm full-width executor shards
    // every job across all clusters (different schedules, different
    // DMA traffic) — outputs must still match bit for bit.
    let mut full_width = ScaleOutExecutor::new(ScaleOutConfig {
        space_share: false,
        ..ScaleOutConfig::with_clusters(clusters).barriered()
    });
    let mut queue = JobQueue::new();
    fill(&mut queue);
    let f = full_width.run_queue(&mut queue).expect("full-width batch");
    let outputs_match = |x: &ntx_sched::BatchResult, y: &ntx_sched::BatchResult| {
        x.results.iter().zip(&y.results).all(|(rx, ry)| {
            rx.output.len() == ry.output.len()
                && rx
                    .output
                    .iter()
                    .zip(&ry.output)
                    .all(|(a, c)| a.to_bits() == c.to_bits())
        })
    };
    let bit_identical = outputs_match(&p, &b) && outputs_match(&p, &f);
    let snapshots_identical = p.results.iter().zip(&b.results).all(|(rp, rb)| {
        rp.report.per_cluster == rb.report.per_cluster
            && rp.report.makespan_cycles == rb.report.makespan_cycles
    });

    // The same queue answered by the analytical backend: instant, and
    // not a single simulator cycle anywhere.
    let mut model = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(clusters));
    let mut queue = JobQueue::new();
    for (label, kind) in &jobs {
        queue
            .job(label.clone())
            .kind(kind.clone())
            .estimate()
            .submit();
    }
    let est = model.run_queue(&mut queue).expect("estimated batch");
    let estimated_cycles_total = est
        .results
        .iter()
        .map(|r| r.estimate.expect("estimate per job").cycles)
        .sum();
    let estimate_sim_cycles = (0..clusters).map(|c| model.cluster(c).cycle()).sum();

    // Continuous admission against its barriered same-placement
    // oracle: the farm-as-a-service path must not change a single bit.
    let (continuous_makespan_cycles, continuous_bit_identical) =
        continuous_vs_barriered_oracle(&jobs, clusters);

    // The async front-end under multi-client load, once per admission
    // mode: continuous (the default) and the wave-batched baseline.
    let continuous = serve_queue(&jobs, ServerConfig::with_clusters(clusters));
    let wave = serve_queue(&jobs, ServerConfig::with_clusters(clusters).wave_batched());
    let latency_win = if continuous.mean_latency_s > 0.0 {
        wave.mean_latency_s / continuous.mean_latency_s
    } else {
        1.0
    };
    let throughput_ratio = if wave.jobs_per_second > 0.0 {
        continuous.jobs_per_second / wave.jobs_per_second
    } else {
        1.0
    };

    // Worker-pool core scaling: the same drive at 1/2/4 pool threads,
    // differential-checked against the serial run.
    let (pool_scaling, pool_speedup_4x, pool_bit_identical) = pool_scaling_sweep(clusters);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    ServingBenchReport {
        clusters,
        jobs: jobs.len(),
        barriered_makespan_cycles: b.report.makespan_cycles,
        fullwidth_makespan_cycles: f.report.makespan_cycles,
        pipelined_makespan_cycles: p.report.makespan_cycles,
        pipelined_speedup: b.report.makespan_cycles as f64 / p.report.makespan_cycles as f64,
        fullwidth_speedup: f.report.makespan_cycles as f64 / p.report.makespan_cycles as f64,
        bit_identical,
        snapshots_identical,
        continuous_makespan_cycles,
        continuous_bit_identical,
        estimated_cycles_total,
        estimate_sim_cycles,
        continuous,
        wave,
        latency_win,
        throughput_ratio,
        pool_scaling,
        pool_speedup_4x,
        pool_bit_identical,
        host_cores,
    }
}

// --------------------------------------------- shared-HMC saturation

/// One cluster count of the shared-HMC saturation sweep.
#[derive(Debug, Clone)]
pub struct HmcScalingPoint {
    /// Clusters attached to the cube (one streaming job each).
    pub clusters: usize,
    /// Batch makespan with ideal private memories, cycles.
    pub ideal_makespan_cycles: u64,
    /// Batch makespan drawing from the shared vault/LoB budget,
    /// cycles.
    pub contended_makespan_cycles: u64,
    /// `contended / ideal` (≥ 1 by construction).
    pub slowdown: f64,
    /// Weak-scaling efficiency vs linear: `ideal / contended` (1.0
    /// while the shared budget covers every port, dropping towards
    /// `budget / (clusters × port)` past saturation).
    pub efficiency: f64,
    /// Aggregate external-memory traffic over the contended makespan,
    /// bytes/s.
    pub achieved_ext_bandwidth: f64,
    /// Fraction of contended cluster-cycles the DMA sat waiting for an
    /// external-memory slot.
    pub ext_wait_fraction: f64,
    /// Per-job outputs bitwise identical between the two memory
    /// models.
    pub bit_identical: bool,
}

/// The saturation curve of one streaming workload.
#[derive(Debug, Clone)]
pub struct HmcWorkloadCurve {
    /// Workload label.
    pub workload: String,
    /// One point per cluster count, ascending.
    pub points: Vec<HmcScalingPoint>,
}

/// The `report-hmc` measurement: weak-scaling streaming workloads on
/// 1..64+ clusters, ideal private memories against the shared-HMC
/// bandwidth model.
#[derive(Debug, Clone)]
pub struct HmcReport {
    /// Shared vault/LoB bandwidth of the cube, bytes/s.
    pub shared_bandwidth: f64,
    /// The same budget in DMA words per NTX cycle.
    pub shared_words_per_cycle: f64,
    /// Streaming 3×3 convolution curve.
    pub conv: HmcWorkloadCurve,
    /// Streaming low-intensity GEMM curve.
    pub gemm: HmcWorkloadCurve,
    /// Every point of every curve bit-identical across memory models.
    pub bit_identical: bool,
}

/// Runs `clusters` copies of `kind` — one single-shard job per cluster
/// — through a farm under `memory` and returns the batch makespan,
/// the aggregate perf counters and each job's output.
fn hmc_weak_scaling_run(
    kind: &ntx_sched::JobKind,
    clusters: usize,
    memory: ntx_sched::MemoryModel,
) -> (u64, PerfSnapshot, Vec<Vec<f32>>) {
    use ntx_sched::{ClusterFarm, Job, JobMeta, PlacedJob, Tiler};
    let mut farm = ClusterFarm::with_memory(clusters, ClusterConfig::default(), memory);
    let placed: Vec<PlacedJob> = (0..clusters)
        .map(|c| {
            let job = Job::new(c as u64, format!("job-{c}"), kind.clone());
            let mut plans = Tiler::new(1)
                .plan(&job, farm.cluster(0))
                .expect("single-shard streaming job");
            let plan = plans.pop().expect("one plan per shard");
            PlacedJob {
                meta: JobMeta {
                    id: job.id,
                    label: job.label.clone(),
                    output_len: job.output_len(),
                    class: job.kind.class(),
                    home_cube: None,
                },
                shards: vec![(c, plan)],
            }
        })
        .collect();
    let batch = farm.run_batch(placed, true);
    let mut perf = PerfSnapshot::default();
    for p in &batch.report.per_cluster {
        perf.accumulate(p);
    }
    let outputs = batch.results.into_iter().map(|r| r.output).collect();
    (batch.report.makespan_cycles, perf, outputs)
}

/// Sweeps one workload over `counts` clusters in both memory models.
fn hmc_curve(
    label: &str,
    kind: &ntx_sched::JobKind,
    counts: &[usize],
    hmc: ntx_sched::HmcConfig,
    freq_hz: f64,
) -> HmcWorkloadCurve {
    use ntx_sched::MemoryModel;
    let points = counts
        .iter()
        .map(|&n| {
            let (ideal, _, out_i) = hmc_weak_scaling_run(kind, n, MemoryModel::Ideal);
            let (contended, perf, out_c) =
                hmc_weak_scaling_run(kind, n, MemoryModel::SharedHmc(hmc));
            let bit_identical = out_i.len() == out_c.len()
                && out_i.iter().zip(&out_c).all(|(a, b)| {
                    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
                });
            let seconds = contended as f64 / freq_hz;
            HmcScalingPoint {
                clusters: n,
                ideal_makespan_cycles: ideal,
                contended_makespan_cycles: contended,
                slowdown: contended as f64 / ideal as f64,
                efficiency: ideal as f64 / contended as f64,
                achieved_ext_bandwidth: (perf.ext_bytes_read + perf.ext_bytes_written) as f64
                    / seconds,
                ext_wait_fraction: if perf.cycles == 0 {
                    0.0
                } else {
                    perf.ext_wait_cycles as f64 / perf.cycles as f64
                },
                bit_identical,
            }
        })
        .collect();
    HmcWorkloadCurve {
        workload: label.into(),
        points,
    }
}

/// Runs the shared-HMC saturation experiment (see [`HmcReport`]): the
/// Fig. 1 cube (32 GB/s LoB, 6.4 DMA words per NTX cycle) under
/// 1..64 clusters each streaming its own copy of a conv3x3 / GEMM
/// job. With ideal memories weak scaling is exactly linear; the
/// shared budget covers ~6 ports, so efficiency holds near 1.0
/// through the PR 1 regime (≤ 8 clusters at most 20 % down) and
/// collapses towards `6.4 / clusters` beyond — the paper family's
/// memory-bound saturation. Data outputs are bit-identical in both
/// models at every point.
#[must_use]
pub fn hmc_report() -> HmcReport {
    hmc_report_sweep(&[1, 2, 4, 8, 16, 32, 64])
}

/// [`hmc_report`] over an explicit cluster-count sweep (the unit tests
/// run a reduced sweep; the `report-hmc` binary runs the full one).
#[must_use]
pub fn hmc_report_sweep(counts: &[usize]) -> HmcReport {
    use ntx_sched::JobKind;
    let hmc = ntx_sched::HmcConfig::default();
    let freq = ClusterConfig::default().ntx_freq_hz;
    // Streaming conv3x3: the Table I shape at two filters, image in
    // external memory — compute overlaps the stream, so the curve
    // shows how much slack the double buffering hides.
    let conv_kernel = Conv2dKernel {
        height: 66,
        width: 63,
        k: 3,
        filters: 2,
    };
    let conv = JobKind::Conv2d {
        kernel: conv_kernel,
        image: test_data(
            (conv_kernel.height * conv_kernel.width) as usize,
            0x0d15_ea5e,
        ),
        weights: test_data((9 * conv_kernel.filters) as usize, 0x600d_cafe),
    };
    // Streaming low-intensity GEMM: a thin K makes the A/B/C streams
    // dominate the MACs — the memory-bound end of the sweep.
    let dims = GemmKernel { m: 48, k: 8, n: 24 };
    let gemm = JobKind::Gemm {
        dims,
        a: test_data((dims.m * dims.k) as usize, 0xbead_5eed),
        b: test_data((dims.k * dims.n) as usize, 0xface_b00c),
    };
    let conv = hmc_curve("conv3x3 66x63x2 streaming", &conv, counts, hmc, freq);
    let gemm = hmc_curve("gemm 48x8x24 streaming", &gemm, counts, hmc, freq);
    let bit_identical = conv
        .points
        .iter()
        .chain(&gemm.points)
        .all(|p| p.bit_identical);
    HmcReport {
        shared_bandwidth: hmc.shared_bandwidth(),
        shared_words_per_cycle: hmc.shared_bandwidth() / (4.0 * freq),
        conv,
        gemm,
        bit_identical,
    }
}

// --------------------------------------------------- multi-cube HMC mesh

/// One `(clusters, cubes)` point of the mesh weak-scaling sweep.
#[derive(Debug, Clone)]
pub struct MeshScalingPoint {
    /// Clusters in the farm (one streaming job each).
    pub clusters: usize,
    /// Cubes in the mesh; clusters are block-partitioned over them.
    pub cubes: u32,
    /// Batch makespan with ideal private memories, cycles.
    pub ideal_makespan_cycles: u64,
    /// Makespan with every job homed at its own cluster's cube
    /// (data-affine placement: all traffic cube-local), cycles.
    pub affine_makespan_cycles: u64,
    /// Makespan with the same homes but every job placed one cube
    /// over (placement ignoring affinity: all traffic crosses a
    /// serial link when the mesh has more than one cube), cycles.
    pub naive_makespan_cycles: u64,
    /// Weak-scaling efficiency of the affine run vs linear:
    /// `ideal / affine`.
    pub affine_efficiency: f64,
    /// Weak-scaling efficiency of the naive run: `ideal / naive`.
    pub naive_efficiency: f64,
    /// Serial-link bytes of the affine run (0 under perfect affinity).
    pub affine_remote_bytes: u64,
    /// Serial-link bytes of the naive run.
    pub naive_remote_bytes: u64,
    /// Fraction of naive cluster-cycles attributed to remote access
    /// (hop latency plus zero-grant waits at the link clip).
    pub naive_remote_wait_fraction: f64,
    /// Outputs bitwise identical across all three runs.
    pub bit_identical: bool,
}

/// The mesh weak-scaling curve of one streaming workload.
#[derive(Debug, Clone)]
pub struct MeshWorkloadCurve {
    /// Workload label.
    pub workload: String,
    /// One point per `(clusters, cubes)` pair, ascending.
    pub points: Vec<MeshScalingPoint>,
}

/// The `report-mesh` measurement: weak scaling over a growing HMC
/// mesh, data-affine placement against the placement-blind control.
#[derive(Debug, Clone)]
pub struct MeshReport {
    /// Vault/LoB bandwidth of one cube, bytes/s.
    pub cube_bandwidth: f64,
    /// One serial link's budget in DMA words per NTX cycle.
    pub link_words_per_cycle: f64,
    /// Hop latency charged per remote shard, cycles.
    pub link_latency_cycles: u32,
    /// Streaming 3×3 convolution curve.
    pub conv: MeshWorkloadCurve,
    /// Streaming low-intensity GEMM curve.
    pub gemm: MeshWorkloadCurve,
    /// Every point of every curve bit-identical across the three runs.
    pub bit_identical: bool,
}

/// Runs `clusters` single-shard copies of `kind` under `memory`, with
/// job `i` placed by `place(i) = (cluster, home cube)`, and returns
/// the batch makespan, the farm's counter totals (including the
/// remote-traffic attribution) and each job's output.
fn mesh_scaling_run(
    kind: &ntx_sched::JobKind,
    clusters: usize,
    memory: ntx_sched::MemoryModel,
    place: impl Fn(usize) -> (usize, Option<u32>),
) -> (u64, PerfSnapshot, Vec<Vec<f32>>) {
    use ntx_sched::{ClusterFarm, Job, JobMeta, PlacedJob, Tiler};
    let mut farm = ClusterFarm::with_memory(clusters, ClusterConfig::default(), memory);
    let placed: Vec<PlacedJob> = (0..clusters)
        .map(|i| {
            let job = Job::new(i as u64, format!("job-{i}"), kind.clone());
            let mut plans = Tiler::new(1)
                .plan(&job, farm.cluster(0))
                .expect("single-shard streaming job");
            let plan = plans.pop().expect("one plan per shard");
            let (cluster, home_cube) = place(i);
            PlacedJob {
                meta: JobMeta {
                    id: job.id,
                    label: job.label.clone(),
                    output_len: job.output_len(),
                    class: job.kind.class(),
                    home_cube,
                },
                shards: vec![(cluster, plan)],
            }
        })
        .collect();
    let batch = farm.run_batch(placed, true);
    let outputs = batch.results.into_iter().map(|r| r.output).collect();
    (batch.report.makespan_cycles, farm.perf_totals(), outputs)
}

/// Sweeps one workload over the `(clusters, cubes)` points.
fn mesh_curve(
    label: &str,
    kind: &ntx_sched::JobKind,
    points: &[(usize, u32)],
    mesh_of: impl Fn(u32) -> ntx_sched::MeshConfig,
) -> MeshWorkloadCurve {
    use ntx_sched::MemoryModel;
    let points = points
        .iter()
        .map(|&(n, cubes)| {
            // The block partition the mesh itself uses: the home of
            // cluster i's slice of the data set.
            let cube_of = |i: usize| ((i as u64 * u64::from(cubes)) / n as u64) as u32;
            let (ideal, _, out_i) = mesh_scaling_run(kind, n, MemoryModel::Ideal, |i| (i, None));
            // Affine: every job homed where its cluster is attached.
            let (affine, perf_a, out_a) =
                mesh_scaling_run(kind, n, MemoryModel::HmcMesh(mesh_of(cubes)), |i| {
                    (i, Some(cube_of(i)))
                });
            // Naive: same homes, but placement shifts every job one
            // cube over — the traffic pattern of a scheduler that
            // balances load while ignoring where the data lives.
            let shift = n / cubes as usize;
            let (naive, perf_n, out_n) =
                mesh_scaling_run(kind, n, MemoryModel::HmcMesh(mesh_of(cubes)), |i| {
                    ((i + shift) % n, Some(cube_of(i)))
                });
            let eq = |a: &Vec<Vec<f32>>, b: &Vec<Vec<f32>>| {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| {
                        x.len() == y.len()
                            && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
                    })
            };
            MeshScalingPoint {
                clusters: n,
                cubes,
                ideal_makespan_cycles: ideal,
                affine_makespan_cycles: affine,
                naive_makespan_cycles: naive,
                affine_efficiency: ideal as f64 / affine as f64,
                naive_efficiency: ideal as f64 / naive as f64,
                affine_remote_bytes: perf_a.ext_remote_bytes,
                naive_remote_bytes: perf_n.ext_remote_bytes,
                naive_remote_wait_fraction: if perf_n.cycles == 0 {
                    0.0
                } else {
                    perf_n.ext_remote_wait_cycles as f64 / perf_n.cycles as f64
                },
                bit_identical: eq(&out_i, &out_a) && eq(&out_i, &out_n),
            }
        })
        .collect();
    MeshWorkloadCurve {
        workload: label.into(),
        points,
    }
}

/// Runs the multi-cube mesh experiment (see [`MeshReport`]): weak
/// scaling from 1 cluster on 1 cube to 64 clusters on 8 cubes, the
/// same streaming workloads as [`hmc_report`]. Under data-affine
/// placement every cube serves only its attached clusters, so the
/// 64-cluster farm runs in the 8-per-cube regime of the PR 5 curve
/// (near-linear) instead of collapsing at `budget / 64`; the naive
/// control pushes every stream over a serial link and pays the
/// bandwidth clip plus the hop latency.
#[must_use]
pub fn mesh_report() -> MeshReport {
    mesh_report_sweep(&[(1, 1), (2, 2), (4, 4), (8, 8), (16, 8), (32, 8), (64, 8)])
}

/// [`mesh_report`] over an explicit `(clusters, cubes)` sweep (the
/// unit tests run a reduced sweep; `report-mesh` runs the full one).
#[must_use]
pub fn mesh_report_sweep(points: &[(usize, u32)]) -> MeshReport {
    use ntx_sched::JobKind;
    let mesh_of = |cubes: u32| ntx_sched::MeshConfig::default().with_cubes(cubes);
    let probe = mesh_of(1);
    let freq = ClusterConfig::default().ntx_freq_hz;
    let conv_kernel = Conv2dKernel {
        height: 66,
        width: 63,
        k: 3,
        filters: 2,
    };
    let conv = JobKind::Conv2d {
        kernel: conv_kernel,
        image: test_data(
            (conv_kernel.height * conv_kernel.width) as usize,
            0x0d15_ea5e,
        ),
        weights: test_data((9 * conv_kernel.filters) as usize, 0x600d_cafe),
    };
    let dims = GemmKernel { m: 48, k: 8, n: 24 };
    let gemm = JobKind::Gemm {
        dims,
        a: test_data((dims.m * dims.k) as usize, 0xbead_5eed),
        b: test_data((dims.k * dims.n) as usize, 0xface_b00c),
    };
    let conv = mesh_curve("conv3x3 66x63x2 streaming", &conv, points, mesh_of);
    let gemm = mesh_curve("gemm 48x8x24 streaming", &gemm, points, mesh_of);
    let bit_identical = conv
        .points
        .iter()
        .chain(&gemm.points)
        .all(|p| p.bit_identical);
    MeshReport {
        cube_bandwidth: probe.cube.shared_bandwidth(),
        link_words_per_cycle: probe.cube.link_bandwidth / (4.0 * freq),
        link_latency_cycles: probe.link_latency_cycles,
        conv,
        gemm,
        bit_identical,
    }
}

// ------------------------------------------------------- §IV Green Wave

/// The Green-Wave comparison rows (8th-order seismic Laplacian on a
/// 512³ grid).
#[must_use]
pub fn greenwave_rows() -> Vec<StencilPlatform> {
    let cost = HighOrderLaplaceKernel {
        depth: 512,
        height: 512,
        width: 512,
    }
    .cost();
    greenwave_comparison(&cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_report_is_in_the_paper_regime() {
        let r = table1_report();
        assert!((r.peak_flops - 20.0e9).abs() < 1.0);
        assert!(r.conflict_probability > 0.02 && r.conflict_probability < 0.35);
        assert!(
            r.sustained_flops > 5.0e9,
            "{:.1} G",
            r.sustained_flops / 1e9
        );
        assert!(
            r.power_w > 0.10 && r.power_w < 0.30,
            "{:.0} mW",
            r.power_w * 1e3
        );
        assert!(r.pj_per_flop > 5.0 && r.pj_per_flop < 16.0);
    }

    #[test]
    fn fig5_has_15_points_with_sane_shapes() {
        let pts = fig5_points();
        assert_eq!(pts.len(), 15);
        let roofline = Roofline::default();
        for p in &pts {
            assert!(p.oi > 0.0, "{}: OI {}", p.label, p.oi);
            assert!(
                p.performance <= roofline.performance(p.oi) * 1.001,
                "{} exceeds the roofline",
                p.label
            );
            assert!(p.performance > 0.0, "{} has zero performance", p.label);
        }
        // Memory-bound AXPY below compute-bound GEMM 1024.
        let axpy = pts.iter().find(|p| p.label == "AXPY 16384").unwrap();
        let gemm = pts.iter().find(|p| p.label == "GEMM 1024").unwrap();
        assert!(gemm.performance > 4.0 * axpy.performance);
    }

    #[test]
    fn precision_improvement_is_positive() {
        let r = precision_experiment();
        assert!(
            r.improvement > 1.2,
            "deferred rounding should clearly beat sequential FMA: {:.2}",
            r.improvement
        );
        assert!(r.ntx_rmse > 0.0);
    }

    #[test]
    fn scaling_hits_six_x_at_eight_clusters() {
        let r = scaling_report();
        assert!(r.bit_identical, "sharded outputs must be bit-identical");
        assert_eq!(r.points.len(), 4);
        assert_eq!(r.points[0].speedup, 1.0);
        let p8 = r.points.last().unwrap();
        assert_eq!(p8.clusters, 8);
        assert!(
            p8.speedup >= 6.0,
            "8-cluster speedup {:.2} should be >= 6x",
            p8.speedup
        );
        assert!(p8.efficiency > 0.7 && p8.efficiency <= 1.02);
        for w in r.points.windows(2) {
            assert!(w[1].makespan_cycles < w[0].makespan_cycles);
        }
    }

    #[test]
    fn serving_stack_beats_the_barrier_and_estimates_for_free() {
        let r = serving_report();
        assert!(r.bit_identical, "pipelined outputs must be bit-identical");
        assert!(
            r.snapshots_identical,
            "per-job PerfSnapshots must be bit-identical"
        );
        assert!(
            r.pipelined_speedup > 1.0,
            "pipelined farm must beat the barriered executor ({:.3}x)",
            r.pipelined_speedup
        );
        assert!(
            r.fullwidth_speedup >= 1.0,
            "pipelined farm must not lose to the full-width executor ({:.3}x)",
            r.fullwidth_speedup
        );
        assert_eq!(
            r.estimate_sim_cycles, 0,
            "estimates must spend no simulator cycles"
        );
        assert!(r.estimated_cycles_total > 0);
        assert!(
            r.continuous_bit_identical,
            "continuous admission must match its barriered same-placement oracle"
        );
        assert!(r.continuous_makespan_cycles > 0);
        for (mode, stats) in [("continuous", &r.continuous), ("wave", &r.wave)] {
            assert_eq!(stats.served_jobs, r.jobs as u64, "{mode} dropped jobs");
            assert_eq!(stats.deadline_misses, 0, "{mode} missed deadlines");
            assert!(stats.jobs_per_second > 0.0, "{mode} throughput");
            assert!(
                stats.occupancy > 0.0 && stats.occupancy <= 1.0,
                "{mode} occupancy"
            );
        }
        // Continuous admission delivers completions as jobs retire
        // instead of at wave boundaries; its mean latency must not
        // regress behind wave batching. (The release-mode bench gate
        // enforces the strict win; debug timing keeps a small margin.)
        // Latency here is pure wall clock, so a loaded test host can
        // depress a single sample — retry before declaring a loss.
        let mut win = r.latency_win;
        for _ in 0..2 {
            if win > 0.8 {
                break;
            }
            win = serving_report().latency_win;
        }
        assert!(
            win > 0.8,
            "continuous mean latency fell far behind wave batching: {win:.3}"
        );
    }

    #[test]
    fn shared_hmc_sweep_saturates_without_touching_data() {
        // Reduced sweep (the release binary gates the full 1..64 run):
        // 1 cluster sits under the 6.4-word budget, 16 is clearly
        // oversubscribed.
        let r = hmc_report_sweep(&[1, 16]);
        assert!(r.bit_identical, "contention must never touch data");
        assert!((r.shared_words_per_cycle - 6.4).abs() < 1e-6);
        for curve in [&r.conv, &r.gemm] {
            let p1 = &curve.points[0];
            assert_eq!(p1.clusters, 1);
            assert_eq!(
                p1.ideal_makespan_cycles, p1.contended_makespan_cycles,
                "{}: one cluster fits under the budget",
                curve.workload
            );
            assert_eq!(p1.ext_wait_fraction, 0.0);
            let p16 = &curve.points[1];
            assert_eq!(p16.clusters, 16);
            assert_eq!(
                p16.ideal_makespan_cycles, p1.ideal_makespan_cycles,
                "{}: ideal weak scaling is exactly linear",
                curve.workload
            );
            assert!(
                p16.efficiency < 0.70,
                "{}: 16 oversubscribed clusters should saturate, got {:.0}%",
                curve.workload,
                p16.efficiency * 100.0
            );
            assert!(p16.ext_wait_fraction > 0.2);
            assert!(p16.achieved_ext_bandwidth <= 1.02 * r.shared_bandwidth);
        }
    }

    #[test]
    fn mesh_sweep_keeps_affinity_gap_without_touching_data() {
        // Reduced sweep (the release binary gates the full run): two
        // lone-port cubes, then 16 clusters split over 2 cubes — each
        // cube in its oversubscribed 8-port regime, so affinity
        // matters while the run stays fast.
        let r = mesh_report_sweep(&[(2, 2), (16, 2)]);
        assert!(r.bit_identical, "topology/placement must never touch data");
        for curve in [&r.conv, &r.gemm] {
            let p2 = &curve.points[0];
            assert_eq!((p2.clusters, p2.cubes), (2, 2));
            assert_eq!(
                p2.ideal_makespan_cycles, p2.affine_makespan_cycles,
                "{}: a lone port per cube gets the full pipe",
                curve.workload
            );
            assert!(
                p2.naive_makespan_cycles > p2.affine_makespan_cycles,
                "{}: the remote hop must cost cycles",
                curve.workload
            );
            assert_eq!(p2.affine_remote_bytes, 0);
            assert!(p2.naive_remote_bytes > 0);
            let p16 = &curve.points[1];
            assert_eq!((p16.clusters, p16.cubes), (16, 2));
            assert!(
                p16.naive_efficiency < p16.affine_efficiency,
                "{}: placement-blind scheduling must lose efficiency \
                 ({:.0}% vs {:.0}%)",
                curve.workload,
                p16.naive_efficiency * 100.0,
                p16.affine_efficiency * 100.0
            );
            assert!(p16.naive_remote_wait_fraction > 0.0);
        }
    }

    #[test]
    fn greenwave_has_three_rows() {
        let rows = greenwave_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "Green Wave");
    }

    #[test]
    fn lap1d_utilization_reasonable() {
        let u = lap1d_utilization();
        assert!(u > 0.1 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn test_data_is_deterministic() {
        assert_eq!(test_data(8, 42), test_data(8, 42));
        assert_ne!(test_data(8, 42), test_data(8, 43));
        for v in test_data(100, 7) {
            assert!((-1.0..=1.0).contains(&v));
        }
    }
}

// ----------------------------------------------------- simulator speed

/// One workload's measurement of the burst fast path against the pure
/// per-cycle reference path: identical simulated results (verified
/// bitwise, including cycle and stall counts), different wall-clock
/// speed.
#[derive(Debug, Clone)]
pub struct SimPerfWorkload {
    /// Workload label recorded in `BENCH_sim.json`.
    pub workload: &'static str,
    /// Simulated NTX cycles of one run (identical in both modes).
    pub cycles: u64,
    /// Simulated elements (engine iterations issued) of one run.
    pub elements: u64,
    /// Flops retired per run.
    pub flops: u64,
    /// Best wall-clock seconds per run, burst fast path enabled.
    pub wall_fast_s: f64,
    /// Best wall-clock seconds per run, pure per-cycle path.
    pub wall_reference_s: f64,
    /// Simulated elements per wall-clock second, fast path.
    pub elements_per_sec_fast: f64,
    /// Simulated elements per wall-clock second, per-cycle path.
    pub elements_per_sec_reference: f64,
    /// Wall-clock speedup of the fast path.
    pub speedup: f64,
    /// Output planes bitwise identical between the two modes.
    pub bit_identical: bool,
    /// Cycle counters and the full perf snapshot identical.
    pub counters_identical: bool,
}

/// The `report-simperf` measurement: the Table I conv3x3 kernel driven
/// through both execution regimes of the simulator.
#[derive(Debug, Clone)]
pub struct SimPerfReport {
    /// The streaming Table I configuration: all 8 NTX co-processors
    /// plus double-buffered DMA contending for the TCDM banks. The
    /// contended steady state arbitrates every cycle by construction,
    /// so this bounds the fast path at the cost of the exact
    /// cycle-by-cycle model work.
    pub streaming: SimPerfWorkload,
    /// The same conv3x3 kernel executed by a single NTX co-processor —
    /// the sole-master regime where the burst fast path executes whole
    /// conflict-free spans per call.
    pub single_ntx: SimPerfWorkload,
}

/// Runs the Table I conv3x3 streaming workload once with the given
/// fast-path setting; returns the output planes and the perf delta.
#[must_use]
pub fn conv3x3_sim_run(fast_path: bool) -> (Vec<f32>, PerfSnapshot) {
    let mut cluster = Cluster::new(ClusterConfig {
        fast_path,
        ..ClusterConfig::default()
    });
    let kernel = Conv2dKernel {
        height: 66,
        width: 63,
        k: 3,
        filters: 8,
    };
    let image = test_data((kernel.height * kernel.width) as usize, 0x1234_5678);
    let weights = test_data((kernel.k * kernel.k * kernel.filters) as usize, 0x9abc_def0);
    cluster.ext_mem().write_f32_slice(0, &image);
    write_replicated_weights(&mut cluster, 0, &weights);
    let tiles = conv_tiles(&cluster, &kernel, 0, 0, 0x10_0000, 8);
    let perf = run_tiles(&mut cluster, &tiles);
    let out_len = (kernel.out_height() * kernel.out_width() * kernel.filters) as usize;
    let out = cluster.ext_mem().read_f32_slice(0x10_0000, out_len);
    (out, perf)
}

/// Runs the Table I conv3x3 kernel (all 8 filters) on a single NTX
/// co-processor in the TCDM — the sole-master burst regime.
#[must_use]
pub fn conv3x3_single_ntx_run(fast_path: bool) -> (Vec<f32>, PerfSnapshot) {
    let mut cluster = Cluster::new(ClusterConfig {
        fast_path,
        ..ClusterConfig::default()
    });
    let kernel = Conv2dKernel {
        height: 66,
        width: 63,
        k: 3,
        filters: 8,
    };
    let image = test_data((kernel.height * kernel.width) as usize, 0x1234_5678);
    let weights = test_data((kernel.k * kernel.k * kernel.filters) as usize, 0x9abc_def0);
    let w_addr = 4 * kernel.height * kernel.width;
    let out_addr = w_addr + 4 * 9 * kernel.filters;
    let out_len = (kernel.out_height() * kernel.out_width()) as usize;
    cluster.write_tcdm_f32(0, &image);
    cluster.write_tcdm_f32(w_addr, &weights);
    let before = cluster.perf();
    let mut out = Vec::with_capacity(out_len * kernel.filters as usize);
    for f in 0..kernel.filters {
        let cfgs = kernel
            .lower_replicated(0, w_addr + 4 * 9 * f, 0, out_addr, 1, false)
            .expect("valid lowering");
        for cfg in &cfgs {
            cluster.offload_with_writes(0, cfg, 6);
        }
        cluster.run_to_completion();
        out.extend(cluster.read_tcdm_f32(out_addr, out_len));
    }
    (out, cluster.perf().since(&before))
}

fn measure_workload(
    label: &'static str,
    reps: u32,
    run: impl Fn(bool) -> (Vec<f32>, PerfSnapshot),
) -> SimPerfWorkload {
    use std::time::Instant;
    let reps = reps.max(1);
    let time_mode = |fast: bool| {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = run(fast);
            best = best.min(t0.elapsed().as_secs_f64());
            result = Some(r);
        }
        let (out, perf) = result.expect("reps >= 1");
        (best, out, perf)
    };
    let (wall_fast, out_fast, perf_fast) = time_mode(true);
    let (wall_ref, out_ref, perf_ref) = time_mode(false);
    let bit_identical = out_fast.len() == out_ref.len()
        && out_fast
            .iter()
            .zip(&out_ref)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    let counters_identical = perf_fast == perf_ref;
    let elements = perf_fast.ntx_active_cycles;
    SimPerfWorkload {
        workload: label,
        cycles: perf_fast.cycles,
        elements,
        flops: perf_fast.flops,
        wall_fast_s: wall_fast,
        wall_reference_s: wall_ref,
        elements_per_sec_fast: elements as f64 / wall_fast,
        elements_per_sec_reference: elements as f64 / wall_ref,
        speedup: wall_ref / wall_fast,
        bit_identical,
        counters_identical,
    }
}

/// Times the Table I conv3x3 kernel in both execution regimes and both
/// simulator modes (`reps` samples each, best sample kept), verifying
/// that every simulated outcome is bit-identical — the `report-simperf`
/// experiment.
#[must_use]
pub fn simperf_report(reps: u32) -> SimPerfReport {
    SimPerfReport {
        streaming: measure_workload("table1_conv3x3_streaming_8ntx", reps, conv3x3_sim_run),
        single_ntx: measure_workload("table1_conv3x3_single_ntx", reps, conv3x3_single_ntx_run),
    }
}

// ---------------------------------------------------------------------------
// Chaos serving: fault injection, recovery and overload control
// ---------------------------------------------------------------------------

/// 64-bit xorshift — the arrival/size generator of the chaos workload
/// (the 32-bit [`test_data`] generator stays dedicated to tensor
/// payloads).
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One open-loop serving run's latency/shedding statistics.
#[derive(Debug, Clone)]
pub struct ChaosRunStats {
    /// Jobs offered by the load generator.
    pub offered: u64,
    /// Jobs that completed on the farm.
    pub completed: u64,
    /// Jobs shed at admission (deadline provably unmeetable).
    pub shed: u64,
    /// Completed jobs whose virtual latency overran the budget.
    pub deadline_misses: u64,
    /// p50 virtual latency of completed jobs, cycles from arrival.
    pub p50_cycles: u64,
    /// p99 virtual latency of completed jobs.
    pub p99_cycles: u64,
    /// p99.9 virtual latency of completed jobs.
    pub p999_cycles: u64,
    /// Virtual makespan of the run.
    pub makespan_cycles: u64,
}

impl ChaosRunStats {
    /// Deadline misses over completed jobs (0.0 when nothing ran).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.completed as f64
        }
    }
}

/// The `report-chaos` measurement: the serving stack under a seeded
/// chaos schedule and open-loop overload — cluster kill recovery
/// (zero lost jobs, bit-identical outputs, proportional degradation),
/// deadline-aware shedding under 2x saturation, serial-link
/// degradation on the mesh, and the async front-end with a bounded
/// admission queue.
#[derive(Debug, Clone)]
pub struct ChaosBenchReport {
    /// Clusters in the farm.
    pub clusters: usize,
    /// Jobs in the generated trace (per run).
    pub jobs: usize,
    /// Closed-loop makespan of the trace (the capacity calibration).
    pub calib_makespan_cycles: u64,
    /// Virtual-cycle deadline budget handed to every job of the
    /// overload runs (twice the unsaturated p99).
    pub budget_cycles: u64,
    /// Fault-free open-loop makespan (the recovery baseline).
    pub baseline_makespan_cycles: u64,
    /// Open-loop makespan with 1 of `clusters` killed mid-run plus
    /// transient stalls.
    pub faulted_makespan_cycles: u64,
    /// `faulted / baseline` (must stay within `degradation_bound`).
    pub makespan_ratio: f64,
    /// The proportional-degradation gate: `1.5 * N/(N-1)`.
    pub degradation_bound: f64,
    /// Jobs lost to the injected faults (must be zero).
    pub jobs_lost: u64,
    /// Faulted outputs bitwise identical to the fault-free run.
    pub recovery_bit_identical: bool,
    /// Fault events that fired during the faulted run.
    pub faults_injected: u64,
    /// Shards re-placed onto survivors after the kill.
    pub shards_retried: u64,
    /// Dead cycles injected by transient stalls.
    pub fault_stall_cycles: u64,
    /// Open-loop run at 0.5x the calibrated capacity (no shedding —
    /// the latency reference).
    pub unsaturated: ChaosRunStats,
    /// Open-loop run at 2x capacity with deadline shedding armed.
    pub saturated: ChaosRunStats,
    /// `saturated p99 / unsaturated p99` over *accepted* jobs (must
    /// stay within `p99_bound` — shedding keeps the served latency
    /// bounded while the offered load doubles).
    pub p99_ratio: f64,
    /// The shedding gate on `p99_ratio`.
    pub p99_bound: f64,
    /// Remote-access wait cycles of the mesh mix on healthy links.
    pub link_wait_base_cycles: u64,
    /// Remote-access wait cycles with the serial link clipped to 1/4
    /// bandwidth for a window mid-run.
    pub link_wait_faulted_cycles: u64,
    /// Mesh outputs bitwise identical with and without the link fault.
    pub link_bit_identical: bool,
    /// Async smoke: submissions offered to the bounded-queue server.
    pub async_submitted: u64,
    /// Async smoke: completions received (success or explicit error).
    pub async_completed: u64,
    /// Async smoke: submissions rejected with explicit backpressure.
    pub async_backpressure: u64,
    /// Every async submission got an explicit outcome (a completion,
    /// a shed/backpressure error — never a silent drop).
    pub async_all_explicit: bool,
}

/// The heavy-tailed chaos workload: `count` jobs across all five
/// [`ntx_sched::JobKind`] families, ~70% small / 25% medium / 5%
/// large, deterministically drawn from `seed`.
fn chaos_jobs(seed: u64, count: usize) -> Vec<(String, ntx_sched::JobKind)> {
    use ntx_isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect};
    use ntx_sched::JobKind;
    let mut rng = seed | 1;
    let mut jobs = Vec::with_capacity(count);
    for i in 0..count {
        let draw = xorshift64(&mut rng);
        // Heavy-tailed size class: 0 = small, 1 = medium, 2 = large.
        let class = match draw % 100 {
            0..=69 => 0,
            70..=94 => 1,
            _ => 2,
        };
        let family = (draw >> 8) % 5;
        let dseed = (draw >> 16) as u32 | 1;
        let kind = match family {
            0 => {
                let n = [300, 2400, 14_000][class];
                JobKind::Axpy {
                    a: 1.25,
                    x: test_data(n, dseed),
                    y: test_data(n, dseed ^ 0x5555),
                }
            }
            1 => {
                let (m, k, n) = [(8, 8, 8), (20, 12, 12), (32, 16, 16)][class];
                JobKind::Gemm {
                    dims: GemmKernel { m, k, n },
                    a: test_data((m * k) as usize, dseed),
                    b: test_data((k * n) as usize, dseed ^ 0xaaaa),
                }
            }
            2 => {
                let (h, w, f) = [(12, 9, 1), (30, 23, 2), (64, 48, 4)][class];
                let kernel = Conv2dKernel {
                    height: h,
                    width: w,
                    k: 3,
                    filters: f,
                };
                JobKind::Conv2d {
                    kernel,
                    image: test_data((h * w) as usize, dseed),
                    weights: test_data((9 * f) as usize, dseed ^ 0xffff),
                }
            }
            3 => {
                let (h, w) = [(12, 9), (30, 17), (64, 40)][class];
                JobKind::Stencil2d {
                    height: h,
                    width: w,
                    grid: test_data((h * w) as usize, dseed),
                }
            }
            _ => {
                // Raw dot product of n elements: not tileable, lands
                // whole on one cluster — the odd-one-out the placement
                // has to route around.
                let n = 16 + (draw >> 24) % 48;
                let cfg = NtxConfig::builder()
                    .command(Command::Mac {
                        operand: OperandSelect::Memory,
                    })
                    .loops(LoopNest::vector(n as u32))
                    .agu(0, AguConfig::stream(0x000, 4))
                    .agu(1, AguConfig::stream(4 * n as u32, 4))
                    .agu(2, AguConfig::fixed(8 * n as u32))
                    .build()
                    .expect("valid raw dot product");
                JobKind::Raw(ntx_sched::RawJob {
                    config: cfg,
                    tcdm: vec![
                        (0x000, test_data(n as usize, dseed)),
                        (4 * n as u32, test_data(n as usize, dseed ^ 0x3333)),
                    ],
                    result_addr: 8 * n as u32,
                    result_len: 1,
                })
            }
        };
        jobs.push((format!("chaos-{i}"), kind));
    }
    jobs
}

/// Open-loop arrival schedule: exponential-ish inter-arrival gaps of
/// mean `mean_gap` cycles, with a burst of 4 back-to-back arrivals
/// every 16th job — Poisson-flavored background plus bursts, all from
/// `seed`.
fn chaos_arrivals(seed: u64, count: usize, mean_gap: u64) -> Vec<u64> {
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut at = 0u64;
    let mut arrivals = Vec::with_capacity(count);
    for i in 0..count {
        if i > 0 && i % 16 != 0 {
            // Sum of two uniform draws in [0, mean_gap): triangular
            // around the mean, zero-capable — close enough to
            // exponential for an open-loop driver, with no floats to
            // vary across platforms.
            let gap = if mean_gap == 0 {
                0
            } else {
                (xorshift64(&mut rng) % mean_gap + xorshift64(&mut rng) % mean_gap) / 2 * 2
            };
            at += gap;
        }
        arrivals.push(at);
    }
    arrivals
}

/// Everything one open-loop chaos run produces.
struct ChaosRunOutcome {
    stats: ChaosRunStats,
    /// Per-job output bits (`None` when the job was shed).
    outputs: Vec<Option<Vec<f32>>>,
    faults: ntx_sched::FaultStats,
    fault_stall_cycles: u64,
}

/// Drives the continuous-admission engine open-loop: jobs are admitted
/// when the farm's virtual clock crosses their arrival cycle (the
/// generator never waits for completions), each with `budget` cycles
/// of virtual deadline from its admission instant. Latency is
/// `finish - admission clock` in farm cycles — queueing plus service
/// in virtual time (an idle farm's clock does not chase wall-clock
/// arrival gaps, so arrival-anchored latency would read zero at low
/// load). `table` carries measured-duration state across runs, as the
/// live server's table would.
fn run_chaos_open_loop(
    jobs: &[(String, ntx_sched::JobKind)],
    arrivals: &[u64],
    clusters: usize,
    faults: ntx_sched::FaultPlan,
    budget: Option<u64>,
    table: &mut ntx_sched::DurationTable,
) -> ChaosRunOutcome {
    use ntx_sched::{Job, ScaleOutConfig, SchedError, SimulatorBackend};
    let config = ScaleOutConfig::with_clusters(clusters).with_faults(faults);
    let mut sim = SimulatorBackend::new(config);
    let mut outputs: Vec<Option<Vec<f32>>> = (0..jobs.len()).map(|_| None).collect();
    let mut finish: Vec<Option<u64>> = (0..jobs.len()).map(|_| None).collect();
    let mut admitted_at: Vec<u64> = vec![0; jobs.len()];
    let mut shed = 0u64;
    let mut next = 0usize;
    loop {
        // Admit everything that has arrived by virtual now; when the
        // farm is idle, virtual time jumps to the next arrival.
        while next < jobs.len() && (arrivals[next] <= sim.virtual_now() || !sim.has_farm_work()) {
            let (label, kind) = &jobs[next];
            let job = Job::new(next as u64, label.clone(), kind.clone());
            admitted_at[next] = sim.virtual_now();
            match sim.admit_continuous_within(&job, table, budget) {
                Ok(_) => {}
                Err(SchedError::DeadlineUnmeetable { .. }) => shed += 1,
                Err(e) => panic!("chaos admission failed: {e}"),
            }
            next += 1;
        }
        match sim.step_farm() {
            Some(r) => {
                table.observe(r.class, r.est_cycles, r.cycles);
                if let Some(res) = r.result {
                    let slot = res.job_id as usize;
                    finish[slot] = Some(res.finish_cycle);
                    outputs[slot] = Some(res.output);
                }
            }
            None => {
                if next >= jobs.len() {
                    break;
                }
            }
        }
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut misses = 0u64;
    for (i, f) in finish.iter().enumerate() {
        if let Some(f) = f {
            let lat = f.saturating_sub(admitted_at[i]);
            if budget.is_some_and(|b| lat > b) {
                misses += 1;
            }
            latencies.push(lat);
        }
    }
    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            let rank = ((q * latencies.len() as f64).ceil() as usize).max(1);
            latencies[rank.min(latencies.len()) - 1]
        }
    };
    let totals = sim.perf_totals();
    ChaosRunOutcome {
        stats: ChaosRunStats {
            offered: jobs.len() as u64,
            completed: latencies.len() as u64,
            shed,
            deadline_misses: misses,
            p50_cycles: pct(0.50),
            p99_cycles: pct(0.99),
            p999_cycles: pct(0.999),
            makespan_cycles: sim.farm_makespan(),
        },
        outputs,
        faults: sim.fault_stats(),
        fault_stall_cycles: totals.fault_stall_cycles,
    }
}

/// Bitwise comparison of two per-job output sets; `None` entries
/// (shed jobs) only match `None`.
fn chaos_outputs_identical(a: &[Option<Vec<f32>>], b: &[Option<Vec<f32>>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (None, None) => true,
            (Some(x), Some(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
            }
            _ => false,
        })
}

/// The mesh mix under a clipped serial link: same jobs admitted
/// continuously (the only path fault plans flow through), healthy vs
/// degraded link, returns `(healthy wait, degraded wait, bit_identical)`.
fn chaos_link_fault() -> (u64, u64, bool) {
    use ntx_sched::{
        DurationTable, FaultPlan, HmcConfig, Job, MeshConfig, ScaleOutConfig, SimulatorBackend,
    };
    let mesh = MeshConfig::default()
        .with_cubes(2)
        .with_cube(HmcConfig::default().with_interconnect_bits(64));
    // Affinity off: load-ordered placement routinely lands shards on
    // the remote cube, so the serial link carries traffic to clip.
    let base = ScaleOutConfig::with_clusters(4)
        .with_hmc_mesh(mesh)
        .without_affinity();
    let run = |plan: FaultPlan| -> (u64, Vec<Option<Vec<f32>>>) {
        let mut sim = SimulatorBackend::new(base.with_faults(plan));
        let table = DurationTable::new();
        let jobs = serving_jobs();
        let mut outputs: Vec<Option<Vec<f32>>> = (0..jobs.len()).map(|_| None).collect();
        for (i, (label, kind)) in jobs.into_iter().enumerate() {
            let job = Job::new(i as u64, label, kind);
            sim.admit_continuous(&job, &table).expect("mesh admission");
        }
        while let Some(r) = sim.step_farm() {
            if let Some(res) = r.result {
                let slot = res.job_id as usize;
                outputs[slot] = Some(res.output);
            }
        }
        (sim.perf_totals().ext_remote_wait_cycles, outputs)
    };
    // Clip the link to 1/4 bandwidth for (effectively) the whole run.
    let (base_wait, base_out) = run(FaultPlan::NONE);
    let (faulted_wait, faulted_out) = run(FaultPlan::NONE.with_link_fault(1 << 14, 0, 1 << 40));
    (
        base_wait,
        faulted_wait,
        chaos_outputs_identical(&base_out, &faulted_out),
    )
}

/// The async smoke: a bounded-queue, fault-injected [`ntx_sched::Server`]
/// under concurrent clients mixing fail-fast and blocking submission.
/// Returns `(submitted, completed, backpressure, all_explicit)`.
fn chaos_async_smoke() -> (u64, u64, u64, bool) {
    use ntx_sched::{FaultPlan, Server, ServerConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let faults = FaultPlan::NONE.with_seed(11).with_kill(1, 400);
    let server = Server::start(
        ServerConfig::with_clusters(4)
            .with_queue_limit(6)
            .with_faults(faults),
    );
    let submitted = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let backpressure = Arc::new(AtomicU64::new(0));
    let silent = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for t in 0..3u64 {
        let session = server.session();
        let jobs = chaos_jobs(0xc0ffee ^ t, 8);
        let (submitted, completed, backpressure, silent) = (
            Arc::clone(&submitted),
            Arc::clone(&completed),
            Arc::clone(&backpressure),
            Arc::clone(&silent),
        );
        clients.push(std::thread::spawn(move || {
            let mut handles = Vec::new();
            for (i, (label, kind)) in jobs.into_iter().enumerate() {
                submitted.fetch_add(1, Ordering::Relaxed);
                let ready = session.job(label).kind(kind);
                // Alternate fail-fast and blocking submission.
                let outcome = if i % 2 == 0 {
                    ready.submit()
                } else {
                    ready.submit_wait()
                };
                match outcome {
                    Ok(h) => handles.push(h),
                    Err(ntx_sched::SchedError::Backpressure { .. }) => {
                        backpressure.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        silent.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            for h in handles {
                match h.wait() {
                    Ok(_) => {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        silent.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    for c in clients {
        c.join().expect("chaos client thread");
    }
    drop(server.shutdown());
    let sub = submitted.load(Ordering::Relaxed);
    let comp = completed.load(Ordering::Relaxed);
    let bp = backpressure.load(Ordering::Relaxed);
    let all_explicit = silent.load(Ordering::Relaxed) == 0 && comp + bp == sub;
    (sub, comp, bp, all_explicit)
}

/// Runs the chaos experiment (see [`ChaosBenchReport`]).
///
/// # Panics
///
/// Panics when the deterministic workload fails admission for any
/// reason other than deadline shedding — that indicates a scheduler
/// bug, not overload.
#[must_use]
pub fn chaos_report() -> ChaosBenchReport {
    use ntx_sched::FaultPlan;
    let clusters = 8usize;
    let count = 64usize;
    let seed = 0x5eed_c4a0_5u64;
    let jobs = chaos_jobs(seed, count);

    // Capacity calibration: the whole trace offered at cycle 0. The
    // calibrated duration table seeds every later run, as the live
    // server's measured-duration EWMA would.
    let closed = vec![0u64; count];
    let mut calib_table = ntx_sched::DurationTable::new();
    let calib = run_chaos_open_loop(
        &jobs,
        &closed,
        clusters,
        FaultPlan::NONE,
        None,
        &mut calib_table,
    );
    let calib_makespan = calib.stats.makespan_cycles;
    let mean_service_gap = (calib_makespan / count as u64).max(1);

    // Recovery: 0.5x load, fault-free baseline vs kill + stalls, both
    // starting from the identical calibrated table.
    let arrivals = chaos_arrivals(seed, count, 2 * mean_service_gap);
    let baseline = run_chaos_open_loop(
        &jobs,
        &arrivals,
        clusters,
        FaultPlan::NONE,
        None,
        &mut calib_table.clone(),
    );
    let plan = FaultPlan::NONE
        .with_seed(seed)
        .with_kill(3, calib_makespan / 4)
        .with_stalls(256, 1 << 13, 64);
    let faulted = run_chaos_open_loop(
        &jobs,
        &arrivals,
        clusters,
        plan,
        None,
        &mut calib_table.clone(),
    );
    let jobs_lost = faulted.stats.offered - faulted.stats.completed;
    let makespan_ratio =
        faulted.stats.makespan_cycles as f64 / baseline.stats.makespan_cycles.max(1) as f64;

    // Overload: deadline budget from the unsaturated p99, then 2x
    // saturation with shedding armed.
    let budget = 2 * baseline.stats.p99_cycles.max(1);
    let sat_arrivals = chaos_arrivals(seed ^ 0xb0b, count, mean_service_gap / 4);
    let saturated = run_chaos_open_loop(
        &jobs,
        &sat_arrivals,
        clusters,
        FaultPlan::NONE,
        Some(budget),
        &mut calib_table.clone(),
    );
    let p99_ratio = saturated.stats.p99_cycles as f64 / baseline.stats.p99_cycles.max(1) as f64;

    let (link_base, link_faulted, link_identical) = chaos_link_fault();
    let (async_sub, async_comp, async_bp, async_explicit) = chaos_async_smoke();

    ChaosBenchReport {
        clusters,
        jobs: count,
        calib_makespan_cycles: calib_makespan,
        budget_cycles: budget,
        baseline_makespan_cycles: baseline.stats.makespan_cycles,
        faulted_makespan_cycles: faulted.stats.makespan_cycles,
        makespan_ratio,
        degradation_bound: 1.5 * clusters as f64 / (clusters - 1) as f64,
        jobs_lost,
        recovery_bit_identical: chaos_outputs_identical(&faulted.outputs, &baseline.outputs),
        faults_injected: faulted.faults.faults_injected,
        shards_retried: faulted.faults.shards_retried,
        fault_stall_cycles: faulted.fault_stall_cycles,
        unsaturated: baseline.stats,
        saturated: saturated.stats,
        p99_ratio,
        p99_bound: 2.0,
        link_wait_base_cycles: link_base,
        link_wait_faulted_cycles: link_faulted,
        link_bit_identical: link_identical,
        async_submitted: async_sub,
        async_completed: async_comp,
        async_backpressure: async_bp,
        async_all_explicit: async_explicit,
    }
}

// ---------------------------------------------------------- Native CPU

/// One native-backend workload measurement: simulator vs native
/// fast/exact wall time, exact-mode bit-identity, fast-mode accuracy.
#[derive(Debug, Clone)]
pub struct CpuWorkloadPoint {
    /// Workload label.
    pub workload: String,
    /// Output elements.
    pub elements: usize,
    /// Simulator wall-clock seconds per run (single cluster).
    pub sim_wall_s: f64,
    /// Native fast-mode wall-clock seconds per run.
    pub fast_wall_s: f64,
    /// Native exact-mode wall-clock seconds per run.
    pub exact_wall_s: f64,
    /// `sim_wall_s / fast_wall_s` — the wire-speed win.
    pub fast_speedup: f64,
    /// `sim_wall_s / exact_wall_s` — still Kulisch-exact.
    pub exact_speedup: f64,
    /// Exact-mode output bitwise equal to the simulator output.
    pub exact_bit_identical: bool,
    /// Fast-mode RMSE against the `f64` reference.
    pub fast_rmse: f64,
    /// Fast-mode largest absolute error against the `f64` reference.
    pub fast_max_abs_err: f64,
}

/// Everything `report-cpu` emits: the per-workload fast/exact
/// measurements plus the aggregate gates.
#[derive(Debug, Clone)]
pub struct CpuBenchReport {
    /// Cores the host reports (gates scale expectations).
    pub host_cores: usize,
    /// Worker threads the native backend sharded over.
    pub threads: usize,
    /// Per-workload measurements.
    pub workloads: Vec<CpuWorkloadPoint>,
    /// Every workload's exact-mode output matched the simulator
    /// bitwise.
    pub exact_bit_identical: bool,
    /// Smallest fast-mode speedup over the gated workloads (conv3x3
    /// and dot-4096) — the CI throughput gate.
    pub gated_fast_speedup: f64,
}

/// `f64` reference for one native-eligible job kind (no intermediate
/// rounding anywhere — the accuracy oracle for fast mode).
fn cpu_reference(kind: &ntx_sched::JobKind) -> Vec<f64> {
    use ntx_sched::JobKind;
    match kind {
        JobKind::Axpy { a, x, y } => x
            .iter()
            .zip(y)
            .map(|(&xi, &yi)| f64::from(*a) * f64::from(xi) + f64::from(yi))
            .collect(),
        JobKind::Gemm { dims, a, b } => {
            let (m, k, n) = (dims.m as usize, dims.k as usize, dims.n as usize);
            let mut out = vec![0f64; m * n];
            for i in 0..m {
                for j in 0..n {
                    out[i * n + j] = (0..k)
                        .map(|l| f64::from(a[i * k + l]) * f64::from(b[l * n + j]))
                        .sum();
                }
            }
            out
        }
        JobKind::Conv2d {
            kernel,
            image,
            weights,
        } => {
            let (h, w) = (kernel.height as usize, kernel.width as usize);
            let (k, f) = (kernel.k as usize, kernel.filters as usize);
            let (oh, ow) = (kernel.out_height() as usize, kernel.out_width() as usize);
            let mut out = vec![0f64; f * oh * ow];
            for filt in 0..f {
                for y in 0..oh {
                    for x in 0..ow {
                        out[filt * oh * ow + y * ow + x] = (0..k * k)
                            .map(|t| {
                                let (ky, kx) = (t / k, t % k);
                                f64::from(image[(y + ky) * w + (x + kx)])
                                    * f64::from(weights[filt * k * k + ky * k + kx])
                            })
                            .sum();
                    }
                }
            }
            let _ = h;
            out
        }
        JobKind::Stencil2d {
            height,
            width,
            grid,
        } => {
            let (h, w) = (*height as usize, *width as usize);
            let (oh, ow) = (h - 2, w - 2);
            let g = |y: usize, x: usize| f64::from(grid[y * w + x]);
            let mut out = vec![0f64; oh * ow];
            for y in 0..oh {
                for x in 0..ow {
                    out[y * ow + x] = g(y + 1, x) + g(y + 1, x + 2) + g(y, x + 1) + g(y + 2, x + 1)
                        - 4.0 * g(y + 1, x + 1);
                }
            }
            out
        }
        JobKind::Raw(_) => unreachable!("raw jobs are not native-eligible"),
    }
}

/// Executes `kind` on `engine` and returns the per-run wall time
/// (averaged over enough repetitions to dwarf timer noise) plus one
/// output.
fn time_native(engine: &ntx_cpu::NativeBackend, kind: &ntx_sched::JobKind) -> (f64, Vec<f32>) {
    use ntx_sched::JobKind;
    let run = || -> Vec<f32> {
        match kind {
            JobKind::Axpy { a, x, y } => engine.axpy(*a, x, y),
            JobKind::Gemm { dims, a, b } => engine.gemm(dims, a, b),
            JobKind::Conv2d {
                kernel,
                image,
                weights,
            } => engine.conv2d(kernel, image, weights),
            JobKind::Stencil2d {
                height,
                width,
                grid,
            } => engine.stencil2d(*height as usize, *width as usize, grid),
            JobKind::Raw(_) => unreachable!("raw jobs are not native-eligible"),
        }
    };
    let output = run();
    // Repeat until at least ~20 ms have accumulated so the per-run
    // average is stable even for microsecond kernels.
    let mut reps = 0u32;
    let t0 = std::time::Instant::now();
    loop {
        std::hint::black_box(run());
        reps += 1;
        if t0.elapsed().as_secs_f64() >= 0.02 || reps >= 10_000 {
            break;
        }
    }
    (t0.elapsed().as_secs_f64() / f64::from(reps), output)
}

/// Measures the native CPU backend against the cycle-accurate
/// simulator on the serving workload mix: per-run wall time in all
/// three regimes, exact-mode bit-identity, and fast-mode accuracy
/// against the `f64` reference (`ntx_fpu::rmse`).
#[must_use]
pub fn cpu_report() -> CpuBenchReport {
    use ntx_sched::{run_sharded, Job, JobKind};
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = ntx_sched::resolve_worker_threads(0);
    let fast = ntx_cpu::NativeBackend::fast().with_threads(threads);
    let exact = ntx_cpu::NativeBackend::exact().with_threads(threads);
    let workloads: Vec<(String, JobKind)> = vec![
        (
            "conv3x3 66x63x4".into(),
            JobKind::Conv2d {
                kernel: Conv2dKernel {
                    height: 66,
                    width: 63,
                    k: 3,
                    filters: 4,
                },
                image: test_data(66 * 63, 0xc0),
                weights: test_data(9 * 4, 0xc1),
            },
        ),
        (
            "dot-4096".into(),
            JobKind::Gemm {
                dims: GemmKernel {
                    m: 1,
                    k: 4096,
                    n: 1,
                },
                a: test_data(4096, 0xc2),
                b: test_data(4096, 0xc3),
            },
        ),
        (
            "gemm 48x32x24".into(),
            JobKind::Gemm {
                dims: GemmKernel {
                    m: 48,
                    k: 32,
                    n: 24,
                },
                a: test_data(48 * 32, 0xc4),
                b: test_data(32 * 24, 0xc5),
            },
        ),
        (
            "stencil 60x33".into(),
            JobKind::Stencil2d {
                height: 60,
                width: 33,
                grid: test_data(60 * 33, 0xc6),
            },
        ),
        (
            "axpy 4096".into(),
            JobKind::Axpy {
                a: 1.5,
                x: test_data(4096, 0xc7),
                y: test_data(4096, 0xc8),
            },
        ),
    ];
    let mut points = Vec::with_capacity(workloads.len());
    for (label, kind) in workloads {
        // The simulator oracle: one cluster, full job, timed once
        // (it is slow enough that one run is a stable measurement).
        let t0 = std::time::Instant::now();
        let sim = run_sharded(&Job::new(0, &label, kind.clone()), 1).expect("workload admits");
        let sim_wall_s = t0.elapsed().as_secs_f64();
        let (fast_wall_s, fast_out) = time_native(&fast, &kind);
        let (exact_wall_s, exact_out) = time_native(&exact, &kind);
        let exact_bit_identical = exact_out.len() == sim.output.len()
            && exact_out
                .iter()
                .zip(&sim.output)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        let reference = cpu_reference(&kind);
        let err = ntx_fpu::rmse(&fast_out, &reference);
        points.push(CpuWorkloadPoint {
            workload: label,
            elements: fast_out.len(),
            sim_wall_s,
            fast_wall_s,
            exact_wall_s,
            fast_speedup: sim_wall_s / fast_wall_s.max(f64::MIN_POSITIVE),
            exact_speedup: sim_wall_s / exact_wall_s.max(f64::MIN_POSITIVE),
            exact_bit_identical,
            fast_rmse: err.rmse,
            fast_max_abs_err: err.max_abs_err,
        });
    }
    let exact_bit_identical = points.iter().all(|p| p.exact_bit_identical);
    let gated_fast_speedup = points
        .iter()
        .take(2)
        .map(|p| p.fast_speedup)
        .fold(f64::INFINITY, f64::min);
    CpuBenchReport {
        host_cores,
        threads,
        workloads: points,
        exact_bit_identical,
        gated_fast_speedup,
    }
}

/// One backend's execution of the compiled training-step job DAG.
#[derive(Debug, Clone)]
pub struct DnnStepRun {
    /// Run label ("simulator", "simulator rerun", "native-exact").
    pub backend: String,
    /// Wall-clock seconds from first submission to server shutdown.
    pub wall_s: f64,
    /// Simulated makespan cycles (zero for native runs, which spend no
    /// simulator cycles).
    pub makespan_cycles: u64,
    /// Jobs the server completed.
    pub jobs: u64,
    /// Jobs rejected at admission (must be zero).
    pub failed: u64,
    /// Every op completed, and only after all its predecessors — the
    /// DAG-order gate.
    pub order_topological: bool,
}

/// Everything `report-dnn` emits: a whole-network training step
/// compiled to a GEMM job DAG (`ntx_dnn::compile`), served through the
/// continuous [`Server`](ntx_sched::Server) on the simulator and the
/// bit-exact native backend, cross-checked bitwise, plus the split-K
/// tiling gates and the Table II model prediction for the full-size
/// step.
#[derive(Debug, Clone)]
pub struct DnnBenchReport {
    /// Source network (AlexNet).
    pub network: String,
    /// Ops in the compiled DAG.
    pub ops: usize,
    /// Minibatch the step was compiled for.
    pub batch: u32,
    /// Cap applied to every GEMM dimension so the cycle-accurate
    /// simulator can execute the step (the DAG shape is unchanged).
    pub dim_cap: u32,
    /// Clusters in the serving farm.
    pub clusters: usize,
    /// MACs of the executed (dimension-capped) DAG.
    pub scaled_macs: u64,
    /// MACs of the full-size training step the Table II model prices.
    pub full_macs: u64,
    /// The three DAG runs: simulator, simulator rerun, native-exact.
    pub runs: Vec<DnnStepRun>,
    /// Per-op outputs of the simulator run bitwise equal to the
    /// native-exact run — the Kulisch cross-backend gate.
    pub sim_native_bit_identical: bool,
    /// Two simulator runs produced bitwise-identical outputs for every
    /// op (completion *order* of independent ops may differ; the data
    /// must not).
    pub sim_deterministic: bool,
    /// A TCDM-fitting GEMM forced through a 4-pass split-K streaming
    /// schedule matches the resident single-pass oracle bitwise.
    pub split_oracle_bit_identical: bool,
    /// A GEMM whose K dimension alone overflows the TCDM (8x6000x4,
    /// A panel 192 kB), servable only via the streaming split-K
    /// fallback, matches the native exact backend bitwise.
    pub deep_split_bit_identical: bool,
    /// Native fast-mode max |error| vs the f64 reference on the deep
    /// GEMM — what ordinary f32 partial sums lose (informational).
    pub deep_fast_max_abs_err: f64,
    /// Table II model: predicted seconds for one full-size training
    /// step on this cluster count.
    pub predicted_step_s: f64,
    /// Table II model: flops of the full-size step.
    pub predicted_flops: f64,
}

/// Submits the whole compiled step as one job DAG through a continuous
/// [`Server`](ntx_sched::Server) session and waits for shutdown.
/// Returns per-op outputs (indexed like `step.ops`), whether the
/// completion order respected every edge, the serving report, and the
/// wall time.
fn run_step_dag(
    step: &ntx_dnn::TrainingStep,
    clusters: usize,
    backend: ntx_sched::BackendKind,
) -> (Vec<Vec<f32>>, bool, ntx_sched::ServingReport, f64) {
    use ntx_sched::{Server, ServerConfig};
    use std::sync::{Arc, Mutex};
    let n = step.ops.len();
    let server = Server::start(ServerConfig::with_clusters(clusters));
    let session = server.session();
    let outputs = Arc::new(Mutex::new(vec![Vec::new(); n]));
    let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::with_capacity(n)));
    let t0 = std::time::Instant::now();
    let mut ids: Vec<u64> = Vec::with_capacity(n);
    for (i, op) in step.ops.iter().enumerate() {
        let (a, b) = op.gemm_data(i as u32);
        let mut job = session.job(&op.name).gemm(op.dims, a, b).backend(backend);
        for &d in &op.deps {
            job = job.after_id(ids[d]);
        }
        let (outs, ord) = (Arc::clone(&outputs), Arc::clone(&order));
        let id = job
            .submit_callback(move |c| {
                let r = c.result.expect("training-step op completes");
                outs.lock().expect("outputs lock")[i] = r.output;
                ord.lock().expect("order lock").push(i);
            })
            .expect("server accepts the op");
        ids.push(id);
    }
    let report = server.shutdown();
    let wall_s = t0.elapsed().as_secs_f64();
    let order = order.lock().expect("order lock").clone();
    let mut pos = vec![usize::MAX; n];
    for (p, &i) in order.iter().enumerate() {
        pos[i] = p;
    }
    let topological = order.len() == n
        && step
            .ops
            .iter()
            .enumerate()
            .all(|(i, op)| op.deps.iter().all(|&d| pos[d] < pos[i]));
    let outputs = outputs.lock().expect("outputs lock").clone();
    (outputs, topological, report, wall_s)
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Forces a TCDM-fitting GEMM through a 4-pass split-K streaming
/// schedule and bit-compares against the resident single-pass oracle.
fn split_oracle_gate() -> bool {
    use ntx_kernels::schedule::{gemm_split_fits, gemm_split_tiles};
    let dims = GemmKernel { m: 13, k: 64, n: 6 };
    let a = test_data((dims.m * dims.k) as usize, 0xd0);
    let b = test_data((dims.k * dims.n) as usize, 0xd1);
    let mut oracle = Cluster::new(ClusterConfig::default());
    let (expect, _) = dims.run(&mut oracle, &a, &b);
    let mut cluster = Cluster::new(ClusterConfig::default());
    let (a_ext, b_ext, c_ext) = (0u64, 0x10_0000u64, 0x20_0000u64);
    cluster.ext_mem().write_f32_slice(a_ext, &a);
    cluster.ext_mem().write_f32_slice(b_ext, &b);
    let (m_t, n_t, k_c) = (8u32, 4u32, 16u32);
    if !gemm_split_fits(m_t, n_t, k_c, dims.k, cluster.config().tcdm.bytes) {
        return false;
    }
    let Ok(tiles) = gemm_split_tiles(&cluster, &dims, a_ext, b_ext, c_ext, m_t, n_t, k_c) else {
        return false;
    };
    run_tiles(&mut cluster, &tiles);
    let got = cluster
        .ext_mem()
        .read_f32_slice(c_ext, (dims.m * dims.n) as usize);
    bits_equal(&got, &expect)
}

/// Benchmarks one whole-network training step served as a job DAG:
/// compiles AlexNet forward+backward to GEMM ops with dependency
/// edges, runs the DAG on the simulator (twice) and the bit-exact
/// native backend through the continuous server, and cross-checks all
/// outputs bitwise; adds the split-K tiling gates and the Table II
/// model's prediction for the full-size step.
#[must_use]
pub fn dnn_report() -> DnnBenchReport {
    use ntx_dnn::{compile, networks, TrainingModel};
    use ntx_model::scaling::TechNode;
    use ntx_model::system::SystemConfig;
    use ntx_model::table2::evaluate_training;
    use ntx_sched::{run_sharded, BackendKind, Job, JobKind};

    let clusters = 4usize;
    let dim_cap = 64u32;
    let net = networks::alexnet();
    let model = TrainingModel::default();
    let full = compile::training_step(&net, model.batch);
    let step = full.scaled(dim_cap);

    let mut runs = Vec::with_capacity(3);
    let mut run = |label: &str, backend: BackendKind| -> Vec<Vec<f32>> {
        let (outputs, topological, report, wall_s) = run_step_dag(&step, clusters, backend);
        runs.push(DnnStepRun {
            backend: label.to_string(),
            wall_s,
            makespan_cycles: report.makespan_cycles,
            jobs: report.jobs,
            failed: report.failed,
            order_topological: topological,
        });
        outputs
    };
    let sim1 = run("simulator", BackendKind::Simulate);
    let sim2 = run("simulator rerun", BackendKind::Simulate);
    let native = run("native-exact", BackendKind::NativeExact);
    let sim_native_bit_identical = sim1.iter().zip(&native).all(|(a, b)| bits_equal(a, b));
    let sim_deterministic = sim1.iter().zip(&sim2).all(|(a, b)| bits_equal(a, b));

    // Deep split-K: the A panel alone is 192 kB (3x the TCDM), so the
    // tiler must stream k in chunks; the chained wide-accumulator
    // image keeps the result bit-identical to the native Kulisch path.
    let deep = GemmKernel {
        m: 8,
        k: 6000,
        n: 4,
    };
    let deep_kind = JobKind::Gemm {
        dims: deep,
        a: test_data((deep.m * deep.k) as usize, 0xd2),
        b: test_data((deep.k * deep.n) as usize, 0xd3),
    };
    let sim_deep = run_sharded(&Job::new(0, "gemm 8x6000x4", deep_kind.clone()), 1)
        .expect("deep gemm admits as streaming split tiles");
    let JobKind::Gemm { dims, a, b } = &deep_kind else {
        unreachable!()
    };
    let exact_deep = ntx_cpu::NativeBackend::exact().gemm(dims, a, b);
    let deep_split_bit_identical = bits_equal(&sim_deep.output, &exact_deep);
    let fast_deep = ntx_cpu::NativeBackend::fast().gemm(dims, a, b);
    let deep_fast_max_abs_err = ntx_fpu::rmse(&fast_deep, &cpu_reference(&deep_kind)).max_abs_err;

    let eval = evaluate_training(
        &SystemConfig::ntx(clusters as u32, TechNode::Fdx22),
        &net,
        &model,
    );

    DnnBenchReport {
        network: step.network.clone(),
        ops: step.ops.len(),
        batch: step.batch,
        dim_cap,
        clusters,
        scaled_macs: step.total_macs(),
        full_macs: full.total_macs(),
        runs,
        sim_native_bit_identical,
        sim_deterministic,
        split_oracle_bit_identical: split_oracle_gate(),
        deep_split_bit_identical,
        deep_fast_max_abs_err,
        predicted_step_s: eval.time_s,
        predicted_flops: eval.flops,
    }
}
