//! Experiment harness: one runner per table/figure of the paper.
//!
//! Each function reproduces one evaluation artifact end to end —
//! running the cycle simulator where the paper ran its gate-level
//! simulation, and the calibrated analytical models where the paper
//! extrapolated — and returns the data the paper's table or figure
//! plots. The `report-*` binaries print them; the Criterion benches
//! in `benches/` time the underlying simulations.

#![forbid(unsafe_code)]

pub mod diff;
pub mod experiments;
pub mod format;

pub use experiments::{
    chaos_report, cpu_report, dnn_report, fig5_points, greenwave_rows, hmc_report,
    hmc_report_sweep, mesh_report, mesh_report_sweep, precision_experiment, scaling_report,
    serving_report, simperf_report, table1_report, ChaosBenchReport, ChaosRunStats, CpuBenchReport,
    CpuWorkloadPoint, DnnBenchReport, DnnStepRun, HmcReport, HmcScalingPoint, HmcWorkloadCurve,
    MeshReport, MeshScalingPoint, MeshWorkloadCurve, PrecisionReport, ScalingPoint, ScalingReport,
    ServingBenchReport, SimPerfReport, SimPerfWorkload, Table1Report,
};
