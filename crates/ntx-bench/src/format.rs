//! Plain-text table formatting for the report binaries.

use crate::experiments::{PrecisionReport, Table1Report};
use ntx_model::compare::{AreaFigure, EfficiencyFigure, PlatformRow, StencilPlatform};
use ntx_model::roofline::{Roofline, RooflinePoint};
use ntx_model::table2::Table2Row;

/// Formats Table I ("Figures of merit of one NTX cluster").
#[must_use]
pub fn table1(r: &Table1Report) -> String {
    let mut s = String::new();
    s.push_str("Table I — figures of merit of one NTX cluster (22FDX)\n");
    s.push_str(&format!(
        "  {:<28} {:>10}    (paper)\n",
        "metric", "measured"
    ));
    let rows = [
        ("peak performance [Gflop/s]", r.peak_flops / 1e9, 20.0),
        ("peak AXI bandwidth [GB/s]", r.peak_bandwidth / 1e9, 5.0),
        ("sustained conv3x3 [Gflop/s]", r.sustained_flops / 1e9, 17.4),
        (
            "banking-conflict prob. [%]",
            r.conflict_probability * 100.0,
            13.0,
        ),
        ("practical peak [Gflop/s]", r.practical_peak / 1e9, 17.4),
        ("power @ conv3x3 [mW]", r.power_w * 1e3, 186.0),
        ("efficiency [Gflop/sW]", r.efficiency / 1e9, 108.0),
        ("energy [pJ/flop]", r.pj_per_flop, 9.3),
    ];
    for (name, v, paper) in rows {
        s.push_str(&format!("  {name:<28} {v:>10.2}    ({paper})\n"));
    }
    s
}

/// Formats the Fig. 5 roofline series.
#[must_use]
pub fn fig5(points: &[RooflinePoint], roofline: &Roofline) -> String {
    let mut s = String::new();
    s.push_str("Figure 5 — roofline of one NTX cluster\n");
    s.push_str(&format!(
        "  ridge at {:.1} flop/B; peak {:.0} Gflop/s; bandwidth {:.0} GB/s\n",
        roofline.ridge(),
        roofline.peak_flops / 1e9,
        roofline.peak_bandwidth / 1e9
    ));
    s.push_str(&format!(
        "  {:<22} {:>10} {:>14} {:>10} {:>8}\n",
        "kernel", "OI [fl/B]", "perf [Gfl/s]", "limit", "util"
    ));
    for p in points {
        let bound = if roofline.is_compute_bound(p.oi) {
            "compute"
        } else {
            "memory"
        };
        s.push_str(&format!(
            "  {:<22} {:>10.3} {:>14.2} {:>10} {:>7.0}%\n",
            p.label,
            p.oi,
            p.performance / 1e9,
            bound,
            p.utilization(roofline) * 100.0
        ));
    }
    s
}

/// Formats Table II (this work + comparison platforms).
#[must_use]
pub fn table2(
    rows: &[Table2Row],
    accelerators: &[PlatformRow],
    gpus: &[PlatformRow],
    paper_geomeans: &[f64],
) -> String {
    let mut s = String::new();
    s.push_str("Table II — training energy efficiency [Gop/sW]\n");
    s.push_str(&format!(
        "  {:<12} {:>3} {:>4} {:>6} {:>4} {:>5} {:>6} | {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} | {:>7} {:>7}\n",
        "platform", "nm", "dram", "mm2", "LiM", "GHz", "Top/s", "Alex", "GooLe", "Incv3", "RN34",
        "RN50", "RN152", "geomean", "(paper)"
    ));
    for (r, paper) in rows.iter().zip(paper_geomeans) {
        s.push_str(&format!(
            "  {:<12} {:>3} {:>4} {:>6.1} {:>4} {:>5.2} {:>6.3} |",
            r.label, r.logic_nm, r.dram_nm, r.area_mm2, r.lim, r.freq_ghz, r.peak_tops
        ));
        for (_, e) in &r.efficiency {
            s.push_str(&format!(" {e:>6.1}"));
        }
        s.push_str(&format!(" | {:>7.1} {:>7.1}\n", r.geomean, paper));
    }
    s.push_str("  --- custom accelerators (literature values) ---\n");
    for p in accelerators {
        s.push_str(&platform_line(p));
    }
    s.push_str("  --- GPUs (literature values) ---\n");
    for p in gpus {
        s.push_str(&platform_line(p));
    }
    s
}

fn platform_line(p: &PlatformRow) -> String {
    let area = p
        .area_mm2
        .map_or_else(|| "   -".into(), |a| format!("{a:>6.1}"));
    let dram = p
        .dram_nm
        .map_or_else(|| "   -".into(), |d| format!("{d:>4}"));
    let mut s = format!(
        "  {:<12} {:>3} {} {} {:>4} {:>5.2} {:>6.3} |",
        p.name, p.logic_nm, dram, area, "-", p.freq_ghz, p.peak_tops
    );
    for e in &p.efficiency {
        match e {
            Some(v) => s.push_str(&format!(" {v:>6.1}")),
            None => s.push_str("      -"),
        }
    }
    s.push_str(&format!(" | {:>7.1}\n", p.geomean));
    s
}

/// Formats the Fig. 6 energy-efficiency bars.
#[must_use]
pub fn fig6(f: &EfficiencyFigure) -> String {
    let mut s = String::new();
    s.push_str("Figure 6 — training energy efficiency [Gop/sW]\n");
    for b in &f.bars {
        let bar = "#".repeat((b.value / 1.5).round() as usize);
        s.push_str(&format!(
            "  {:<10} {:>6.1} {:<10} {}\n",
            b.name, b.value, b.class, bar
        ));
    }
    s.push_str(&format!(
        "  NTX 32 (22 nm) vs best 28 nm GPU: x{:.1}   (paper: x2.5)\n",
        f.ratio_22nm
    ));
    s.push_str(&format!(
        "  NTX 64 (14 nm) vs best 16 nm GPU: x{:.1}   (paper: x3.0)\n",
        f.ratio_14nm
    ));
    s
}

/// Formats the Fig. 7 area-efficiency bars.
#[must_use]
pub fn fig7(f: &AreaFigure) -> String {
    let mut s = String::new();
    s.push_str("Figure 7 — compute per silicon area [Gop/s mm²]\n");
    for b in &f.bars {
        let bar = "#".repeat((b.value / 5.0).round() as usize);
        s.push_str(&format!(
            "  {:<10} {:>6.1} {:<10} {}\n",
            b.name, b.value, b.class, bar
        ));
    }
    s.push_str(&format!(
        "  NTX 32 (22 nm) vs best 28 nm GPU: x{:.1}   (paper: x6.5)\n",
        f.ratio_22nm
    ));
    s.push_str(&format!(
        "  NTX 64 (14 nm) vs best 16 nm GPU: x{:.1}   (paper: x10.4)\n",
        f.ratio_14nm
    ));
    s
}

/// Formats the scale-out strong-scaling experiment.
#[must_use]
pub fn scaling(r: &crate::experiments::ScalingReport) -> String {
    let mut s = String::new();
    s.push_str("Scale-out — strong scaling of one sharded workload\n");
    s.push_str(&format!("  workload: {}\n", r.workload));
    s.push_str(&format!(
        "  {:>8} {:>12} {:>12} {:>9} {:>11} {:>8} {:>9} {:>11}\n",
        "clusters", "cycles", "Gflop/s", "speedup", "efficiency", "DMA occ", "power W", "Gflop/sW"
    ));
    for p in &r.points {
        s.push_str(&format!(
            "  {:>8} {:>12} {:>12.2} {:>8.2}x {:>10.0}% {:>7.0}% {:>9.3} {:>11.1}\n",
            p.clusters,
            p.makespan_cycles,
            p.flops_per_second / 1e9,
            p.speedup,
            p.efficiency * 100.0,
            p.dma_occupancy * 100.0,
            p.power_w,
            p.flops_per_watt / 1e9,
        ));
    }
    s.push_str(&format!(
        "  outputs bit-identical across cluster counts: {}\n",
        if r.bit_identical { "yes" } else { "NO" }
    ));
    s
}

/// Formats the §II-C precision experiment.
#[must_use]
pub fn precision(r: &PrecisionReport) -> String {
    format!(
        "Section II-C — deferred-rounding precision (3x3 conv layer, 64 ch)\n  \
         NTX wide-accumulator RMSE : {:.3e}\n  \
         conventional fp32 FPU RMSE: {:.3e}\n  \
         improvement               : x{:.2}   (paper: x1.7)\n",
        r.ntx_rmse, r.fpu_rmse, r.improvement
    )
}

/// Formats the §IV Green-Wave comparison.
#[must_use]
pub fn greenwave(rows: &[StencilPlatform]) -> String {
    let mut s = String::new();
    s.push_str("Section IV — 8th-order seismic Laplacian comparison\n");
    s.push_str(&format!(
        "  {:<16} {:>12} {:>14}\n",
        "platform", "Gflop/s", "Gflop/sW"
    ));
    for r in rows {
        s.push_str(&format!(
            "  {:<16} {:>12.1} {:>14.2}\n",
            r.name, r.gflops, r.gflops_per_watt
        ));
    }
    s.push_str("  (paper estimates NTX 16 at 130 Gflop/s, 11 Gflop/sW)\n");
    s
}

/// Formats one curve of the shared-HMC saturation sweep.
fn hmc_curve_text(c: &crate::experiments::HmcWorkloadCurve) -> String {
    let mut s = String::new();
    s.push_str(&format!("  workload: {}\n", c.workload));
    s.push_str(&format!(
        "  {:>8} {:>13} {:>13} {:>9} {:>11} {:>11} {:>9} {:>5}\n",
        "clusters",
        "ideal cyc",
        "shared cyc",
        "slowdown",
        "efficiency",
        "ext GB/s",
        "DMA wait",
        "bits"
    ));
    for p in &c.points {
        s.push_str(&format!(
            "  {:>8} {:>13} {:>13} {:>8.2}x {:>10.0}% {:>11.2} {:>8.0}% {:>5}\n",
            p.clusters,
            p.ideal_makespan_cycles,
            p.contended_makespan_cycles,
            p.slowdown,
            p.efficiency * 100.0,
            p.achieved_ext_bandwidth / 1e9,
            p.ext_wait_fraction * 100.0,
            if p.bit_identical { "ok" } else { "DIFF" },
        ));
    }
    s
}

/// Formats the shared-HMC saturation measurement.
#[must_use]
pub fn hmc(r: &crate::experiments::HmcReport) -> String {
    let mut s = String::new();
    s.push_str("Shared HMC — weak-scaling saturation under the vault/LoB budget\n");
    s.push_str(&format!(
        "  shared bandwidth: {:.1} GB/s = {:.2} DMA words per NTX cycle\n",
        r.shared_bandwidth / 1e9,
        r.shared_words_per_cycle
    ));
    s.push_str(&hmc_curve_text(&r.conv));
    s.push_str(&hmc_curve_text(&r.gemm));
    s.push_str(&format!(
        "  outputs bit-identical across memory models: {}\n",
        if r.bit_identical { "yes" } else { "NO" }
    ));
    s
}

fn hmc_point_json(p: &crate::experiments::HmcScalingPoint) -> String {
    format!(
        concat!(
            "      {{\n",
            "        \"clusters\": {},\n",
            "        \"ideal_makespan_cycles\": {},\n",
            "        \"contended_makespan_cycles\": {},\n",
            "        \"slowdown\": {:.4},\n",
            "        \"efficiency\": {:.4},\n",
            "        \"achieved_ext_bandwidth\": {:.1},\n",
            "        \"ext_wait_fraction\": {:.4},\n",
            "        \"bit_identical\": {}\n",
            "      }}"
        ),
        p.clusters,
        p.ideal_makespan_cycles,
        p.contended_makespan_cycles,
        p.slowdown,
        p.efficiency,
        p.achieved_ext_bandwidth,
        p.ext_wait_fraction,
        p.bit_identical
    )
}

fn hmc_curve_json(c: &crate::experiments::HmcWorkloadCurve) -> String {
    let points: Vec<String> = c.points.iter().map(hmc_point_json).collect();
    format!(
        "{{\n    \"workload\": \"{}\",\n    \"points\": [\n{}\n    ]\n  }}",
        c.workload,
        points.join(",\n")
    )
}

/// Serialises the shared-HMC saturation measurement as the
/// `BENCH_hmc.json` artifact (hand-rolled: no serde in the container).
#[must_use]
pub fn hmc_json(r: &crate::experiments::HmcReport) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"shared_bandwidth\": {:.1},\n",
            "  \"shared_words_per_cycle\": {:.4},\n",
            "  \"conv\": {},\n",
            "  \"gemm\": {},\n",
            "  \"bit_identical\": {}\n",
            "}}\n"
        ),
        r.shared_bandwidth,
        r.shared_words_per_cycle,
        hmc_curve_json(&r.conv),
        hmc_curve_json(&r.gemm),
        r.bit_identical
    )
}

/// Formats one curve of the mesh weak-scaling sweep.
fn mesh_curve_text(c: &crate::experiments::MeshWorkloadCurve) -> String {
    let mut s = String::new();
    s.push_str(&format!("  workload: {}\n", c.workload));
    s.push_str(&format!(
        "  {:>8} {:>5} {:>12} {:>12} {:>12} {:>8} {:>8} {:>11} {:>9} {:>5}\n",
        "clusters",
        "cubes",
        "ideal cyc",
        "affine cyc",
        "naive cyc",
        "aff eff",
        "nai eff",
        "remote MB",
        "rem wait",
        "bits"
    ));
    for p in &c.points {
        s.push_str(&format!(
            "  {:>8} {:>5} {:>12} {:>12} {:>12} {:>7.0}% {:>7.0}% {:>11.2} {:>8.0}% {:>5}\n",
            p.clusters,
            p.cubes,
            p.ideal_makespan_cycles,
            p.affine_makespan_cycles,
            p.naive_makespan_cycles,
            p.affine_efficiency * 100.0,
            p.naive_efficiency * 100.0,
            p.naive_remote_bytes as f64 / 1e6,
            p.naive_remote_wait_fraction * 100.0,
            if p.bit_identical { "ok" } else { "DIFF" },
        ));
    }
    s
}

/// Formats the multi-cube mesh measurement.
#[must_use]
pub fn mesh(r: &crate::experiments::MeshReport) -> String {
    let mut s = String::new();
    s.push_str("HMC mesh — weak scaling over cubes, data-affine vs naive placement\n");
    s.push_str(&format!(
        "  per-cube bandwidth: {:.1} GB/s; serial link: {:.2} words/cycle, {} cycles latency\n",
        r.cube_bandwidth / 1e9,
        r.link_words_per_cycle,
        r.link_latency_cycles
    ));
    s.push_str(&mesh_curve_text(&r.conv));
    s.push_str(&mesh_curve_text(&r.gemm));
    s.push_str(&format!(
        "  outputs bit-identical across memory models and placements: {}\n",
        if r.bit_identical { "yes" } else { "NO" }
    ));
    s
}

fn mesh_point_json(p: &crate::experiments::MeshScalingPoint) -> String {
    format!(
        concat!(
            "      {{\n",
            "        \"clusters\": {},\n",
            "        \"cubes\": {},\n",
            "        \"ideal_makespan_cycles\": {},\n",
            "        \"affine_makespan_cycles\": {},\n",
            "        \"naive_makespan_cycles\": {},\n",
            "        \"affine_efficiency\": {:.4},\n",
            "        \"naive_efficiency\": {:.4},\n",
            "        \"affine_remote_bytes\": {},\n",
            "        \"naive_remote_bytes\": {},\n",
            "        \"naive_remote_wait_fraction\": {:.4},\n",
            "        \"bit_identical\": {}\n",
            "      }}"
        ),
        p.clusters,
        p.cubes,
        p.ideal_makespan_cycles,
        p.affine_makespan_cycles,
        p.naive_makespan_cycles,
        p.affine_efficiency,
        p.naive_efficiency,
        p.affine_remote_bytes,
        p.naive_remote_bytes,
        p.naive_remote_wait_fraction,
        p.bit_identical
    )
}

fn mesh_curve_json(c: &crate::experiments::MeshWorkloadCurve) -> String {
    let points: Vec<String> = c.points.iter().map(mesh_point_json).collect();
    format!(
        "{{\n    \"workload\": \"{}\",\n    \"points\": [\n{}\n    ]\n  }}",
        c.workload,
        points.join(",\n")
    )
}

/// Serialises the mesh measurement as the `BENCH_mesh.json` artifact
/// (hand-rolled: no serde in the container).
#[must_use]
pub fn mesh_json(r: &crate::experiments::MeshReport) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"cube_bandwidth\": {:.1},\n",
            "  \"link_words_per_cycle\": {:.4},\n",
            "  \"link_latency_cycles\": {},\n",
            "  \"conv\": {},\n",
            "  \"gemm\": {},\n",
            "  \"bit_identical\": {}\n",
            "}}\n"
        ),
        r.cube_bandwidth,
        r.link_words_per_cycle,
        r.link_latency_cycles,
        mesh_curve_json(&r.conv),
        mesh_curve_json(&r.gemm),
        r.bit_identical
    )
}

/// Formats the simulator fast-path measurement.
#[must_use]
pub fn simperf(r: &crate::experiments::SimPerfReport) -> String {
    let mut s = String::new();
    s.push_str("Simulator hot loop — burst fast path vs pure per-cycle path\n");
    for w in [&r.streaming, &r.single_ntx] {
        s.push_str(&format!(
            "  {} ({} simulated cycles, {} elements)\n",
            w.workload, w.cycles, w.elements
        ));
        s.push_str(&format!(
            "    per-cycle {:>10.3} ms ({:.3e} el/s)   burst {:>10.3} ms ({:.3e} el/s)   speedup {:.2}x\n",
            w.wall_reference_s * 1e3,
            w.elements_per_sec_reference,
            w.wall_fast_s * 1e3,
            w.elements_per_sec_fast,
            w.speedup
        ));
        s.push_str(&format!(
            "    bit-identical outputs: {}; identical cycle/stall counters: {}\n",
            w.bit_identical, w.counters_identical
        ));
    }
    s
}

/// Formats the serving-stack measurement.
#[must_use]
pub fn serving(r: &crate::experiments::ServingBenchReport) -> String {
    let mut s = String::new();
    s.push_str("Serving stack — pipelined farm, analytical backend, async front-end\n");
    s.push_str(&format!(
        "  mixed queue: {} jobs on {} clusters\n",
        r.jobs, r.clusters
    ));
    s.push_str(&format!(
        "  barriered executor : {:>12} cycles (same placement; {:>8} full-width)\n  \
         pipelined farm     : {:>12} cycles  ({:.2}x vs barriered, {:.2}x vs full-width, \
         outputs bit-identical: {}, per-job counters identical: {})\n",
        r.barriered_makespan_cycles,
        r.fullwidth_makespan_cycles,
        r.pipelined_makespan_cycles,
        r.pipelined_speedup,
        r.fullwidth_speedup,
        if r.bit_identical { "yes" } else { "NO" },
        if r.snapshots_identical { "yes" } else { "NO" },
    ));
    s.push_str(&format!(
        "  continuous farm    : {:>12} cycles  (graded placement, outputs vs barriered \
         same-placement oracle bit-identical: {})\n",
        r.continuous_makespan_cycles,
        if r.continuous_bit_identical {
            "yes"
        } else {
            "NO"
        },
    ));
    s.push_str(&format!(
        "  analytical backend : {:>12} cycles estimated, {} simulator cycles spent\n",
        r.estimated_cycles_total, r.estimate_sim_cycles
    ));
    for (mode, st) in [("continuous", &r.continuous), ("wave      ", &r.wave)] {
        s.push_str(&format!(
            "  server ({mode}): {} jobs, {:.1} jobs/s, latency mean {:.1} ms / max {:.1} ms, \
             occupancy {:.0}%, {} deadline misses\n",
            st.served_jobs,
            st.jobs_per_second,
            st.mean_latency_s * 1e3,
            st.max_latency_s * 1e3,
            st.occupancy * 100.0,
            st.deadline_misses
        ));
    }
    s.push_str(&format!(
        "  continuous vs wave : {:.2}x mean-latency win, {:.2}x throughput\n",
        r.latency_win, r.throughput_ratio
    ));
    s.push_str(&format!(
        "  worker-pool scaling ({} host cores, bit-identical to serial: {}):\n",
        r.host_cores,
        if r.pool_bit_identical { "yes" } else { "NO" },
    ));
    for p in &r.pool_scaling {
        s.push_str(&format!(
            "    {} thread{}: {:>8.1} jobs/s  ({:.2}x)\n",
            p.threads,
            if p.threads == 1 { " " } else { "s" },
            p.jobs_per_second,
            p.speedup
        ));
    }
    s
}

/// One server-run block of the `BENCH_serving.json` artifact.
fn server_run_json(st: &crate::experiments::ServerRunStats) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"served_jobs\": {},\n",
            "    \"jobs_per_second\": {:.2},\n",
            "    \"mean_latency_seconds\": {:.6},\n",
            "    \"max_latency_seconds\": {:.6},\n",
            "    \"occupancy\": {:.4},\n",
            "    \"deadline_misses\": {}\n",
            "  }}"
        ),
        st.served_jobs,
        st.jobs_per_second,
        st.mean_latency_s,
        st.max_latency_s,
        st.occupancy,
        st.deadline_misses
    )
}

/// Serialises the serving-stack measurement as the
/// `BENCH_serving.json` artifact (hand-rolled: no serde in the
/// container).
#[must_use]
pub fn serving_json(r: &crate::experiments::ServingBenchReport) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"clusters\": {},\n",
            "  \"jobs\": {},\n",
            "  \"barriered_makespan_cycles\": {},\n",
            "  \"fullwidth_makespan_cycles\": {},\n",
            "  \"pipelined_makespan_cycles\": {},\n",
            "  \"pipelined_speedup\": {:.3},\n",
            "  \"fullwidth_speedup\": {:.3},\n",
            "  \"bit_identical\": {},\n",
            "  \"snapshots_identical\": {},\n",
            "  \"continuous_makespan_cycles\": {},\n",
            "  \"continuous_bit_identical\": {},\n",
            "  \"estimated_cycles_total\": {},\n",
            "  \"estimate_sim_cycles\": {},\n",
            "  \"server_continuous\": {},\n",
            "  \"server_wave\": {},\n",
            "  \"latency_win\": {:.3},\n",
            "  \"throughput_ratio\": {:.3},\n",
            "  \"host_cores\": {},\n",
            "  \"pool_bit_identical\": {},\n",
            "  \"pool_speedup_4x\": {:.3},\n",
            "  \"pool_scaling\": [\n{}\n  ]\n",
            "}}\n"
        ),
        r.clusters,
        r.jobs,
        r.barriered_makespan_cycles,
        r.fullwidth_makespan_cycles,
        r.pipelined_makespan_cycles,
        r.pipelined_speedup,
        r.fullwidth_speedup,
        r.bit_identical,
        r.snapshots_identical,
        r.continuous_makespan_cycles,
        r.continuous_bit_identical,
        r.estimated_cycles_total,
        r.estimate_sim_cycles,
        server_run_json(&r.continuous),
        server_run_json(&r.wave),
        r.latency_win,
        r.throughput_ratio,
        r.host_cores,
        r.pool_bit_identical,
        r.pool_speedup_4x,
        r.pool_scaling
            .iter()
            .map(|p| format!(
                "    {{ \"threads\": {}, \"jobs_per_second\": {:.2}, \"speedup\": {:.3} }}",
                p.threads, p.jobs_per_second, p.speedup
            ))
            .collect::<Vec<_>>()
            .join(",\n")
    )
}

fn simperf_workload_json(w: &crate::experiments::SimPerfWorkload) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"workload\": \"{}\",\n",
            "      \"simulated_cycles\": {},\n",
            "      \"simulated_elements\": {},\n",
            "      \"flops\": {},\n",
            "      \"wall_seconds_fast\": {:.6},\n",
            "      \"wall_seconds_per_cycle\": {:.6},\n",
            "      \"elements_per_sec_fast\": {:.1},\n",
            "      \"elements_per_sec_per_cycle\": {:.1},\n",
            "      \"speedup\": {:.3},\n",
            "      \"bit_identical\": {},\n",
            "      \"counters_identical\": {}\n",
            "    }}"
        ),
        w.workload,
        w.cycles,
        w.elements,
        w.flops,
        w.wall_fast_s,
        w.wall_reference_s,
        w.elements_per_sec_fast,
        w.elements_per_sec_reference,
        w.speedup,
        w.bit_identical,
        w.counters_identical
    )
}

/// Serialises the simulator fast-path measurement as the
/// `BENCH_sim.json` artifact (hand-rolled: no serde in the container).
#[must_use]
pub fn simperf_json(r: &crate::experiments::SimPerfReport) -> String {
    format!(
        "{{\n  \"workloads\": [\n{},\n{}\n  ]\n}}\n",
        simperf_workload_json(&r.streaming),
        simperf_workload_json(&r.single_ntx)
    )
}

/// Renders the chaos / robustness measurement for the terminal.
#[must_use]
pub fn chaos(r: &crate::experiments::ChaosBenchReport) -> String {
    let mut s = String::new();
    s.push_str("Chaos serving — fault injection, recovery, overload control\n");
    s.push_str(&format!(
        "  trace: {} jobs on {} clusters, closed-loop calibration {} cycles\n",
        r.jobs, r.clusters, r.calib_makespan_cycles
    ));
    s.push_str(&format!(
        "  recovery (kill 1/{} + stalls): {} -> {} cycles ({:.3}x, bound {:.3}x), \
         {} jobs lost, outputs bit-identical: {}\n",
        r.clusters,
        r.baseline_makespan_cycles,
        r.faulted_makespan_cycles,
        r.makespan_ratio,
        r.degradation_bound,
        r.jobs_lost,
        if r.recovery_bit_identical {
            "yes"
        } else {
            "NO"
        },
    ));
    s.push_str(&format!(
        "    {} faults injected, {} shards re-placed, {} stall cycles absorbed\n",
        r.faults_injected, r.shards_retried, r.fault_stall_cycles
    ));
    for (mode, st) in [("0.5x load", &r.unsaturated), ("2.0x load", &r.saturated)] {
        s.push_str(&format!(
            "  {mode}: {}/{} completed, {} shed, latency p50/p99/p999 = {}/{}/{} cycles, \
             miss rate {:.1}%\n",
            st.completed,
            st.offered,
            st.shed,
            st.p50_cycles,
            st.p99_cycles,
            st.p999_cycles,
            st.miss_rate() * 100.0,
        ));
    }
    s.push_str(&format!(
        "  shedding: accepted-job p99 ratio {:.3}x (bound {:.1}x), budget {} cycles\n",
        r.p99_ratio, r.p99_bound, r.budget_cycles
    ));
    s.push_str(&format!(
        "  link fault (1/4 bandwidth): remote wait {} -> {} cycles, outputs bit-identical: {}\n",
        r.link_wait_base_cycles,
        r.link_wait_faulted_cycles,
        if r.link_bit_identical { "yes" } else { "NO" },
    ));
    s.push_str(&format!(
        "  async front-end: {} submitted, {} completed, {} backpressure, \
         every outcome explicit: {}\n",
        r.async_submitted,
        r.async_completed,
        r.async_backpressure,
        if r.async_all_explicit { "yes" } else { "NO" },
    ));
    s
}

/// One open-loop run block of the `BENCH_chaos.json` artifact.
fn chaos_run_json(st: &crate::experiments::ChaosRunStats) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"offered\": {},\n",
            "    \"completed\": {},\n",
            "    \"shed\": {},\n",
            "    \"deadline_misses\": {},\n",
            "    \"miss_rate\": {:.4},\n",
            "    \"p50_cycles\": {},\n",
            "    \"p99_cycles\": {},\n",
            "    \"p999_cycles\": {},\n",
            "    \"makespan_cycles\": {}\n",
            "  }}"
        ),
        st.offered,
        st.completed,
        st.shed,
        st.deadline_misses,
        st.miss_rate(),
        st.p50_cycles,
        st.p99_cycles,
        st.p999_cycles,
        st.makespan_cycles
    )
}

/// Serialises the chaos measurement as the `BENCH_chaos.json`
/// artifact (hand-rolled: no serde in the container).
#[must_use]
pub fn chaos_json(r: &crate::experiments::ChaosBenchReport) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"clusters\": {},\n",
            "  \"jobs\": {},\n",
            "  \"calib_makespan_cycles\": {},\n",
            "  \"budget_cycles\": {},\n",
            "  \"baseline_makespan_cycles\": {},\n",
            "  \"faulted_makespan_cycles\": {},\n",
            "  \"makespan_ratio\": {:.4},\n",
            "  \"degradation_bound\": {:.4},\n",
            "  \"jobs_lost\": {},\n",
            "  \"recovery_bit_identical\": {},\n",
            "  \"faults_injected\": {},\n",
            "  \"shards_retried\": {},\n",
            "  \"fault_stall_cycles\": {},\n",
            "  \"unsaturated\": {},\n",
            "  \"saturated\": {},\n",
            "  \"p99_ratio\": {:.4},\n",
            "  \"p99_bound\": {:.1},\n",
            "  \"link_wait_base_cycles\": {},\n",
            "  \"link_wait_faulted_cycles\": {},\n",
            "  \"link_bit_identical\": {},\n",
            "  \"async_submitted\": {},\n",
            "  \"async_completed\": {},\n",
            "  \"async_backpressure\": {},\n",
            "  \"async_all_explicit\": {}\n",
            "}}\n"
        ),
        r.clusters,
        r.jobs,
        r.calib_makespan_cycles,
        r.budget_cycles,
        r.baseline_makespan_cycles,
        r.faulted_makespan_cycles,
        r.makespan_ratio,
        r.degradation_bound,
        r.jobs_lost,
        r.recovery_bit_identical,
        r.faults_injected,
        r.shards_retried,
        r.fault_stall_cycles,
        chaos_run_json(&r.unsaturated),
        chaos_run_json(&r.saturated),
        r.p99_ratio,
        r.p99_bound,
        r.link_wait_base_cycles,
        r.link_wait_faulted_cycles,
        r.link_bit_identical,
        r.async_submitted,
        r.async_completed,
        r.async_backpressure,
        r.async_all_explicit
    )
}

/// Formats the native-CPU backend report as a text table.
#[must_use]
pub fn cpu(r: &crate::experiments::CpuBenchReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Native CPU backend vs cycle-accurate simulator ({} host cores, {} worker threads)\n",
        r.host_cores, r.threads
    ));
    s.push_str(&format!(
        "  {:<18} {:>8} {:>12} {:>12} {:>12} {:>9} {:>9} {:>6} {:>11}\n",
        "workload",
        "elems",
        "sim [ms]",
        "fast [us]",
        "exact [us]",
        "fast x",
        "exact x",
        "bits",
        "fast rmse"
    ));
    for p in &r.workloads {
        s.push_str(&format!(
            "  {:<18} {:>8} {:>12.3} {:>12.2} {:>12.2} {:>9.0} {:>9.0} {:>6} {:>11.3e}\n",
            p.workload,
            p.elements,
            p.sim_wall_s * 1e3,
            p.fast_wall_s * 1e6,
            p.exact_wall_s * 1e6,
            p.fast_speedup,
            p.exact_speedup,
            if p.exact_bit_identical { "ok" } else { "FAIL" },
            p.fast_rmse
        ));
    }
    s.push_str(&format!(
        "  exact mode bit-identical: {}   gated fast speedup (conv3x3, dot-4096): {:.0}x\n",
        if r.exact_bit_identical { "yes" } else { "NO" },
        r.gated_fast_speedup
    ));
    s
}

fn cpu_point_json(p: &crate::experiments::CpuWorkloadPoint) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"workload\": \"{}\",\n",
            "      \"elements\": {},\n",
            "      \"sim_wall_s\": {:.9},\n",
            "      \"fast_wall_s\": {:.9},\n",
            "      \"exact_wall_s\": {:.9},\n",
            "      \"fast_speedup\": {:.2},\n",
            "      \"exact_speedup\": {:.2},\n",
            "      \"exact_bit_identical\": {},\n",
            "      \"fast_rmse\": {:e},\n",
            "      \"fast_max_abs_err\": {:e}\n",
            "    }}"
        ),
        p.workload,
        p.elements,
        p.sim_wall_s,
        p.fast_wall_s,
        p.exact_wall_s,
        p.fast_speedup,
        p.exact_speedup,
        p.exact_bit_identical,
        p.fast_rmse,
        p.fast_max_abs_err
    )
}

/// Formats the native-CPU backend report as JSON (for `BENCH_cpu.json`).
#[must_use]
pub fn cpu_json(r: &crate::experiments::CpuBenchReport) -> String {
    let workloads: Vec<String> = r.workloads.iter().map(cpu_point_json).collect();
    format!(
        concat!(
            "{{\n",
            "  \"host_cores\": {},\n",
            "  \"threads\": {},\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "  \"exact_bit_identical\": {},\n",
            "  \"gated_fast_speedup\": {:.2}\n",
            "}}\n"
        ),
        r.host_cores,
        r.threads,
        workloads.join(",\n"),
        r.exact_bit_identical,
        r.gated_fast_speedup
    )
}

/// Formats the training-step DAG report as a text table.
#[must_use]
pub fn dnn(r: &crate::experiments::DnnBenchReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Whole-network training step as a job DAG: {} (batch {}), {} GEMM ops, \
         dims capped to {}, {} clusters\n",
        r.network, r.batch, r.ops, r.dim_cap, r.clusters
    ));
    s.push_str(&format!(
        "  {:<18} {:>6} {:>8} {:>12} {:>16} {:>6}\n",
        "run", "jobs", "failed", "wall [ms]", "makespan [cyc]", "order"
    ));
    for run in &r.runs {
        s.push_str(&format!(
            "  {:<18} {:>6} {:>8} {:>12.2} {:>16} {:>6}\n",
            run.backend,
            run.jobs,
            run.failed,
            run.wall_s * 1e3,
            run.makespan_cycles,
            if run.order_topological { "ok" } else { "FAIL" }
        ));
    }
    s.push_str(&format!(
        "  sim == native-exact bitwise: {}   sim rerun bitwise-identical: {}\n",
        if r.sim_native_bit_identical {
            "yes"
        } else {
            "NO"
        },
        if r.sim_deterministic { "yes" } else { "NO" }
    ));
    s.push_str(&format!(
        "  split-K vs resident oracle bit-identical: {}   deep GEMM 8x6000x4 \
         bit-identical: {} (fast-mode max |err| {:.3e})\n",
        if r.split_oracle_bit_identical {
            "yes"
        } else {
            "NO"
        },
        if r.deep_split_bit_identical {
            "yes"
        } else {
            "NO"
        },
        r.deep_fast_max_abs_err
    ));
    s.push_str(&format!(
        "  executed DAG: {:.3} MMAC   full-size step: {:.2} GMAC, Table II model \
         predicts {:.1} ms ({:.1} Gflop) on {} clusters\n",
        r.scaled_macs as f64 / 1e6,
        r.full_macs as f64 / 1e9,
        r.predicted_step_s * 1e3,
        r.predicted_flops / 1e9,
        r.clusters
    ));
    s
}

fn dnn_run_json(run: &crate::experiments::DnnStepRun) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"backend\": \"{}\",\n",
            "      \"jobs\": {},\n",
            "      \"failed\": {},\n",
            "      \"wall_s\": {:.9},\n",
            "      \"makespan_cycles\": {},\n",
            "      \"order_topological\": {}\n",
            "    }}"
        ),
        run.backend, run.jobs, run.failed, run.wall_s, run.makespan_cycles, run.order_topological
    )
}

/// Formats the training-step DAG report as JSON (for `BENCH_dnn.json`).
#[must_use]
pub fn dnn_json(r: &crate::experiments::DnnBenchReport) -> String {
    let runs: Vec<String> = r.runs.iter().map(dnn_run_json).collect();
    format!(
        concat!(
            "{{\n",
            "  \"network\": \"{}\",\n",
            "  \"ops\": {},\n",
            "  \"batch\": {},\n",
            "  \"dim_cap\": {},\n",
            "  \"clusters\": {},\n",
            "  \"scaled_macs\": {},\n",
            "  \"full_macs\": {},\n",
            "  \"runs\": [\n{}\n  ],\n",
            "  \"sim_native_bit_identical\": {},\n",
            "  \"sim_deterministic\": {},\n",
            "  \"split_oracle_bit_identical\": {},\n",
            "  \"deep_split_bit_identical\": {},\n",
            "  \"deep_fast_max_abs_err\": {:e},\n",
            "  \"predicted_step_s\": {:.9},\n",
            "  \"predicted_flops\": {:.1}\n",
            "}}\n"
        ),
        r.network,
        r.ops,
        r.batch,
        r.dim_cap,
        r.clusters,
        r.scaled_macs,
        r.full_macs,
        runs.join(",\n"),
        r.sim_native_bit_identical,
        r.sim_deterministic,
        r.split_oracle_bit_identical,
        r.deep_split_bit_identical,
        r.deep_fast_max_abs_err,
        r.predicted_step_s,
        r.predicted_flops
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;
    use ntx_dnn::TrainingModel;
    use ntx_model::{compare, table2 as t2};

    #[test]
    fn all_formatters_produce_nonempty_output() {
        let t1 = experiments::table1_report();
        assert!(table1(&t1).contains("Table I"));
        let pts = experiments::fig5_points();
        let r = Roofline::default();
        let out = fig5(&pts, &r);
        assert!(out.contains("CONV 3x3") && out.contains("GEMM 1024"));
        let rows = t2::this_work_rows(&TrainingModel::default());
        let paper = [22.5, 29.3, 36.7, 35.9, 47.5, 60.4, 70.6, 76.0, 78.7];
        let out = table2(&rows, &compare::accelerators(), &compare::gpus(), &paper);
        assert!(out.contains("ScaleDeep") && out.contains("GTX 1080 Ti"));
        let out = fig6(&compare::figure6(&TrainingModel::default()));
        assert!(out.contains("paper: x2.5"));
        let out = fig7(&compare::figure7());
        assert!(out.contains("paper: x10.4"));
        let out = precision(&experiments::precision_experiment());
        assert!(out.contains("improvement"));
        let out = greenwave(&experiments::greenwave_rows());
        assert!(out.contains("Green Wave"));
    }
}
