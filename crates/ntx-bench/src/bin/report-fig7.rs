//! Prints the Fig. 7 area-efficiency comparison.
fn main() {
    let f = ntx_model::compare::figure7();
    print!("{}", ntx_bench::format::fig7(&f));
}
