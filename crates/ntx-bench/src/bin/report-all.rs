//! Prints every reproduced table and figure in paper order.
fn main() {
    let t1 = ntx_bench::table1_report();
    println!("{}", ntx_bench::format::table1(&t1));
    let rows = ntx_model::table2::this_work_rows(&ntx_dnn::TrainingModel::default());
    let paper = [22.5, 29.3, 36.7, 35.9, 47.5, 60.4, 70.6, 76.0, 78.7];
    println!(
        "{}",
        ntx_bench::format::table2(
            &rows,
            &ntx_model::compare::accelerators(),
            &ntx_model::compare::gpus(),
            &paper
        )
    );
    let points = ntx_bench::fig5_points();
    println!(
        "{}",
        ntx_bench::format::fig5(&points, &ntx_model::roofline::Roofline::default())
    );
    println!(
        "{}",
        ntx_bench::format::fig6(&ntx_model::compare::figure6(
            &ntx_dnn::TrainingModel::default()
        ))
    );
    println!(
        "{}",
        ntx_bench::format::fig7(&ntx_model::compare::figure7())
    );
    println!(
        "{}",
        ntx_bench::format::precision(&ntx_bench::precision_experiment())
    );
    println!(
        "{}",
        ntx_bench::format::greenwave(&ntx_bench::greenwave_rows())
    );
    println!(
        "{}",
        ntx_bench::format::scaling(&ntx_bench::scaling_report())
    );
    print!("{}", ntx_bench::format::hmc(&ntx_bench::hmc_report()));
    print!("{}", ntx_bench::format::mesh(&ntx_bench::mesh_report()));
    print!("{}", ntx_bench::format::chaos(&ntx_bench::chaos_report()));
}
