//! Prints the multi-cluster strong-scaling experiment: the Table I
//! conv3x3 workload sharded across 1..8 clusters by `ntx-sched`, with
//! bitwise output verification and the modelled power roll-up.
fn main() {
    let r = ntx_bench::scaling_report();
    print!("{}", ntx_bench::format::scaling(&r));
    if !r.bit_identical {
        eprintln!("ERROR: sharded outputs diverged from the single-cluster run");
        std::process::exit(1);
    }
}
