//! Gates the bench trajectory: compares every fresh `BENCH_*.json` in
//! the working directory against its committed baseline in
//! `bench/baseline/` and fails on a >15 % regression of any gated
//! cycle-domain metric or a flipped bit-identity/determinism flag.
//! Wall-clock numbers vary with the host and are never gated.
//!
//! Usage: `bench-diff [baseline_dir]` (default `bench/baseline`).
//! Refresh workflow: rerun the report binaries, inspect the diff, then
//! copy the new `BENCH_*.json` over `bench/baseline/` and commit.

use ntx_bench::diff;

fn main() {
    let baseline_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bench/baseline".into());
    let mut entries: Vec<_> = std::fs::read_dir(&baseline_dir)
        .unwrap_or_else(|e| {
            eprintln!("ERROR: cannot read baseline dir {baseline_dir}: {e}");
            std::process::exit(1);
        })
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        eprintln!("ERROR: no BENCH_*.json baselines in {baseline_dir}");
        std::process::exit(1);
    }
    println!(
        "Bench trajectory vs {baseline_dir} (cycle-domain gate +{:.0}%, wall-clock informational)",
        diff::TOLERANCE * 100.0
    );
    let mut failed = false;
    for name in entries {
        let baseline = std::fs::read_to_string(format!("{baseline_dir}/{name}"))
            .expect("baseline listed by read_dir is readable");
        let fresh = match std::fs::read_to_string(&name) {
            Ok(f) => f,
            Err(e) => {
                println!("  {name:<22} MISSING ({e})");
                eprintln!("ERROR: {name}: fresh report missing — did its report binary run?");
                failed = true;
                continue;
            }
        };
        match diff::compare(&baseline, &fresh, diff::TOLERANCE) {
            Ok(out) => {
                println!(
                    "  {name:<22} {:>3} cycle metrics, {:>3} flags, worst drift {:+.1}%  {}",
                    out.gated_numbers,
                    out.gated_bools,
                    out.worst_growth * 100.0,
                    if out.regressions.is_empty() {
                        "ok"
                    } else {
                        "FAIL"
                    }
                );
                for r in &out.regressions {
                    eprintln!("ERROR: {name}: {}: {}", r.path, r.detail);
                    failed = true;
                }
            }
            Err(e) => {
                println!("  {name:<22} UNPARSEABLE");
                eprintln!("ERROR: {name}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!(
            "bench-diff failed. If the regression is intended (new workload, schema \
             change), refresh the baselines: rerun the report binaries and copy the \
             fresh BENCH_*.json into bench/baseline/ (see README)."
        );
        std::process::exit(1);
    }
}
