//! Serves one whole-network training step (AlexNet forward+backward,
//! compiled to a GEMM job DAG by `ntx_dnn::compile`) through the
//! continuous server on the cycle-accurate simulator and the bit-exact
//! native backend, cross-checks every op's output bitwise, gates the
//! split-K streaming schedule against its resident oracle, and records
//! the measurement as `BENCH_dnn.json`.

fn main() {
    let r = ntx_bench::dnn_report();
    print!("{}", ntx_bench::format::dnn(&r));
    let json = ntx_bench::format::dnn_json(&r);
    let path = "BENCH_dnn.json";
    std::fs::write(path, &json).expect("write BENCH_dnn.json");
    println!("  wrote {path}");
    let mut failed = false;
    // Every run must complete the whole DAG, admit every op, and never
    // start an op before all its predecessors retired.
    for run in &r.runs {
        if run.jobs != r.ops as u64 || run.failed != 0 {
            eprintln!(
                "ERROR: {} completed {}/{} ops with {} failures",
                run.backend, run.jobs, r.ops, run.failed
            );
            failed = true;
        }
        if !run.order_topological {
            eprintln!(
                "ERROR: {} completed an op before one of its dependencies",
                run.backend
            );
            failed = true;
        }
    }
    // The Kulisch cross-backend gate: simulator and native-exact must
    // agree bit for bit on every op of the step, unconditionally.
    if !r.sim_native_bit_identical {
        eprintln!("ERROR: simulator and native-exact training-step outputs diverged bitwise");
        failed = true;
    }
    // Placement is wall-clock dependent, outputs must not be: two
    // simulator runs of the same DAG have to agree bit for bit.
    if !r.sim_deterministic {
        eprintln!("ERROR: two simulator runs of the same training step diverged bitwise");
        failed = true;
    }
    // Split-K tiling gates: the multi-pass streaming schedule chains
    // the full wide-accumulator image, so both the forced split on a
    // TCDM-fitting GEMM and the deep-K GEMM that *requires* the split
    // must be bit-identical to their single-pass oracles.
    if !r.split_oracle_bit_identical {
        eprintln!("ERROR: forced split-K schedule diverged from the resident oracle bitwise");
        failed = true;
    }
    if !r.deep_split_bit_identical {
        eprintln!("ERROR: deep GEMM (k=6000) split-K run diverged from native exact bitwise");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
