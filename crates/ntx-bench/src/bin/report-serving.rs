//! Exercises the layered `ntx-sched` serving stack end to end — the
//! pipelined cluster farm against the barriered reference executor
//! (bit-identical per job, faster in total), continuous admission
//! against its barriered same-placement oracle and against the
//! wave-batched server baseline (lower mean latency, throughput no
//! worse), the analytical estimate backend (zero simulator cycles),
//! and the worker-pool core-scaling sweep (1/2/4 pool threads,
//! bit-identical to serial, ≥ 1.7x jobs/s at 4 threads on a ≥ 4-core
//! host) — and records the measurement as `BENCH_serving.json`.

fn main() {
    let r = ntx_bench::serving_report();
    print!("{}", ntx_bench::format::serving(&r));
    let json = ntx_bench::format::serving_json(&r);
    let path = "BENCH_serving.json";
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("  wrote {path}");
    if !r.bit_identical || !r.snapshots_identical {
        eprintln!("ERROR: pipelined farm diverged from the barriered or full-width reference");
        std::process::exit(1);
    }
    if !r.continuous_bit_identical {
        eprintln!("ERROR: continuous admission diverged from the barriered same-placement oracle");
        std::process::exit(1);
    }
    // The overlap win on this heterogeneous queue is well above the
    // floor; 1.05x guards against a regression to barriered behaviour
    // without flaking on workload tweaks. The independently-executed
    // full-width baseline must be beaten too.
    if r.pipelined_speedup < 1.05 || r.fullwidth_speedup < 1.0 {
        eprintln!(
            "ERROR: pipelined speedup {:.3}x (vs barriered) / {:.3}x (vs full-width) \
             below the 1.05x / 1.0x floors",
            r.pipelined_speedup, r.fullwidth_speedup
        );
        std::process::exit(1);
    }
    if r.estimate_sim_cycles != 0 {
        eprintln!(
            "ERROR: analytical backend spent {} simulator cycles",
            r.estimate_sim_cycles
        );
        std::process::exit(1);
    }
    for (mode, st) in [("continuous", &r.continuous), ("wave", &r.wave)] {
        if st.served_jobs != r.jobs as u64 || st.deadline_misses != 0 {
            eprintln!("ERROR: {mode} server dropped jobs or missed generous deadlines");
            std::process::exit(1);
        }
    }
    // Continuous admission delivers each completion the moment its
    // last shard retires instead of at the wave boundary: its mean
    // latency must beat wave batching outright.
    if r.latency_win < 1.0 {
        eprintln!(
            "ERROR: continuous-admission mean latency lost to wave batching \
             ({:.3}x win, need >= 1.0)",
            r.latency_win
        );
        std::process::exit(1);
    }
    // Throughput gates. The deterministic one is simulated farm time:
    // graded placement may trade a few percent of batch makespan for
    // per-job latency, capped at 10% drift versus the wave-batched
    // pipelined makespan. Wall-clock jobs/s covers the same total
    // simulation either way and is noise-dominated between runs, so
    // its floor only catches gross regressions.
    if r.continuous_makespan_cycles as f64 > 1.10 * r.pipelined_makespan_cycles as f64 {
        eprintln!(
            "ERROR: continuous farm makespan {} drifted more than 10% past the \
             wave-batched pipelined makespan {}",
            r.continuous_makespan_cycles, r.pipelined_makespan_cycles
        );
        std::process::exit(1);
    }
    // Wall-clock jobs/s is informational only: both modes run the same
    // total simulation, so the ratio is dominated by host scheduling
    // noise on shared CI runners and used to flake. The deterministic
    // cycle gate above is the real throughput regression guard.
    if r.throughput_ratio < 0.90 {
        eprintln!(
            "note: continuous-admission wall-clock throughput ratio {:.3}x is below \
             0.90 (informational; the deterministic cycle gate passed)",
            r.throughput_ratio
        );
    }
    // The worker pool must be a pure implementation detail: outputs,
    // retire traces and makespans bit-identical to the serial farm at
    // every thread count, unconditionally.
    if !r.pool_bit_identical {
        eprintln!("ERROR: pooled farm diverged from the serial farm");
        std::process::exit(1);
    }
    // The wall-clock core-scaling gate (the PR 7-demoted throughput
    // gate, re-promoted for the pooled farm): 4 pool threads must buy
    // at least 1.7x jobs/s over 1 thread. Only enforceable when the
    // host actually has 4 cores to scale onto; on narrower runners the
    // measurement is printed but cannot gate.
    if r.host_cores >= 4 {
        if r.pool_speedup_4x < 1.7 {
            eprintln!(
                "ERROR: worker pool at 4 threads measured {:.3}x jobs/s vs 1 thread \
                 on a {}-core host (need >= 1.7x)",
                r.pool_speedup_4x, r.host_cores
            );
            std::process::exit(1);
        }
    } else {
        println!(
            "  note: {}-core host cannot scale a 4-thread pool; speedup {:.3}x is \
             informational (gate needs >= 4 cores)",
            r.host_cores, r.pool_speedup_4x
        );
    }
}
