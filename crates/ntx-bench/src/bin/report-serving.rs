//! Exercises the layered `ntx-sched` serving stack end to end — the
//! pipelined cluster farm against the barriered reference executor
//! (bit-identical per job, faster in total), the analytical estimate
//! backend (zero simulator cycles), and the async multi-client server
//! — and records the measurement as `BENCH_serving.json`.

fn main() {
    let r = ntx_bench::serving_report();
    print!("{}", ntx_bench::format::serving(&r));
    let json = ntx_bench::format::serving_json(&r);
    let path = "BENCH_serving.json";
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("  wrote {path}");
    if !r.bit_identical || !r.snapshots_identical {
        eprintln!("ERROR: pipelined farm diverged from the barriered or full-width reference");
        std::process::exit(1);
    }
    // The overlap win on this heterogeneous queue is well above the
    // floor; 1.05x guards against a regression to barriered behaviour
    // without flaking on workload tweaks. The independently-executed
    // full-width baseline must be beaten too.
    if r.pipelined_speedup < 1.05 || r.fullwidth_speedup < 1.0 {
        eprintln!(
            "ERROR: pipelined speedup {:.3}x (vs barriered) / {:.3}x (vs full-width) \
             below the 1.05x / 1.0x floors",
            r.pipelined_speedup, r.fullwidth_speedup
        );
        std::process::exit(1);
    }
    if r.estimate_sim_cycles != 0 {
        eprintln!(
            "ERROR: analytical backend spent {} simulator cycles",
            r.estimate_sim_cycles
        );
        std::process::exit(1);
    }
    if r.served_jobs != r.jobs as u64 || r.deadline_misses != 0 {
        eprintln!("ERROR: async server dropped jobs or missed generous deadlines");
        std::process::exit(1);
    }
}
