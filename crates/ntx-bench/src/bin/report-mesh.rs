//! Sweeps streaming conv/GEMM farms from 1 cluster on 1 cube to 64
//! clusters on 8 cubes of the HMC mesh, records the weak-scaling
//! trajectory as `BENCH_mesh.json`, and gates CI on the mesh
//! invariants: data-affine placement keeps 64 clusters near-linear,
//! placement-blind scheduling measurably loses to it, outputs never
//! depend on topology or placement, and a cube's lone port gets the
//! whole pipe (the work-conserving schedule).

fn main() {
    let r = ntx_bench::mesh_report();
    print!("{}", ntx_bench::format::mesh(&r));
    let json = ntx_bench::format::mesh_json(&r);
    let path = "BENCH_mesh.json";
    std::fs::write(path, &json).expect("write BENCH_mesh.json");
    println!("  wrote {path}");

    // Gate (c): topology and placement are timing policies — any
    // output bit depending on them is a simulation bug.
    if !r.bit_identical {
        eprintln!("ERROR: mesh outputs diverged from the ideal-memory run");
        std::process::exit(1);
    }
    for curve in [&r.conv, &r.gemm] {
        for p in &curve.points {
            // Memory contention and hop latency can only stretch time.
            if p.affine_makespan_cycles < p.ideal_makespan_cycles {
                eprintln!(
                    "ERROR: {} at {} clusters ran FASTER on the mesh ({} < {} cycles)",
                    curve.workload, p.clusters, p.affine_makespan_cycles, p.ideal_makespan_cycles
                );
                std::process::exit(1);
            }
            if p.naive_makespan_cycles < p.affine_makespan_cycles {
                eprintln!(
                    "ERROR: {} at {} clusters: placement-blind run beat the affine \
                     one ({} < {} cycles) — remote access came out free",
                    curve.workload, p.clusters, p.naive_makespan_cycles, p.affine_makespan_cycles
                );
                std::process::exit(1);
            }
            // Affinity keeps all traffic cube-local; the naive shift
            // pushes every stream over a link once there are ≥ 2 cubes.
            if p.affine_remote_bytes != 0 {
                eprintln!(
                    "ERROR: {} at {} clusters moved {} remote bytes under affine placement",
                    curve.workload, p.clusters, p.affine_remote_bytes
                );
                std::process::exit(1);
            }
            if p.cubes > 1 && p.naive_remote_bytes == 0 {
                eprintln!(
                    "ERROR: {} at {} clusters/{} cubes: naive placement moved no \
                     remote bytes — the control arm is not exercising the links",
                    curve.workload, p.clusters, p.cubes
                );
                std::process::exit(1);
            }
            // Gate (d): while every cube serves exactly one cluster,
            // the work-conserving schedule hands that port the full
            // pipe — the mesh must be cycle-identical to ideal memory.
            if p.clusters == p.cubes as usize && p.affine_makespan_cycles != p.ideal_makespan_cycles
            {
                eprintln!(
                    "ERROR: {} at {} clusters on {} cubes: lone-port cube did not \
                     deliver the full pipe ({} vs {} ideal cycles)",
                    curve.workload,
                    p.clusters,
                    p.cubes,
                    p.affine_makespan_cycles,
                    p.ideal_makespan_cycles
                );
                std::process::exit(1);
            }
        }
        let last = curve.points.last().expect("non-empty sweep");
        // Gate (a): with the data kept cube-local, 64 clusters on 8
        // cubes run in the 8-per-cube regime of the single-cube curve
        // — ≥ 80 % of linear, where one shared cube collapses to ~18 %.
        if last.clusters >= 64 && last.affine_efficiency < 0.80 {
            eprintln!(
                "ERROR: {} at {} clusters/{} cubes held only {:.0}% weak-scaling \
                 efficiency under affine placement (gate: >= 80%)",
                curve.workload,
                last.clusters,
                last.cubes,
                last.affine_efficiency * 100.0
            );
            std::process::exit(1);
        }
        // Gate (b): ignoring affinity at full scale must cost
        // measurable efficiency (link clip + hop latency).
        if last.clusters >= 64 && last.naive_efficiency >= last.affine_efficiency {
            eprintln!(
                "ERROR: {} at {} clusters: naive placement matched affine \
                 ({:.1}% vs {:.1}%) — the affinity gap did not materialise",
                curve.workload,
                last.clusters,
                last.naive_efficiency * 100.0,
                last.affine_efficiency * 100.0
            );
            std::process::exit(1);
        }
    }
}
