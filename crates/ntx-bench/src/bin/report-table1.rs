//! Prints the Table I reproduction (cluster figures of merit).
fn main() {
    let r = ntx_bench::table1_report();
    print!("{}", ntx_bench::format::table1(&r));
    println!("\nFigure 4 — floorplan breakdown (22FDX)");
    for c in ntx_model::area::cluster_breakdown() {
        println!("  {:<28} {:>6.3} mm2", c.name, c.mm2);
    }
    println!(
        "  outline {:.3} mm2, placement density {:.0} % (paper: 0.51 mm2, 59 %)",
        ntx_model::area::outline_mm2(),
        ntx_model::area::placement_density() * 100.0
    );
}
