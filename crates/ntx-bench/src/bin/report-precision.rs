//! Prints the §II-C deferred-rounding precision experiment.
fn main() {
    let r = ntx_bench::precision_experiment();
    print!("{}", ntx_bench::format::precision(&r));
}
