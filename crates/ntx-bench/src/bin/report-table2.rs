//! Prints the Table II reproduction (DNN training efficiency).
fn main() {
    let rows = ntx_model::table2::this_work_rows(&ntx_dnn::TrainingModel::default());
    let paper = [22.5, 29.3, 36.7, 35.9, 47.5, 60.4, 70.6, 76.0, 78.7];
    print!(
        "{}",
        ntx_bench::format::table2(
            &rows,
            &ntx_model::compare::accelerators(),
            &ntx_model::compare::gpus(),
            &paper
        )
    );
}
