//! Prints the §IV Green-Wave stencil comparison.
fn main() {
    let rows = ntx_bench::greenwave_rows();
    print!("{}", ntx_bench::format::greenwave(&rows));
}
