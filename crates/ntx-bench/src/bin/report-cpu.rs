//! Benchmarks the native host-CPU backend against the cycle-accurate
//! simulator on the serving workload mix — fast-mode throughput,
//! exact-mode bit-identity, fast-mode RMSE against an `f64` reference —
//! and records the measurement as `BENCH_cpu.json`.

fn main() {
    let r = ntx_bench::cpu_report();
    print!("{}", ntx_bench::format::cpu(&r));
    let json = ntx_bench::format::cpu_json(&r);
    let path = "BENCH_cpu.json";
    std::fs::write(path, &json).expect("write BENCH_cpu.json");
    println!("  wrote {path}");
    // Exact mode is the whole point of the Kulisch path: its outputs
    // must match the simulator bit for bit on every workload,
    // unconditionally — no core-count carve-out, no tolerance.
    if !r.exact_bit_identical {
        eprintln!("ERROR: native exact mode diverged from the simulator bitwise");
        std::process::exit(1);
    }
    // Fast-mode throughput gate over the two issue workloads (conv3x3
    // and dot-4096). The simulator models every TCDM bank conflict and
    // controller handshake, so native execution clears 20x even on one
    // core; the CI floor is a conservative 5x and only enforced where
    // the runner has real cores to spend. Narrower hosts still print
    // the measurement.
    if r.host_cores >= 4 {
        if r.gated_fast_speedup < 5.0 {
            eprintln!(
                "ERROR: fast mode measured {:.1}x over the simulator on a {}-core \
                 host (need >= 5x on conv3x3 and dot-4096)",
                r.gated_fast_speedup, r.host_cores
            );
            std::process::exit(1);
        }
    } else {
        println!(
            "  note: {}-core host; gated fast speedup {:.1}x is informational \
             (gate needs >= 4 cores)",
            r.host_cores, r.gated_fast_speedup
        );
    }
}
