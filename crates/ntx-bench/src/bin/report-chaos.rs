//! Exercises the serving stack's robustness layer — a seeded chaos
//! schedule (cluster kill mid-run, transient stalls, serial-link
//! degradation) against the open-loop load generator — and records the
//! measurement as `BENCH_chaos.json`. Gates:
//!
//! * killing 1 of 8 clusters mid-run loses **zero** jobs, leaves every
//!   output bit-identical to the fault-free run, and degrades the
//!   open-loop makespan by at most `1.5 * 8/7`;
//! * under 2x saturation the server sheds explicitly
//!   (`DeadlineUnmeetable`) and the **accepted**-job p99 stays within
//!   2x of the unsaturated p99;
//! * the degraded serial link stretches remote waits without flipping
//!   a bit, and every async submission gets an explicit outcome.

fn main() {
    let r = ntx_bench::chaos_report();
    print!("{}", ntx_bench::format::chaos(&r));
    let json = ntx_bench::format::chaos_json(&r);
    let path = "BENCH_chaos.json";
    std::fs::write(path, &json).expect("write BENCH_chaos.json");
    println!("  wrote {path}");
    if r.jobs_lost != 0 {
        eprintln!(
            "ERROR: {} jobs lost to the injected cluster kill (recovery must lose zero)",
            r.jobs_lost
        );
        std::process::exit(1);
    }
    if !r.recovery_bit_identical {
        eprintln!("ERROR: fault recovery changed output bits (faults may only perturb timing)");
        std::process::exit(1);
    }
    if r.faults_injected == 0 || r.shards_retried == 0 {
        eprintln!(
            "ERROR: the chaos plan never fired ({} faults, {} retried shards) — \
             the experiment is not exercising recovery",
            r.faults_injected, r.shards_retried
        );
        std::process::exit(1);
    }
    if r.makespan_ratio > r.degradation_bound {
        eprintln!(
            "ERROR: killing one cluster degraded the makespan {:.3}x, above the \
             proportional bound {:.3}x",
            r.makespan_ratio, r.degradation_bound
        );
        std::process::exit(1);
    }
    if r.saturated.shed == 0 {
        eprintln!("ERROR: 2x saturation shed nothing — deadline shedding is not engaging");
        std::process::exit(1);
    }
    if r.p99_ratio > r.p99_bound {
        eprintln!(
            "ERROR: accepted-job p99 grew {:.3}x under 2x saturation, above the {:.1}x \
             bound — shedding is not protecting served latency",
            r.p99_ratio, r.p99_bound
        );
        std::process::exit(1);
    }
    if !r.link_bit_identical {
        eprintln!("ERROR: serial-link degradation changed output bits");
        std::process::exit(1);
    }
    if r.link_wait_faulted_cycles <= r.link_wait_base_cycles {
        eprintln!(
            "ERROR: clipping the serial link did not increase remote waits \
             ({} -> {} cycles) — the degradation is not binding",
            r.link_wait_base_cycles, r.link_wait_faulted_cycles
        );
        std::process::exit(1);
    }
    if !r.async_all_explicit {
        eprintln!(
            "ERROR: async submissions vanished without an explicit outcome \
             ({} submitted, {} completed, {} backpressure)",
            r.async_submitted, r.async_completed, r.async_backpressure
        );
        std::process::exit(1);
    }
    // Informational: unsaturated shedding should be rare, and the
    // saturated run still completes the bulk of accepted work.
    if r.unsaturated.shed > 0 {
        eprintln!(
            "note: unsaturated run shed {} jobs (informational)",
            r.unsaturated.shed
        );
    }
}
