//! Measures the simulator's burst fast path against the pure per-cycle
//! reference path on the Table I conv3x3 kernel — both the 8-NTX
//! streaming configuration (bank-contended steady state) and the
//! single-NTX sole-master regime — verifies the simulated outcomes are
//! bit-identical, and records the perf trajectory as `BENCH_sim.json`.

fn main() {
    let reps = std::env::var("NTX_SIMPERF_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    // Profiling aid: NTX_SIMPERF_MODE=fast|per-cycle loops one mode only.
    match std::env::var("NTX_SIMPERF_MODE").as_deref() {
        Ok("fast") => {
            for _ in 0..reps {
                std::hint::black_box(ntx_bench::experiments::conv3x3_sim_run(true));
            }
            return;
        }
        Ok("per-cycle") => {
            for _ in 0..reps {
                std::hint::black_box(ntx_bench::experiments::conv3x3_sim_run(false));
            }
            return;
        }
        _ => {}
    }
    let r = ntx_bench::simperf_report(reps);
    print!("{}", ntx_bench::format::simperf(&r));
    let json = ntx_bench::format::simperf_json(&r);
    let path = "BENCH_sim.json";
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("  wrote {path}");
    for w in [&r.streaming, &r.single_ntx] {
        if !w.bit_identical || !w.counters_identical {
            eprintln!(
                "ERROR: {} fast-path run diverged from the per-cycle reference",
                w.workload
            );
            std::process::exit(1);
        }
    }
    // Smoke floors well under the expected ratios, so machine noise in
    // CI does not flake the job: the sole-master regime runs ~8x, the
    // contended streaming regime ~2.5x.
    if r.single_ntx.speedup < 5.0 {
        eprintln!(
            "ERROR: single-NTX burst speedup {:.2}x below the 5x floor",
            r.single_ntx.speedup
        );
        std::process::exit(1);
    }
    if r.streaming.speedup < 1.5 {
        eprintln!(
            "ERROR: streaming fast-path speedup {:.2}x below the 1.5x floor",
            r.streaming.speedup
        );
        std::process::exit(1);
    }
}
