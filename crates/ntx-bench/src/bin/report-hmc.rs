//! Sweeps 1..64 clusters of streaming conv/GEMM against the shared
//! HMC bandwidth model, records the saturation trajectory as
//! `BENCH_hmc.json`, and gates CI on the sanity invariants: contention
//! may only stretch timing (never touch data), the ≤ 8-cluster regime
//! must stay near the PR 1 scaling numbers, and 64 clusters must be
//! clearly memory-bound saturated.

fn main() {
    let r = ntx_bench::hmc_report();
    print!("{}", ntx_bench::format::hmc(&r));
    let json = ntx_bench::format::hmc_json(&r);
    let path = "BENCH_hmc.json";
    std::fs::write(path, &json).expect("write BENCH_hmc.json");
    println!("  wrote {path}");

    if !r.bit_identical {
        eprintln!("ERROR: shared-HMC outputs diverged from the ideal-memory run");
        std::process::exit(1);
    }
    for curve in [&r.conv, &r.gemm] {
        for p in &curve.points {
            // Contention can only ever stretch timing.
            if p.contended_makespan_cycles < p.ideal_makespan_cycles {
                eprintln!(
                    "ERROR: {} at {} clusters ran FASTER contended ({} < {} cycles)",
                    curve.workload,
                    p.clusters,
                    p.contended_makespan_cycles,
                    p.ideal_makespan_cycles
                );
                std::process::exit(1);
            }
            // The PR 1 regime: with ≤ 8 ports on the 6.4-word budget
            // the sweep must stay near linear — the measured floors
            // are ~0.80 (gemm, pure streaming share) and ~0.95 (conv,
            // compute hides most of the clip), gated with margin.
            if p.clusters <= 8 && p.efficiency < 0.70 {
                eprintln!(
                    "ERROR: {} at {} clusters fell to {:.0}% efficiency — the \
                     ≤8-cluster regime must stay near the PR 1 scaling numbers",
                    curve.workload,
                    p.clusters,
                    p.efficiency * 100.0
                );
                std::process::exit(1);
            }
            // The saturated regime: past the budget the curve must
            // collapse towards budget/(clusters × port) — well below
            // half of linear at 64 clusters.
            if p.clusters >= 64 && p.efficiency >= 0.50 {
                eprintln!(
                    "ERROR: {} at {} clusters kept {:.0}% efficiency — the memory-bound \
                     saturation did not materialise",
                    curve.workload,
                    p.clusters,
                    p.efficiency * 100.0
                );
                std::process::exit(1);
            }
        }
        // Saturation also means the achieved aggregate bandwidth
        // plateaus at (or under) the shared budget once oversubscribed.
        let last = curve.points.last().expect("non-empty sweep");
        if last.achieved_ext_bandwidth > 1.02 * r.shared_bandwidth {
            eprintln!(
                "ERROR: {} achieved {:.1} GB/s, above the {:.1} GB/s shared budget",
                curve.workload,
                last.achieved_ext_bandwidth / 1e9,
                r.shared_bandwidth / 1e9
            );
            std::process::exit(1);
        }
    }
}
