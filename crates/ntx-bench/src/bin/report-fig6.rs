//! Prints the Fig. 6 energy-efficiency comparison.
fn main() {
    let f = ntx_model::compare::figure6(&ntx_dnn::TrainingModel::default());
    print!("{}", ntx_bench::format::fig6(&f));
}
