//! Prints the Fig. 5 roofline reproduction plus the §III-C AXI sweep.
use ntx_model::roofline::Roofline;
fn main() {
    let points = ntx_bench::fig5_points();
    let roofline = Roofline::default();
    print!("{}", ntx_bench::format::fig5(&points, &roofline));
    println!("\nAXI-width sweep (SIII-C):");
    for words in [1u32, 2, 4] {
        let r = Roofline::with_axi_words(words);
        println!(
            "  {:>3}-bit port: {:>5.0} GB/s, ridge at {:.1} flop/B",
            64 * words,
            r.peak_bandwidth / 1e9,
            r.ridge()
        );
    }
}
