//! Bench for Table I: times the streaming 3×3-convolution simulation
//! that produces the cluster's figures of merit, and prints the
//! reproduced table once.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let report = ntx_bench::table1_report();
    eprintln!("{}", ntx_bench::format::table1(&report));
    c.bench_function("table1/conv3x3_streaming_sim", |b| {
        b.iter(ntx_bench::table1_report);
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
