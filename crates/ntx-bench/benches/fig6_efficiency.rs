//! Bench for Fig. 6: times the efficiency-comparison computation and
//! prints the bars once.

use criterion::{criterion_group, criterion_main, Criterion};
use ntx_dnn::TrainingModel;
use ntx_model::compare::figure6;

fn bench(c: &mut Criterion) {
    eprintln!(
        "{}",
        ntx_bench::format::fig6(&figure6(&TrainingModel::default()))
    );
    c.bench_function("fig6/efficiency_bars", |b| {
        b.iter(|| figure6(&TrainingModel::default()));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
