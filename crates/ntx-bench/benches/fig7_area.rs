//! Bench for Fig. 7: times the area-efficiency computation and prints
//! the bars once.

use criterion::{criterion_group, criterion_main, Criterion};
use ntx_model::compare::figure7;

fn bench(c: &mut Criterion) {
    eprintln!("{}", ntx_bench::format::fig7(&figure7()));
    c.bench_function("fig7/area_bars", |b| b.iter(figure7));
}

criterion_group!(benches, bench);
criterion_main!(benches);
