//! Benchmarks the cycle simulator's hot loop: the Table I conv3x3
//! streaming workload through the burst fast path vs the pure per-cycle
//! path, plus the single-engine dot-product burst.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ntx_isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect};
use ntx_sim::{Cluster, ClusterConfig};

fn dot_product(fast_path: bool) -> f32 {
    let mut cluster = Cluster::new(ClusterConfig {
        fast_path,
        ..ClusterConfig::default()
    });
    let n = 4096u32;
    let data = ntx_bench::experiments::test_data(n as usize, 0xfeed);
    cluster.write_tcdm_f32(0, &data);
    cluster.write_tcdm_f32(0x4004, &data);
    let cfg = NtxConfig::builder()
        .command(Command::Mac {
            operand: OperandSelect::Memory,
        })
        .loops(LoopNest::vector(n))
        .agu(0, AguConfig::stream(0, 4))
        .agu(1, AguConfig::stream(0x4004, 4))
        .agu(2, AguConfig::fixed(0x8000))
        .build()
        .expect("valid");
    cluster.offload_with_writes(0, &cfg, 1);
    cluster.run_to_completion();
    cluster.read_tcdm_f32(0x8000, 1)[0]
}

fn bench(c: &mut Criterion) {
    let report = ntx_bench::simperf_report(1);
    eprintln!("{}", ntx_bench::format::simperf(&report));
    c.bench_function("sim_hotloop/conv3x3_streaming_burst", |b| {
        b.iter(|| black_box(ntx_bench::experiments::conv3x3_sim_run(true)))
    });
    c.bench_function("sim_hotloop/conv3x3_streaming_per_cycle", |b| {
        b.iter(|| black_box(ntx_bench::experiments::conv3x3_sim_run(false)))
    });
    c.bench_function("sim_hotloop/conv3x3_single_ntx_burst", |b| {
        b.iter(|| black_box(ntx_bench::experiments::conv3x3_single_ntx_run(true)))
    });
    c.bench_function("sim_hotloop/conv3x3_single_ntx_per_cycle", |b| {
        b.iter(|| black_box(ntx_bench::experiments::conv3x3_single_ntx_run(false)))
    });
    c.bench_function("sim_hotloop/dot4096_single_engine_burst", |b| {
        b.iter(|| black_box(dot_product(true)))
    });
    c.bench_function("sim_hotloop/dot4096_single_engine_per_cycle", |b| {
        b.iter(|| black_box(dot_product(false)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
