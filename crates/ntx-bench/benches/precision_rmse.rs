//! Bench for the §II-C precision study: times the wide-accumulator
//! RMSE experiment and prints the result once.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    eprintln!(
        "{}",
        ntx_bench::format::precision(&ntx_bench::precision_experiment())
    );
    c.bench_function("precision/conv_layer_rmse", |b| {
        b.iter(ntx_bench::precision_experiment);
    });
    // Micro-benchmark of the accumulator itself.
    let data = ntx_bench::experiments::test_data(4096, 7);
    c.bench_function("precision/wide_accumulator_4k_macs", |b| {
        b.iter(|| {
            let mut acc = ntx_fpu::WideAccumulator::new();
            for pair in data.chunks_exact(2) {
                acc.add_product(pair[0], pair[1]);
            }
            acc.round()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
