//! Bench for Fig. 5: times the 15-kernel roofline sweep (cycle
//! simulations + extrapolations) and prints the series once.

use criterion::{criterion_group, criterion_main, Criterion};
use ntx_model::roofline::Roofline;

fn bench(c: &mut Criterion) {
    let points = ntx_bench::fig5_points();
    eprintln!("{}", ntx_bench::format::fig5(&points, &Roofline::default()));
    c.bench_function("fig5/full_kernel_sweep", |b| {
        b.iter(ntx_bench::fig5_points);
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
