//! Bench for the §IV Green-Wave comparison: times the stencil model
//! evaluation and a real in-TCDM Laplacian simulation; prints the
//! comparison once.

use criterion::{criterion_group, criterion_main, Criterion};
use ntx_kernels::stencil::Laplace3dKernel;
use ntx_sim::{Cluster, ClusterConfig};

fn bench(c: &mut Criterion) {
    eprintln!(
        "{}",
        ntx_bench::format::greenwave(&ntx_bench::greenwave_rows())
    );
    c.bench_function("greenwave/model_evaluation", |b| {
        b.iter(ntx_bench::greenwave_rows);
    });
    let grid = ntx_bench::experiments::test_data(16 * 16 * 16, 3);
    c.bench_function("greenwave/lap3d_16c_cycle_sim", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterConfig::default());
            Laplace3dKernel {
                depth: 16,
                height: 16,
                width: 16,
            }
            .run(&mut cluster, &grid)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
