//! Bench for Table II: times the full 9-configuration × 6-network
//! training-efficiency evaluation and prints the reproduced table once.

use criterion::{criterion_group, criterion_main, Criterion};
use ntx_dnn::TrainingModel;
use ntx_model::table2::this_work_rows;

fn bench(c: &mut Criterion) {
    let rows = this_work_rows(&TrainingModel::default());
    let paper = [22.5, 29.3, 36.7, 35.9, 47.5, 60.4, 70.6, 76.0, 78.7];
    eprintln!(
        "{}",
        ntx_bench::format::table2(
            &rows,
            &ntx_model::compare::accelerators(),
            &ntx_model::compare::gpus(),
            &paper
        )
    );
    c.bench_function("table2/nine_rows_six_networks", |b| {
        b.iter(|| this_work_rows(&TrainingModel::default()));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
