//! Technology nodes and scaling factors (§III-D).
//!
//! Table II evaluates the architecture in the 22FDX node of the
//! tape-out and in a projected 14 nm node, with DRAM dies at 50 nm and
//! 30 nm respectively. The constants here are fitted once so that
//!
//! * the 22 nm column reproduces the tape-out figures of Table I, and
//! * the 22 nm → 14 nm deltas reproduce the frequency (×1.4), area
//!   (×0.4) and efficiency (×1.6) ratios between the matching Table II
//!   rows,
//!
//! and are then used for *every* derived number.

/// Logic technology node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechNode {
    /// GLOBALFOUNDRIES 22FDX (the tape-out node).
    Fdx22,
    /// Projected 14 nm FinFET node.
    Nm14,
}

impl TechNode {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TechNode::Fdx22 => "22",
            TechNode::Nm14 => "14",
        }
    }

    /// Energy scale factor of the compute/SRAM path relative to 22FDX,
    /// fitted to the 22 nm → 14 nm efficiency ratios of Table II
    /// (≈×1.6 at equal cluster count).
    #[must_use]
    pub fn energy_scale(self) -> f64 {
        match self {
            TechNode::Fdx22 => 1.0,
            TechNode::Nm14 => 0.48,
        }
    }

    /// Area scale factor relative to 22FDX (Table II: 4.8 mm² → 1.9 mm²
    /// for the same 16-cluster configuration).
    #[must_use]
    pub fn area_scale(self) -> f64 {
        match self {
            TechNode::Fdx22 => 1.0,
            TechNode::Nm14 => 0.4,
        }
    }

    /// Maximum cluster clock at the nominal operating point, Hz
    /// (Table II: 2.5 GHz in 22 nm vs 3.5 GHz in 14 nm for NTX 16×).
    #[must_use]
    pub fn max_frequency(self) -> f64 {
        match self {
            TechNode::Fdx22 => 2.5e9,
            TechNode::Nm14 => 3.5e9,
        }
    }

    /// Static (leakage + always-on) power of one cluster, W.
    #[must_use]
    pub fn cluster_static_power(self) -> f64 {
        match self {
            TechNode::Fdx22 => 0.041 * self.energy_scale(),
            TechNode::Nm14 => 0.041 * self.energy_scale(),
        }
    }
}

/// DRAM die node of the HMC stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramNode {
    /// 50 nm DRAM (the 22 nm-era HMC of Table II).
    Nm50,
    /// 30 nm DRAM (the 14 nm-era stack).
    Nm30,
}

impl DramNode {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DramNode::Nm50 => "50",
            DramNode::Nm30 => "30",
        }
    }

    /// DRAM access energy, J per byte (vault access + TSV transport;
    /// the 50 nm value corresponds to ≈10 pJ/bit, the HMC-era figure).
    #[must_use]
    pub fn energy_per_byte(self) -> f64 {
        match self {
            DramNode::Nm50 => 80.0e-12,
            DramNode::Nm30 => 45.0e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_ratio_matches_table2() {
        // NTX 16×: 2.50 GHz (22 nm) vs 3.50 GHz (14 nm) = ×1.4.
        let ratio = TechNode::Nm14.max_frequency() / TechNode::Fdx22.max_frequency();
        assert!((ratio - 1.4).abs() < 1e-9);
    }

    #[test]
    fn area_ratio_matches_table2() {
        // 4.8 mm² → 1.9 mm² ≈ ×0.4.
        assert!((TechNode::Nm14.area_scale() - 1.9f64 / 4.8).abs() < 0.005);
    }

    #[test]
    fn newer_nodes_are_cheaper() {
        assert!(TechNode::Nm14.energy_scale() < TechNode::Fdx22.energy_scale());
        assert!(DramNode::Nm30.energy_per_byte() < DramNode::Nm50.energy_per_byte());
    }

    #[test]
    fn labels() {
        assert_eq!(TechNode::Fdx22.label(), "22");
        assert_eq!(DramNode::Nm50.label(), "50");
    }
}
