//! The DNN-training efficiency model behind Table II (§III-D).
//!
//! For each (configuration, network) pair the model walks the network
//! layer by layer: execution time is the per-layer maximum of the
//! compute time (peak × utilisation) and the DRAM streaming time (LoB
//! bandwidth); energy sums the calibrated per-event terms at the
//! configuration's voltage/frequency point plus static power over the
//! runtime. Efficiency is `total flops / total energy`, the Gop/s W of
//! the paper.

use crate::power::EnergyModel;
use crate::system::{reference_voltage, SystemConfig};
use ntx_dnn::{Network, TrainingModel};

/// Sustained fraction of peak the clusters reach on DNN layers: the
/// §III-C practical ceiling (13 % banking conflicts) — the same derate
/// the roofline model uses.
pub const CLUSTER_UTILIZATION: f64 = 0.87;

/// TCDM accesses per retired flop (2 operand reads per 2-flop FMAC
/// plus write-back and DMA handling, measured in the cycle simulator).
pub const TCDM_ACCESS_PER_FLOP: f64 = 1.05;

/// Static power of the LoB (vault controllers + main interconnect), W.
pub const LOB_STATIC_W: f64 = 2.0;

/// Power of the four off-cube serial links, W (HMC-class SerDes).
pub const LINK_POWER_W: f64 = 9.0;

/// System-level overhead on the dynamic cluster energy relative to the
/// stand-alone Table I calibration: inter-cluster interconnect, vault
/// controller activity and DMA descriptor handling that a single
/// cluster running out of a testbench does not see.
pub const SYSTEM_ENERGY_OVERHEAD: f64 = 1.85;

/// Per-cluster leakage at the 22FDX reference voltage, W (the clock
/// tree and core static power of the Table I figure scale with the
/// dynamic terms; only true leakage stays, scaling with voltage).
pub const CLUSTER_LEAK_W: f64 = 0.008;

/// Result of evaluating one training step on one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemEvaluation {
    /// Wall-clock time of one training step, s.
    pub time_s: f64,
    /// Energy of one training step, J.
    pub energy_j: f64,
    /// Total flops of the step.
    pub flops: f64,
    /// Efficiency in Gop/s W (the Table II metric).
    pub gops_per_watt: f64,
    /// Average power draw, W.
    pub power_w: f64,
}

/// TCDM elements per cluster available to the batching dataflow
/// (64 kB of fp32).
pub const TCDM_ELEMS_PER_CLUSTER: u64 = 16 * 1024;

/// Evaluates one training step of `net` on `cfg`.
///
/// The aggregate TCDM of the configuration (clusters × 64 kB) feeds the
/// weight-reuse term of the traffic model: more clusters batch more
/// samples per weight-streaming pass, which is why the big
/// configurations keep gaining efficiency even after the peak
/// performance saturates.
#[must_use]
pub fn evaluate_training(
    cfg: &SystemConfig,
    net: &Network,
    training: &TrainingModel,
) -> SystemEvaluation {
    let training = TrainingModel {
        // Half the aggregate TCDM batches activations; the other half
        // double-buffers the streamed weights/inputs.
        tcdm_capacity_elems: u64::from(cfg.clusters) * TCDM_ELEMS_PER_CLUSTER / 2,
        ..*training
    };
    let energy_model = EnergyModel::for_node(cfg.tech, cfg.dram);
    let peak = cfg.peak_flops() * CLUSTER_UTILIZATION;
    let bw = cfg.memory_bandwidth;
    // Voltage scaling of the dynamic energy relative to the node's
    // calibration point (E ∝ V²); leakage scales ∝ V.
    let v_ratio = cfg.voltage() / reference_voltage(cfg.tech);
    let v_scale = v_ratio * v_ratio;
    let mut time = 0f64;
    let mut flops_total = 0f64;
    let mut e_dynamic = 0f64;
    for layer in &net.layers {
        let cost = training.layer_cost(layer);
        let flops = cost.flops as f64;
        let bytes = cost.dram_bytes as f64;
        let t = (flops / peak).max(bytes / bw);
        time += t;
        flops_total += flops;
        e_dynamic += (flops * energy_model.e_flop * v_scale
            + flops * TCDM_ACCESS_PER_FLOP * energy_model.e_tcdm_access * v_scale)
            * SYSTEM_ENERGY_OVERHEAD
            + bytes * (energy_model.e_dram_byte + energy_model.e_axi_byte);
    }
    let p_static = f64::from(cfg.clusters) * CLUSTER_LEAK_W * cfg.tech.energy_scale() * v_ratio
        + LOB_STATIC_W
        + LINK_POWER_W;
    let energy = e_dynamic + time * p_static;
    SystemEvaluation {
        time_s: time,
        energy_j: energy,
        flops: flops_total,
        gops_per_watt: flops_total / energy / 1e9,
        power_w: energy / time,
    }
}

/// One full row of Table II: per-network efficiencies plus the
/// geometric mean.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Row label.
    pub label: String,
    /// Logic node label ("22"/"14").
    pub logic_nm: &'static str,
    /// DRAM node label ("50"/"30").
    pub dram_nm: &'static str,
    /// Cluster silicon area, mm².
    pub area_mm2: f64,
    /// LiM dies required.
    pub lim: u32,
    /// Cluster clock, GHz.
    pub freq_ghz: f64,
    /// Peak performance, Top/s.
    pub peak_tops: f64,
    /// Efficiency per network, Gop/s W (Table II column order).
    pub efficiency: Vec<(String, f64)>,
    /// Geometric mean over the networks.
    pub geomean: f64,
}

/// Computes all nine "This Work" rows from the models.
#[must_use]
pub fn this_work_rows(training: &TrainingModel) -> Vec<Table2Row> {
    let nets = ntx_dnn::networks::all();
    SystemConfig::paper_rows()
        .into_iter()
        .map(|cfg| {
            let efficiency: Vec<(String, f64)> = nets
                .iter()
                .map(|n| {
                    (
                        n.name.to_string(),
                        evaluate_training(&cfg, n, training).gops_per_watt,
                    )
                })
                .collect();
            let geomean = geometric_mean(efficiency.iter().map(|&(_, e)| e));
            Table2Row {
                label: cfg.label.clone(),
                logic_nm: cfg.tech.label(),
                dram_nm: cfg.dram.label(),
                area_mm2: cfg.area_mm2(),
                lim: cfg.lim_dies(),
                freq_ghz: cfg.frequency / 1e9,
                peak_tops: cfg.peak_flops() / 1e12,
                efficiency,
                geomean,
            }
        })
        .collect()
}

/// Geometric mean of a non-empty series.
#[must_use]
pub fn geometric_mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0f64;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::TechNode;
    use ntx_dnn::networks;

    fn row(label: &str, rows: &[Table2Row]) -> Table2Row {
        rows.iter()
            .find(|r| r.label == label && r.logic_nm == "22")
            .or_else(|| rows.iter().find(|r| r.label == label))
            .cloned()
            .expect("row present")
    }

    #[test]
    fn geomean_of_identical_values() {
        assert!((geometric_mean([4.0, 4.0, 4.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn efficiency_improves_with_cluster_count() {
        // The headline structure of Table II: every step down the table
        // (more clusters at lower voltage) improves the geomean.
        let rows = this_work_rows(&TrainingModel::default());
        let geo22: Vec<f64> = rows[..3].iter().map(|r| r.geomean).collect();
        assert!(
            geo22[0] < geo22[1] && geo22[1] < geo22[2],
            "22 nm: {geo22:?}"
        );
        let geo14: Vec<f64> = rows[3..].iter().map(|r| r.geomean).collect();
        for w in geo14.windows(2) {
            assert!(w[0] < w[1], "14 nm column must be monotonic: {geo14:?}");
        }
    }

    #[test]
    fn nm14_beats_nm22_at_equal_cluster_count() {
        let rows = this_work_rows(&TrainingModel::default());
        for n in ["NTX (16x)", "NTX (32x)", "NTX (64x)"] {
            let r22 = rows
                .iter()
                .find(|r| r.label == n && r.logic_nm == "22")
                .unwrap();
            let r14 = rows
                .iter()
                .find(|r| r.label == n && r.logic_nm == "14")
                .unwrap();
            assert!(
                r14.geomean > r22.geomean,
                "{n}: 14 nm {:.1} vs 22 nm {:.1}",
                r14.geomean,
                r22.geomean
            );
        }
    }

    #[test]
    fn alexnet_is_at_the_bottom_of_every_row() {
        // Table II: AlexNet is the least efficient network in every
        // "This Work" row. In our model it is strictly worst in the
        // tape-out-node rows and never leaves the bottom two once the
        // aggregate TCDM is large enough to amortise its FC weights.
        let rows = this_work_rows(&TrainingModel::default());
        for r in &rows {
            let alex = r
                .efficiency
                .iter()
                .find(|(n, _)| n == "AlexNet")
                .map(|&(_, e)| e)
                .unwrap();
            let below = r
                .efficiency
                .iter()
                .filter(|(n, e)| n != "AlexNet" && *e < alex)
                .count();
            assert!(
                below <= 1,
                "{} ({} nm): {below} networks below AlexNet",
                r.label,
                r.logic_nm
            );
            if r.logic_nm == "22" && !r.label.contains("64x") {
                assert_eq!(below, 0, "{}: AlexNet must be strictly worst", r.label);
            }
        }
    }

    #[test]
    fn geomeans_land_near_the_paper_values() {
        // Paper geomeans: 22.5 / 29.3 / 36.7 (22 nm), 35.9 / 47.5 /
        // 60.4 / 70.6 / 76.0 / 78.7 (14 nm). The calibrated model must
        // land within ±40 % — the shape test above is strict, the
        // absolute test deliberately loose (the paper's own constants
        // are not public).
        let paper = [22.5, 29.3, 36.7, 35.9, 47.5, 60.4, 70.6, 76.0, 78.7];
        let rows = this_work_rows(&TrainingModel::default());
        for (r, &p) in rows.iter().zip(&paper) {
            let err = (r.geomean - p).abs() / p;
            assert!(
                err < 0.4,
                "{} {} nm: geomean {:.1} vs paper {p} ({:.0} % off)",
                r.label,
                r.logic_nm,
                r.geomean,
                err * 100.0
            );
        }
    }

    #[test]
    fn evaluation_fields_are_consistent() {
        let cfg = SystemConfig::ntx(16, TechNode::Fdx22);
        let e = evaluate_training(&cfg, &networks::googlenet(), &TrainingModel::default());
        assert!(e.time_s > 0.0 && e.energy_j > 0.0);
        assert!((e.power_w - e.energy_j / e.time_s).abs() < 1e-9);
        assert!((e.gops_per_watt - e.flops / e.energy_j / 1e9).abs() < 1e-9);
    }

    #[test]
    fn row_metadata_matches_table2() {
        let rows = this_work_rows(&TrainingModel::default());
        let r = row("NTX (64x)", &rows);
        assert_eq!(r.logic_nm, "22");
        assert_eq!(r.dram_nm, "50");
        assert_eq!(r.lim, 1);
        assert!((r.peak_tops - 1.466).abs() < 0.05);
    }
}
