//! The roofline model of one NTX cluster (Fig. 5, §III-C).
//!
//! `P(OI) = min(P_peak, BW · OI)`, with a *practical* ceiling derated
//! by the measured TCDM banking-conflict probability: §III-C puts the
//! conflict probability at ≈13 %, limiting practice to ≈17.4 Gflop/s
//! and the memory-bound ceiling to ≈4.35 GB/s.

/// Roofline of one cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak compute performance, flop/s (Table I: 20 Gflop/s).
    pub peak_flops: f64,
    /// Peak memory bandwidth of the AXI port, bytes/s (Table I: 5 GB/s).
    pub peak_bandwidth: f64,
    /// Fraction of issue slots lost to banking conflicts (§III-C: 0.13).
    pub conflict_probability: f64,
}

impl Default for Roofline {
    /// The Table I cluster: 20 Gflop/s, 5 GB/s, 13 % conflicts.
    fn default() -> Self {
        Self {
            peak_flops: 20.0e9,
            peak_bandwidth: 5.0e9,
            conflict_probability: 0.13,
        }
    }
}

impl Roofline {
    /// Builds a roofline with an `axi_words` wide port (1 = 64 bit at
    /// half clock → 5 GB/s; 2 and 4 give the 10/20 GB/s variants of
    /// §III-C).
    #[must_use]
    pub fn with_axi_words(axi_words: u32) -> Self {
        Self {
            peak_bandwidth: f64::from(axi_words) * 5.0e9,
            ..Self::default()
        }
    }

    /// Caps the memory roof at this cluster's fair share of a shared
    /// external-memory subsystem: `shared_bandwidth` (the HMC's
    /// vault/LoB ceiling, see `ntx_mem::HmcConfig::shared_bandwidth`)
    /// split across `clusters`, never above the cluster's own AXI
    /// port. Past the saturation point the ridge moves right and
    /// streaming kernels turn memory bound — the analytical mirror of
    /// the cycle-level `HmcSubsystem` arbitration.
    #[must_use]
    pub fn with_shared_bandwidth(mut self, shared_bandwidth: f64, clusters: usize) -> Self {
        let share = shared_bandwidth / clusters.max(1) as f64;
        self.peak_bandwidth = self.peak_bandwidth.min(share);
        self
    }

    /// Caps the memory roof for a farm spread over a `cubes`-cube HMC
    /// mesh with data-affine placement: each cube's vault/LoB ceiling
    /// (`cube_bandwidth`) is shared only by the clusters attached to
    /// that cube, so the per-cluster share is `cube_bandwidth` over the
    /// largest per-cube attachment count — remote traffic is the
    /// placement fallback, not the sizing assumption. With one cube
    /// this is exactly [`with_shared_bandwidth`](Self::with_shared_bandwidth).
    #[must_use]
    pub fn with_mesh_bandwidth(self, cube_bandwidth: f64, clusters: usize, cubes: usize) -> Self {
        let per_cube = clusters.div_ceil(cubes.max(1));
        self.with_shared_bandwidth(cube_bandwidth, per_cube)
    }

    /// Theoretical performance at operational intensity `oi` (flop/B).
    #[must_use]
    pub fn performance(&self, oi: f64) -> f64 {
        (self.peak_bandwidth * oi).min(self.peak_flops)
    }

    /// Practical performance: both ceilings derated by the conflict
    /// probability (a stalled NTX issues nothing; a stalled DMA beat
    /// moves nothing).
    #[must_use]
    pub fn practical_performance(&self, oi: f64) -> f64 {
        let derate = 1.0 - self.conflict_probability;
        (self.peak_bandwidth * derate * oi).min(self.peak_flops * derate)
    }

    /// Practical compute ceiling (paper: ≈17.4 Gflop/s).
    #[must_use]
    pub fn practical_peak(&self) -> f64 {
        self.peak_flops * (1.0 - self.conflict_probability)
    }

    /// Practical bandwidth ceiling (paper: ≈4.35 GB/s).
    #[must_use]
    pub fn practical_bandwidth(&self) -> f64 {
        self.peak_bandwidth * (1.0 - self.conflict_probability)
    }

    /// Ridge point: the operational intensity where the model turns
    /// compute bound (4 flop/B for the Table I cluster).
    #[must_use]
    pub fn ridge(&self) -> f64 {
        self.peak_flops / self.peak_bandwidth
    }

    /// True if `oi` lands in the compute-bound region.
    #[must_use]
    pub fn is_compute_bound(&self, oi: f64) -> bool {
        oi >= self.ridge()
    }

    /// Analytical execution-time estimate of a kernel that performs
    /// `flops` floating-point operations while streaming `bytes` of
    /// compulsory external-memory traffic: the larger of the practical
    /// compute time and the practical transfer time (both ceilings
    /// conflict-derated, assuming §II-E double buffering overlaps the
    /// two). This is the "estimate now" path of the scheduler's
    /// analytical backend — no simulation involved.
    #[must_use]
    pub fn estimated_seconds(&self, flops: u64, bytes: u64) -> f64 {
        let t_compute = flops as f64 / self.practical_peak();
        let t_memory = bytes as f64 / self.practical_bandwidth();
        t_compute.max(t_memory)
    }

    /// [`Roofline::estimated_seconds`] converted to NTX cycles at clock
    /// `freq_hz`, rounded up (a job never takes zero cycles).
    #[must_use]
    pub fn estimated_cycles(&self, flops: u64, bytes: u64, freq_hz: f64) -> u64 {
        let cycles = (self.estimated_seconds(flops, bytes) * freq_hz).ceil();
        if cycles < 1.0 {
            1
        } else {
            cycles as u64
        }
    }

    /// Extrapolates kernel performance the way §III-C does: the ideal
    /// roofline value at `oi`, scaled by a utilisation factor measured
    /// in a representative cycle simulation (the gate-level 3×3-conv
    /// trace in the paper; [`PerfSnapshot`](ntx_sim::PerfSnapshot)
    /// ratios here).
    #[must_use]
    pub fn extrapolate(&self, oi: f64, measured_utilization: f64) -> f64 {
        self.performance(oi) * measured_utilization.clamp(0.0, 1.0)
    }
}

/// One point of the Fig. 5 plot.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Kernel label as printed in the figure legend.
    pub label: String,
    /// Operational intensity, flop/B.
    pub oi: f64,
    /// Achieved (measured or extrapolated) performance, flop/s.
    pub performance: f64,
}

impl RooflinePoint {
    /// Fraction of the roofline limit achieved at this intensity.
    #[must_use]
    pub fn utilization(&self, roofline: &Roofline) -> f64 {
        let limit = roofline.performance(self.oi);
        if limit == 0.0 {
            0.0
        } else {
            self.performance / limit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_limits() {
        let r = Roofline::default();
        assert_eq!(r.performance(100.0), 20.0e9);
        assert_eq!(r.performance(1.0), 5.0e9);
        assert_eq!(r.ridge(), 4.0);
        assert!(r.is_compute_bound(4.0));
        assert!(!r.is_compute_bound(3.9));
    }

    #[test]
    fn practical_limits_match_section_3c() {
        let r = Roofline::default();
        assert!((r.practical_peak() - 17.4e9).abs() < 0.1e9);
        assert!((r.practical_bandwidth() - 4.35e9).abs() < 0.01e9);
    }

    #[test]
    fn axi_width_sweep() {
        // §III-C: 128/256-bit ports raise the bandwidth to 10/20 GB/s,
        // moving the ridge to 2 and 1 flop/B.
        let r2 = Roofline::with_axi_words(2);
        let r4 = Roofline::with_axi_words(4);
        assert_eq!(r2.peak_bandwidth, 10.0e9);
        assert_eq!(r4.peak_bandwidth, 20.0e9);
        assert_eq!(r2.ridge(), 2.0);
        assert_eq!(r4.ridge(), 1.0);
    }

    #[test]
    fn shared_bandwidth_caps_the_memory_roof_past_saturation() {
        // 32 GB/s shared across 4 clusters leaves 8 GB/s each — above
        // the 5 GB/s port, so nothing changes.
        let r4 = Roofline::default().with_shared_bandwidth(32.0e9, 4);
        assert_eq!(r4.peak_bandwidth, 5.0e9);
        // Across 64 clusters the share is 0.5 GB/s: the ridge moves
        // from 4 to 40 flop/B and streaming estimates stretch 10x.
        let r64 = Roofline::default().with_shared_bandwidth(32.0e9, 64);
        assert_eq!(r64.peak_bandwidth, 0.5e9);
        assert_eq!(r64.ridge(), 40.0);
        let bytes = 1_000_000u64;
        let t4 = r4.estimated_seconds(0, bytes);
        let t64 = r64.estimated_seconds(0, bytes);
        assert!((t64 / t4 - 10.0).abs() < 1e-9);
        // Degenerate cluster counts clamp instead of dividing by zero.
        assert_eq!(
            Roofline::default()
                .with_shared_bandwidth(32.0e9, 0)
                .peak_bandwidth,
            5.0e9
        );
    }

    #[test]
    fn extrapolation_clamps_utilization() {
        let r = Roofline::default();
        assert_eq!(r.extrapolate(100.0, 2.0), 20.0e9);
        assert_eq!(r.extrapolate(100.0, 0.5), 10.0e9);
        assert_eq!(r.extrapolate(100.0, -1.0), 0.0);
    }

    #[test]
    fn estimates_pick_the_binding_ceiling() {
        let r = Roofline::default();
        // Compute bound: 17.4 Gflop at the 17.4 Gflop/s practical peak
        // is one second.
        let flops = 17_400_000_000u64;
        assert!((r.estimated_seconds(flops, 0) - 1.0).abs() < 1e-9);
        // Memory bound: 4.35 GB at 4.35 GB/s is one second.
        let bytes = 4_350_000_000u64;
        assert!((r.estimated_seconds(0, bytes) - 1.0).abs() < 1e-9);
        // Cycles round up and never hit zero.
        assert_eq!(r.estimated_cycles(0, 0, 1.25e9), 1);
        assert_eq!(r.estimated_cycles(flops, bytes, 1.25e9), 1_250_000_000);
    }

    #[test]
    fn point_utilization() {
        let r = Roofline::default();
        let p = RooflinePoint {
            label: "test".into(),
            oi: 8.0,
            performance: 10.0e9,
        };
        assert!((p.utilization(&r) - 0.5).abs() < 1e-12);
    }
}
