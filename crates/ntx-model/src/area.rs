//! Silicon area model — the Fig. 4 floorplan and Table I/II area
//! figures.
//!
//! The tape-out cluster occupies 0.51 mm² in 22FDX at 59 % placement
//! density (816 µm × 624 µm, Table I/Fig. 4). The component breakdown
//! below follows the highlighted regions of the floorplan; Table II's
//! per-configuration areas use the denser 0.30 mm²/cluster figure of
//! the system study (no pads, shared power grid).

use crate::scaling::TechNode;

/// One floorplan component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaComponent {
    /// Component name as highlighted in Fig. 4.
    pub name: &'static str,
    /// Area in mm² (22FDX).
    pub mm2: f64,
}

/// The Fig. 4 cluster floorplan breakdown (22FDX).
#[must_use]
pub fn cluster_breakdown() -> Vec<AreaComponent> {
    vec![
        AreaComponent {
            name: "64 kB TCDM (32 banks)",
            mm2: 0.130,
        },
        AreaComponent {
            name: "8x NTX coprocessors",
            mm2: 0.105,
        },
        AreaComponent {
            name: "logarithmic interconnect",
            mm2: 0.025,
        },
        AreaComponent {
            name: "RISC-V core + peripherals",
            mm2: 0.030,
        },
        AreaComponent {
            name: "2 kB ICACHE",
            mm2: 0.010,
        },
    ]
}

/// Die outline of the tape-out cluster, mm (Fig. 4: 816 µm × 624 µm).
#[must_use]
pub fn die_outline_mm() -> (f64, f64) {
    (0.816, 0.624)
}

/// Total outline area, mm² (Table I: 0.51 mm²).
#[must_use]
pub fn outline_mm2() -> f64 {
    let (w, h) = die_outline_mm();
    w * h
}

/// Placement density: placed standard-cell/macro area over outline
/// (Table I: 59 %).
#[must_use]
pub fn placement_density() -> f64 {
    cluster_breakdown().iter().map(|c| c.mm2).sum::<f64>() / outline_mm2()
}

/// Area of one cluster in a given node for the Table II system study.
#[must_use]
pub fn system_cluster_mm2(tech: TechNode) -> f64 {
    0.30 * tech.area_scale()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outline_matches_table1() {
        assert!((outline_mm2() - 0.509).abs() < 0.01);
    }

    #[test]
    fn density_is_near_59_percent() {
        let d = placement_density();
        assert!((0.54..0.64).contains(&d), "density {d:.2}");
    }

    #[test]
    fn tcdm_is_the_largest_component() {
        let parts = cluster_breakdown();
        let max = parts.iter().max_by(|a, b| a.mm2.total_cmp(&b.mm2)).unwrap();
        assert_eq!(max.name, "64 kB TCDM (32 banks)");
    }

    #[test]
    fn system_cluster_area_matches_table2() {
        assert!((system_cluster_mm2(TechNode::Fdx22) - 0.30).abs() < 1e-9);
        assert!((system_cluster_mm2(TechNode::Nm14) - 0.12).abs() < 0.01);
    }
}
