//! The calibrated energy model (§III-A).
//!
//! The paper derives its power figures from a back-annotated gate-level
//! trace of the 3×3 convolution: 186 mW at 1.25 GHz in typical silicon,
//! i.e. 108 Gflop/s W against the 20 Gflop/s peak and 9.3 pJ/flop.
//! This model reproduces those figures from *event counts* — flops,
//! TCDM accesses, AXI bytes — measured by the cycle simulator, plus a
//! static term. The four constants below are the calibration: they are
//! fitted once against Table I and then reused, scaled by
//! [`TechNode::energy_scale`], for every configuration of Table II.

use crate::scaling::{DramNode, TechNode};
use ntx_sim::PerfSnapshot;

/// Per-event energies and static power of one cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per retired flop (FMAC datapath + NTX control), J.
    pub e_flop: f64,
    /// Energy per 32-bit TCDM access (bank + interconnect), J.
    pub e_tcdm_access: f64,
    /// Energy per byte through the AXI port, J.
    pub e_axi_byte: f64,
    /// Energy per byte of DRAM traffic (system-level evaluations), J.
    pub e_dram_byte: f64,
    /// Static power of one cluster (core, I$, clock tree, leakage), W.
    pub p_static: f64,
}

impl EnergyModel {
    /// The 22FDX tape-out calibration (DRAM at 50 nm).
    #[must_use]
    pub fn tapeout() -> Self {
        Self::for_node(TechNode::Fdx22, DramNode::Nm50)
    }

    /// Calibrated constants for a logic/DRAM node pair.
    #[must_use]
    pub fn for_node(tech: TechNode, dram: DramNode) -> Self {
        let s = tech.energy_scale();
        Self {
            e_flop: 4.3e-12 * s,
            e_tcdm_access: 3.2e-12 * s,
            e_axi_byte: 2.0e-12 * s,
            e_dram_byte: dram.energy_per_byte(),
            p_static: 0.040 * s.sqrt(), // leakage scales slower than CV²f
        }
    }

    /// Dynamic + static energy of one cluster over a measured window
    /// (excluding DRAM), J. `freq_hz` converts cycles to wall time.
    #[must_use]
    pub fn cluster_energy(&self, perf: &PerfSnapshot, freq_hz: f64) -> f64 {
        let t = perf.cycles as f64 / freq_hz;
        perf.flops as f64 * self.e_flop
            + (perf.tcdm_reads + perf.tcdm_writes) as f64 * self.e_tcdm_access
            + perf.dma_bytes as f64 * self.e_axi_byte
            + t * self.p_static
    }

    /// Average cluster power over the window, W.
    #[must_use]
    pub fn cluster_power(&self, perf: &PerfSnapshot, freq_hz: f64) -> f64 {
        let t = perf.cycles as f64 / freq_hz;
        if t == 0.0 {
            return self.p_static;
        }
        self.cluster_energy(perf, freq_hz) / t
    }

    /// Table I's efficiency convention: *peak* performance over
    /// measured power, flop/s/W (the paper quotes 108 Gflop/s W).
    #[must_use]
    pub fn peak_efficiency(&self, perf: &PerfSnapshot, freq_hz: f64, peak_flops: f64) -> f64 {
        let p = self.cluster_power(perf, freq_hz);
        if p == 0.0 {
            0.0
        } else {
            peak_flops / p
        }
    }

    /// Energy per flop at the measured activity (the 9.3 pJ/flop line
    /// of Table I, which uses the peak-rate convention
    /// `power / peak_flops`).
    #[must_use]
    pub fn picojoule_per_flop(&self, perf: &PerfSnapshot, freq_hz: f64, peak_flops: f64) -> f64 {
        self.cluster_power(perf, freq_hz) / peak_flops * 1.0e12
    }

    /// Multi-cluster energy roll-up for a scale-out run (the companion
    /// paper's HMC-vault sharding): dynamic energy is summed over the
    /// per-cluster activity windows, while every cluster burns static
    /// power for the whole makespan — an idle shard still leaks.
    ///
    /// `makespan_cycles` is the wall-clock of the slowest cluster;
    /// each entry of `per_cluster` is that cluster's counter delta.
    #[must_use]
    pub fn scale_out(
        &self,
        per_cluster: &[PerfSnapshot],
        makespan_cycles: u64,
        freq_hz: f64,
    ) -> ScaleOutEnergy {
        let t = makespan_cycles as f64 / freq_hz;
        let mut energy = per_cluster.len() as f64 * t * self.p_static;
        let mut flops = 0u64;
        for p in per_cluster {
            energy += p.flops as f64 * self.e_flop
                + (p.tcdm_reads + p.tcdm_writes) as f64 * self.e_tcdm_access
                + p.dma_bytes as f64 * self.e_axi_byte;
            flops += p.flops;
        }
        let power = if t == 0.0 {
            per_cluster.len() as f64 * self.p_static
        } else {
            energy / t
        };
        ScaleOutEnergy {
            energy_j: energy,
            power_w: power,
            flops_per_watt: if power == 0.0 {
                0.0
            } else {
                flops as f64 / t.max(f64::MIN_POSITIVE) / power
            },
        }
    }
}

/// Aggregate energy figures of a multi-cluster run (see
/// [`EnergyModel::scale_out`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleOutEnergy {
    /// Total energy of all clusters over the makespan, J.
    pub energy_j: f64,
    /// Average system power over the makespan, W.
    pub power_w: f64,
    /// Achieved (not peak-rate) efficiency, flop/s/W.
    pub flops_per_watt: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic activity profile shaped like the 3×3-conv trace:
    /// 87 % utilisation, ~2.1 TCDM accesses per iteration, DMA near
    /// its practical bandwidth.
    fn conv_like_snapshot(cycles: u64) -> PerfSnapshot {
        let iters = (cycles as f64 * 0.87 * 8.0) as u64; // 8 engines
        PerfSnapshot {
            cycles,
            flops: 2 * iters,
            tcdm_reads: 2 * iters + cycles, // operands + DMA words
            tcdm_writes: iters / 9,
            dma_bytes: 4 * (cycles as f64 * 0.85) as u64,
            ..Default::default()
        }
    }

    #[test]
    fn reproduces_table1_power_within_tolerance() {
        let m = EnergyModel::tapeout();
        let perf = conv_like_snapshot(1_000_000);
        let p = m.cluster_power(&perf, 1.25e9);
        assert!(
            (p - 0.186).abs() < 0.03,
            "cluster power {:.1} mW should be near 186 mW",
            p * 1e3
        );
        let eff = m.peak_efficiency(&perf, 1.25e9, 20.0e9);
        assert!(
            (eff / 1e9 - 108.0).abs() < 20.0,
            "efficiency {:.1} Gflop/sW should be near 108",
            eff / 1e9
        );
        let pj = m.picojoule_per_flop(&perf, 1.25e9, 20.0e9);
        assert!((pj - 9.3).abs() < 1.5, "{pj:.2} pJ/flop should be near 9.3");
    }

    #[test]
    fn idle_cluster_burns_static_power() {
        let m = EnergyModel::tapeout();
        let idle = PerfSnapshot {
            cycles: 1000,
            ..Default::default()
        };
        let p = m.cluster_power(&idle, 1.25e9);
        assert!((p - m.p_static).abs() < 1e-9);
    }

    #[test]
    fn newer_node_is_more_efficient() {
        let m22 = EnergyModel::for_node(TechNode::Fdx22, DramNode::Nm50);
        let m14 = EnergyModel::for_node(TechNode::Nm14, DramNode::Nm30);
        let perf = conv_like_snapshot(100_000);
        assert!(m14.cluster_energy(&perf, 1.25e9) < m22.cluster_energy(&perf, 1.25e9));
    }

    #[test]
    fn zero_window_returns_static() {
        let m = EnergyModel::tapeout();
        let empty = PerfSnapshot::default();
        assert_eq!(m.cluster_power(&empty, 1.25e9), m.p_static);
    }
}
