//! Comparison platforms and the Fig. 6 / Fig. 7 / Green-Wave studies.
//!
//! The GPU and accelerator rows are the literature inputs of Table II
//! (the paper does not re-measure them either); the NTX bars are
//! *derived* from this crate's models. The headline ratios the figures
//! annotate — ×2.5 / ×3.0 energy efficiency (Fig. 6) and ×6.5 / ×10.4
//! area efficiency (Fig. 7) against GPUs of comparable technology
//! nodes — therefore emerge from the model, not from the table.

use crate::scaling::TechNode;
use crate::system::SystemConfig;
use crate::table2::{
    evaluate_training, geometric_mean, CLUSTER_UTILIZATION, LINK_POWER_W, LOB_STATIC_W,
    TCDM_ACCESS_PER_FLOP,
};
use ntx_dnn::TrainingModel;
use ntx_kernels::KernelCost;

/// One comparison platform (a Table II row outside "This Work").
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformRow {
    /// Platform name.
    pub name: &'static str,
    /// Logic node, nm.
    pub logic_nm: u32,
    /// DRAM node, nm (if reported).
    pub dram_nm: Option<u32>,
    /// Die area, mm² (if reported).
    pub area_mm2: Option<f64>,
    /// Clock, GHz.
    pub freq_ghz: f64,
    /// Peak throughput, Top/s.
    pub peak_tops: f64,
    /// Arithmetic class footnote of Table II: `(a)` fp32, `(b)` 16-bit
    /// fixed point, `(c)` mixed.
    pub arithmetic: &'static str,
    /// Per-network training efficiency, Gop/s W (Table II column
    /// order: AlexNet, GoogLeNet, Inception-v3, ResNet-34/50/152).
    pub efficiency: [Option<f64>; 6],
    /// Geometric-mean efficiency, Gop/s W.
    pub geomean: f64,
}

impl PlatformRow {
    /// Area efficiency in Gop/s per mm² (the Fig. 7 metric).
    #[must_use]
    pub fn gops_per_mm2(&self) -> Option<f64> {
        self.area_mm2.map(|a| self.peak_tops * 1e3 / a)
    }
}

/// The GPU rows of Table II.
#[must_use]
pub fn gpus() -> Vec<PlatformRow> {
    vec![
        PlatformRow {
            name: "Tesla K80",
            logic_nm: 28,
            dram_nm: Some(40),
            area_mm2: Some(561.0),
            freq_ghz: 0.59,
            peak_tops: 8.74,
            arithmetic: "(a)",
            efficiency: [None, Some(4.5), Some(3.5), None, Some(3.7), Some(8.8)],
            geomean: 4.7,
        },
        PlatformRow {
            name: "Tesla M40",
            logic_nm: 28,
            dram_nm: Some(30),
            area_mm2: Some(601.0),
            freq_ghz: 1.11,
            peak_tops: 7.00,
            arithmetic: "(a)",
            efficiency: [None, Some(11.3), None, None, None, None],
            geomean: 11.3,
        },
        PlatformRow {
            name: "Titan X",
            logic_nm: 28,
            dram_nm: Some(30),
            area_mm2: Some(601.0),
            freq_ghz: 1.08,
            peak_tops: 7.00,
            arithmetic: "(a)",
            efficiency: [
                Some(12.8),
                Some(9.9),
                None,
                Some(17.6),
                Some(8.5),
                Some(12.2),
            ],
            geomean: 11.8,
        },
        PlatformRow {
            name: "Tesla P100",
            logic_nm: 16,
            dram_nm: Some(21),
            area_mm2: Some(610.0),
            freq_ghz: 1.3,
            peak_tops: 10.6,
            arithmetic: "(a)",
            efficiency: [None, Some(19.8), Some(19.5), None, Some(18.6), Some(24.18)],
            geomean: 20.4,
        },
        PlatformRow {
            name: "GTX 1080 Ti",
            logic_nm: 16,
            dram_nm: Some(20),
            area_mm2: Some(471.0),
            freq_ghz: 1.58,
            peak_tops: 11.3,
            arithmetic: "(a)",
            efficiency: [
                Some(20.1),
                Some(16.6),
                None,
                Some(27.6),
                Some(13.4),
                Some(19.56),
            ],
            geomean: 18.9,
        },
    ]
}

/// The custom-accelerator rows of Table II.
#[must_use]
pub fn accelerators() -> Vec<PlatformRow> {
    vec![
        PlatformRow {
            name: "NS (16x)",
            logic_nm: 28,
            dram_nm: Some(50),
            area_mm2: Some(9.3),
            freq_ghz: 1.0,
            peak_tops: 0.256,
            arithmetic: "(a)",
            efficiency: [
                Some(10.2),
                Some(15.1),
                Some(14.6),
                Some(13.1),
                Some(12.9),
                Some(14.2),
            ],
            geomean: 13.0,
        },
        PlatformRow {
            name: "DaDianNao",
            logic_nm: 28,
            dram_nm: Some(28),
            area_mm2: Some(67.7),
            freq_ghz: 0.6,
            peak_tops: 2.09,
            arithmetic: "(b)",
            efficiency: [None; 6],
            geomean: 65.8,
        },
        PlatformRow {
            name: "ScaleDeep",
            logic_nm: 14,
            dram_nm: None,
            area_mm2: None,
            freq_ghz: 0.6,
            peak_tops: 680.0,
            arithmetic: "(c)",
            efficiency: [Some(87.7), Some(83.0), None, Some(139.2), None, None],
            geomean: 100.8,
        },
    ]
}

/// One bar of Fig. 6 / Fig. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Platform label.
    pub name: String,
    /// Bar value (Gop/s W for Fig. 6, Gop/s mm² for Fig. 7).
    pub value: f64,
    /// Legend class ("GPU", "NS", "DDN", "NTX 22nm", "NTX 14nm").
    pub class: &'static str,
}

/// Fig. 6 output: the bars plus the two annotated ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyFigure {
    /// Bars in the plot order of the paper.
    pub bars: Vec<Bar>,
    /// NTX 32 (22 nm) over the best 28 nm GPU (paper: ×2.5).
    pub ratio_22nm: f64,
    /// NTX 64 (14 nm) over the best 16 nm GPU (paper: ×3.0).
    pub ratio_14nm: f64,
}

/// Computes Fig. 6: training energy efficiency of GPUs, NS, and the
/// largest LiM-free NTX configurations, from the Table II model.
#[must_use]
pub fn figure6(training: &TrainingModel) -> EfficiencyFigure {
    let nets = ntx_dnn::networks::all();
    let ntx_geo = |clusters: u32, tech: TechNode| {
        let cfg = SystemConfig::ntx(clusters, tech);
        geometric_mean(
            nets.iter()
                .map(|n| evaluate_training(&cfg, n, training).gops_per_watt),
        )
    };
    // Largest configurations without additional LiMs: 32x in 22 nm,
    // 64x in 14 nm (Table II LiM column).
    let ntx32_22 = ntx_geo(32, TechNode::Fdx22);
    let ntx64_14 = ntx_geo(64, TechNode::Nm14);
    let mut bars: Vec<Bar> = gpus()
        .iter()
        .map(|g| Bar {
            name: g.name.to_string(),
            value: g.geomean,
            class: "GPU",
        })
        .collect();
    bars.push(Bar {
        name: "NS".into(),
        value: accelerators()[0].geomean,
        class: "NS",
    });
    bars.push(Bar {
        name: "NTX 32".into(),
        value: ntx32_22,
        class: "NTX 22nm",
    });
    bars.push(Bar {
        name: "NTX 64".into(),
        value: ntx64_14,
        class: "NTX 14nm",
    });
    let best_28nm_gpu = gpus()
        .iter()
        .filter(|g| g.logic_nm == 28)
        .map(|g| g.geomean)
        .fold(0.0, f64::max);
    let best_16nm_gpu = gpus()
        .iter()
        .filter(|g| g.logic_nm == 16)
        .map(|g| g.geomean)
        .fold(0.0, f64::max);
    EfficiencyFigure {
        bars,
        ratio_22nm: ntx32_22 / best_28nm_gpu,
        ratio_14nm: ntx64_14 / best_16nm_gpu,
    }
}

/// Fig. 7 output: area-efficiency bars plus the annotated ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaFigure {
    /// Bars in plot order.
    pub bars: Vec<Bar>,
    /// NTX 32 (22 nm) over the best 28 nm GPU (paper: ×6.5).
    pub ratio_22nm: f64,
    /// NTX 64 (14 nm) over the best 16 nm GPU (paper: ×10.4).
    pub ratio_14nm: f64,
}

/// Computes Fig. 7: Gop/s of peak compute per mm² of silicon.
#[must_use]
pub fn figure7() -> AreaFigure {
    let ntx32 = SystemConfig::ntx(32, TechNode::Fdx22);
    let ntx64 = SystemConfig::ntx(64, TechNode::Nm14);
    let ntx_area_eff = |cfg: &SystemConfig| cfg.peak_flops() / 1e9 / cfg.area_mm2();
    let mut bars: Vec<Bar> = gpus()
        .iter()
        .map(|g| Bar {
            name: g.name.to_string(),
            value: g.gops_per_mm2().expect("GPU areas are known"),
            class: "GPU",
        })
        .collect();
    bars.push(Bar {
        name: "NS".into(),
        value: accelerators()[0].gops_per_mm2().expect("NS area known"),
        class: "NS",
    });
    bars.push(Bar {
        name: "DDN".into(),
        value: accelerators()[1].gops_per_mm2().expect("DDN area known"),
        class: "DDN",
    });
    let v32 = ntx_area_eff(&ntx32);
    let v64 = ntx_area_eff(&ntx64);
    bars.push(Bar {
        name: "NTX 32".into(),
        value: v32,
        class: "NTX 22nm",
    });
    bars.push(Bar {
        name: "NTX 64".into(),
        value: v64,
        class: "NTX 14nm",
    });
    let best_28nm = gpus()
        .iter()
        .filter(|g| g.logic_nm == 28)
        .filter_map(PlatformRow::gops_per_mm2)
        .fold(0.0, f64::max);
    let best_16nm = gpus()
        .iter()
        .filter(|g| g.logic_nm == 16)
        .filter_map(PlatformRow::gops_per_mm2)
        .fold(0.0, f64::max);
    AreaFigure {
        bars,
        ratio_22nm: v32 / best_28nm,
        ratio_14nm: v64 / best_16nm,
    }
}

/// One row of the §IV Green-Wave comparison (8th-order seismic
/// Laplacian).
#[derive(Debug, Clone, PartialEq)]
pub struct StencilPlatform {
    /// Platform label.
    pub name: String,
    /// Sustained performance, Gflop/s.
    pub gflops: f64,
    /// Energy efficiency, Gflop/s W.
    pub gflops_per_watt: f64,
}

/// Evaluates an aggregate stencil workload on an NTX configuration
/// (no layer structure — one roofline-limited phase).
#[must_use]
pub fn evaluate_stencil(cfg: &SystemConfig, cost: &KernelCost) -> StencilPlatform {
    let m = crate::power::EnergyModel::for_node(cfg.tech, cfg.dram);
    let v_scale = (cfg.voltage() / crate::system::reference_voltage(cfg.tech)).powi(2);
    let peak = cfg.peak_flops() * CLUSTER_UTILIZATION;
    let flops = cost.flops as f64;
    let bytes = cost.min_ext_bytes as f64;
    let time = (flops / peak).max(bytes / cfg.memory_bandwidth);
    let energy = flops * m.e_flop * v_scale
        + flops * TCDM_ACCESS_PER_FLOP * m.e_tcdm_access * v_scale
        + bytes * (m.e_dram_byte + m.e_axi_byte)
        + time * (f64::from(cfg.clusters) * m.p_static + LOB_STATIC_W + LINK_POWER_W);
    StencilPlatform {
        name: cfg.label.clone(),
        gflops: flops / time / 1e9,
        gflops_per_watt: flops / energy / 1e9,
    }
}

/// The §IV Green-Wave comparison: literature rows plus the NTX 16
/// estimate from the model (paper: 130 Gflop/s at 11 Gflop/s W).
#[must_use]
pub fn greenwave_comparison(cost: &KernelCost) -> Vec<StencilPlatform> {
    let ntx16 = evaluate_stencil(&SystemConfig::ntx(16, TechNode::Fdx22), cost);
    vec![
        StencilPlatform {
            name: "Green Wave".into(),
            gflops: 82.5,
            gflops_per_watt: 1.25,
        },
        StencilPlatform {
            name: "GPU (Fermi)".into(),
            gflops: 145.0,
            gflops_per_watt: 0.33,
        },
        StencilPlatform {
            name: "NTX 16 (model)".into(),
            ..ntx16
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntx_kernels::stencil::HighOrderLaplaceKernel;

    #[test]
    fn figure7_ratios_match_the_paper() {
        // These ratios are pure Table II arithmetic and must reproduce
        // the annotated ×6.5 and ×10.4 closely.
        let f = figure7();
        assert!(
            (f.ratio_22nm - 6.5).abs() < 0.5,
            "22 nm area ratio {:.1} (paper 6.5)",
            f.ratio_22nm
        );
        assert!(
            (f.ratio_14nm - 10.4).abs() < 0.8,
            "14 nm area ratio {:.1} (paper 10.4)",
            f.ratio_14nm
        );
    }

    #[test]
    fn figure6_ratios_are_in_the_paper_regime() {
        let f = figure6(&TrainingModel::default());
        assert!(
            f.ratio_22nm > 1.5 && f.ratio_22nm < 4.0,
            "22 nm efficiency ratio {:.2} (paper 2.5)",
            f.ratio_22nm
        );
        assert!(
            f.ratio_14nm > 2.0 && f.ratio_14nm < 4.5,
            "14 nm efficiency ratio {:.2} (paper 3.0)",
            f.ratio_14nm
        );
        // NTX must beat every GPU bar.
        let best_gpu = f
            .bars
            .iter()
            .filter(|b| b.class == "GPU")
            .map(|b| b.value)
            .fold(0.0, f64::max);
        for b in f.bars.iter().filter(|b| b.class.starts_with("NTX")) {
            assert!(b.value > best_gpu, "{} must beat the best GPU", b.name);
        }
    }

    #[test]
    fn table_rows_are_complete() {
        assert_eq!(gpus().len(), 5);
        assert_eq!(accelerators().len(), 3);
        for g in gpus() {
            assert!(g.geomean > 0.0);
            assert!(g.gops_per_mm2().is_some());
        }
    }

    #[test]
    fn greenwave_ordering_matches_section_4() {
        let cost = HighOrderLaplaceKernel {
            depth: 512,
            height: 512,
            width: 512,
        }
        .cost();
        let rows = greenwave_comparison(&cost);
        let gw = &rows[0];
        let gpu = &rows[1];
        let ntx = &rows[2];
        // GPU is fastest in absolute terms but worst in efficiency;
        // NTX 16 beats both on efficiency by ~an order of magnitude.
        assert!(gpu.gflops > gw.gflops);
        assert!(ntx.gflops_per_watt > 5.0 * gw.gflops_per_watt);
        assert!(ntx.gflops_per_watt > 20.0 * gpu.gflops_per_watt);
        // And sustains performance in the Green-Wave regime
        // (paper estimate: 130 Gflop/s).
        assert!(
            ntx.gflops > 80.0 && ntx.gflops < 300.0,
            "NTX 16 stencil perf {:.0} Gflop/s",
            ntx.gflops
        );
    }

    #[test]
    fn stencil_eval_is_memory_bound_for_low_intensity() {
        let cfg = SystemConfig::ntx(16, TechNode::Fdx22);
        let cost = KernelCost {
            flops: 1_000_000_000,
            min_ext_bytes: 1_000_000_000, // OI = 1 flop/B
        };
        let r = evaluate_stencil(&cfg, &cost);
        // At OI 1 the 32 GB/s LoB caps performance at 32 Gflop/s.
        assert!((r.gflops - 32.0).abs() < 1.0, "{:.1} Gflop/s", r.gflops);
    }
}
