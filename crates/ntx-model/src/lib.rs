//! Analytical evaluation models — everything §III of the paper derives
//! from the silicon implementation.
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`roofline`] | Fig. 5 roofline of one cluster, incl. the measured banking-conflict derate and the §III-C AXI-width sweep |
//! | [`power`] | The energy model calibrated against the Table I post-layout figures (186 mW, 108 Gflop/s W, 9.3 pJ/flop) |
//! | [`scaling`] | 22FDX → 14 nm constant-field scaling and DRAM-node energies |
//! | [`area`] | The Fig. 4 floorplan breakdown and per-configuration silicon area |
//! | [`system`] | NTX 16×…512× system configurations (Table II rows) and the HMC power-envelope frequency solver |
//! | [`table2`] | The DNN-training efficiency model producing Table II |
//! | [`compare`] | GPU/NS/DaDianNao/ScaleDeep/Green-Wave comparison data and the Fig. 6/7 ratio computations |
//!
//! The absolute calibration constants are fitted once against the
//! paper's Table I tape-out figures and documented in [`power`] /
//! [`scaling`]; every reproduced number is then derived, not copied —
//! the comparison tables in [`compare`] carry the literature values the
//! paper itself compares against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod compare;
pub mod power;
pub mod roofline;
pub mod scaling;
pub mod system;
pub mod table2;
