//! NTX system configurations — the "This Work" rows of Table II.
//!
//! A configuration is `n` processing clusters on the LoB (and LiM dies
//! once the LoB is full) of one HMC. The cluster clock follows the
//! thermal envelope of the cube:
//!
//! * down to the minimum operating voltage, frequency and voltage scale
//!   together (`P ∝ f²` with `V ∝ √f`), so doubling the clusters costs
//!   a factor `√2` in frequency;
//! * below the minimum voltage only the frequency can drop (`P ∝ f`),
//!   so beyond 64 clusters the aggregate peak saturates at 1.92 Tflop/s
//!   in 14 nm — exactly the plateau of Table II.
//!
//! With the border calibrated at 64 clusters (1.43 GHz in 22 nm,
//! 1.88 GHz in 14 nm) this little solver reproduces the entire
//! frequency column of Table II to within a few percent.

use crate::scaling::{DramNode, TechNode};

/// Flops per cluster per cycle (8 NTX × 2-flop FMAC).
pub const FLOPS_PER_CLUSTER_CYCLE: f64 = 16.0;

/// LoB area available for clusters before LiM dies are needed, mm².
const LOB_FREE_MM2: f64 = 12.0;
/// Cluster area a LiM die adds, mm².
const LIM_DIE_MM2: f64 = 17.0;

/// Envelope border: the cluster count at which the voltage reaches its
/// minimum.
const VMIN_CLUSTERS: f64 = 64.0;

fn vmin_frequency(tech: TechNode) -> f64 {
    match tech {
        TechNode::Fdx22 => 1.43e9,
        TechNode::Nm14 => 1.88e9,
    }
}

/// Maximum cluster clock permitted by the HMC power envelope for
/// `clusters` clusters in `tech`.
#[must_use]
pub fn envelope_frequency(clusters: u32, tech: TechNode) -> f64 {
    let n = f64::from(clusters.max(1));
    let f_vmin = vmin_frequency(tech);
    let f = if n <= VMIN_CLUSTERS {
        f_vmin * (VMIN_CLUSTERS / n).sqrt()
    } else {
        f_vmin * VMIN_CLUSTERS / n
    };
    f.min(tech.max_frequency())
}

/// Supply voltage at cluster clock `f`. The square-root V-f
/// characteristic reaches into the near-threshold regime at the large
/// cluster counts (FD-SOI body biasing / the near-threshold operation
/// the RI5CY platform targets); 22FDX typical silicon runs 0.80 V at
/// 1.25 GHz, the Table I operating point.
#[must_use]
pub fn supply_voltage(tech: TechNode, f: f64) -> f64 {
    let f_ghz = f / 1e9;
    match tech {
        TechNode::Fdx22 => (0.44 + 0.32 * f_ghz.sqrt()).max(0.50),
        TechNode::Nm14 => (0.30 + 0.25 * f_ghz.sqrt()).max(0.38),
    }
}

/// Reference voltage of the energy-model calibration point per node.
#[must_use]
pub fn reference_voltage(tech: TechNode) -> f64 {
    match tech {
        // Table I typical corner: 0.8 V.
        TechNode::Fdx22 => 0.80,
        // The 14 nm constants are calibrated at that node's 64-cluster
        // operating point.
        TechNode::Nm14 => supply_voltage(TechNode::Nm14, vmin_frequency(TechNode::Nm14)),
    }
}

/// One NTX system configuration (a Table II "This Work" row).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Row label, e.g. `"NTX (64x)"`.
    pub label: String,
    /// Number of processing clusters.
    pub clusters: u32,
    /// Logic node.
    pub tech: TechNode,
    /// DRAM node of the stack.
    pub dram: DramNode,
    /// Cluster clock, Hz.
    pub frequency: f64,
    /// Aggregate DRAM bandwidth available through the LoB interconnect,
    /// bytes/s (256 bit @ 1 GHz = 32 GB/s, Fig. 1).
    pub memory_bandwidth: f64,
}

impl SystemConfig {
    /// Builds the configuration with the envelope-derived frequency and
    /// the node-matched DRAM generation of Table II.
    #[must_use]
    pub fn ntx(clusters: u32, tech: TechNode) -> Self {
        let dram = match tech {
            TechNode::Fdx22 => DramNode::Nm50,
            TechNode::Nm14 => DramNode::Nm30,
        };
        Self {
            label: format!("NTX ({clusters}x)"),
            clusters,
            tech,
            dram,
            frequency: envelope_frequency(clusters, tech),
            memory_bandwidth: 32.0e9,
        }
    }

    /// The nine "This Work" rows of Table II, in table order.
    #[must_use]
    pub fn paper_rows() -> Vec<SystemConfig> {
        let mut rows = Vec::new();
        for &n in &[16u32, 32, 64] {
            rows.push(SystemConfig::ntx(n, TechNode::Fdx22));
        }
        for &n in &[16u32, 32, 64, 128, 256, 512] {
            rows.push(SystemConfig::ntx(n, TechNode::Nm14));
        }
        rows
    }

    /// Peak compute performance, flop/s.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        f64::from(self.clusters) * FLOPS_PER_CLUSTER_CYCLE * self.frequency
    }

    /// Silicon area of the clusters, mm² (Table II: 4.8 mm² for 16
    /// clusters in 22 nm).
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        let per_cluster_22 = 4.8 / 16.0;
        f64::from(self.clusters) * per_cluster_22 * self.tech.area_scale()
    }

    /// LiM dies needed to host the clusters that do not fit the LoB.
    #[must_use]
    pub fn lim_dies(&self) -> u32 {
        let area = self.area_mm2();
        if area <= LOB_FREE_MM2 {
            0
        } else {
            ((area - LOB_FREE_MM2) / LIM_DIE_MM2).ceil() as u32
        }
    }

    /// Operating voltage of this configuration.
    #[must_use]
    pub fn voltage(&self) -> f64 {
        supply_voltage(self.tech, self.frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Freq. and Peak columns of Table II, within 7 %.
    #[test]
    fn frequency_column_of_table2() {
        let expect = [
            (16, TechNode::Fdx22, 2.50),
            (32, TechNode::Fdx22, 1.90),
            (64, TechNode::Fdx22, 1.43),
            (16, TechNode::Nm14, 3.50),
            (32, TechNode::Nm14, 2.66),
            (64, TechNode::Nm14, 1.88),
            (128, TechNode::Nm14, 0.94),
            (256, TechNode::Nm14, 0.47),
            (512, TechNode::Nm14, 0.23),
        ];
        for (n, tech, f_paper) in expect {
            let f = envelope_frequency(n, tech) / 1e9;
            let err = (f - f_paper).abs() / f_paper;
            assert!(
                err < 0.07,
                "{n} clusters {tech:?}: model {f:.2} GHz vs paper {f_paper:.2} GHz"
            );
        }
    }

    #[test]
    fn peak_saturates_at_1_92_tops_in_14nm() {
        for &n in &[64u32, 128, 256] {
            let cfg = SystemConfig::ntx(n, TechNode::Nm14);
            let tops = cfg.peak_flops() / 1e12;
            assert!(
                (tops - 1.92).abs() < 0.01,
                "{n} clusters: {tops:.3} Top/s should stay at the plateau"
            );
        }
    }

    #[test]
    fn area_column_of_table2() {
        let expect = [
            (16, TechNode::Fdx22, 4.8),
            (64, TechNode::Fdx22, 19.3),
            (16, TechNode::Nm14, 1.9),
            (512, TechNode::Nm14, 61.6),
        ];
        for (n, tech, a_paper) in expect {
            let a = SystemConfig::ntx(n, tech).area_mm2();
            let err = (a - a_paper).abs() / a_paper;
            assert!(err < 0.05, "{n} {tech:?}: {a:.1} mm² vs paper {a_paper}");
        }
    }

    #[test]
    fn lim_column_of_table2() {
        let expect = [
            (16, TechNode::Fdx22, 0),
            (32, TechNode::Fdx22, 0),
            (64, TechNode::Fdx22, 1),
            (64, TechNode::Nm14, 0),
            (128, TechNode::Nm14, 1),
            (256, TechNode::Nm14, 2),
            (512, TechNode::Nm14, 3),
        ];
        for (n, tech, lims) in expect {
            assert_eq!(
                SystemConfig::ntx(n, tech).lim_dies(),
                lims,
                "{n} clusters {tech:?}"
            );
        }
    }

    #[test]
    fn voltage_decreases_with_cluster_count() {
        let v16 = SystemConfig::ntx(16, TechNode::Nm14).voltage();
        let v512 = SystemConfig::ntx(512, TechNode::Nm14).voltage();
        assert!(v16 > v512);
        assert!(v512 >= 0.38); // near-threshold floor
    }

    #[test]
    fn paper_rows_are_nine() {
        let rows = SystemConfig::paper_rows();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].label, "NTX (16x)");
        assert_eq!(rows[8].clusters, 512);
    }

    #[test]
    fn tapeout_operating_point_voltage() {
        // 1.25 GHz typical in 22FDX runs at 0.80 V (Table I).
        let v = supply_voltage(TechNode::Fdx22, 1.25e9);
        assert!((v - 0.80).abs() < 0.01, "{v:.3} V");
    }
}
