//! 2-D convolutions lowered onto NTX (§III-B2).
//!
//! The k×k convolution is the paper's flagship workload: it is the
//! kernel behind the DNN training evaluation, the gate-level power
//! trace of Table I, and the calibration point of the Fig. 5 roofline.
//! On NTX it maps onto a four-deep MAC loop nest — kernel column,
//! kernel row, output column, output row — with the three AGUs walking
//! the input window, the weight vector and the output plane (Fig. 3a).

use crate::KernelCost;
use ntx_isa::{AccuInit, AguConfig, Command, ConfigError, LoopNest, NtxConfig, OperandSelect};
use ntx_sim::{Cluster, PerfSnapshot};

/// A valid (no-padding) k×k convolution of a `height × width` image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dKernel {
    /// Input image height.
    pub height: u32,
    /// Input image width.
    pub width: u32,
    /// Kernel side length (3, 5, 7 in the paper).
    pub k: u32,
    /// Number of filters applied to the same input (DNN-style output
    /// channels). Affects cost accounting and `run_filters`.
    pub filters: u32,
}

impl Conv2dKernel {
    /// Convolution with a single filter.
    #[must_use]
    pub fn single(height: u32, width: u32, k: u32) -> Self {
        Self {
            height,
            width,
            k,
            filters: 1,
        }
    }

    /// Output height.
    #[must_use]
    pub fn out_height(&self) -> u32 {
        self.height - self.k + 1
    }

    /// Output width.
    #[must_use]
    pub fn out_width(&self) -> u32 {
        self.width - self.k + 1
    }

    /// Analytic cost: the input plane is read once and reused by all
    /// filters (the §III-B2 reuse factor of k² per pixel, times the
    /// filter count), each filter writes its output plane.
    #[must_use]
    pub fn cost(&self) -> KernelCost {
        let out = u64::from(self.out_height()) * u64::from(self.out_width());
        let f = u64::from(self.filters);
        let k2 = u64::from(self.k) * u64::from(self.k);
        KernelCost {
            flops: 2 * k2 * out * f,
            min_ext_bytes: 4
                * (u64::from(self.height) * u64::from(self.width) // image in
                    + out * f                                      // outputs
                    + k2 * f), // weights
        }
    }

    /// Lowers one filter onto up to `engines` co-processors, splitting
    /// output rows. `accumulate` selects read-modify-write accumulation
    /// (used for summing input channels into the same output plane).
    /// All engines share the weight vector at `w_addr`.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`]; also fails for images smaller than
    /// the kernel (zero loop bound).
    pub fn lower(
        &self,
        in_addr: u32,
        w_addr: u32,
        out_addr: u32,
        engines: u32,
        accumulate: bool,
    ) -> Result<Vec<NtxConfig>, ConfigError> {
        self.lower_replicated(in_addr, w_addr, 0, out_addr, engines, accumulate)
    }

    /// Like [`Self::lower`], but engine `e` reads its weights at
    /// `w_addr + e * w_stride` (bytes). Replicating the tiny k² weight
    /// vector per engine removes the structural bank conflict of eight
    /// engines fetching the same weight word every cycle — the standard
    /// deployment trick for this architecture.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`].
    pub fn lower_replicated(
        &self,
        in_addr: u32,
        w_addr: u32,
        w_stride: u32,
        out_addr: u32,
        engines: u32,
        accumulate: bool,
    ) -> Result<Vec<NtxConfig>, ConfigError> {
        let k = self.k as i32;
        let w = self.width as i32;
        let ow = self.out_width() as i32;
        let oh = self.out_height();
        let k2 = k * k;
        let engines = engines.min(oh).max(1);
        let rows_base = oh / engines;
        let rows_rem = oh % engines;
        let mut configs = Vec::new();
        let mut row0 = 0u32;
        for e in 0..engines {
            let rows = rows_base + u32::from(e < rows_rem);
            if rows == 0 {
                continue;
            }
            let cfg = NtxConfig::builder()
                .command(Command::Mac {
                    operand: OperandSelect::Memory,
                })
                .accu_init(if accumulate {
                    AccuInit::Memory
                } else {
                    AccuInit::Zero
                })
                // kx, ky, x, y — init and store around the k×k window.
                .loops(
                    LoopNest::nested(&[self.k, self.k, self.out_width(), rows]).with_levels(2, 2),
                )
                // Input window walk (byte strides).
                .agu(
                    0,
                    AguConfig::new(
                        in_addr + 4 * row0 * self.width,
                        [
                            4,                                // kx: next column
                            4 * (w - (k - 1)),                // ky: next window row
                            4 * (1 - (k - 1) * w - (k - 1)),  // x: window slides right
                            4 * ((2 - k) * w - (ow + k - 2)), // y: next output row
                            0,
                        ],
                    ),
                )
                // Weights: walk k² then rewind (per-engine copy).
                .agu(
                    1,
                    AguConfig::new(
                        w_addr + e * w_stride,
                        [4, 4, -4 * (k2 - 1), -4 * (k2 - 1), 0],
                    ),
                )
                // Output: one store per pixel, rows contiguous.
                .agu(
                    2,
                    AguConfig::new(out_addr + 4 * row0 * self.out_width(), [0, 0, 4, 4, 0]),
                )
                .build()?;
            configs.push(cfg);
            row0 += rows;
        }
        Ok(configs)
    }

    /// Runs one filter in the TCDM; returns the output plane and the
    /// perf delta.
    ///
    /// # Panics
    ///
    /// Panics on slice-size mismatch or TCDM overflow.
    pub fn run(
        &self,
        cluster: &mut Cluster,
        image: &[f32],
        weights: &[f32],
    ) -> (Vec<f32>, PerfSnapshot) {
        assert_eq!(
            image.len() as u32,
            self.height * self.width,
            "image size mismatch"
        );
        assert_eq!(
            weights.len() as u32,
            self.k * self.k,
            "kernel size mismatch"
        );
        let in_addr = 0u32;
        let w_addr = 4 * self.height * self.width;
        let out_addr = w_addr + 4 * self.k * self.k * cluster.num_engines() as u32;
        let out_len = self.out_height() * self.out_width();
        assert!(
            out_addr + 4 * out_len <= cluster.config().tcdm.bytes,
            "data exceeds TCDM"
        );
        cluster.write_tcdm_f32(in_addr, image);
        let w_stride = 4 * self.k * self.k;
        for e in 0..cluster.num_engines() as u32 {
            cluster.write_tcdm_f32(w_addr + e * w_stride, weights);
        }
        let before = cluster.perf();
        let configs = self
            .lower_replicated(
                in_addr,
                w_addr,
                w_stride,
                out_addr,
                cluster.num_engines() as u32,
                false,
            )
            .expect("valid lowering");
        for (i, cfg) in configs.iter().enumerate() {
            cluster.offload_with_writes(i, cfg, 12);
        }
        cluster.run_to_completion();
        let perf = cluster.perf().since(&before);
        (cluster.read_tcdm_f32(out_addr, out_len as usize), perf)
    }

    /// Runs `filters` filters over the same input (weights laid out
    /// filter-major), writing one output plane per filter — the
    /// workload shape of the Table I power analysis. Returns all output
    /// planes concatenated and the perf delta.
    ///
    /// # Panics
    ///
    /// Panics on slice-size mismatch or TCDM overflow.
    pub fn run_filters(
        &self,
        cluster: &mut Cluster,
        image: &[f32],
        weights: &[f32],
    ) -> (Vec<f32>, PerfSnapshot) {
        let k2 = self.k * self.k;
        assert_eq!(
            weights.len() as u32,
            k2 * self.filters,
            "weights size mismatch"
        );
        assert_eq!(
            image.len() as u32,
            self.height * self.width,
            "image size mismatch"
        );
        let engines = cluster.num_engines() as u32;
        let in_addr = 0u32;
        let w_addr = 4 * self.height * self.width;
        let w_block = 4 * k2 * self.filters;
        let out_addr = w_addr + w_block * engines;
        let out_len = self.out_height() * self.out_width();
        assert!(
            out_addr + 4 * out_len * self.filters <= cluster.config().tcdm.bytes,
            "data exceeds TCDM"
        );
        cluster.write_tcdm_f32(in_addr, image);
        for e in 0..engines {
            cluster.write_tcdm_f32(w_addr + e * w_block, weights);
        }
        let before = cluster.perf();
        for f in 0..self.filters {
            let configs = self
                .lower_replicated(
                    in_addr,
                    w_addr + 4 * k2 * f,
                    w_block,
                    out_addr + 4 * out_len * f,
                    engines,
                    false,
                )
                .expect("valid lowering");
            for (i, cfg) in configs.iter().enumerate() {
                cluster.offload_with_writes(i, cfg, 6);
            }
            cluster.run_to_completion();
        }
        let perf = cluster.perf().since(&before);
        (
            cluster.read_tcdm_f32(out_addr, (out_len * self.filters) as usize),
            perf,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ntx_sim::ClusterConfig;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    fn pattern(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect()
    }

    fn assert_close(got: &[f32], expect: &[f32]) {
        assert_eq!(got.len(), expect.len());
        for (i, (g, e)) in got.iter().zip(expect).enumerate() {
            assert!(
                (g - e).abs() <= 1e-3 * e.abs().max(1.0),
                "element {i}: {g} vs {e}"
            );
        }
    }

    #[test]
    fn conv3x3_matches_reference() {
        let (h, w, k) = (12u32, 10u32, 3u32);
        let img = pattern((h * w) as usize);
        let ker = pattern((k * k) as usize);
        let mut c = cluster();
        let kernel = Conv2dKernel::single(h, w, k);
        let (got, perf) = kernel.run(&mut c, &img, &ker);
        let expect = reference::conv2d(&img, h as usize, w as usize, &ker, k as usize);
        assert_close(&got, &expect);
        let out = u64::from(kernel.out_height() * kernel.out_width());
        assert_eq!(perf.flops, 2 * 9 * out);
    }

    #[test]
    fn conv5x5_and_7x7_match_reference() {
        for k in [5u32, 7] {
            let (h, w) = (k + 9, k + 7);
            let img = pattern((h * w) as usize);
            let ker = pattern((k * k) as usize);
            let mut c = cluster();
            let (got, _) = Conv2dKernel::single(h, w, k).run(&mut c, &img, &ker);
            let expect = reference::conv2d(&img, h as usize, w as usize, &ker, k as usize);
            assert_close(&got, &expect);
        }
    }

    #[test]
    fn conv_with_image_exactly_kernel_sized() {
        let k = 3u32;
        let img = pattern(9);
        let ker = pattern(9);
        let mut c = cluster();
        let (got, _) = Conv2dKernel::single(k, k, k).run(&mut c, &img, &ker);
        let expect = reference::conv2d(&img, 3, 3, &ker, 3);
        assert_close(&got, &expect);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn multi_filter_run() {
        let (h, w, k, f) = (8u32, 8u32, 3u32, 4u32);
        let img = pattern((h * w) as usize);
        let weights = pattern((k * k * f) as usize);
        let mut c = cluster();
        let kernel = Conv2dKernel {
            height: h,
            width: w,
            k,
            filters: f,
        };
        let (got, perf) = kernel.run_filters(&mut c, &img, &weights);
        let (oh, ow) = (kernel.out_height() as usize, kernel.out_width() as usize);
        for fi in 0..f as usize {
            let expect = reference::conv2d(
                &img,
                h as usize,
                w as usize,
                &weights[fi * 9..(fi + 1) * 9],
                k as usize,
            );
            assert_close(&got[fi * oh * ow..(fi + 1) * oh * ow], &expect);
        }
        assert_eq!(perf.commands_completed as u32, f * 6); // 6 rows -> 6 engines used
    }

    #[test]
    fn accumulating_lowering_sums_channels() {
        // Two "input channels" accumulated into one output plane.
        let (h, w, k) = (6u32, 6u32, 3u32);
        let ch0 = pattern((h * w) as usize);
        let ch1: Vec<f32> = pattern((h * w) as usize).iter().map(|v| v * 0.5).collect();
        let ker = pattern(9);
        let mut c = cluster();
        let kernel = Conv2dKernel::single(h, w, k);
        // Preload channel planes and weights.
        let in0 = 0u32;
        let in1 = 4 * h * w;
        let w_addr = in1 + 4 * h * w;
        let out_addr = w_addr + 4 * 9;
        c.write_tcdm_f32(in0, &ch0);
        c.write_tcdm_f32(in1, &ch1);
        c.write_tcdm_f32(w_addr, &ker);
        // Pass 1: channel 0, overwrite; pass 2: channel 1, accumulate.
        for (pass, (base, acc)) in [(in0, false), (in1, true)].iter().enumerate() {
            let _ = pass;
            let cfgs = kernel
                .lower(*base, w_addr, out_addr, 8, *acc)
                .expect("valid");
            for (i, cfg) in cfgs.iter().enumerate() {
                c.offload_with_writes(i, cfg, 4);
            }
            c.run_to_completion();
        }
        let got = c.read_tcdm_f32(out_addr, 16);
        let mut expect = reference::conv2d(&ch0, 6, 6, &ker, 3);
        let e1 = reference::conv2d(&ch1, 6, 6, &ker, 3);
        for (a, b) in expect.iter_mut().zip(&e1) {
            *a += b;
        }
        assert_close(&got, &expect);
    }

    #[test]
    fn cost_reuse_scales_with_filters() {
        let one = Conv2dKernel::single(128, 128, 3).cost();
        let many = Conv2dKernel {
            height: 128,
            width: 128,
            k: 3,
            filters: 8,
        }
        .cost();
        assert!(many.operational_intensity() > one.operational_intensity());
        // k²/4-ish asymptote for 3×3: many filters approach 4.5 flop/B.
        assert!(many.operational_intensity() < 4.5);
    }
}
