//! Stencil kernels decomposed into per-dimension NTX passes (§III-B3).
//!
//! *"Its star shaped access pattern allows it to be computed efficiently
//! on NTX by decomposing the kernel into its separate dimensions."*
//!
//! The shared building block is [`StencilPass`]: one dimension-
//! decomposed pass in which every output point is a `taps`-long dot
//! product of input samples spaced a constant stride apart. The discrete
//! Laplace operators (1-D/2-D/3-D), the 13-coefficient diffusion stencil
//! of [16] (9 + 2 + 2 decomposition) and the Green-Wave-style 8th-order
//! Laplacian are all built from it; later passes accumulate into the
//! output of earlier ones through the memory-initialised accumulator.

use crate::KernelCost;
use ntx_isa::{AccuInit, AguConfig, Command, ConfigError, LoopNest, NtxConfig, OperandSelect};
use ntx_sim::{Cluster, PerfSnapshot};

/// One dimension-decomposed stencil pass over a 2-level output
/// iteration space (`outer × inner` points).
///
/// Every output point is `Σ_t coeff[t] · in[base + t·sample_stride]`;
/// the input/output bases advance by the `inner`/`outer` strides as the
/// iteration walks. All strides are in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilPass {
    /// Number of taps (coefficients) per output point.
    pub taps: u32,
    /// Distance between consecutive input samples of one output point.
    pub sample_stride: i32,
    /// Inner iteration count.
    pub inner: u32,
    /// Input-base advance per inner step.
    pub inner_in_stride: i32,
    /// Output advance per inner step.
    pub inner_out_stride: i32,
    /// Outer iteration count.
    pub outer: u32,
    /// Input-base advance per outer step (from the start of the
    /// previous outer row).
    pub outer_in_stride: i32,
    /// Output advance per outer step (likewise from the row start).
    pub outer_out_stride: i32,
    /// TCDM byte address of the first input sample.
    pub in_base: u32,
    /// TCDM byte address of the coefficient vector.
    pub coeff_base: u32,
    /// TCDM byte address of the first output point.
    pub out_base: u32,
    /// Accumulate into the existing output (later passes of a
    /// decomposed stencil) instead of overwriting.
    pub accumulate: bool,
}

impl StencilPass {
    /// Lowers the pass into NTX configurations, splitting the outer
    /// dimension across up to `engines` co-processors.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`].
    pub fn lower(&self, engines: u32) -> Result<Vec<NtxConfig>, ConfigError> {
        self.lower_replicated(engines, 0)
    }

    /// Like [`StencilPass::lower`], but engine `e` reads its
    /// coefficients from `coeff_base + e * coeff_stride` (bytes).
    /// Per-engine coefficient replicas avoid the structural bank
    /// conflict of all engines fetching the same coefficient word each
    /// tap — the same trick the convolution lowering plays with its
    /// weight replicas. A stride of zero shares one copy.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`].
    pub fn lower_replicated(
        &self,
        engines: u32,
        coeff_stride: u32,
    ) -> Result<Vec<NtxConfig>, ConfigError> {
        let taps = self.taps as i32;
        let engines = engines.min(self.outer).max(1);
        let base = self.outer / engines;
        let rem = self.outer % engines;
        let mut configs = Vec::new();
        let mut o0 = 0u32;
        for e in 0..engines {
            let rows = base + u32::from(e < rem);
            if rows == 0 {
                continue;
            }
            let in_start = self
                .in_base
                .wrapping_add((o0 as i32).wrapping_mul(self.outer_in_stride) as u32);
            let out_start = self
                .out_base
                .wrapping_add((o0 as i32).wrapping_mul(self.outer_out_stride) as u32);
            // Replica index = the engine slot this config is offloaded
            // to (callers enumerate the returned configs).
            let coeff_start = self.coeff_base + configs.len() as u32 * coeff_stride;
            let cfg = NtxConfig::builder()
                .command(Command::Mac {
                    operand: OperandSelect::Memory,
                })
                .accu_init(if self.accumulate {
                    AccuInit::Memory
                } else {
                    AccuInit::Zero
                })
                .loops(LoopNest::nested(&[self.taps, self.inner, rows]).with_levels(1, 1))
                .agu(
                    0,
                    AguConfig::new(
                        in_start,
                        [
                            self.sample_stride,
                            self.inner_in_stride - (taps - 1) * self.sample_stride,
                            self.outer_in_stride
                                - (self.inner as i32 - 1) * self.inner_in_stride
                                - (taps - 1) * self.sample_stride,
                            0,
                            0,
                        ],
                    ),
                )
                .agu(
                    1,
                    AguConfig::new(coeff_start, [4, -4 * (taps - 1), -4 * (taps - 1), 0, 0]),
                )
                .agu(
                    2,
                    AguConfig::new(
                        out_start,
                        [
                            0,
                            self.inner_out_stride,
                            self.outer_out_stride - (self.inner as i32 - 1) * self.inner_out_stride,
                            0,
                            0,
                        ],
                    ),
                )
                .build()?;
            configs.push(cfg);
            o0 += rows;
        }
        Ok(configs)
    }

    /// Offloads the pass to `cluster` and runs it to completion.
    pub fn run(&self, cluster: &mut Cluster) {
        let configs = self
            .lower(cluster.num_engines() as u32)
            .expect("valid stencil pass");
        for (i, cfg) in configs.iter().enumerate() {
            cluster.offload_with_writes(i, cfg, 8);
        }
        cluster.run_to_completion();
    }
}

/// The 1-D discrete Laplace operator (3 coefficients, §III-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Laplace1dKernel {
    /// Input length (output has `n - 2` points).
    pub n: u32,
}

impl Laplace1dKernel {
    /// Analytic cost: 3 MACs per output point, stream in/out once.
    #[must_use]
    pub fn cost(&self) -> KernelCost {
        let out = u64::from(self.n) - 2;
        KernelCost {
            flops: 2 * 3 * out,
            min_ext_bytes: 4 * (u64::from(self.n) + out),
        }
    }

    /// Runs in the TCDM; returns the interior Laplacian and perf delta.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n`, `n < 3`, or data exceeds the TCDM.
    pub fn run(&self, cluster: &mut Cluster, input: &[f32]) -> (Vec<f32>, PerfSnapshot) {
        assert_eq!(input.len() as u32, self.n, "input length mismatch");
        assert!(self.n >= 3, "laplace1d needs at least 3 points");
        let in_addr = 0u32;
        let coeff_addr = 4 * self.n;
        let out_addr = coeff_addr + 16;
        let out_n = self.n - 2;
        assert!(
            out_addr + 4 * out_n <= cluster.config().tcdm.bytes,
            "data exceeds TCDM"
        );
        cluster.write_tcdm_f32(in_addr, input);
        cluster.write_tcdm_f32(coeff_addr, &[1.0, -2.0, 1.0]);
        let before = cluster.perf();
        StencilPass {
            taps: 3,
            sample_stride: 4,
            inner: out_n,
            inner_in_stride: 4,
            inner_out_stride: 4,
            outer: 1,
            outer_in_stride: 0,
            outer_out_stride: 0,
            in_base: in_addr,
            coeff_base: coeff_addr,
            out_base: out_addr,
            accumulate: false,
        }
        .run(cluster);
        let perf = cluster.perf().since(&before);
        (cluster.read_tcdm_f32(out_addr, out_n as usize), perf)
    }
}

/// The 2-D discrete Laplace operator (5-point star, decomposed into an
/// x pass and an accumulating y pass — two NTX instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Laplace2dKernel {
    /// Grid height.
    pub height: u32,
    /// Grid width.
    pub width: u32,
}

impl Laplace2dKernel {
    /// Analytic cost: the decomposition performs 2×3 MACs per point
    /// (x pass + y pass) with the output read back once for the
    /// accumulating pass.
    #[must_use]
    pub fn cost(&self) -> KernelCost {
        let out = u64::from(self.height - 2) * u64::from(self.width - 2);
        KernelCost {
            flops: 2 * 6 * out,
            min_ext_bytes: 4 * (u64::from(self.height) * u64::from(self.width) + out),
        }
    }

    /// Runs in the TCDM; returns the interior Laplacian and perf delta.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch, grids below 3×3, or TCDM overflow.
    pub fn run(&self, cluster: &mut Cluster, input: &[f32]) -> (Vec<f32>, PerfSnapshot) {
        let (h, w) = (self.height, self.width);
        assert_eq!(input.len() as u32, h * w, "grid size mismatch");
        assert!(h >= 3 && w >= 3, "grid too small");
        let in_addr = 0u32;
        let coeff_addr = 4 * h * w;
        let out_addr = coeff_addr + 16;
        let (oh, ow) = (h - 2, w - 2);
        assert!(
            out_addr + 4 * oh * ow <= cluster.config().tcdm.bytes,
            "data exceeds TCDM"
        );
        cluster.write_tcdm_f32(in_addr, input);
        cluster.write_tcdm_f32(coeff_addr, &[1.0, -2.0, 1.0]);
        let before = cluster.perf();
        // Pass 1 (x direction): rows are outer, columns inner.
        StencilPass {
            taps: 3,
            sample_stride: 4,
            inner: ow,
            inner_in_stride: 4,
            inner_out_stride: 4,
            outer: oh,
            outer_in_stride: 4 * w as i32,
            outer_out_stride: 4 * ow as i32,
            in_base: in_addr + 4 * w, // start at row 1, column 0
            coeff_base: coeff_addr,
            out_base: out_addr,
            accumulate: false,
        }
        .run(cluster);
        // Pass 2 (y direction): columns outer, rows inner; accumulate.
        StencilPass {
            taps: 3,
            sample_stride: 4 * w as i32,
            inner: oh,
            inner_in_stride: 4 * w as i32,
            inner_out_stride: 4 * ow as i32,
            outer: ow,
            outer_in_stride: 4,
            outer_out_stride: 4,
            in_base: in_addr + 4, // start at row 0, column 1
            coeff_base: coeff_addr,
            out_base: out_addr,
            accumulate: true,
        }
        .run(cluster);
        let perf = cluster.perf().since(&before);
        (cluster.read_tcdm_f32(out_addr, (oh * ow) as usize), perf)
    }
}

/// The 3-D discrete Laplace operator (7-point star, three passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Laplace3dKernel {
    /// Grid depth.
    pub depth: u32,
    /// Grid height.
    pub height: u32,
    /// Grid width.
    pub width: u32,
}

impl Laplace3dKernel {
    /// Analytic cost: 3×3 MACs per point, grid streamed once.
    #[must_use]
    pub fn cost(&self) -> KernelCost {
        let out =
            u64::from(self.depth - 2) * u64::from(self.height - 2) * u64::from(self.width - 2);
        let cells = u64::from(self.depth) * u64::from(self.height) * u64::from(self.width);
        KernelCost {
            flops: 2 * 9 * out,
            min_ext_bytes: 4 * (cells + out),
        }
    }

    /// Runs in the TCDM; returns the interior Laplacian and perf delta.
    ///
    /// # Panics
    ///
    /// Panics on size mismatch, grids below 3³, or TCDM overflow.
    pub fn run(&self, cluster: &mut Cluster, input: &[f32]) -> (Vec<f32>, PerfSnapshot) {
        let (d, h, w) = (self.depth, self.height, self.width);
        assert_eq!(input.len() as u32, d * h * w, "grid size mismatch");
        assert!(d >= 3 && h >= 3 && w >= 3, "grid too small");
        let in_addr = 0u32;
        let coeff_addr = 4 * d * h * w;
        let out_addr = coeff_addr + 16;
        let (od, oh, ow) = (d - 2, h - 2, w - 2);
        let out_len = od * oh * ow;
        assert!(
            out_addr + 4 * out_len <= cluster.config().tcdm.bytes,
            "data exceeds TCDM"
        );
        cluster.write_tcdm_f32(in_addr, input);
        cluster.write_tcdm_f32(coeff_addr, &[1.0, -2.0, 1.0]);
        let before = cluster.perf();
        let plane = 4 * (h * w) as i32;
        // x pass over every interior (z, y) row.
        for z in 0..od {
            StencilPass {
                taps: 3,
                sample_stride: 4,
                inner: ow,
                inner_in_stride: 4,
                inner_out_stride: 4,
                outer: oh,
                outer_in_stride: 4 * w as i32,
                outer_out_stride: 4 * ow as i32,
                in_base: in_addr + ((z + 1) * h * w + w) * 4,
                coeff_base: coeff_addr,
                out_base: out_addr + z * oh * ow * 4,
                accumulate: false,
            }
            .run(cluster);
        }
        // y pass (columns within each interior plane), accumulating.
        for z in 0..od {
            StencilPass {
                taps: 3,
                sample_stride: 4 * w as i32,
                inner: oh,
                inner_in_stride: 4 * w as i32,
                inner_out_stride: 4 * ow as i32,
                outer: ow,
                outer_in_stride: 4,
                outer_out_stride: 4,
                in_base: in_addr + ((z + 1) * h * w + 1) * 4,
                coeff_base: coeff_addr,
                out_base: out_addr + z * oh * ow * 4,
                accumulate: true,
            }
            .run(cluster);
        }
        // z pass (through planes), accumulating; outer walks rows.
        for y in 0..oh {
            StencilPass {
                taps: 3,
                sample_stride: plane,
                inner: od,
                inner_in_stride: plane,
                inner_out_stride: 4 * (oh * ow) as i32,
                outer: ow,
                outer_in_stride: 4,
                outer_out_stride: 4,
                in_base: in_addr + ((y + 1) * w + 1) * 4,
                coeff_base: coeff_addr,
                out_base: out_addr + y * ow * 4,
                accumulate: true,
            }
            .run(cluster);
        }
        let perf = cluster.perf().since(&before);
        (cluster.read_tcdm_f32(out_addr, out_len as usize), perf)
    }
}

/// The 13-coefficient diffusion stencil of [16]: a 3×3 in-plane pass
/// plus two z-pair passes (the paper's 9 + 2 + 2 decomposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffusionKernel {
    /// Grid depth (needs ≥ 5 for the ±2 z taps).
    pub depth: u32,
    /// Grid height.
    pub height: u32,
    /// Grid width.
    pub width: u32,
}

impl DiffusionKernel {
    /// Analytic cost: 13 MACs per output point, grid streamed once.
    #[must_use]
    pub fn cost(&self) -> KernelCost {
        let out =
            u64::from(self.depth - 4) * u64::from(self.height - 2) * u64::from(self.width - 2);
        let cells = u64::from(self.depth) * u64::from(self.height) * u64::from(self.width);
        KernelCost {
            flops: 2 * 13 * out,
            min_ext_bytes: 4 * (cells + out),
        }
    }

    /// Runs in the TCDM; returns the interior result and perf delta.
    /// Coefficients as in [`crate::reference::diffusion`].
    ///
    /// # Panics
    ///
    /// Panics on size mismatch, undersized grids, or TCDM overflow.
    pub fn run(
        &self,
        cluster: &mut Cluster,
        input: &[f32],
        plane: &[f32; 9],
        z_near: &[f32; 2],
        z_far: &[f32; 2],
    ) -> (Vec<f32>, PerfSnapshot) {
        let (d, h, w) = (self.depth, self.height, self.width);
        assert_eq!(input.len() as u32, d * h * w, "grid size mismatch");
        assert!(d >= 5 && h >= 3 && w >= 3, "grid too small");
        let in_addr = 0u32;
        let plane_addr = 4 * d * h * w;
        let znear_addr = plane_addr + 4 * 9;
        let zfar_addr = znear_addr + 4 * 2;
        let out_addr = zfar_addr + 4 * 2;
        let (od, oh, ow) = (d - 4, h - 2, w - 2);
        let out_len = od * oh * ow;
        assert!(
            out_addr + 4 * out_len <= cluster.config().tcdm.bytes,
            "data exceeds TCDM"
        );
        cluster.write_tcdm_f32(in_addr, input);
        cluster.write_tcdm_f32(plane_addr, plane);
        cluster.write_tcdm_f32(znear_addr, z_near);
        cluster.write_tcdm_f32(zfar_addr, z_far);
        let before = cluster.perf();
        // Pass 1: 3×3 in-plane convolution per output plane (9 coeffs).
        let conv = crate::conv::Conv2dKernel::single(h, w, 3);
        for z in 0..od {
            let cfgs = conv
                .lower(
                    in_addr + (z + 2) * h * w * 4,
                    plane_addr,
                    out_addr + z * oh * ow * 4,
                    cluster.num_engines() as u32,
                    false,
                )
                .expect("valid plane pass");
            for (i, cfg) in cfgs.iter().enumerate() {
                cluster.offload_with_writes(i, cfg, 6);
            }
            cluster.run_to_completion();
        }
        let plane_bytes = 4 * (h * w) as i32;
        // Pass 2: z_near pair (taps at z-1 and z+1 → spacing 2 planes).
        for y in 0..oh {
            StencilPass {
                taps: 2,
                sample_stride: 2 * plane_bytes,
                inner: od,
                inner_in_stride: plane_bytes,
                inner_out_stride: 4 * (oh * ow) as i32,
                outer: ow,
                outer_in_stride: 4,
                outer_out_stride: 4,
                in_base: in_addr + (h * w + (y + 1) * w + 1) * 4, // z = 1
                coeff_base: znear_addr,
                out_base: out_addr + y * ow * 4,
                accumulate: true,
            }
            .run(cluster);
        }
        // Pass 3: z_far pair (taps at z-2 and z+2 → spacing 4 planes).
        for y in 0..oh {
            StencilPass {
                taps: 2,
                sample_stride: 4 * plane_bytes,
                inner: od,
                inner_in_stride: plane_bytes,
                inner_out_stride: 4 * (oh * ow) as i32,
                outer: ow,
                outer_in_stride: 4,
                outer_out_stride: 4,
                in_base: in_addr + ((y + 1) * w + 1) * 4, // z = 0
                coeff_base: zfar_addr,
                out_base: out_addr + y * ow * 4,
                accumulate: true,
            }
            .run(cluster);
        }
        let perf = cluster.perf().since(&before);
        (cluster.read_tcdm_f32(out_addr, out_len as usize), perf)
    }
}

/// The Green-Wave comparison workload (§IV): an 8th-order (radius-4)
/// Laplacian, decomposed into three 9-tap passes. Only the analytic
/// cost is needed for the comparison; the taps-per-dimension pass runs
/// on the same [`StencilPass`] machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HighOrderLaplaceKernel {
    /// Grid depth.
    pub depth: u32,
    /// Grid height.
    pub height: u32,
    /// Grid width.
    pub width: u32,
}

impl HighOrderLaplaceKernel {
    /// Stencil radius (order 8 → 4).
    pub const RADIUS: u32 = 4;

    /// Analytic cost: 3 × 9 MACs per point (+ central tap shared),
    /// grid streamed once.
    #[must_use]
    pub fn cost(&self) -> KernelCost {
        let r = Self::RADIUS;
        let out = u64::from(self.depth - 2 * r)
            * u64::from(self.height - 2 * r)
            * u64::from(self.width - 2 * r);
        let cells = u64::from(self.depth) * u64::from(self.height) * u64::from(self.width);
        KernelCost {
            flops: 2 * 27 * out,
            min_ext_bytes: 4 * (cells + out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ntx_sim::{Cluster, ClusterConfig};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    fn field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 13 + 5) % 17) as f32 * 0.25 - 2.0)
            .collect()
    }

    fn assert_close(got: &[f32], expect: &[f32]) {
        assert_eq!(got.len(), expect.len());
        for (i, (g, e)) in got.iter().zip(expect).enumerate() {
            assert!(
                (g - e).abs() <= 1e-3 * e.abs().max(1.0),
                "element {i}: {g} vs {e}"
            );
        }
    }

    #[test]
    fn laplace1d_matches_reference() {
        let input = field(64);
        let mut c = cluster();
        let (got, perf) = Laplace1dKernel { n: 64 }.run(&mut c, &input);
        assert_close(&got, &reference::laplace1d(&input));
        assert_eq!(perf.flops, 2 * 3 * 62);
    }

    #[test]
    fn laplace2d_matches_reference() {
        let (h, w) = (10u32, 9u32);
        let input = field((h * w) as usize);
        let mut c = cluster();
        let (got, _) = Laplace2dKernel {
            height: h,
            width: w,
        }
        .run(&mut c, &input);
        assert_close(&got, &reference::laplace2d(&input, h as usize, w as usize));
    }

    #[test]
    fn laplace3d_matches_reference() {
        let (d, h, w) = (6u32, 7u32, 5u32);
        let input = field((d * h * w) as usize);
        let mut c = cluster();
        let (got, _) = Laplace3dKernel {
            depth: d,
            height: h,
            width: w,
        }
        .run(&mut c, &input);
        assert_close(
            &got,
            &reference::laplace3d(&input, d as usize, h as usize, w as usize),
        );
    }

    #[test]
    fn diffusion_matches_reference() {
        let (d, h, w) = (7u32, 6u32, 6u32);
        let input = field((d * h * w) as usize);
        let plane = [0.05, 0.1, 0.05, 0.1, 0.4, 0.1, 0.05, 0.1, 0.05];
        let z_near = [0.08, 0.07];
        let z_far = [0.02, 0.03];
        let mut c = cluster();
        let (got, _) = DiffusionKernel {
            depth: d,
            height: h,
            width: w,
        }
        .run(&mut c, &input, &plane, &z_near, &z_far);
        assert_close(
            &got,
            &reference::diffusion(
                &input, d as usize, h as usize, w as usize, &plane, &z_near, &z_far,
            ),
        );
    }

    #[test]
    fn stencil_pass_single_point() {
        // One output point: weighted sum of three samples.
        let mut c = cluster();
        c.write_tcdm_f32(0, &[1.0, 10.0, 100.0]);
        c.write_tcdm_f32(0x40, &[2.0, 3.0, 4.0]);
        StencilPass {
            taps: 3,
            sample_stride: 4,
            inner: 1,
            inner_in_stride: 0,
            inner_out_stride: 0,
            outer: 1,
            outer_in_stride: 0,
            outer_out_stride: 0,
            in_base: 0,
            coeff_base: 0x40,
            out_base: 0x80,
            accumulate: false,
        }
        .run(&mut c);
        assert_eq!(c.read_tcdm_f32(0x80, 1)[0], 2.0 + 30.0 + 400.0);
    }

    #[test]
    fn costs_scale_with_footprint() {
        let lap1 = Laplace1dKernel { n: 16384 }.cost();
        let lap2 = Laplace2dKernel {
            height: 128,
            width: 128,
        }
        .cost();
        let lap3 = Laplace3dKernel {
            depth: 32,
            height: 32,
            width: 32,
        }
        .cost();
        let diff = DiffusionKernel {
            depth: 32,
            height: 32,
            width: 32,
        }
        .cost();
        // Higher-dimensional stencils have more reuse per point.
        assert!(lap1.operational_intensity() < lap2.operational_intensity());
        assert!(lap2.operational_intensity() < lap3.operational_intensity());
        assert!(lap3.operational_intensity() < diff.operational_intensity());
        // All remain memory-bound (< 4 flop/B ridge of the cluster).
        assert!(diff.operational_intensity() < 4.0);
    }
}
