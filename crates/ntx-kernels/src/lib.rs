//! Kernel library: the §III-B workloads lowered onto NTX.
//!
//! Every kernel the paper evaluates is implemented twice:
//!
//! * as a **plain-Rust reference** ([`reference`]) used as the
//!   correctness oracle, and
//! * as an **NTX lowering** that programs the hardware loops and AGUs
//!   of the cycle simulator ([`blas`], [`conv`], [`stencil`]) and runs
//!   either directly in the TCDM or through the DMA double-buffering
//!   schedule of §II-E ([`schedule`]).
//!
//! The lowerings follow the decompositions the paper describes: BLAS
//! tiles sized to the TCDM, convolutions as four-deep MAC loop nests,
//! and star-shaped stencils decomposed into one NTX instruction per
//! dimension (§III-B3).
//!
//! Each kernel also exposes its analytical flop and minimum-traffic
//! counts, the inputs to the Fig. 5 roofline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blas;
pub mod conv;
pub mod reference;
pub mod schedule;
pub mod stencil;

/// Analytic cost counts of one kernel invocation, used by the roofline
/// and extrapolation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCost {
    /// Floating-point operations performed.
    pub flops: u64,
    /// Minimum external-memory traffic in bytes (compulsory reads of
    /// inputs plus writes of outputs, assuming perfect on-chip reuse
    /// within one TCDM tile).
    pub min_ext_bytes: u64,
}

impl KernelCost {
    /// Operational intensity in flop/byte (the Fig. 5 x-axis).
    #[must_use]
    pub fn operational_intensity(&self) -> f64 {
        if self.min_ext_bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.min_ext_bytes as f64
        }
    }
}

/// Splits `n` work items into at most `parts` contiguous chunks of
/// near-equal size; returns `(start, len)` pairs (empty chunks
/// omitted). This is the one work-splitting rule every lowering in this
/// crate uses — engines within a cluster and, in the scale-out
/// scheduler, clusters within a system shard with the same geometry, so
/// an N-way run touches exactly the same elements as a 1-way run.
#[must_use]
pub fn split_work(n: u32, parts: u32) -> Vec<(u32, u32)> {
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut start = 0;
    for p in 0..parts {
        let len = base + u32::from(p < rem);
        if len > 0 {
            out.push((start, len));
        }
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operational_intensity_basics() {
        let c = KernelCost {
            flops: 100,
            min_ext_bytes: 50,
        };
        assert!((c.operational_intensity() - 2.0).abs() < 1e-12);
        let inf = KernelCost {
            flops: 1,
            min_ext_bytes: 0,
        };
        assert!(inf.operational_intensity().is_infinite());
    }
}
