//! Plain-Rust reference implementations (correctness oracles).
//!
//! All references accumulate in `f64` so they double as the
//! high-precision baseline of the §II-C RMSE study.

/// `y[i] = a * x[i] + y[i]` (BLAS 1).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = (f64::from(a) * f64::from(xi) + f64::from(*yi)) as f32;
    }
}

/// `y = A x` for a row-major `rows × cols` matrix (BLAS 2).
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[must_use]
pub fn gemv(a: &[f32], x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    assert_eq!(a.len(), rows * cols, "matrix size mismatch");
    assert_eq!(x.len(), cols, "vector size mismatch");
    (0..rows)
        .map(|r| {
            let mut acc = 0f64;
            for c in 0..cols {
                acc += f64::from(a[r * cols + c]) * f64::from(x[c]);
            }
            acc as f32
        })
        .collect()
}

/// `C = A B` for row-major matrices (`A`: `m × k`, `B`: `k × n`).
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[must_use]
pub fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A size mismatch");
    assert_eq!(b.len(), k * n, "B size mismatch");
    let mut c = vec![0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0f64;
            for l in 0..k {
                acc += f64::from(a[i * k + l]) * f64::from(b[l * n + j]);
            }
            c[i * n + j] = acc as f32;
        }
    }
    c
}

/// Valid (no padding) 2-D cross-correlation of a `height × width` image
/// with a `k × k` kernel — the convolution as DNN frameworks define it.
/// Output is `(height-k+1) × (width-k+1)`.
///
/// # Panics
///
/// Panics if the image is smaller than the kernel.
#[must_use]
pub fn conv2d(image: &[f32], height: usize, width: usize, kernel: &[f32], k: usize) -> Vec<f32> {
    assert_eq!(image.len(), height * width, "image size mismatch");
    assert_eq!(kernel.len(), k * k, "kernel size mismatch");
    assert!(height >= k && width >= k, "image smaller than kernel");
    let oh = height - k + 1;
    let ow = width - k + 1;
    let mut out = vec![0f32; oh * ow];
    for y in 0..oh {
        for x in 0..ow {
            let mut acc = 0f64;
            for ky in 0..k {
                for kx in 0..k {
                    acc += f64::from(image[(y + ky) * width + (x + kx)])
                        * f64::from(kernel[ky * k + kx]);
                }
            }
            out[y * ow + x] = acc as f32;
        }
    }
    out
}

/// 1-D discrete Laplace operator with the 3-coefficient stencil
/// `[1, -2, 1]`; output has `n - 2` interior points.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn laplace1d(input: &[f32]) -> Vec<f32> {
    assert!(input.len() >= 3, "laplace1d needs at least 3 points");
    input
        .windows(3)
        .map(|w| (f64::from(w[0]) - 2.0 * f64::from(w[1]) + f64::from(w[2])) as f32)
        .collect()
}

/// 2-D discrete Laplace operator (5-point star) on the interior of a
/// `height × width` grid; output is `(height-2) × (width-2)`.
///
/// # Panics
///
/// Panics if either dimension is below 3.
#[must_use]
pub fn laplace2d(input: &[f32], height: usize, width: usize) -> Vec<f32> {
    assert!(height >= 3 && width >= 3, "grid too small");
    assert_eq!(input.len(), height * width, "grid size mismatch");
    let oh = height - 2;
    let ow = width - 2;
    let mut out = vec![0f32; oh * ow];
    for y in 0..oh {
        for x in 0..ow {
            let c = (y + 1) * width + (x + 1);
            let acc = f64::from(input[c - width])
                + f64::from(input[c + width])
                + f64::from(input[c - 1])
                + f64::from(input[c + 1])
                - 4.0 * f64::from(input[c]);
            out[y * ow + x] = acc as f32;
        }
    }
    out
}

/// 3-D discrete Laplace operator (7-point star) on the interior of a
/// `depth × height × width` grid.
///
/// # Panics
///
/// Panics if any dimension is below 3.
#[must_use]
pub fn laplace3d(input: &[f32], depth: usize, height: usize, width: usize) -> Vec<f32> {
    assert!(depth >= 3 && height >= 3 && width >= 3, "grid too small");
    assert_eq!(input.len(), depth * height * width, "grid size mismatch");
    let (od, oh, ow) = (depth - 2, height - 2, width - 2);
    let mut out = vec![0f32; od * oh * ow];
    let idx = |z: usize, y: usize, x: usize| (z * height + y) * width + x;
    for z in 0..od {
        for y in 0..oh {
            for x in 0..ow {
                let (cz, cy, cx) = (z + 1, y + 1, x + 1);
                let acc = f64::from(input[idx(cz - 1, cy, cx)])
                    + f64::from(input[idx(cz + 1, cy, cx)])
                    + f64::from(input[idx(cz, cy - 1, cx)])
                    + f64::from(input[idx(cz, cy + 1, cx)])
                    + f64::from(input[idx(cz, cy, cx - 1)])
                    + f64::from(input[idx(cz, cy, cx + 1)])
                    - 6.0 * f64::from(input[idx(cz, cy, cx)]);
                out[(z * oh + y) * ow + x] = acc as f32;
            }
        }
    }
    out
}

/// The 13-coefficient diffusion stencil of [16] (§III-B3): a 3×3 plane
/// stencil plus two ±z neighbour pairs, decomposable into NTX
/// instructions with nine, two and two coefficients. Operates on the
/// interior of a `depth × height × width` grid.
///
/// Coefficient layout: `plane` holds the 3×3 in-plane weights,
/// `z_near = [w(z-1), w(z+1)]`, `z_far = [w(z-2), w(z+2)]`.
///
/// # Panics
///
/// Panics if any dimension is too small for the footprint.
#[must_use]
pub fn diffusion(
    input: &[f32],
    depth: usize,
    height: usize,
    width: usize,
    plane: &[f32; 9],
    z_near: &[f32; 2],
    z_far: &[f32; 2],
) -> Vec<f32> {
    assert!(depth >= 5 && height >= 3 && width >= 3, "grid too small");
    assert_eq!(input.len(), depth * height * width, "grid size mismatch");
    let (od, oh, ow) = (depth - 4, height - 2, width - 2);
    let idx = |z: usize, y: usize, x: usize| (z * height + y) * width + x;
    let mut out = vec![0f32; od * oh * ow];
    for z in 0..od {
        for y in 0..oh {
            for x in 0..ow {
                let (cz, cy, cx) = (z + 2, y + 1, x + 1);
                let mut acc = 0f64;
                for ky in 0..3 {
                    for kx in 0..3 {
                        acc += f64::from(plane[ky * 3 + kx])
                            * f64::from(input[idx(cz, cy + ky - 1, cx + kx - 1)]);
                    }
                }
                acc += f64::from(z_near[0]) * f64::from(input[idx(cz - 1, cy, cx)]);
                acc += f64::from(z_near[1]) * f64::from(input[idx(cz + 1, cy, cx)]);
                acc += f64::from(z_far[0]) * f64::from(input[idx(cz - 2, cy, cx)]);
                acc += f64::from(z_far[1]) * f64::from(input[idx(cz + 2, cy, cx)]);
                out[(z * oh + y) * ow + x] = acc as f32;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basics() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn gemv_identity() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let x = [3.0f32, 4.0];
        assert_eq!(gemv(&a, &x, 2, 2), vec![3.0, 4.0]);
    }

    #[test]
    fn gemm_small_known() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [5.0f32, 6.0, 7.0, 8.0];
        assert_eq!(gemm(&a, &b, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn conv2d_averaging_kernel() {
        let img: Vec<f32> = (1..=16).map(|v| v as f32).collect(); // 4x4
        let k = [1.0f32 / 9.0; 9];
        let out = conv2d(&img, 4, 4, &k, 3);
        assert_eq!(out.len(), 4);
        // Mean of the top-left 3x3 block: (1+2+3+5+6+7+9+10+11)/9 = 6
        assert!((out[0] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn laplace1d_of_linear_ramp_is_zero() {
        let x: Vec<f32> = (0..10).map(|v| 3.0 * v as f32 + 1.0).collect();
        for v in laplace1d(&x) {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn laplace1d_of_quadratic_is_constant() {
        let x: Vec<f32> = (0..10).map(|v| (v * v) as f32).collect();
        for v in laplace1d(&x) {
            assert_eq!(v, 2.0);
        }
    }

    #[test]
    fn laplace2d_of_harmonic_is_zero() {
        // f(x,y) = x^2 - y^2 is harmonic: Laplacian = 0.
        let (h, w) = (6, 5);
        let mut grid = vec![0f32; h * w];
        for y in 0..h {
            for x in 0..w {
                grid[y * w + x] = (x * x) as f32 - (y * y) as f32;
            }
        }
        for v in laplace2d(&grid, h, w) {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn laplace3d_of_quadratic() {
        // f = x^2 + y^2 + z^2 has Laplacian 6 everywhere.
        let (d, h, w) = (4, 4, 4);
        let mut grid = vec![0f32; d * h * w];
        for z in 0..d {
            for y in 0..h {
                for x in 0..w {
                    grid[(z * h + y) * w + x] = (x * x + y * y + z * z) as f32;
                }
            }
        }
        for v in laplace3d(&grid, d, h, w) {
            assert_eq!(v, 6.0);
        }
    }

    #[test]
    fn diffusion_reduces_to_plane_stencil_with_zero_z() {
        let (d, h, w) = (5, 4, 4);
        let grid: Vec<f32> = (0..d * h * w).map(|v| (v % 7) as f32).collect();
        let plane = [0.0, 1.0, 0.0, 1.0, -4.0, 1.0, 0.0, 1.0, 0.0];
        let out = diffusion(&grid, d, h, w, &plane, &[0.0, 0.0], &[0.0, 0.0]);
        // Compare against laplace2d on the central plane (z=2).
        let central: Vec<f32> = grid[2 * h * w..3 * h * w].to_vec();
        let expect = laplace2d(&central, h, w);
        assert_eq!(out, expect);
    }
}
