//! Tile scheduling with DMA double buffering (§II-E).
//!
//! *"We subdivide kernels to be executed into tiles. The DMA engine is
//! used to copy input data into and results out of the TCDM in a double
//! buffering scheme, allowing the NTX co-processors to operate on one
//! buffer while the DMA operates on another."*
//!
//! [`run_tiles`] implements exactly that pipeline: while tile *i*
//! computes, the loads of tile *i+1* stream in and the stores of tile
//! *i−1* drain, hiding the memory latency whenever the kernel is
//! compute-bound. Tile builders are responsible for alternating their
//! TCDM buffer addresses (ping-pong).

use ntx_isa::NtxConfig;
use ntx_mem::{DmaDescriptor, DmaDirection};
use ntx_sim::{Cluster, PerfSnapshot};

/// One tile of work: DMA loads, NTX commands, DMA stores.
#[derive(Debug, Clone, Default)]
pub struct TileTask {
    /// Input transfers (external → TCDM) that must complete before the
    /// commands start.
    pub loads: Vec<DmaDescriptor>,
    /// Commands, each tagged with the engine index that runs it.
    pub commands: Vec<(usize, NtxConfig)>,
    /// Result transfers (TCDM → external) issued after the commands
    /// finish.
    pub stores: Vec<DmaDescriptor>,
}

impl TileTask {
    /// Validates the descriptor directions.
    ///
    /// # Panics
    ///
    /// Panics if a load is not external→TCDM or a store not
    /// TCDM→external.
    pub fn check(&self) {
        for l in &self.loads {
            assert_eq!(l.dir, DmaDirection::ExtToTcdm, "load direction");
        }
        for s in &self.stores {
            assert_eq!(s.dir, DmaDirection::TcdmToExt, "store direction");
        }
    }
}

fn wait_dma(cluster: &mut Cluster) {
    let mut guard = 0u64;
    while !cluster.dma_idle() {
        cluster.step();
        guard += 1;
        assert!(guard < 1_000_000_000, "DMA failed to drain");
    }
}

/// Waits until at least `count` DMA descriptors have retired since the
/// engine was created (per-descriptor watermark, so compute can start
/// as soon as *its* loads are in even while older stores still drain).
fn wait_dma_watermark(cluster: &mut Cluster, count: u64) {
    let mut guard = 0u64;
    while cluster.dma_completed() < count {
        cluster.step();
        guard += 1;
        assert!(guard < 1_000_000_000, "DMA failed to reach watermark");
    }
}

fn wait_engines(cluster: &mut Cluster) {
    let mut guard = 0u64;
    while (0..cluster.num_engines()).any(|i| cluster.engine(i).is_busy()) {
        cluster.step();
        guard += 1;
        assert!(guard < 1_000_000_000, "engines failed to drain");
    }
}

/// Runs `tiles` through the double-buffered pipeline; returns the perf
/// delta of the whole schedule.
///
/// The schedule is: prefetch tile 0; then for each tile, wait for *its
/// own* loads (per-descriptor watermark — older stores may still be
/// draining), start its commands, prefetch the next tile while
/// computing, and enqueue its stores when the compute drains. DMA
/// descriptors execute in order, which makes the ping-pong buffering
/// safe: the store of tile *i* is queued before the load of tile
/// *i+2*, which is the next user of the same buffer half.
pub fn run_tiles(cluster: &mut Cluster, tiles: &[TileTask]) -> PerfSnapshot {
    let before = cluster.perf();
    for t in tiles {
        t.check();
    }
    if tiles.is_empty() {
        return cluster.perf().since(&before);
    }
    let base = cluster.dma_completed();
    let mut queued = 0u64;
    // Prefetch tile 0.
    for d in &tiles[0].loads {
        cluster.dma_push(*d);
    }
    queued += tiles[0].loads.len() as u64;
    let mut loads_done_marker = queued;
    for (i, tile) in tiles.iter().enumerate() {
        // Wait only for this tile's loads (and, transitively, anything
        // queued before them).
        wait_dma_watermark(cluster, base + loads_done_marker);
        for (engine, cfg) in &tile.commands {
            cluster.offload_with_writes(*engine, cfg, 8);
        }
        // Overlap: prefetch the next tile while this one computes.
        if let Some(next) = tiles.get(i + 1) {
            for d in &next.loads {
                cluster.dma_push(*d);
            }
            queued += next.loads.len() as u64;
            loads_done_marker = queued;
        }
        wait_engines(cluster);
        // Stores drain in the background, overlapped with the next
        // tile's compute.
        for d in &tile.stores {
            cluster.dma_push(*d);
        }
        queued += tile.stores.len() as u64;
    }
    wait_dma(cluster);
    cluster.perf().since(&before)
}

/// Builds the ping-pong AXPY tile schedule used by the streaming
/// example and the roofline calibration: `x` and `y` live in external
/// memory, tiles of `tile_elems` stream through two TCDM buffer halves,
/// and the updated `y` streams back out.
///
/// # Panics
///
/// Panics if `tile_elems` is zero or two tiles would overflow the TCDM.
pub fn axpy_tiles(
    cluster: &Cluster,
    n: u32,
    a: f32,
    x_ext: u64,
    y_ext: u64,
    tile_elems: u32,
) -> Vec<TileTask> {
    assert!(tile_elems > 0, "tile size must be positive");
    let buf_bytes = 8 * tile_elems; // x tile + y tile
    assert!(
        2 * buf_bytes <= cluster.config().tcdm.bytes,
        "two tiles must fit the TCDM"
    );
    let engines = cluster.num_engines() as u32;
    let mut tiles = Vec::new();
    let mut start = 0u32;
    let mut half = 0u32;
    while start < n {
        let len = tile_elems.min(n - start);
        let x_addr = half * buf_bytes;
        let y_addr = x_addr + 4 * tile_elems;
        let kernel = crate::blas::AxpyKernel { n: len, a };
        let commands = kernel
            .lower(x_addr, y_addr, engines)
            .expect("valid axpy lowering")
            .into_iter()
            .enumerate()
            .collect();
        tiles.push(TileTask {
            loads: vec![
                DmaDescriptor::linear(
                    x_ext + 4 * u64::from(start),
                    x_addr,
                    4 * len,
                    DmaDirection::ExtToTcdm,
                ),
                DmaDescriptor::linear(
                    y_ext + 4 * u64::from(start),
                    y_addr,
                    4 * len,
                    DmaDirection::ExtToTcdm,
                ),
            ],
            commands,
            stores: vec![DmaDescriptor::linear(
                y_ext + 4 * u64::from(start),
                y_addr,
                4 * len,
                DmaDirection::TcdmToExt,
            )],
        });
        start += len;
        half ^= 1;
    }
    tiles
}

/// Builds the streaming tile schedule for a multi-filter 3×3-style
/// convolution over an image in external memory: each tile is a band of
/// output rows (plus halo) with all filters applied — the Table I
/// workload shape.
///
/// The caller must have written one copy of the filter-major weight
/// block (`filters × k²` floats) per engine, spaced `4·k²·filters`
/// bytes apart starting at `weights_addr` (see
/// [`write_replicated_weights`]); per-engine weight replicas avoid the
/// structural bank conflict of all engines fetching the same word.
///
/// # Panics
///
/// Panics if the band geometry cannot fit two buffers in the TCDM.
pub fn conv_tiles(
    cluster: &Cluster,
    kernel: &crate::conv::Conv2dKernel,
    image_ext: u64,
    weights_addr: u32,
    out_ext: u64,
    band_rows: u32,
) -> Vec<TileTask> {
    let k = kernel.k;
    let w = kernel.width;
    let ow = kernel.out_width();
    let oh = kernel.out_height();
    let engines = cluster.num_engines() as u32;
    assert!(band_rows > 0, "band must contain rows");
    let in_rows = band_rows + k - 1;
    let in_bytes = 4 * in_rows * w;
    let out_bytes = 4 * band_rows * ow * kernel.filters;
    let buf_bytes = in_bytes + out_bytes;
    // Weights (one replica per engine) sit below the ping-pong region.
    let base = weights_addr + 4 * k * k * kernel.filters * engines;
    assert!(
        base + 2 * buf_bytes <= cluster.config().tcdm.bytes,
        "two conv bands must fit the TCDM"
    );
    let mut tiles = Vec::new();
    let mut row0 = 0u32;
    let mut half = 0u32;
    while row0 < oh {
        let rows = band_rows.min(oh - row0);
        let in_addr = base + half * buf_bytes;
        let out_addr = in_addr + in_bytes;
        let band = crate::conv::Conv2dKernel {
            height: rows + k - 1,
            width: w,
            k,
            filters: kernel.filters,
        };
        let mut commands = Vec::new();
        for f in 0..kernel.filters {
            let cfgs = band
                .lower_replicated(
                    in_addr,
                    weights_addr + 4 * k * k * f,
                    4 * k * k * kernel.filters,
                    out_addr + 4 * rows * ow * f,
                    engines,
                    false,
                )
                .expect("valid conv lowering");
            // Round-robin filters across engines: engine index restarts
            // per filter, giving each engine a row band per filter.
            commands.extend(cfgs.into_iter().enumerate());
        }
        let mut stores = Vec::new();
        for f in 0..kernel.filters {
            stores.push(DmaDescriptor {
                ext_addr: out_ext + 4 * u64::from(f * oh * ow + row0 * ow),
                tcdm_addr: out_addr + 4 * rows * ow * f,
                row_bytes: 4 * ow,
                rows,
                ext_stride: 4 * u64::from(ow),
                tcdm_stride: 4 * ow,
                dir: DmaDirection::TcdmToExt,
            });
        }
        tiles.push(TileTask {
            loads: vec![DmaDescriptor {
                ext_addr: image_ext + 4 * u64::from(row0 * w),
                tcdm_addr: in_addr,
                row_bytes: 4 * w,
                rows: rows + k - 1,
                ext_stride: 4 * u64::from(w),
                tcdm_stride: 4 * w,
                dir: DmaDirection::ExtToTcdm,
            }],
            commands,
            stores,
        });
        row0 += rows;
        half ^= 1;
    }
    tiles
}

/// Writes one copy of the filter-major weight block per engine, in the
/// layout [`conv_tiles`] expects. Returns the first free byte address
/// after the replicas.
pub fn write_replicated_weights(cluster: &mut Cluster, weights_addr: u32, weights: &[f32]) -> u32 {
    let engines = cluster.num_engines() as u32;
    let block = 4 * weights.len() as u32;
    for e in 0..engines {
        cluster.write_tcdm_f32(weights_addr + e * block, weights);
    }
    weights_addr + engines * block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ntx_sim::ClusterConfig;

    #[test]
    fn streaming_axpy_matches_reference() {
        let n = 1000u32;
        let a = 1.5f32;
        let x: Vec<f32> = (0..n).map(|i| i as f32 * 0.01).collect();
        let y: Vec<f32> = (0..n).map(|i| 5.0 - i as f32 * 0.02).collect();
        let mut cluster = Cluster::new(ClusterConfig::default());
        let (x_ext, y_ext) = (0u64, 0x10_0000u64);
        cluster.ext_mem().write_f32_slice(x_ext, &x);
        cluster.ext_mem().write_f32_slice(y_ext, &y);
        let tiles = axpy_tiles(&cluster, n, a, x_ext, y_ext, 256);
        assert_eq!(tiles.len(), 4); // 1000 / 256 rounded up
        let perf = run_tiles(&mut cluster, &tiles);
        let mut expect = y.clone();
        reference::axpy(a, &x, &mut expect);
        let got = cluster.ext_mem().read_f32_slice(y_ext, n as usize);
        assert_eq!(got, expect);
        assert_eq!(perf.flops, 2 * u64::from(n));
        // Traffic: x in, y in, y out.
        assert_eq!(perf.ext_bytes_read, 8 * u64::from(n));
        assert_eq!(perf.ext_bytes_written, 4 * u64::from(n));
    }

    #[test]
    fn streaming_conv_matches_reference() {
        let kernel = crate::conv::Conv2dKernel {
            height: 20,
            width: 16,
            k: 3,
            filters: 2,
        };
        let img: Vec<f32> = (0..kernel.height * kernel.width)
            .map(|i| ((i % 9) as f32) - 4.0)
            .collect();
        let weights: Vec<f32> = (0..18).map(|i| (i as f32 - 9.0) * 0.1).collect();
        let mut cluster = Cluster::new(ClusterConfig::default());
        let (img_ext, out_ext) = (0u64, 0x20_0000u64);
        cluster.ext_mem().write_f32_slice(img_ext, &img);
        write_replicated_weights(&mut cluster, 0, &weights); // resident at 0
        let tiles = conv_tiles(&cluster, &kernel, img_ext, 0, out_ext, 6);
        let perf = run_tiles(&mut cluster, &tiles);
        let (oh, ow) = (kernel.out_height() as usize, kernel.out_width() as usize);
        let got = cluster.ext_mem().read_f32_slice(out_ext, oh * ow * 2);
        for f in 0..2usize {
            let expect = reference::conv2d(
                &img,
                kernel.height as usize,
                kernel.width as usize,
                &weights[f * 9..(f + 1) * 9],
                3,
            );
            for (i, (g, e)) in got[f * oh * ow..(f + 1) * oh * ow]
                .iter()
                .zip(&expect)
                .enumerate()
            {
                assert!(
                    (g - e).abs() <= 1e-3 * e.abs().max(1.0),
                    "filter {f} element {i}: {g} vs {e}"
                );
            }
        }
        assert!(perf.flops > 0);
        assert!(perf.dma_bytes > 0);
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let perf = run_tiles(&mut cluster, &[]);
        assert_eq!(perf.flops, 0);
        assert_eq!(perf.dma_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "load direction")]
    fn wrong_direction_rejected() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let bad = TileTask {
            loads: vec![DmaDescriptor::linear(0, 0, 4, DmaDirection::TcdmToExt)],
            commands: Vec::new(),
            stores: Vec::new(),
        };
        run_tiles(&mut cluster, &[bad]);
    }

    #[test]
    fn double_buffering_overlaps_dma_and_compute() {
        // With many tiles, total cycles must be well below the sum of
        // serialised load + compute + store phases.
        let n = 8192u32;
        let x = vec![1.0f32; n as usize];
        let y = vec![2.0f32; n as usize];
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.ext_mem().write_f32_slice(0, &x);
        cluster.ext_mem().write_f32_slice(0x40_0000, &y);
        let tiles = axpy_tiles(&cluster, n, 3.0, 0, 0x40_0000, 1024);
        let perf = run_tiles(&mut cluster, &tiles);
        // AXPY is memory bound: 12 bytes/element over a 4 B/cycle port
        // = 3 cycles/element minimum. Overlap should keep us within 2×
        // of that bound.
        let min_cycles = 3 * u64::from(n);
        assert!(
            perf.cycles < 2 * min_cycles,
            "cycles {} should be < 2x the bandwidth bound {}",
            perf.cycles,
            min_cycles
        );
    }
}
