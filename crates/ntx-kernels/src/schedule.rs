//! Tile scheduling with DMA double buffering (§II-E).
//!
//! *"We subdivide kernels to be executed into tiles. The DMA engine is
//! used to copy input data into and results out of the TCDM in a double
//! buffering scheme, allowing the NTX co-processors to operate on one
//! buffer while the DMA operates on another."*
//!
//! [`TilePipeline`] implements exactly that pipeline as a resumable
//! state machine: while tile *i* computes, the loads of tile *i+1*
//! stream in and the stores of tile *i−1* drain, hiding the memory
//! latency whenever the kernel is compute-bound. [`run_tiles`] is the
//! blocking convenience wrapper used by the in-crate kernels; the
//! scale-out scheduler (`ntx-sched`) drives one pipeline per cluster
//! step by step so N clusters interleave deterministically. Tile
//! builders are responsible for alternating their TCDM buffer
//! addresses (ping-pong).

use crate::stencil::StencilPass;
use ntx_isa::{AccuInit, ConfigError, NtxConfig, SPILL_BYTES};
use ntx_mem::{DmaDescriptor, DmaDirection};
use ntx_sim::{Cluster, PerfSnapshot};

/// One tile of work: DMA loads, NTX commands, DMA stores.
#[derive(Debug, Clone, Default)]
pub struct TileTask {
    /// Input transfers (external → TCDM) that must complete before the
    /// commands start.
    pub loads: Vec<DmaDescriptor>,
    /// Commands, each tagged with the engine index that runs it.
    pub commands: Vec<(usize, NtxConfig)>,
    /// Result transfers (TCDM → external) issued after the commands
    /// finish.
    pub stores: Vec<DmaDescriptor>,
}

impl TileTask {
    /// Validates the descriptor directions.
    ///
    /// # Panics
    ///
    /// Panics if a load is not external→TCDM or a store not
    /// TCDM→external.
    pub fn check(&self) {
        for l in &self.loads {
            assert_eq!(l.dir, DmaDirection::ExtToTcdm, "load direction");
        }
        for s in &self.stores {
            assert_eq!(s.dir, DmaDirection::TcdmToExt, "store direction");
        }
    }
}

/// Register writes charged per offloaded command: a driver that reuses
/// the staged configuration and only changes what differs, as §II-E
/// recommends.
const OFFLOAD_WRITES: u64 = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Waiting for the current tile's loads to retire.
    LoadWait,
    /// Engines are computing the current tile.
    Compute,
    /// All tiles issued; draining the final stores.
    Drain,
    /// Everything retired.
    Done,
}

/// Resumable double-buffered execution of a tile schedule on one
/// cluster.
///
/// The schedule is: prefetch tile 0; then for each tile, wait for *its
/// own* loads (per-descriptor watermark — older stores may still be
/// draining), start its commands, prefetch the next tile while
/// computing, and enqueue its stores when the compute drains. DMA
/// descriptors execute in order, which makes the ping-pong buffering
/// safe: the store of tile *i* is queued before the load of tile
/// *i+2*, which is the next user of the same buffer half.
#[derive(Debug)]
pub struct TilePipeline {
    tiles: Vec<TileTask>,
    /// Index of the tile currently computing (or about to).
    current: usize,
    /// DMA-completion count at pipeline start.
    base: u64,
    /// Descriptors queued so far.
    queued: u64,
    /// Descriptor watermark the current tile's compute waits for.
    watermark: u64,
    stage: Stage,
}

impl TilePipeline {
    /// Validates the schedule and prefetches tile 0's loads.
    ///
    /// # Panics
    ///
    /// Panics if a tile's DMA directions are inconsistent (see
    /// [`TileTask::check`]).
    #[must_use]
    pub fn new(cluster: &mut Cluster, tiles: Vec<TileTask>) -> Self {
        for t in &tiles {
            t.check();
        }
        let base = cluster.dma_completed();
        let mut p = Self {
            tiles,
            current: 0,
            base,
            queued: 0,
            watermark: 0,
            stage: Stage::LoadWait,
        };
        if p.tiles.is_empty() {
            p.stage = Stage::Done;
        } else {
            for d in &p.tiles[0].loads {
                cluster.dma_push(*d);
            }
            p.queued += p.tiles[0].loads.len() as u64;
            p.watermark = p.queued;
        }
        p
    }

    /// True until every command and store has retired.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.stage != Stage::Done
    }

    /// Advances the pipeline. Blocked phases drain the cluster through
    /// the burst API ([`Cluster::run_burst`]), which stops exactly at
    /// the observable events the pipeline polls (descriptor
    /// completions, engines going idle) — so the schedule, cycle counts
    /// and counters are identical to per-cycle stepping while the
    /// steady state executes in bursts. Phase transitions (offloads)
    /// may consume the cycles the §II-E register interface charges.
    /// Returns `false` once the pipeline has fully drained.
    pub fn step(&mut self, cluster: &mut Cluster) -> bool {
        match self.stage {
            Stage::LoadWait => {
                // Wait only for this tile's loads (and, transitively,
                // anything queued before them).
                if cluster.dma_completed() >= self.base + self.watermark {
                    let tile = &self.tiles[self.current];
                    for (engine, cfg) in &tile.commands {
                        cluster.offload_with_writes(*engine, cfg, OFFLOAD_WRITES);
                    }
                    // Overlap: prefetch the next tile while computing.
                    if let Some(next) = self.tiles.get(self.current + 1) {
                        for d in &next.loads {
                            cluster.dma_push(*d);
                        }
                        self.queued += next.loads.len() as u64;
                        self.watermark = self.queued;
                    }
                    self.stage = Stage::Compute;
                } else {
                    cluster.run_burst(u64::MAX);
                }
            }
            Stage::Compute => {
                if cluster.engines_busy() {
                    cluster.run_burst(u64::MAX);
                } else {
                    // Stores drain in the background, overlapped with
                    // the next tile's compute.
                    for d in &self.tiles[self.current].stores {
                        cluster.dma_push(*d);
                    }
                    self.queued += self.tiles[self.current].stores.len() as u64;
                    self.current += 1;
                    self.stage = if self.current == self.tiles.len() {
                        Stage::Drain
                    } else {
                        Stage::LoadWait
                    };
                }
            }
            Stage::Drain => {
                if cluster.dma_idle() {
                    self.stage = Stage::Done;
                } else {
                    cluster.run_burst(u64::MAX);
                }
            }
            Stage::Done => {}
        }
        self.is_busy()
    }

    /// Drains the pipeline to completion; returns cycles consumed.
    ///
    /// # Panics
    ///
    /// Panics after 10^9 steps as a hang guard.
    pub fn run_to_completion(&mut self, cluster: &mut Cluster) -> u64 {
        let start = cluster.cycle();
        let mut guard = 0u64;
        while self.step(cluster) {
            guard += 1;
            assert!(guard < 1_000_000_000, "pipeline failed to drain");
        }
        cluster.cycle() - start
    }
}

/// Runs `tiles` through the double-buffered pipeline to completion;
/// returns the perf delta of the whole schedule. Blocking wrapper
/// around [`TilePipeline`].
pub fn run_tiles(cluster: &mut Cluster, tiles: &[TileTask]) -> PerfSnapshot {
    let before = cluster.perf();
    TilePipeline::new(cluster, tiles.to_vec()).run_to_completion(cluster);
    cluster.perf().since(&before)
}

/// Builds the ping-pong AXPY tile schedule used by the streaming
/// example and the roofline calibration: `x` and `y` live in external
/// memory, tiles of `tile_elems` stream through two TCDM buffer halves,
/// and the updated `y` streams back out.
///
/// # Panics
///
/// Panics if `tile_elems` is zero or two tiles would overflow the TCDM.
pub fn axpy_tiles(
    cluster: &Cluster,
    n: u32,
    a: f32,
    x_ext: u64,
    y_ext: u64,
    tile_elems: u32,
) -> Vec<TileTask> {
    assert!(tile_elems > 0, "tile size must be positive");
    let buf_bytes = 8 * tile_elems; // x tile + y tile
    assert!(
        2 * buf_bytes <= cluster.config().tcdm.bytes,
        "two tiles must fit the TCDM"
    );
    let engines = cluster.num_engines() as u32;
    let mut tiles = Vec::new();
    let mut start = 0u32;
    let mut half = 0u32;
    while start < n {
        let len = tile_elems.min(n - start);
        let x_addr = half * buf_bytes;
        let y_addr = x_addr + 4 * tile_elems;
        let kernel = crate::blas::AxpyKernel { n: len, a };
        let commands = kernel
            .lower(x_addr, y_addr, engines)
            .expect("valid axpy lowering")
            .into_iter()
            .enumerate()
            .collect();
        tiles.push(TileTask {
            loads: vec![
                DmaDescriptor::linear(
                    x_ext + 4 * u64::from(start),
                    x_addr,
                    4 * len,
                    DmaDirection::ExtToTcdm,
                ),
                DmaDescriptor::linear(
                    y_ext + 4 * u64::from(start),
                    y_addr,
                    4 * len,
                    DmaDirection::ExtToTcdm,
                ),
            ],
            commands,
            stores: vec![DmaDescriptor::linear(
                y_ext + 4 * u64::from(start),
                y_addr,
                4 * len,
                DmaDirection::TcdmToExt,
            )],
        });
        start += len;
        half ^= 1;
    }
    tiles
}

/// Pads a GEMM leading dimension to an odd element count so the column
/// walk cycles through all TCDM banks (the [`crate::blas::GemmKernel`]
/// bank-conflict trick).
#[must_use]
pub fn gemm_pad_ldb(n: u32) -> u32 {
    if n.is_multiple_of(2) {
        n + 1
    } else {
        n
    }
}

/// True when an `m_t × n_t` output tile with `k_c`-long dot-product
/// chunks of a GEMM with full depth `k` fits the split-tile TCDM
/// layout of [`gemm_split_tiles`] in `tcdm_bytes`: two ping-pong `C`
/// buffers (wide [`SPILL_BYTES`]-per-element accumulator slots when
/// `k_c < k` forces the split-K spill protocol, rounded `f32` slots
/// otherwise), two ping-pong `A` chunk buffers and two ping-pong
/// (padded) `B` chunk buffers. This is the one capacity rule of that
/// layout, shared with the scale-out tiler.
#[must_use]
pub fn gemm_split_fits(m_t: u32, n_t: u32, k_c: u32, k: u32, tcdm_bytes: u32) -> bool {
    let slot: u64 = if k_c < k { SPILL_BYTES as u64 } else { 4 };
    let c = 2 * slot * u64::from(m_t) * u64::from(n_t);
    let a = 2 * 4 * u64::from(m_t) * u64::from(k_c);
    let b = 2 * 4 * u64::from(k_c) * u64::from(gemm_pad_ldb(n_t));
    c + a + b <= u64::from(tcdm_bytes)
}

/// Chooses the `(m_t, n_t, k_c)` tile shape for a GEMM too large for a
/// single resident pass. M/N tiling shrinks first (it re-streams
/// operands but keeps every dot product whole); K splits only when a
/// modest output tile still cannot hold its operands, because split-K
/// switches the `C` buffer to [`SPILL_BYTES`]-wide accumulator slots
/// and chains the passes through the wide-spill protocol. `m_t` stays
/// at `engines` or above while it can, so every co-processor keeps at
/// least one output row. Returns `None` when even a 1×1×1 tile cannot
/// fit (pathologically small TCDMs only).
#[must_use]
pub fn gemm_split_shape(
    dims: &crate::blas::GemmKernel,
    engines: u32,
    tcdm_bytes: u32,
) -> Option<(u32, u32, u32)> {
    let m_floor = dims.m.min(engines).max(1);
    let (mut m_t, mut n_t, mut k_c) = (dims.m, dims.n, dims.k);
    loop {
        if gemm_split_fits(m_t, n_t, k_c, dims.k, tcdm_bytes) {
            return Some((m_t, n_t, k_c));
        }
        if n_t > 8 {
            n_t = n_t.div_ceil(2);
        } else if m_t > m_floor {
            m_t = m_floor.max(m_t.div_ceil(2));
        } else if k_c > 8 {
            k_c = k_c.div_ceil(2);
        } else if n_t > 1 {
            n_t = n_t.div_ceil(2);
        } else if m_t > 1 {
            m_t = m_t.div_ceil(2);
        } else if k_c > 1 {
            k_c = k_c.div_ceil(2);
        } else {
            return None;
        }
    }
}

/// Builds the streaming tile schedule for a GEMM whose operands exceed
/// the TCDM: the `m × n` output is walked in `m_t × n_t` tiles, and
/// each tile's dot products run as `⌈k / k_c⌉` accumulation passes over
/// `A`/`B` chunks streamed from external memory. With more than one
/// pass the tile's `C` buffer holds [`SPILL_BYTES`]-wide accumulator
/// images and the passes chain through the wide-spill protocol
/// ([`AccuInit::Wide`] + `wide_store`), so the result is **bit-
/// identical** to an unsplit reduction: the first pass starts from
/// zero and spills, middle passes restore and spill, and the final
/// pass restores and writes the once-rounded `f32` in place at each
/// slot base, from where a gather DMA scatters it into the external
/// `C`.
///
/// `a_ext`/`b_ext`/`c_ext` hold compact row-major `m×k`, `k×n` and
/// `m×n` matrices. The `A`/`B` chunk buffers ping-pong per pass and
/// the `C` buffer per output tile; both reuse a buffer half no earlier
/// than two tile tasks after its last store was queued, which the
/// in-order DMA queue orders safely (see [`TilePipeline`]).
///
/// # Errors
///
/// Propagates [`ConfigError`] from the pass lowerings.
///
/// # Panics
///
/// Panics if the tile shape fails [`gemm_split_fits`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_split_tiles(
    cluster: &Cluster,
    dims: &crate::blas::GemmKernel,
    a_ext: u64,
    b_ext: u64,
    c_ext: u64,
    m_t: u32,
    n_t: u32,
    k_c: u32,
) -> Result<Vec<TileTask>, ConfigError> {
    let (m, k, n) = (dims.m, dims.k, dims.n);
    let engines = cluster.num_engines() as u32;
    assert!(
        gemm_split_fits(m_t, n_t, k_c, k, cluster.config().tcdm.bytes),
        "split gemm tile shape must fit the TCDM"
    );
    let passes = k.div_ceil(k_c);
    let slot = if passes > 1 { SPILL_BYTES } else { 4 };
    let ldb_t = gemm_pad_ldb(n_t);
    let c_bytes = slot * m_t * n_t;
    let a_bytes = 4 * m_t * k_c;
    let b_bytes = 4 * k_c * ldb_t;
    let a_base = 2 * c_bytes;
    let b_base = a_base + 2 * a_bytes;
    let mut tiles = Vec::new();
    let mut half = 0u32; // A/B ping-pong, per pass (= per tile task)
    let mut chalf = 0u32; // C ping-pong, per output tile
    let mut rt0 = 0u32;
    while rt0 < m {
        let rows = m_t.min(m - rt0);
        let mut nt0 = 0u32;
        while nt0 < n {
            let cols = n_t.min(n - nt0);
            let c_addr = chalf * c_bytes;
            for j in 0..passes {
                let k0 = j * k_c;
                let kc = k_c.min(k - k0);
                let a_addr = a_base + half * a_bytes;
                let b_addr = b_base + half * b_bytes;
                let loads = vec![
                    // A chunk: `rows` rows of `kc`, compact (lda = kc).
                    DmaDescriptor {
                        ext_addr: a_ext + 4 * u64::from(rt0 * k + k0),
                        tcdm_addr: a_addr,
                        row_bytes: 4 * kc,
                        rows,
                        ext_stride: 4 * u64::from(k),
                        tcdm_stride: 4 * kc,
                        dir: DmaDirection::ExtToTcdm,
                    },
                    // B chunk: `kc` rows of `cols`, padded to ldb_t.
                    DmaDescriptor {
                        ext_addr: b_ext + 4 * u64::from(k0 * n + nt0),
                        tcdm_addr: b_addr,
                        row_bytes: 4 * cols,
                        rows: kc,
                        ext_stride: 4 * u64::from(n),
                        tcdm_stride: 4 * ldb_t,
                        dir: DmaDirection::ExtToTcdm,
                    },
                ];
                let last = j + 1 == passes;
                let (init, wide_store) = match (passes > 1, j == 0, last) {
                    (false, ..) => (AccuInit::Zero, false),
                    (true, true, _) => (AccuInit::Zero, true),
                    (true, false, false) => (AccuInit::Wide, true),
                    (true, false, true) => (AccuInit::Wide, false),
                };
                let commands = crate::blas::GemmKernel {
                    m: rows,
                    k: kc,
                    n: cols,
                }
                .lower_pass(a_addr, b_addr, c_addr, ldb_t, init, wide_store, engines)?
                .into_iter()
                .enumerate()
                .collect();
                let stores = if !last {
                    Vec::new()
                } else if passes > 1 {
                    // Gather the rounded f32 results out of the wide
                    // slot bases, one strided descriptor per tile row.
                    (0..rows)
                        .map(|r| DmaDescriptor {
                            ext_addr: c_ext + 4 * u64::from((rt0 + r) * n + nt0),
                            tcdm_addr: c_addr + slot * r * cols,
                            row_bytes: 4,
                            rows: cols,
                            ext_stride: 4,
                            tcdm_stride: slot,
                            dir: DmaDirection::TcdmToExt,
                        })
                        .collect()
                } else {
                    vec![DmaDescriptor {
                        ext_addr: c_ext + 4 * u64::from(rt0 * n + nt0),
                        tcdm_addr: c_addr,
                        row_bytes: 4 * cols,
                        rows,
                        ext_stride: 4 * u64::from(n),
                        tcdm_stride: 4 * cols,
                        dir: DmaDirection::TcdmToExt,
                    }]
                };
                tiles.push(TileTask {
                    loads,
                    commands,
                    stores,
                });
                half ^= 1;
            }
            chalf ^= 1;
            nt0 += cols;
        }
        rt0 += rows;
    }
    Ok(tiles)
}

/// True when a `band_rows`-row streaming band of `kernel`, with the
/// per-engine weight replicas resident at `weights_addr`, fits its two
/// ping-pong buffers in a TCDM of `tcdm_bytes`. This is the one
/// capacity rule of the [`conv_tiles`] layout; planners (the scale-out
/// tiler) use it to size bands instead of re-deriving the formula.
#[must_use]
pub fn conv_band_fits(
    kernel: &crate::conv::Conv2dKernel,
    band_rows: u32,
    weights_addr: u32,
    engines: u32,
    tcdm_bytes: u32,
) -> bool {
    let k = kernel.k;
    let in_bytes = 4 * (band_rows + k - 1) * kernel.width;
    let out_bytes = 4 * band_rows * kernel.out_width() * kernel.filters;
    let base = weights_addr + 4 * k * k * kernel.filters * engines;
    base + 2 * (in_bytes + out_bytes) <= tcdm_bytes
}

/// Builds the streaming tile schedule for a multi-filter 3×3-style
/// convolution over an image in external memory: each tile is a band of
/// output rows (plus halo) with all filters applied — the Table I
/// workload shape.
///
/// The caller must have written one copy of the filter-major weight
/// block (`filters × k²` floats) per engine, spaced `4·k²·filters`
/// bytes apart starting at `weights_addr` (see
/// [`write_replicated_weights`]); per-engine weight replicas avoid the
/// structural bank conflict of all engines fetching the same word.
///
/// # Panics
///
/// Panics if the band geometry cannot fit two buffers in the TCDM.
pub fn conv_tiles(
    cluster: &Cluster,
    kernel: &crate::conv::Conv2dKernel,
    image_ext: u64,
    weights_addr: u32,
    out_ext: u64,
    band_rows: u32,
) -> Vec<TileTask> {
    let k = kernel.k;
    let w = kernel.width;
    let ow = kernel.out_width();
    let oh = kernel.out_height();
    let engines = cluster.num_engines() as u32;
    assert!(band_rows > 0, "band must contain rows");
    let in_rows = band_rows + k - 1;
    let in_bytes = 4 * in_rows * w;
    let out_bytes = 4 * band_rows * ow * kernel.filters;
    let buf_bytes = in_bytes + out_bytes;
    // Weights (one replica per engine) sit below the ping-pong region.
    let base = weights_addr + 4 * k * k * kernel.filters * engines;
    assert!(
        conv_band_fits(
            kernel,
            band_rows,
            weights_addr,
            engines,
            cluster.config().tcdm.bytes
        ),
        "two conv bands must fit the TCDM"
    );
    let mut tiles = Vec::new();
    let mut row0 = 0u32;
    let mut half = 0u32;
    while row0 < oh {
        let rows = band_rows.min(oh - row0);
        let in_addr = base + half * buf_bytes;
        let out_addr = in_addr + in_bytes;
        let band = crate::conv::Conv2dKernel {
            height: rows + k - 1,
            width: w,
            k,
            filters: kernel.filters,
        };
        let mut commands = Vec::new();
        for f in 0..kernel.filters {
            let cfgs = band
                .lower_replicated(
                    in_addr,
                    weights_addr + 4 * k * k * f,
                    4 * k * k * kernel.filters,
                    out_addr + 4 * rows * ow * f,
                    engines,
                    false,
                )
                .expect("valid conv lowering");
            // Round-robin filters across engines: engine index restarts
            // per filter, giving each engine a row band per filter.
            commands.extend(cfgs.into_iter().enumerate());
        }
        let mut stores = Vec::new();
        for f in 0..kernel.filters {
            stores.push(DmaDescriptor {
                ext_addr: out_ext + 4 * u64::from(f * oh * ow + row0 * ow),
                tcdm_addr: out_addr + 4 * rows * ow * f,
                row_bytes: 4 * ow,
                rows,
                ext_stride: 4 * u64::from(ow),
                tcdm_stride: 4 * ow,
                dir: DmaDirection::TcdmToExt,
            });
        }
        tiles.push(TileTask {
            loads: vec![DmaDescriptor {
                ext_addr: image_ext + 4 * u64::from(row0 * w),
                tcdm_addr: in_addr,
                row_bytes: 4 * w,
                rows: rows + k - 1,
                ext_stride: 4 * u64::from(w),
                tcdm_stride: 4 * w,
                dir: DmaDirection::ExtToTcdm,
            }],
            commands,
            stores,
        });
        row0 += rows;
        half ^= 1;
    }
    tiles
}

/// True when a `band_rows`-row streaming band of a 2-D Laplace stencil
/// over a `width`-wide grid, with the per-engine coefficient replicas
/// resident at `coeff_addr`, fits its two ping-pong buffers in a TCDM
/// of `tcdm_bytes`. The one capacity rule of the [`laplace2d_tiles`]
/// layout, shared with the scale-out planner.
#[must_use]
pub fn laplace2d_band_fits(
    width: u32,
    band_rows: u32,
    coeff_addr: u32,
    engines: u32,
    tcdm_bytes: u32,
) -> bool {
    let in_bytes = 4 * (band_rows + 2) * width;
    let out_bytes = 4 * band_rows * (width - 2);
    let base = coeff_addr + 4 * 3 * engines;
    base + 2 * (in_bytes + out_bytes) <= tcdm_bytes
}

/// Builds the streaming tile schedule for the 2-D discrete Laplace
/// operator (§III-B3) over a grid in external memory: each band of
/// output rows (plus its one-row halo above and below) streams through
/// two ping-pong TCDM buffers, and every band runs the paper's
/// dimension decomposition as **two** tile tasks — an x pass, then an
/// accumulating y pass. The split into two tasks is load-bearing: the
/// y pass reads back the x pass's output through the
/// memory-initialised accumulator, so it must not be offloaded until
/// every x-pass engine has retired.
///
/// The caller must have written one `[1, -2, 1]` coefficient replica
/// per engine at [`weight_replica_addrs`]`(coeff_addr, 3, engines)`;
/// per-engine replicas avoid the structural bank conflict of all
/// engines fetching the same coefficient word each tap.
///
/// # Panics
///
/// Panics on grids smaller than 3×3, a zero `band_rows`, or a band
/// geometry that cannot fit two buffers in the TCDM.
pub fn laplace2d_tiles(
    cluster: &Cluster,
    height: u32,
    width: u32,
    grid_ext: u64,
    coeff_addr: u32,
    out_ext: u64,
    band_rows: u32,
) -> Vec<TileTask> {
    assert!(height >= 3 && width >= 3, "grid too small");
    assert!(band_rows > 0, "band must contain rows");
    let engines = cluster.num_engines() as u32;
    let (oh, ow) = (height - 2, width - 2);
    let tcdm_bytes = cluster.config().tcdm.bytes;
    assert!(
        laplace2d_band_fits(width, band_rows, coeff_addr, engines, tcdm_bytes),
        "two laplace2d bands must fit the TCDM"
    );
    let in_bytes = 4 * (band_rows + 2) * width;
    let out_bytes = 4 * band_rows * ow;
    let buf_bytes = in_bytes + out_bytes;
    // Coefficient replicas (12 B per engine) sit below the ping-pong
    // region.
    let base = coeff_addr + 4 * 3 * engines;
    let mut tiles = Vec::new();
    let mut row0 = 0u32;
    let mut half = 0u32;
    while row0 < oh {
        let rows = band_rows.min(oh - row0);
        let in_addr = base + half * buf_bytes;
        let out_addr = in_addr + in_bytes;
        // x pass: rows outer, columns inner, overwrite.
        let x_pass = StencilPass {
            taps: 3,
            sample_stride: 4,
            inner: ow,
            inner_in_stride: 4,
            inner_out_stride: 4,
            outer: rows,
            outer_in_stride: 4 * width as i32,
            outer_out_stride: 4 * ow as i32,
            in_base: in_addr + 4 * width, // band row 1, column 0
            coeff_base: coeff_addr,
            out_base: out_addr,
            accumulate: false,
        };
        // y pass: columns outer, rows inner, accumulate into the x
        // pass's output.
        let y_pass = StencilPass {
            taps: 3,
            sample_stride: 4 * width as i32,
            inner: rows,
            inner_in_stride: 4 * width as i32,
            inner_out_stride: 4 * ow as i32,
            outer: ow,
            outer_in_stride: 4,
            outer_out_stride: 4,
            in_base: in_addr + 4, // band row 0, column 1
            coeff_base: coeff_addr,
            out_base: out_addr,
            accumulate: true,
        };
        tiles.push(TileTask {
            loads: vec![DmaDescriptor::linear(
                grid_ext + 4 * u64::from(row0 * width),
                in_addr,
                4 * (rows + 2) * width,
                DmaDirection::ExtToTcdm,
            )],
            commands: x_pass
                .lower_replicated(engines, 12)
                .expect("valid laplace2d x pass")
                .into_iter()
                .enumerate()
                .collect(),
            stores: Vec::new(),
        });
        tiles.push(TileTask {
            loads: Vec::new(),
            commands: y_pass
                .lower_replicated(engines, 12)
                .expect("valid laplace2d y pass")
                .into_iter()
                .enumerate()
                .collect(),
            stores: vec![DmaDescriptor::linear(
                out_ext + 4 * u64::from(row0 * ow),
                out_addr,
                4 * rows * ow,
                DmaDirection::TcdmToExt,
            )],
        });
        row0 += rows;
        half ^= 1;
    }
    tiles
}

/// Byte addresses of the per-engine weight replicas in the layout
/// [`conv_tiles`] expects: one block of `weight_floats` `f32` values
/// per engine, packed back to back from `weights_addr`. This is the
/// canonical replica layout — planners that stage weights themselves
/// (the scale-out tiler) use these offsets instead of re-deriving the
/// spacing.
#[must_use]
pub fn weight_replica_addrs(weights_addr: u32, weight_floats: u32, engines: u32) -> Vec<u32> {
    let block = 4 * weight_floats;
    (0..engines).map(|e| weights_addr + e * block).collect()
}

/// Writes one copy of the filter-major weight block per engine, in the
/// layout [`conv_tiles`] expects. Returns the first free byte address
/// after the replicas.
pub fn write_replicated_weights(cluster: &mut Cluster, weights_addr: u32, weights: &[f32]) -> u32 {
    let engines = cluster.num_engines() as u32;
    let addrs = weight_replica_addrs(weights_addr, weights.len() as u32, engines);
    for a in &addrs {
        cluster.write_tcdm_f32(*a, weights);
    }
    weights_addr + engines * 4 * weights.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ntx_sim::ClusterConfig;

    #[test]
    fn streaming_axpy_matches_reference() {
        let n = 1000u32;
        let a = 1.5f32;
        let x: Vec<f32> = (0..n).map(|i| i as f32 * 0.01).collect();
        let y: Vec<f32> = (0..n).map(|i| 5.0 - i as f32 * 0.02).collect();
        let mut cluster = Cluster::new(ClusterConfig::default());
        let (x_ext, y_ext) = (0u64, 0x10_0000u64);
        cluster.ext_mem().write_f32_slice(x_ext, &x);
        cluster.ext_mem().write_f32_slice(y_ext, &y);
        let tiles = axpy_tiles(&cluster, n, a, x_ext, y_ext, 256);
        assert_eq!(tiles.len(), 4); // 1000 / 256 rounded up
        let perf = run_tiles(&mut cluster, &tiles);
        let mut expect = y.clone();
        reference::axpy(a, &x, &mut expect);
        let got = cluster.ext_mem().read_f32_slice(y_ext, n as usize);
        assert_eq!(got, expect);
        assert_eq!(perf.flops, 2 * u64::from(n));
        // Traffic: x in, y in, y out.
        assert_eq!(perf.ext_bytes_read, 8 * u64::from(n));
        assert_eq!(perf.ext_bytes_written, 4 * u64::from(n));
    }

    #[test]
    fn streaming_conv_matches_reference() {
        let kernel = crate::conv::Conv2dKernel {
            height: 20,
            width: 16,
            k: 3,
            filters: 2,
        };
        let img: Vec<f32> = (0..kernel.height * kernel.width)
            .map(|i| ((i % 9) as f32) - 4.0)
            .collect();
        let weights: Vec<f32> = (0..18).map(|i| (i as f32 - 9.0) * 0.1).collect();
        let mut cluster = Cluster::new(ClusterConfig::default());
        let (img_ext, out_ext) = (0u64, 0x20_0000u64);
        cluster.ext_mem().write_f32_slice(img_ext, &img);
        write_replicated_weights(&mut cluster, 0, &weights); // resident at 0
        let tiles = conv_tiles(&cluster, &kernel, img_ext, 0, out_ext, 6);
        let perf = run_tiles(&mut cluster, &tiles);
        let (oh, ow) = (kernel.out_height() as usize, kernel.out_width() as usize);
        let got = cluster.ext_mem().read_f32_slice(out_ext, oh * ow * 2);
        for f in 0..2usize {
            let expect = reference::conv2d(
                &img,
                kernel.height as usize,
                kernel.width as usize,
                &weights[f * 9..(f + 1) * 9],
                3,
            );
            for (i, (g, e)) in got[f * oh * ow..(f + 1) * oh * ow]
                .iter()
                .zip(&expect)
                .enumerate()
            {
                assert!(
                    (g - e).abs() <= 1e-3 * e.abs().max(1.0),
                    "filter {f} element {i}: {g} vs {e}"
                );
            }
        }
        assert!(perf.flops > 0);
        assert!(perf.dma_bytes > 0);
    }

    #[test]
    fn streaming_laplace2d_matches_reference() {
        let (h, w) = (22u32, 17u32);
        let grid: Vec<f32> = (0..h * w).map(|i| ((i % 11) as f32) * 0.5 - 2.0).collect();
        let mut cluster = Cluster::new(ClusterConfig::default());
        let (grid_ext, out_ext) = (0u64, 0x20_0000u64);
        cluster.ext_mem().write_f32_slice(grid_ext, &grid);
        for addr in weight_replica_addrs(0, 3, cluster.num_engines() as u32) {
            cluster.write_tcdm_f32(addr, &[1.0, -2.0, 1.0]);
        }
        let tiles = laplace2d_tiles(&cluster, h, w, grid_ext, 0, out_ext, 5);
        // Two tile tasks (x pass, y pass) per band.
        assert_eq!(tiles.len(), 2 * 4); // ceil(20 / 5) bands
        let perf = run_tiles(&mut cluster, &tiles);
        let (oh, ow) = ((h - 2) as usize, (w - 2) as usize);
        let got = cluster.ext_mem().read_f32_slice(out_ext, oh * ow);
        let expect = reference::laplace2d(&grid, h as usize, w as usize);
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert!(
                (g - e).abs() <= 1e-3 * e.abs().max(1.0),
                "element {i}: {g} vs {e}"
            );
        }
        assert!(perf.flops > 0);
        assert!(perf.dma_bytes > 0);
    }

    #[test]
    fn streaming_split_gemm_matches_resident_run_bit_exactly() {
        // Force a 4-pass split-K on a GEMM small enough for the
        // resident oracle: every output element must come back bit-
        // identical, because the passes chain the full wide-accumulator
        // image instead of rounded partials.
        let dims = crate::blas::GemmKernel { m: 13, k: 64, n: 6 };
        let a: Vec<f32> = (0..dims.m * dims.k)
            .map(|i| 0.17 * (i as f32 - 300.0))
            .collect();
        let b: Vec<f32> = (0..dims.k * dims.n)
            .map(|i| -0.09 * (i as f32 - 150.0))
            .collect();
        let mut oracle = Cluster::new(ClusterConfig::default());
        let (expect, _) = dims.run(&mut oracle, &a, &b);

        let mut cluster = Cluster::new(ClusterConfig::default());
        let (a_ext, b_ext, c_ext) = (0u64, 0x10_0000u64, 0x20_0000u64);
        cluster.ext_mem().write_f32_slice(a_ext, &a);
        cluster.ext_mem().write_f32_slice(b_ext, &b);
        // Edge tiles in every dimension: 13 rows in tiles of 8, 6
        // columns in tiles of 4, 64 k in chunks of 16.
        let (m_t, n_t, k_c) = (8u32, 4u32, 16u32);
        assert!(gemm_split_fits(
            m_t,
            n_t,
            k_c,
            dims.k,
            cluster.config().tcdm.bytes
        ));
        let tiles = gemm_split_tiles(&cluster, &dims, a_ext, b_ext, c_ext, m_t, n_t, k_c)
            .expect("valid split lowering");
        // 2 row tiles x 2 column tiles x 4 passes.
        assert_eq!(tiles.len(), 16);
        let perf = run_tiles(&mut cluster, &tiles);
        let got = cluster
            .ext_mem()
            .read_f32_slice(c_ext, (dims.m * dims.n) as usize);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&expect));
        // Each pass re-streams its chunks; the wide images never leave
        // the TCDM.
        assert!(perf.flops >= 2 * u64::from(dims.m * dims.k * dims.n));
    }

    #[test]
    fn streaming_split_gemm_single_pass_tiles_match() {
        // M/N tiling without a k split: plain f32 C tiles, still bit-
        // identical (each dot product stays whole).
        let dims = crate::blas::GemmKernel { m: 12, k: 20, n: 9 };
        let a: Vec<f32> = (0..dims.m * dims.k).map(|i| 0.31 * i as f32).collect();
        let b: Vec<f32> = (0..dims.k * dims.n)
            .map(|i| 0.11 * (i as f32) - 7.0)
            .collect();
        let mut oracle = Cluster::new(ClusterConfig::default());
        let (expect, _) = dims.run(&mut oracle, &a, &b);
        let mut cluster = Cluster::new(ClusterConfig::default());
        let (a_ext, b_ext, c_ext) = (0u64, 0x10_0000u64, 0x20_0000u64);
        cluster.ext_mem().write_f32_slice(a_ext, &a);
        cluster.ext_mem().write_f32_slice(b_ext, &b);
        let tiles = gemm_split_tiles(&cluster, &dims, a_ext, b_ext, c_ext, 8, 5, dims.k)
            .expect("valid split lowering");
        run_tiles(&mut cluster, &tiles);
        let got = cluster
            .ext_mem()
            .read_f32_slice(c_ext, (dims.m * dims.n) as usize);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&expect));
    }

    #[test]
    fn gemm_split_shape_fits_and_prefers_whole_k() {
        let dims = crate::blas::GemmKernel {
            m: 96,
            k: 96,
            n: 96,
        };
        let (m_t, n_t, k_c) = gemm_split_shape(&dims, 8, 64 * 1024).expect("shape exists");
        assert!(gemm_split_fits(m_t, n_t, k_c, dims.k, 64 * 1024));
        // K fits whole here: M/N tiling alone must carry it.
        assert_eq!(k_c, dims.k);
        assert!(m_t >= 8, "all engines keep a row");
        // A deep GEMM forces the k split.
        let deep = crate::blas::GemmKernel {
            m: 64,
            k: 9216,
            n: 64,
        };
        let (m_t, n_t, k_c) = gemm_split_shape(&deep, 8, 64 * 1024).expect("shape exists");
        assert!(k_c < deep.k, "split-K engaged");
        assert!(gemm_split_fits(m_t, n_t, k_c, deep.k, 64 * 1024));
        // Pathologically small TCDM: nothing fits.
        assert!(gemm_split_shape(&deep, 8, 64).is_none());
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let perf = run_tiles(&mut cluster, &[]);
        assert_eq!(perf.flops, 0);
        assert_eq!(perf.dma_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "load direction")]
    fn wrong_direction_rejected() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let bad = TileTask {
            loads: vec![DmaDescriptor::linear(0, 0, 4, DmaDirection::TcdmToExt)],
            commands: Vec::new(),
            stores: Vec::new(),
        };
        run_tiles(&mut cluster, &[bad]);
    }

    #[test]
    fn double_buffering_overlaps_dma_and_compute() {
        // With many tiles, total cycles must be well below the sum of
        // serialised load + compute + store phases.
        let n = 8192u32;
        let x = vec![1.0f32; n as usize];
        let y = vec![2.0f32; n as usize];
        let mut cluster = Cluster::new(ClusterConfig::default());
        cluster.ext_mem().write_f32_slice(0, &x);
        cluster.ext_mem().write_f32_slice(0x40_0000, &y);
        let tiles = axpy_tiles(&cluster, n, 3.0, 0, 0x40_0000, 1024);
        let perf = run_tiles(&mut cluster, &tiles);
        // AXPY is memory bound: 12 bytes/element over a 4 B/cycle port
        // = 3 cycles/element minimum. Overlap should keep us within 2×
        // of that bound.
        let min_cycles = 3 * u64::from(n);
        assert!(
            perf.cycles < 2 * min_cycles,
            "cycles {} should be < 2x the bandwidth bound {}",
            perf.cycles,
            min_cycles
        );
    }
}
