//! BLAS 1/2/3 kernels lowered onto NTX (§III-B1).
//!
//! * [`AxpyKernel`] — `y = a·x + y`, one fused MAC per element using the
//!   scalar-register operand and in-place memory accumulation;
//! * [`GemvKernel`] — `y = A·x`, one hardware-loop dot product per row,
//!   rows split across the co-processors;
//! * [`GemmKernel`] — `C = A·B`, three-deep loop nests walking B columns
//!   with a large stride, output rows split across the co-processors.
//!
//! Each kernel provides its analytic [`KernelCost`] (roofline input),
//! the pure [`NtxConfig`] lowering, and an in-TCDM `run` used by the
//! correctness tests and utilisation measurements.

use crate::{split_work, KernelCost};
use ntx_isa::{
    AccuInit, AguConfig, Command, ConfigError, LoopNest, NtxConfig, OperandSelect, SPILL_BYTES,
};
use ntx_sim::{Cluster, PerfSnapshot};

/// `y = a·x + y` over `n` elements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxpyKernel {
    /// Vector length.
    pub n: u32,
    /// The scalar `a`.
    pub a: f32,
}

impl AxpyKernel {
    /// Analytic flop and compulsory-traffic counts (read `x` and `y`,
    /// write `y`).
    #[must_use]
    pub fn cost(&self) -> KernelCost {
        KernelCost {
            flops: 2 * u64::from(self.n),
            min_ext_bytes: 12 * u64::from(self.n),
        }
    }

    /// Lowers the kernel onto up to `engines` co-processors with `x` at
    /// `x_addr` and `y` at `y_addr` in the TCDM. Each element is one
    /// `accu = y[i]; accu += a·x[i]; y[i] = accu` iteration
    /// (memory-initialised MAC with the register operand).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] for invalid addresses or sizes.
    pub fn lower(
        &self,
        x_addr: u32,
        y_addr: u32,
        engines: u32,
    ) -> Result<Vec<NtxConfig>, ConfigError> {
        split_work(self.n, engines)
            .into_iter()
            .map(|(start, len)| {
                NtxConfig::builder()
                    .command(Command::Mac {
                        operand: OperandSelect::Register,
                    })
                    .register(self.a)
                    .accu_init(AccuInit::Memory)
                    .loops(LoopNest::nested(&[1, len]).with_levels(1, 1))
                    .agu(0, AguConfig::new(x_addr + 4 * start, [0, 4, 0, 0, 0]))
                    .agu(2, AguConfig::new(y_addr + 4 * start, [0, 4, 0, 0, 0]))
                    .build()
            })
            .collect()
    }

    /// Runs in the TCDM on `cluster`, returning the updated `y` and the
    /// perf delta of the run.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match `n` or the data exceeds the
    /// TCDM.
    pub fn run(&self, cluster: &mut Cluster, x: &[f32], y: &[f32]) -> (Vec<f32>, PerfSnapshot) {
        assert_eq!(x.len() as u32, self.n, "x length mismatch");
        assert_eq!(y.len() as u32, self.n, "y length mismatch");
        let x_addr = 0u32;
        let y_addr = 4 * self.n;
        assert!(
            8 * self.n <= cluster.config().tcdm.bytes,
            "data exceeds TCDM"
        );
        cluster.write_tcdm_f32(x_addr, x);
        cluster.write_tcdm_f32(y_addr, y);
        let before = cluster.perf();
        let configs = self
            .lower(x_addr, y_addr, cluster.num_engines() as u32)
            .expect("valid lowering");
        for (i, cfg) in configs.iter().enumerate() {
            cluster.offload_with_writes(i, cfg, 6);
        }
        cluster.run_to_completion();
        let perf = cluster.perf().since(&before);
        (cluster.read_tcdm_f32(y_addr, self.n as usize), perf)
    }
}

/// `y = A·x` for a row-major `rows × cols` matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemvKernel {
    /// Number of matrix rows (outputs).
    pub rows: u32,
    /// Number of matrix columns (dot-product length).
    pub cols: u32,
}

impl GemvKernel {
    /// Analytic cost: stream `A` once, read `x`, write `y`.
    #[must_use]
    pub fn cost(&self) -> KernelCost {
        let (r, c) = (u64::from(self.rows), u64::from(self.cols));
        KernelCost {
            flops: 2 * r * c,
            min_ext_bytes: 4 * (r * c + c + r),
        }
    }

    /// Lowers onto up to `engines` co-processors: loop 0 runs the
    /// `cols`-long dot product, loop 1 iterates this engine's rows.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`].
    pub fn lower(
        &self,
        a_addr: u32,
        x_addr: u32,
        y_addr: u32,
        engines: u32,
    ) -> Result<Vec<NtxConfig>, ConfigError> {
        let cols = self.cols;
        split_work(self.rows, engines)
            .into_iter()
            .map(|(row0, nrows)| {
                NtxConfig::builder()
                    .command(Command::Mac {
                        operand: OperandSelect::Memory,
                    })
                    .loops(LoopNest::nested(&[cols, nrows]).with_levels(1, 1))
                    // A: walk the row, then fall through to the next row.
                    .agu(0, AguConfig::new(a_addr + 4 * row0 * cols, [4, 4, 0, 0, 0]))
                    // x: walk, then rewind to the start for the next row.
                    .agu(
                        1,
                        AguConfig::new(x_addr, [4, -4 * (cols as i32 - 1), 0, 0, 0]),
                    )
                    // y: one store per row.
                    .agu(2, AguConfig::new(y_addr + 4 * row0, [0, 4, 0, 0, 0]))
                    .build()
            })
            .collect()
    }

    /// Runs in the TCDM; returns `y` and the perf delta.
    ///
    /// # Panics
    ///
    /// Panics on slice-size mismatch or TCDM overflow.
    pub fn run(&self, cluster: &mut Cluster, a: &[f32], x: &[f32]) -> (Vec<f32>, PerfSnapshot) {
        assert_eq!(a.len() as u32, self.rows * self.cols, "A size mismatch");
        assert_eq!(x.len() as u32, self.cols, "x size mismatch");
        let a_addr = 0u32;
        let x_addr = 4 * self.rows * self.cols;
        let y_addr = x_addr + 4 * self.cols;
        assert!(
            y_addr + 4 * self.rows <= cluster.config().tcdm.bytes,
            "data exceeds TCDM"
        );
        cluster.write_tcdm_f32(a_addr, a);
        cluster.write_tcdm_f32(x_addr, x);
        let before = cluster.perf();
        let configs = self
            .lower(a_addr, x_addr, y_addr, cluster.num_engines() as u32)
            .expect("valid lowering");
        for (i, cfg) in configs.iter().enumerate() {
            cluster.offload_with_writes(i, cfg, 8);
        }
        cluster.run_to_completion();
        let perf = cluster.perf().since(&before);
        (cluster.read_tcdm_f32(y_addr, self.rows as usize), perf)
    }
}

/// `C = A·B` with `A: m × k`, `B: k × n`, all row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmKernel {
    /// Rows of `A` / `C`.
    pub m: u32,
    /// Inner (dot-product) dimension.
    pub k: u32,
    /// Columns of `B` / `C`.
    pub n: u32,
}

impl GemmKernel {
    /// Analytic cost under block-matrix tiling with a TCDM of
    /// `tcdm_bytes`: square blocks of side `b` give each loaded A/B
    /// element `b` uses, so streaming traffic is `≈ 2·4·m·k·n/b` plus
    /// the compulsory `C` write (§III-B1).
    #[must_use]
    pub fn cost_with_tcdm(&self, tcdm_bytes: u32) -> KernelCost {
        let (m, k, n) = (u64::from(self.m), u64::from(self.k), u64::from(self.n));
        // Three b×b blocks (A, B, C) double-buffered must fit.
        let b = (((f64::from(tcdm_bytes) / 4.0 / 6.0).sqrt()) as u64)
            .min(m.min(k).min(n))
            .max(1);
        let streamed = 2 * 4 * m * k * n / b;
        KernelCost {
            flops: 2 * m * k * n,
            min_ext_bytes: streamed + 4 * (m * n),
        }
    }

    /// Analytic cost with the paper's 64 kB TCDM.
    #[must_use]
    pub fn cost(&self) -> KernelCost {
        self.cost_with_tcdm(64 * 1024)
    }

    /// Lowers onto up to `engines` co-processors: loop 0 is the `k`-dot
    /// product, loop 1 walks the `n` output columns, loop 2 this
    /// engine's rows. `B` is stored row-major with leading dimension
    /// `self.n`.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`].
    pub fn lower(
        &self,
        a_addr: u32,
        b_addr: u32,
        c_addr: u32,
        engines: u32,
    ) -> Result<Vec<NtxConfig>, ConfigError> {
        self.lower_with_ldb(a_addr, b_addr, c_addr, self.n, engines)
    }

    /// Like [`Self::lower`] but with an explicit leading dimension for
    /// `B` (in elements). Padding the leading dimension away from a
    /// multiple of the bank count is the standard trick to avoid the
    /// pathological TCDM conflicts of power-of-two column strides.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`].
    pub fn lower_with_ldb(
        &self,
        a_addr: u32,
        b_addr: u32,
        c_addr: u32,
        ldb: u32,
        engines: u32,
    ) -> Result<Vec<NtxConfig>, ConfigError> {
        self.lower_pass(a_addr, b_addr, c_addr, ldb, AccuInit::Zero, false, engines)
    }

    /// Lowers one pass of a (possibly split-K) GEMM. The tile is
    /// `m × k × n` with `B` at leading dimension `ldb`; `C` is laid out
    /// as row-major *slots* whose width follows the accumulator
    /// protocol — 4 B rounded `f32` slots for an ordinary pass,
    /// [`SPILL_BYTES`]-wide accumulator images whenever this pass reads
    /// or writes spilled wide state. `init` and `wide_store` select the
    /// pass position in the bit-exact split-K protocol (see
    /// [`AccuInit::Wide`]): first chunk `Zero` + wide stores, middle
    /// chunks `Wide` + wide stores, final chunk `Wide` + a rounded
    /// `f32` store written in place at each slot base.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`].
    #[allow(clippy::too_many_arguments)]
    pub fn lower_pass(
        &self,
        a_addr: u32,
        b_addr: u32,
        c_addr: u32,
        ldb: u32,
        init: AccuInit,
        wide_store: bool,
        engines: u32,
    ) -> Result<Vec<NtxConfig>, ConfigError> {
        assert!(ldb >= self.n, "leading dimension below the row length");
        // The AGU2 address sequence is shared by the init read and the
        // store write, so a pass touching wide state walks C in
        // spill-image slots; the final pass's f32 result lands at each
        // slot's base address.
        let slot = if wide_store || init == AccuInit::Wide {
            SPILL_BYTES
        } else {
            4
        };
        let (k, n) = (self.k as i32, ldb as i32);
        split_work(self.m, engines)
            .into_iter()
            .map(|(row0, nrows)| {
                NtxConfig::builder()
                    .command(Command::Mac {
                        operand: OperandSelect::Memory,
                    })
                    .accu_init(init)
                    .wide_store(wide_store)
                    .loops(LoopNest::nested(&[self.k, self.n, nrows]).with_levels(1, 1))
                    // A row: walk k, rewind per column, advance per row.
                    .agu(
                        0,
                        AguConfig::new(a_addr + 4 * row0 * self.k, [4, -4 * (k - 1), 4, 0, 0]),
                    )
                    // B column: stride ldb words down, hop to the next
                    // column top, rewind fully (over the n logical
                    // columns walked) for the next row of A.
                    .agu(
                        1,
                        AguConfig::new(
                            b_addr,
                            [
                                4 * n,
                                4 * (1 - (k - 1) * n),
                                -4 * ((k - 1) * n + self.n as i32 - 1),
                                0,
                                0,
                            ],
                        ),
                    )
                    // C: one slot per column, rows contiguous.
                    .agu(
                        2,
                        AguConfig::new(
                            c_addr + slot * row0 * self.n,
                            [0, slot as i32, slot as i32, 0, 0],
                        ),
                    )
                    .build()
            })
            .collect()
    }

    /// Runs in the TCDM; returns `C` and the perf delta.
    ///
    /// # Panics
    ///
    /// Panics on slice-size mismatch or TCDM overflow.
    pub fn run(&self, cluster: &mut Cluster, a: &[f32], b: &[f32]) -> (Vec<f32>, PerfSnapshot) {
        assert_eq!(a.len() as u32, self.m * self.k, "A size mismatch");
        assert_eq!(b.len() as u32, self.k * self.n, "B size mismatch");
        let a_addr = 0u32;
        let b_addr = 4 * self.m * self.k;
        let c_addr = b_addr + 4 * self.k * (self.n + 1);
        assert!(
            c_addr + 4 * self.m * self.n <= cluster.config().tcdm.bytes,
            "data exceeds TCDM"
        );
        cluster.write_tcdm_f32(a_addr, a);
        // Pad B's leading dimension to an odd element count so the
        // column walk cycles through all TCDM banks.
        let ldb = if self.n.is_multiple_of(2) {
            self.n + 1
        } else {
            self.n
        };
        for row in 0..self.k {
            cluster.write_tcdm_f32(
                b_addr + 4 * row * ldb,
                &b[(row * self.n) as usize..((row + 1) * self.n) as usize],
            );
        }
        let before = cluster.perf();
        let configs = self
            .lower_with_ldb(a_addr, b_addr, c_addr, ldb, cluster.num_engines() as u32)
            .expect("valid lowering");
        for (i, cfg) in configs.iter().enumerate() {
            cluster.offload_with_writes(i, cfg, 10);
        }
        cluster.run_to_completion();
        let perf = cluster.perf().since(&before);
        (
            cluster.read_tcdm_f32(c_addr, (self.m * self.n) as usize),
            perf,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ntx_sim::ClusterConfig;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::default())
    }

    fn ramp(n: usize, scale: f32) -> Vec<f32> {
        (0..n)
            .map(|i| scale * (i as f32 - n as f32 / 3.0))
            .collect()
    }

    #[test]
    fn split_work_covers_everything() {
        for n in [1u32, 7, 8, 9, 64, 1000] {
            for parts in [1u32, 3, 8] {
                let chunks = split_work(n, parts);
                let total: u32 = chunks.iter().map(|&(_, l)| l).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                // Contiguous and ordered.
                let mut next = 0;
                for (s, l) in chunks {
                    assert_eq!(s, next);
                    next = s + l;
                }
            }
        }
    }

    #[test]
    fn axpy_matches_reference() {
        let n = 100u32;
        let x = ramp(n as usize, 0.5);
        let y0 = ramp(n as usize, -1.5);
        let mut c = cluster();
        let kernel = AxpyKernel { n, a: 2.5 };
        let (got, perf) = kernel.run(&mut c, &x, &y0);
        let mut expect = y0.clone();
        reference::axpy(2.5, &x, &mut expect);
        assert_eq!(got, expect);
        assert_eq!(perf.flops, 2 * u64::from(n));
    }

    #[test]
    fn axpy_single_element() {
        let mut c = cluster();
        let kernel = AxpyKernel { n: 1, a: -1.0 };
        let (got, _) = kernel.run(&mut c, &[3.0], &[10.0]);
        assert_eq!(got, vec![7.0]);
    }

    #[test]
    fn gemv_matches_reference() {
        let (rows, cols) = (16u32, 24u32);
        let a = ramp((rows * cols) as usize, 0.25);
        let x = ramp(cols as usize, 1.0);
        let mut c = cluster();
        let kernel = GemvKernel { rows, cols };
        let (got, perf) = kernel.run(&mut c, &a, &x);
        let expect = reference::gemv(&a, &x, rows as usize, cols as usize);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() <= 1e-3 * e.abs().max(1.0), "{g} vs {e}");
        }
        assert_eq!(perf.flops, 2 * u64::from(rows * cols));
        assert_eq!(perf.commands_completed, 8);
    }

    #[test]
    fn gemv_fewer_rows_than_engines() {
        let (rows, cols) = (3u32, 8u32);
        let a = ramp((rows * cols) as usize, 1.0);
        let x = vec![1.0; cols as usize];
        let mut c = cluster();
        let (got, perf) = GemvKernel { rows, cols }.run(&mut c, &a, &x);
        let expect = reference::gemv(&a, &x, rows as usize, cols as usize);
        assert_eq!(got, expect);
        assert_eq!(perf.commands_completed, 3);
    }

    #[test]
    fn gemm_matches_reference() {
        let (m, k, n) = (8u32, 12u32, 10u32);
        let a = ramp((m * k) as usize, 0.5);
        let b = ramp((k * n) as usize, -0.25);
        let mut c = cluster();
        let kernel = GemmKernel { m, k, n };
        let (got, perf) = kernel.run(&mut c, &a, &b);
        let expect = reference::gemm(&a, &b, m as usize, k as usize, n as usize);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() <= 1e-3 * e.abs().max(1.0), "{g} vs {e}");
        }
        assert_eq!(perf.flops, 2 * u64::from(m * k * n));
    }

    #[test]
    fn gemm_multiple_rows_per_engine() {
        // m > 8 forces several output rows per engine, exercising the
        // level-2 rewind of the B-column AGU (regression: it was off
        // by the ldb padding).
        let (m, k, n) = (28u32, 12u32, 10u32);
        let a = ramp((m * k) as usize, 0.3);
        let b = ramp((k * n) as usize, -0.2);
        let mut c = cluster();
        let (got, _) = GemmKernel { m, k, n }.run(&mut c, &a, &b);
        let expect = reference::gemm(&a, &b, m as usize, k as usize, n as usize);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() <= 1e-3 * e.abs().max(1.0), "{g} vs {e}");
        }
    }

    #[test]
    fn gemm_identity() {
        let n = 6u32;
        let mut a = vec![0f32; (n * n) as usize];
        for i in 0..n {
            a[(i * n + i) as usize] = 1.0;
        }
        let b = ramp((n * n) as usize, 1.0);
        let mut c = cluster();
        let (got, _) = GemmKernel { m: n, k: n, n }.run(&mut c, &a, &b);
        assert_eq!(got, b);
    }

    #[test]
    fn gemm_split_k_passes_match_unsplit_bit_exactly() {
        // Chain k = 8 + 4 through the wide-accumulator spill protocol
        // and compare against the unsplit lowering: the result must be
        // identical to the bit, because the wide image carries the full
        // fixed-point sum across the pass boundary.
        let (m, k, n) = (4u32, 12u32, 5u32);
        let (k0, k1) = (8u32, 4u32);
        let a = ramp((m * k) as usize, 0.37);
        let b = ramp((k * n) as usize, -0.23);

        let mut oracle = cluster();
        let (expect, _) = GemmKernel { m, k, n }.run(&mut oracle, &a, &b);

        let mut c = cluster();
        let engines = c.num_engines() as u32;
        // Compact chunk layouts: A chunks at lda = chunk length, B
        // chunks at ldb = n (odd, so no padding needed).
        let a0_addr = 0u32;
        let a1_addr = a0_addr + 4 * m * k0;
        let b0_addr = a1_addr + 4 * m * k1;
        let b1_addr = b0_addr + 4 * k0 * n;
        let cw_addr = b1_addr + 4 * k1 * n;
        assert!(cw_addr + SPILL_BYTES * m * n <= c.config().tcdm.bytes);
        for r in 0..m {
            c.write_tcdm_f32(
                a0_addr + 4 * r * k0,
                &a[(r * k) as usize..(r * k + k0) as usize],
            );
            c.write_tcdm_f32(
                a1_addr + 4 * r * k1,
                &a[(r * k + k0) as usize..((r + 1) * k) as usize],
            );
        }
        c.write_tcdm_f32(b0_addr, &b[..(k0 * n) as usize]);
        c.write_tcdm_f32(b1_addr, &b[(k0 * n) as usize..]);
        let pass0 = GemmKernel { m, k: k0, n }
            .lower_pass(a0_addr, b0_addr, cw_addr, n, AccuInit::Zero, true, engines)
            .expect("valid pass 0");
        for (i, cfg) in pass0.iter().enumerate() {
            c.offload_with_writes(i, cfg, 10);
        }
        c.run_to_completion();
        let pass1 = GemmKernel { m, k: k1, n }
            .lower_pass(a1_addr, b1_addr, cw_addr, n, AccuInit::Wide, false, engines)
            .expect("valid pass 1");
        for (i, cfg) in pass1.iter().enumerate() {
            c.offload_with_writes(i, cfg, 10);
        }
        c.run_to_completion();
        let got: Vec<f32> = (0..m * n)
            .map(|i| c.read_tcdm_f32(cw_addr + SPILL_BYTES * i, 1)[0])
            .collect();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&expect));
    }

    #[test]
    fn costs_have_expected_intensities() {
        let axpy = AxpyKernel { n: 1024, a: 1.0 }.cost();
        assert!((axpy.operational_intensity() - 1.0 / 6.0).abs() < 1e-9);
        let gemv = GemvKernel {
            rows: 1024,
            cols: 1024,
        }
        .cost();
        assert!(gemv.operational_intensity() < 0.51);
        // GEMM intensity grows with size until the TCDM caps the block.
        let small = GemmKernel {
            m: 16,
            k: 16,
            n: 16,
        }
        .cost();
        let large = GemmKernel {
            m: 1024,
            k: 1024,
            n: 1024,
        }
        .cost();
        assert!(large.operational_intensity() > small.operational_intensity());
        assert!(large.operational_intensity() > 4.0); // compute bound
    }
}
